//! Offline stand-in for the `criterion` crate.
//!
//! Provides the macro/type surface the workspace's benches use
//! ([`criterion_group!`], [`criterion_main!`], [`Criterion`],
//! `benchmark_group` → `sample_size` / `bench_function` / `finish`) with a
//! plain wall-clock measurement loop: warm up once, run `sample_size`
//! timed iterations, report mean and min per-iteration time. No statistics,
//! plots, or baselines — those need the real crate and a network.

#![forbid(unsafe_code)]

use std::time::{Duration, Instant};

/// Re-export so benches can use `criterion::black_box` too.
pub use std::hint::black_box;

/// The benchmark context handed to each target function.
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Starts a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        println!("\n== {name} ==");
        BenchmarkGroup {
            _parent: self,
            sample_size: 10,
        }
    }

    /// Runs a single benchmark outside any group.
    pub fn bench_function<S: AsRef<str>, F: FnMut(&mut Bencher)>(
        &mut self,
        id: S,
        mut f: F,
    ) -> &mut Self {
        run_one(id.as_ref(), 10, &mut f);
        self
    }
}

/// A named set of benchmarks sharing a sample size.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets how many timed iterations each benchmark runs.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Runs one benchmark in this group.
    pub fn bench_function<S: AsRef<str>, F: FnMut(&mut Bencher)>(
        &mut self,
        id: S,
        mut f: F,
    ) -> &mut Self {
        run_one(id.as_ref(), self.sample_size, &mut f);
        self
    }

    /// Ends the group (kept for API compatibility).
    pub fn finish(self) {}
}

/// Timer handle passed to the closure of `bench_function`.
#[derive(Debug, Default)]
pub struct Bencher {
    samples: Vec<Duration>,
    target: usize,
}

impl Bencher {
    /// Times `routine`, once per sample.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warmup (untimed) so first-touch effects don't pollute sample 0.
        black_box(routine());
        for _ in 0..self.target {
            let t = Instant::now();
            black_box(routine());
            self.samples.push(t.elapsed());
        }
    }
}

fn run_one<F: FnMut(&mut Bencher)>(id: &str, samples: usize, f: &mut F) {
    let mut b = Bencher {
        samples: Vec::new(),
        target: samples,
    };
    f(&mut b);
    if b.samples.is_empty() {
        println!("{id:<44} (no samples)");
        return;
    }
    let total: Duration = b.samples.iter().sum();
    let mean = total / b.samples.len() as u32;
    let min = b.samples.iter().min().copied().unwrap_or_default();
    println!(
        "{id:<44} mean {:>12?}  min {:>12?}  ({} samples)",
        mean,
        min,
        b.samples.len()
    );
}

/// Bundles benchmark functions into one runner function.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Emits `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_bench(c: &mut Criterion) {
        let mut g = c.benchmark_group("g");
        g.sample_size(3);
        g.bench_function("sum", |b| b.iter(|| (0..100u64).sum::<u64>()));
        g.finish();
    }

    criterion_group!(benches, sample_bench);

    #[test]
    fn harness_runs() {
        benches();
    }
}
