//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no crates.io access, so this vendored crate
//! implements the subset of proptest the workspace's property tests use:
//! the [`proptest!`] macro with an inline `proptest_config` attribute,
//! [`Strategy`] with `prop_map`, integer-range / tuple / [`any`] strategies,
//! and [`collection::vec`] / [`collection::btree_set`].
//!
//! Differences from real proptest, deliberately accepted:
//!
//! * **No shrinking** — a failing case panics with its case index; cases are
//!   derived deterministically from the test name, so every failure is
//!   reproducible by rerunning the test.
//! * **Deterministic sampling** — there is no `PROPTEST_CASES` env or
//!   persistence file; the case count comes from `ProptestConfig::with_cases`.

#![forbid(unsafe_code)]

use rand::rngs::SmallRng;

/// Execution parameters for a [`proptest!`] block.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of random cases to run per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases per test.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// A generator of random values of an associated type.
pub trait Strategy {
    /// The type this strategy produces.
    type Value;

    /// Samples one value.
    fn generate(&self, rng: &mut SmallRng) -> Self::Value;

    /// Maps the produced value through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }
}

/// See [`Strategy::prop_map`].
#[derive(Clone, Debug)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, F, O> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn generate(&self, rng: &mut SmallRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

macro_rules! range_strategy {
    ($($t:ty),*) => {
        $(
            impl Strategy for core::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut SmallRng) -> $t {
                    rand::Rng::random_range(rng, self.clone())
                }
            }
            impl Strategy for core::ops::RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut SmallRng) -> $t {
                    rand::Rng::random_range(rng, self.clone())
                }
            }
        )*
    };
}

range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! tuple_strategy {
    ($(($($n:ident $i:tt),+)),+ $(,)?) => {
        $(
            impl<$($n: Strategy),+> Strategy for ($($n,)+) {
                type Value = ($($n::Value,)+);
                fn generate(&self, rng: &mut SmallRng) -> Self::Value {
                    ($(self.$i.generate(rng),)+)
                }
            }
        )+
    };
}

tuple_strategy!(
    (A 0, B 1),
    (A 0, B 1, C 2),
    (A 0, B 1, C 2, D 3),
    (A 0, B 1, C 2, D 3, E 4)
);

/// Strategy producing any value of `T` (see [`any`]).
#[derive(Clone, Copy, Debug, Default)]
pub struct Any<T>(core::marker::PhantomData<T>);

impl<T: rand::Random> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut SmallRng) -> T {
        T::random(rng)
    }
}

/// The full uniform distribution over `T`.
pub fn any<T: rand::Random>() -> Any<T> {
    Any(core::marker::PhantomData)
}

/// A strategy producing exactly its argument.
#[derive(Clone, Copy, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut SmallRng) -> T {
        self.0.clone()
    }
}

/// Collection strategies.
pub mod collection {
    use super::Strategy;
    use rand::rngs::SmallRng;
    use rand::Rng;
    use std::collections::BTreeSet;

    /// Strategy for `Vec<T>` with a length drawn from a range.
    #[derive(Clone, Debug)]
    pub struct VecStrategy<S> {
        element: S,
        sizes: core::ops::Range<usize>,
    }

    /// A `Vec` of `sizes` elements drawn from `element`.
    pub fn vec<S: Strategy>(element: S, sizes: core::ops::Range<usize>) -> VecStrategy<S> {
        assert!(sizes.start < sizes.end, "empty size range");
        VecStrategy { element, sizes }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut SmallRng) -> Vec<S::Value> {
            let len = rng.random_range(self.sizes.clone());
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// Strategy for `BTreeSet<T>` with a target size drawn from a range.
    #[derive(Clone, Debug)]
    pub struct BTreeSetStrategy<S> {
        element: S,
        sizes: core::ops::Range<usize>,
    }

    /// A `BTreeSet` aiming for `sizes` distinct elements drawn from
    /// `element` (fewer if the element domain is too small).
    pub fn btree_set<S>(element: S, sizes: core::ops::Range<usize>) -> BTreeSetStrategy<S>
    where
        S: Strategy,
        S::Value: Ord,
    {
        assert!(sizes.start < sizes.end, "empty size range");
        BTreeSetStrategy { element, sizes }
    }

    impl<S> Strategy for BTreeSetStrategy<S>
    where
        S: Strategy,
        S::Value: Ord,
    {
        type Value = BTreeSet<S::Value>;

        fn generate(&self, rng: &mut SmallRng) -> BTreeSet<S::Value> {
            let target = rng.random_range(self.sizes.clone());
            let mut set = BTreeSet::new();
            // Cap attempts so tiny domains terminate.
            for _ in 0..target.saturating_mul(20).max(64) {
                if set.len() >= target {
                    break;
                }
                set.insert(self.element.generate(rng));
            }
            set
        }
    }
}

/// Deterministic per-test RNG derivation (exposed for the macro).
pub mod test_runner {
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    /// FNV-1a, so case streams differ per test name.
    pub fn seed_for(test_name: &str, case: u64) -> SmallRng {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in test_name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        SmallRng::seed_from_u64(h ^ case.wrapping_mul(0x9E37_79B9_7F4A_7C15))
    }
}

/// Asserts a condition inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Asserts equality inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Declares property tests: each `fn name(pat in strategy, ...) { body }`
/// becomes a `#[test]` running `body` for every sampled case.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($cfg:expr)]
        $(
            $(#[$meta:meta])*
            fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $cfg;
                for case in 0..config.cases as u64 {
                    let mut __rng = $crate::test_runner::seed_for(stringify!($name), case);
                    $(let $pat = $crate::Strategy::generate(&($strat), &mut __rng);)+
                    $body
                }
            }
        )*
    };
    (
        $(
            $(#[$meta:meta])*
            fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block
        )*
    ) => {
        $crate::proptest! {
            #![proptest_config($crate::ProptestConfig::default())]
            $(
                $(#[$meta])*
                fn $name($($pat in $strat),+) $body
            )*
        }
    };
}

/// The imports real proptest exposes from its prelude (subset).
pub mod prelude {
    pub use crate::collection;
    pub use crate::{any, prop_assert, prop_assert_eq, proptest, Just, ProptestConfig, Strategy};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_and_tuples((a, b) in (0u32..10, 5u64..6), v in collection::vec(0u8..4, 1..9)) {
            prop_assert!(a < 10);
            prop_assert_eq!(b, 5);
            prop_assert!(!v.is_empty() && v.len() < 9);
            prop_assert!(v.iter().all(|&x| x < 4));
        }

        #[test]
        fn mapped_strategies(s in (1usize..5).prop_map(|x| x * 2)) {
            prop_assert!(s % 2 == 0 && s < 10);
        }

        #[test]
        fn sets_have_distinct_elements(s in collection::btree_set(0u32..1000, 3..20)) {
            prop_assert!(s.len() >= 3);
        }
    }

    #[test]
    fn deterministic_across_runs() {
        let mut a = crate::test_runner::seed_for("x", 0);
        let mut b = crate::test_runner::seed_for("x", 0);
        assert_eq!((0u64..100).generate(&mut a), (0u64..100).generate(&mut b));
    }
}
