//! Offline stand-in for the `rand` crate (0.9 API surface).
//!
//! The build environment has no access to crates.io, so this vendored crate
//! provides exactly the subset of `rand 0.9` that the workspace uses:
//! [`rngs::SmallRng`], [`SeedableRng::seed_from_u64`], [`RngCore`], the
//! [`Rng`] extension methods `random`, `random_range`, `random_bool`, and
//! [`seq::SliceRandom::shuffle`]. The generator is xoshiro256++ seeded via
//! SplitMix64 — deterministic, high-quality, and tiny.
//!
//! Determinism across platforms and runs is a *feature* here: every
//! simulator test derives its randomness from explicit seeds.

#![forbid(unsafe_code)]

/// A source of random 32/64-bit words.
pub trait RngCore {
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;
    /// Next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// RNGs constructible from a seed.
pub trait SeedableRng: Sized {
    /// Builds the generator from a 64-bit seed.
    fn seed_from_u64(state: u64) -> Self;
}

/// Named generator types.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// xoshiro256++ — the same family real `rand` uses for `SmallRng` on
    /// 64-bit targets.
    #[derive(Clone, Debug, PartialEq, Eq)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut st = seed;
            let s = [
                splitmix64(&mut st),
                splitmix64(&mut st),
                splitmix64(&mut st),
                splitmix64(&mut st),
            ];
            SmallRng { s }
        }
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

/// Types producible uniformly at random by [`Rng::random`].
pub trait Random {
    /// Draws a uniform value.
    fn random<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! int_random {
    ($($t:ty),*) => {
        $(impl Random for $t {
            fn random<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        })*
    };
}

int_random!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Random for bool {
    fn random<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Random for f64 {
    fn random<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Random for f32 {
    fn random<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

/// Ranges [`Rng::random_range`] can sample from.
pub trait SampleRange<T> {
    /// Draws a uniform value from the range.
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

// Lemire-style unbiased bounded sampling on u64.
fn bounded_u64<R: RngCore + ?Sized>(rng: &mut R, bound: u64) -> u64 {
    debug_assert!(bound > 0);
    if bound.is_power_of_two() {
        return rng.next_u64() & (bound - 1);
    }
    let threshold = bound.wrapping_neg() % bound;
    loop {
        let r = rng.next_u64();
        let (hi, lo) = (
            ((r as u128 * bound as u128) >> 64) as u64,
            (r as u128 * bound as u128) as u64,
        );
        if lo >= threshold {
            return hi;
        }
    }
}

macro_rules! int_range {
    ($($t:ty),*) => {
        $(
            impl SampleRange<$t> for core::ops::Range<$t> {
                fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                    assert!(self.start < self.end, "random_range: empty range");
                    let span = (self.end as i128 - self.start as i128) as u64;
                    (self.start as i128 + bounded_u64(rng, span) as i128) as $t
                }
            }
            impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
                fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "random_range: empty range");
                    let span = (hi as i128 - lo as i128) as u64;
                    if span == u64::MAX {
                        return rng.next_u64() as $t;
                    }
                    (lo as i128 + bounded_u64(rng, span + 1) as i128) as $t
                }
            }
        )*
    };
}

int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for core::ops::Range<f64> {
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "random_range: empty range");
        self.start + f64::random(rng) * (self.end - self.start)
    }
}

/// Extension methods over any [`RngCore`] (the `rand 0.9` names).
pub trait Rng: RngCore {
    /// Uniform value of type `T`.
    fn random<T: Random>(&mut self) -> T
    where
        Self: Sized,
    {
        T::random(self)
    }

    /// Uniform value in `range`.
    fn random_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T
    where
        Self: Sized,
    {
        range.sample(self)
    }

    /// `true` with probability `p` (clamped to `[0, 1]`).
    fn random_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        f64::random(self) < p
    }
}

impl<R: RngCore> Rng for R {}

/// Slice helpers.
pub mod seq {
    use super::{RngCore, SampleRange};

    /// Random slice reordering.
    pub trait SliceRandom {
        /// Fisher–Yates shuffle.
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = (0..=i).sample(rng);
                self.swap(i, j);
            }
        }
    }
}

/// Common imports.
pub mod prelude {
    pub use crate::rngs::SmallRng;
    pub use crate::seq::SliceRandom;
    pub use crate::{Rng, RngCore, SeedableRng};
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rngs::SmallRng;

    #[test]
    fn deterministic_and_seed_sensitive() {
        let mut a = SmallRng::seed_from_u64(1);
        let mut b = SmallRng::seed_from_u64(1);
        let mut c = SmallRng::seed_from_u64(2);
        let (x, y, z) = (a.next_u64(), b.next_u64(), c.next_u64());
        assert_eq!(x, y);
        assert_ne!(x, z);
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = SmallRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v = rng.random_range(10u64..20);
            assert!((10..20).contains(&v));
            let w = rng.random_range(1u32..=3);
            assert!((1..=3).contains(&w));
            let f = rng.random::<f64>();
            assert!((0.0..1.0).contains(&f));
            let s: i64 = rng.random_range(-5i64..5);
            assert!((-5..5).contains(&s));
        }
    }

    #[test]
    fn bool_probabilities_sane() {
        let mut rng = SmallRng::seed_from_u64(9);
        let hits = (0..10_000).filter(|_| rng.random_bool(0.25)).count();
        assert!((2000..3000).contains(&hits), "hits = {hits}");
    }

    #[test]
    fn shuffle_is_permutation() {
        use crate::seq::SliceRandom;
        let mut rng = SmallRng::seed_from_u64(3);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted); // astronomically unlikely to be identity
    }
}
