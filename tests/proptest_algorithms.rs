//! Property-based end-to-end tests: random graphs, every invariant.

use het_mpc::prelude::*;
use mpc_graph::matching::is_maximal_matching;
use mpc_graph::mst::kruskal;
use mpc_graph::verify_spanner;
use proptest::prelude::*;

fn arbitrary_graph() -> impl Strategy<Value = (Graph, u64)> {
    (20usize..150, 1usize..12, any::<u64>()).prop_map(|(n, density, seed)| {
        let m = (n * density).min(n * (n - 1) / 2);
        let g = generators::gnm(n, m, seed).with_random_weights(1 << 16, seed);
        (g, seed)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn het_mst_weight_always_matches_kruskal((g, seed) in arbitrary_graph()) {
        let mut cluster = Cluster::new(ClusterConfig::new(g.n(), g.m().max(1)).seed(seed));
        let input = common::distribute_edges(&cluster, &g);
        let r = mst::heterogeneous_mst(&mut cluster, g.n(), input).unwrap();
        prop_assert!(mpc_graph::is_spanning_forest(&g, &r.forest.edges));
        prop_assert_eq!(r.forest.total_weight, kruskal(&g).total_weight);
    }

    #[test]
    fn het_matching_is_always_maximal((g, seed) in arbitrary_graph()) {
        let mut cluster = Cluster::new(ClusterConfig::new(g.n(), g.m().max(1)).seed(seed));
        let input = common::distribute_edges(&cluster, &g);
        let r = matching::heterogeneous_matching(&mut cluster, g.n(), &input).unwrap();
        prop_assert!(is_maximal_matching(&g, &r.matching));
    }

    #[test]
    fn het_spanner_respects_stretch_bound((g, seed) in arbitrary_graph()) {
        // Spanners are for unweighted inputs here; reuse the topology.
        let unweighted = g.filter_edges(|_| true);
        let unweighted = Graph::new(
            unweighted.n(),
            unweighted.edges().iter().map(|e| Edge::unweighted(e.u, e.v)),
        );
        let k = 2 + (seed % 3) as usize;
        let mut cluster = Cluster::new(
            ClusterConfig::new(g.n(), g.m().max(1)).seed(seed).polylog_exponent(1.7),
        );
        let input = common::distribute_edges(&cluster, &unweighted);
        let r = spanner::heterogeneous_spanner(&mut cluster, g.n(), &input, k).unwrap();
        let rep = verify_spanner(&unweighted, &r.spanner, Some(12), seed);
        prop_assert!(
            rep.within((6 * k - 1) as f64),
            "stretch {} exceeds {}", rep.max_stretch, 6 * k - 1
        );
    }
}
