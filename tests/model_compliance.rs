//! Model-compliance audit: the paper's resource bounds hold on every run.
//!
//! All algorithms execute under `Enforcement::Strict`, so merely finishing
//! proves no machine ever exceeded its send/receive/memory budget. These
//! tests additionally sweep γ and densities, and check the audit trail
//! (round log, peak memory) that EXPERIMENTS.md reports.

use het_mpc::prelude::*;
use mpc_graph::mst::kruskal;

#[test]
fn mst_respects_capacities_across_gamma() {
    for &gamma in &[0.4f64, 0.5, 0.66, 0.8] {
        let g = generators::gnm(256, 256 * 16, 9).with_random_weights(1 << 16, 9);
        let mut cluster = Cluster::new(
            ClusterConfig::new(g.n(), g.m())
                .topology(Topology::Heterogeneous {
                    gamma,
                    large_exponent: 1.0,
                })
                .enforcement(Enforcement::Strict)
                .seed(9),
        );
        let input = common::distribute_edges(&cluster, &g);
        let r = mst::heterogeneous_mst(&mut cluster, g.n(), input)
            .unwrap_or_else(|e| panic!("gamma {gamma}: {e}"));
        assert_eq!(r.forest.total_weight, kruskal(&g).total_weight);
        assert!(cluster.violations().is_empty());
        // Peak resident memory stayed within every machine's capacity.
        for mid in 0..cluster.machines() {
            assert!(
                cluster.peak_resident()[mid] <= cluster.capacity(mid),
                "gamma {gamma}: machine {mid} peaked at {} of {}",
                cluster.peak_resident()[mid],
                cluster.capacity(mid)
            );
        }
    }
}

#[test]
fn round_log_labels_every_exchange() {
    let g = generators::gnm(128, 1024, 3).with_random_weights(100, 3);
    let mut cluster = Cluster::new(ClusterConfig::new(g.n(), g.m()).seed(3));
    let input = common::distribute_edges(&cluster, &g);
    mst::heterogeneous_mst(&mut cluster, g.n(), input).unwrap();
    assert_eq!(cluster.round_log().len() as u64, cluster.rounds());
    for rec in cluster.round_log() {
        assert!(!rec.label.is_empty());
        assert!(rec.max_sent <= cluster.capacity(cluster.large().unwrap()));
    }
}

#[test]
fn per_round_traffic_never_exceeds_the_largest_capacity() {
    let g = generators::gnm(200, 3000, 5);
    let mut cluster = Cluster::new(
        ClusterConfig::new(g.n(), g.m())
            .seed(5)
            .polylog_exponent(1.6),
    );
    let input = common::distribute_edges(&cluster, &g);
    spanner::heterogeneous_spanner(&mut cluster, g.n(), &input, 3).unwrap();
    let large_cap = cluster.capacity(cluster.large().unwrap());
    assert!(cluster.max_round_traffic() <= large_cap);
}

#[test]
fn record_mode_agrees_with_strict_mode_results() {
    let g = generators::gnm(150, 1500, 7).with_random_weights(500, 7);
    let run = |enforcement| {
        let mut cluster = Cluster::new(
            ClusterConfig::new(g.n(), g.m())
                .enforcement(enforcement)
                .seed(7),
        );
        let input = common::distribute_edges(&cluster, &g);
        let r = mst::heterogeneous_mst(&mut cluster, g.n(), input).unwrap();
        (r.forest.total_weight, cluster.rounds())
    };
    assert_eq!(run(Enforcement::Strict), run(Enforcement::Record));
}

#[test]
fn sublinear_baseline_is_capacity_clean_too() {
    use mpc_baselines::sublinear::{distribute_all, sublinear_config, sublinear_mst};
    let g = generators::gnm(128, 1024, 11).with_random_weights(1 << 12, 11);
    let mut cluster = Cluster::new(sublinear_config(g.n(), g.m(), 11));
    let input = distribute_all(&cluster, &g);
    let r = sublinear_mst(&mut cluster, g.n(), &input).unwrap();
    let edges: Vec<Edge> = r.forest.iter().map(|(_, e)| *e).collect();
    assert_eq!(
        mpc_graph::mst::Forest::from_edges(edges).total_weight,
        kruskal(&g).total_weight
    );
    assert!(cluster.violations().is_empty());
}
