//! Edge-case sweep across the public API: degenerate graphs, extreme
//! topologies, and boundary parameters that unit tests tend to miss. All
//! runs go through the Algorithm registry on the parallel engine — the
//! sole consumer-facing entry point.

use het_mpc::prelude::*;
use mpc_graph::matching::is_maximal_matching;
use mpc_graph::mst::kruskal;

fn registry_on(name: &str, g: &Graph, cluster: &mut Cluster) -> AlgoOutput {
    let input = common::distribute_edges(cluster, g);
    registry::run(
        name,
        cluster,
        &AlgoInput::new(g.n(), &input),
        ExecMode::Parallel,
    )
    .unwrap()
}

fn run_mst(g: &Graph, seed: u64) -> mpc_core::mst::MstResult {
    let mut cluster = Cluster::new(ClusterConfig::new(g.n(), g.m().max(1)).seed(seed));
    registry_on("mst", g, &mut cluster).into_mst().unwrap()
}

#[test]
fn single_edge_graph() {
    let g = Graph::new(2, [Edge::new(0, 1, 5)]);
    let r = run_mst(&g, 1);
    assert_eq!(r.forest.len(), 1);
    assert_eq!(r.forest.total_weight, 5);
}

#[test]
fn all_equal_weights_still_yield_a_minimum_forest() {
    // Ties everywhere: the WeightKey total order must keep things exact.
    let g = generators::gnm(100, 800, 3); // every weight = 1
    let r = run_mst(&g, 3);
    assert_eq!(r.forest.total_weight, kruskal(&g).total_weight);
    assert!(mpc_graph::is_spanning_forest(&g, &r.forest.edges));
}

#[test]
fn extreme_weights_do_not_overflow() {
    let edges = (0..50u32).map(|i| Edge::new(i, i + 1, u64::MAX / 128));
    let g = Graph::new(51, edges);
    let r = run_mst(&g, 4);
    assert_eq!(r.forest.total_weight, kruskal(&g).total_weight);
}

#[test]
fn star_graph_mst_and_matching() {
    let g = generators::star(300).with_random_weights(1000, 5);
    let r = run_mst(&g, 5);
    assert_eq!(r.forest.len(), 299);
    assert_eq!(r.forest.total_weight, kruskal(&g).total_weight);

    let mut cluster = Cluster::new(ClusterConfig::new(g.n(), g.m()).seed(5));
    let m = registry_on("matching", &g, &mut cluster)
        .into_matching()
        .unwrap();
    assert!(is_maximal_matching(&g, &m.matching));
}

#[test]
fn grid_graph_spanner() {
    // Grids have girth 4 and no dense clusters — a stress case for the
    // clustering-graph construction (every degree is 2..4 ⇒ few levels).
    let g = generators::grid(16, 16);
    let mut cluster = Cluster::new(
        ClusterConfig::new(g.n(), g.m())
            .seed(6)
            .polylog_exponent(1.6),
    );
    let input = common::distribute_edges(&cluster, &g);
    let r = registry::run(
        "spanner",
        &mut cluster,
        &AlgoInput::new(g.n(), &input).spanner_k(2),
        ExecMode::Parallel,
    )
    .unwrap()
    .into_spanner()
    .unwrap();
    let rep = mpc_graph::verify_spanner(&g, &r.spanner, Some(20), 0);
    assert!(rep.within(11.0), "stretch {} on grid", rep.max_stretch);
}

#[test]
fn two_machine_minimum_cluster() {
    // The smallest legal cluster: one large + two small machines.
    let g = generators::gnm(32, 64, 7).with_random_weights(100, 7);
    let mut cluster = Cluster::new(ClusterConfig::new(g.n(), g.m()).seed(7).topology(
        Topology::Custom {
            capacities: vec![100_000, 2_000, 2_000],
            large: Some(0),
        },
    ));
    let r = registry_on("mst", &g, &mut cluster).into_mst().unwrap();
    assert_eq!(r.forest.total_weight, kruskal(&g).total_weight);
}

#[test]
fn gamma_extremes() {
    let g = generators::gnm(128, 2048, 8).with_random_weights(1 << 12, 8);
    for gamma in [0.3f64, 0.9] {
        // Extra polylog headroom: at γ = 0.3 the small machines are tiny,
        // and the engine's explicit per-phase exchanges peak higher than
        // the legacy primitives' fused collector waves.
        let mut cluster = Cluster::new(
            ClusterConfig::new(g.n(), g.m())
                .topology(Topology::Heterogeneous {
                    gamma,
                    large_exponent: 1.0,
                })
                .polylog_exponent(2.6)
                .seed(8),
        );
        let input = common::distribute_edges(&cluster, &g);
        let r = registry::run(
            "mst",
            &mut cluster,
            &AlgoInput::new(g.n(), &input),
            ExecMode::Parallel,
        )
        .unwrap_or_else(|e| panic!("gamma {gamma}: {e}"))
        .into_mst()
        .unwrap();
        assert_eq!(r.forest.total_weight, kruskal(&g).total_weight);
    }
}

#[test]
fn disconnected_many_components() {
    let g = generators::random_forest(120, 12, 9).with_random_weights(50, 9);
    let r = run_mst(&g, 9);
    assert_eq!(r.forest.len(), 120 - 12);

    // Matching and spanner on disconnected inputs.
    let mut cluster = Cluster::new(ClusterConfig::new(g.n(), g.m()).seed(9));
    let m = registry_on("matching", &g, &mut cluster)
        .into_matching()
        .unwrap();
    assert!(is_maximal_matching(&g, &m.matching));
}

#[test]
fn spanner_on_already_sparse_graph_keeps_connectivity() {
    let g = generators::random_tree(200, 10);
    let mut cluster = Cluster::new(
        ClusterConfig::new(g.n(), g.m())
            .seed(10)
            .polylog_exponent(1.6),
    );
    let input = common::distribute_edges(&cluster, &g);
    let r = registry::run(
        "spanner",
        &mut cluster,
        &AlgoInput::new(g.n(), &input).spanner_k(3),
        ExecMode::Parallel,
    )
    .unwrap()
    .into_spanner()
    .unwrap();
    // A spanner of a tree must be the tree.
    assert_eq!(r.spanner.m(), g.m());
}

#[test]
fn mis_on_complete_graph_is_a_single_vertex() {
    let g = generators::complete(64);
    let mut cluster = Cluster::new(
        ClusterConfig::new(g.n(), g.m())
            .seed(11)
            .polylog_exponent(1.6),
    );
    let r = registry_on("mis", &g, &mut cluster).into_mis().unwrap();
    assert_eq!(r.mis.len(), 1);
}

#[test]
fn coloring_on_bipartite_graph_is_proper() {
    let g = generators::grid(12, 12);
    let mut cluster = Cluster::new(
        ClusterConfig::new(g.n(), g.m())
            .seed(12)
            .polylog_exponent(2.0),
    );
    let r = registry_on("coloring", &g, &mut cluster)
        .into_coloring()
        .unwrap();
    assert!(mpc_graph::coloring::is_proper_coloring(&g, &r.colors));
    assert!(mpc_graph::coloring::color_count(&r.colors) <= g.max_degree() + 1);
}
