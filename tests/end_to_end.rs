//! Cross-crate integration: every algorithm of the paper on shared
//! workload families, validated by the sequential oracles. All runs go
//! through the Algorithm registry on the parallel engine — the sole
//! consumer-facing entry point.

use het_mpc::prelude::*;
use mpc_graph::coloring::is_proper_coloring;
use mpc_graph::matching::is_maximal_matching;
use mpc_graph::mis::is_maximal_independent_set;
use mpc_graph::mst::kruskal;
use mpc_graph::verify_spanner;

fn workload(seed: u64) -> Graph {
    generators::gnm(200, 2400, seed).with_random_weights(1 << 18, seed)
}

#[test]
fn mst_spanner_matching_on_the_same_graph() {
    let g = workload(1);

    // MST.
    let mut cluster = Cluster::new(ClusterConfig::new(g.n(), g.m()).seed(1));
    let input = common::distribute_edges(&cluster, &g);
    let mst_result = registry::run(
        "mst",
        &mut cluster,
        &AlgoInput::new(g.n(), &input),
        ExecMode::Parallel,
    )
    .unwrap()
    .into_mst()
    .unwrap();
    assert_eq!(mst_result.forest.total_weight, kruskal(&g).total_weight);
    let mst_rounds = cluster.rounds();

    // Spanner (unweighted view of the same topology).
    let unweighted = generators::gnm(200, 2400, 1);
    let mut cluster = Cluster::new(
        ClusterConfig::new(g.n(), g.m())
            .seed(1)
            .polylog_exponent(1.6),
    );
    let input = common::distribute_edges(&cluster, &unweighted);
    let sp = registry::run(
        "spanner",
        &mut cluster,
        &AlgoInput::new(g.n(), &input).spanner_k(3),
        ExecMode::Parallel,
    )
    .unwrap()
    .into_spanner()
    .unwrap();
    assert!(verify_spanner(&unweighted, &sp.spanner, Some(24), 0).within(17.0));

    // Matching.
    let mut cluster = Cluster::new(ClusterConfig::new(g.n(), g.m()).seed(1));
    let input = common::distribute_edges(&cluster, &g);
    let m = registry::run(
        "matching",
        &mut cluster,
        &AlgoInput::new(g.n(), &input),
        ExecMode::Parallel,
    )
    .unwrap()
    .into_matching()
    .unwrap();
    assert!(is_maximal_matching(&g, &m.matching));

    assert!(
        mst_rounds < 60,
        "MST rounds unexpectedly high: {mst_rounds}"
    );
}

#[test]
fn ported_algorithms_cover_appendix_c() {
    let g = generators::gnm(120, 1000, 2);

    // Connectivity (C.1).
    let mut cluster = Cluster::new(
        ClusterConfig::new(g.n(), g.m())
            .seed(2)
            .polylog_exponent(2.6),
    );
    let input = common::distribute_edges(&cluster, &g);
    let comps = registry::run(
        "connectivity",
        &mut cluster,
        &AlgoInput::new(g.n(), &input),
        ExecMode::Parallel,
    )
    .unwrap()
    .into_components()
    .unwrap();
    assert_eq!(comps, mpc_graph::traversal::connected_components(&g));

    // MIS (C.6).
    let mut cluster = Cluster::new(
        ClusterConfig::new(g.n(), g.m())
            .seed(2)
            .polylog_exponent(1.6),
    );
    let input = common::distribute_edges(&cluster, &g);
    let mis = registry::run(
        "mis",
        &mut cluster,
        &AlgoInput::new(g.n(), &input),
        ExecMode::Parallel,
    )
    .unwrap()
    .into_mis()
    .unwrap();
    assert!(is_maximal_independent_set(&g, &mis.mis));

    // Coloring (C.7).
    let mut cluster = Cluster::new(
        ClusterConfig::new(g.n(), g.m())
            .seed(2)
            .polylog_exponent(2.0),
    );
    let input = common::distribute_edges(&cluster, &g);
    let col = registry::run(
        "coloring",
        &mut cluster,
        &AlgoInput::new(g.n(), &input),
        ExecMode::Parallel,
    )
    .unwrap()
    .into_coloring()
    .unwrap();
    assert!(is_proper_coloring(&g, &col.colors));

    // Exact min cut (C.3) on a planted instance.
    let pc = generators::planted_cut(30, 0.6, 3, 2);
    let mut cluster = Cluster::new(ClusterConfig::new(pc.n(), pc.m()).seed(2));
    let input = common::distribute_edges(&cluster, &pc);
    let mc = registry::run(
        "mincut",
        &mut cluster,
        &AlgoInput::new(pc.n(), &input).mincut_trials(8),
        ExecMode::Parallel,
    )
    .unwrap()
    .into_mincut()
    .unwrap();
    assert_eq!(mc.value, mpc_graph::mincut::min_cut(&pc).unwrap().weight);
}

#[test]
fn filtering_matching_respects_superlinear_memory() {
    let g = generators::gnm(128, 5000, 3);
    let f = 0.25;
    let mut cluster = Cluster::new(
        ClusterConfig::new(g.n(), g.m())
            .topology(Topology::Heterogeneous {
                gamma: 0.66,
                large_exponent: 1.0 + f,
            })
            .seed(3),
    );
    let input = common::distribute_edges(&cluster, &g);
    let (m, stats) =
        matching::filtering::filtering_matching(&mut cluster, g.n(), &input, f).unwrap();
    assert!(is_maximal_matching(&g, &m));
    assert!(stats.levels >= 1);
}

#[test]
fn general_mst_theorem_3_1_with_superlinear_machine() {
    // A bigger large machine must not hurt (usually: fewer Borůvka steps).
    let g = generators::gnm(256, 256 * 40, 4).with_random_weights(1 << 18, 4);
    let run = |f: f64| {
        let mut cluster = Cluster::new(
            ClusterConfig::new(g.n(), g.m())
                .topology(Topology::Heterogeneous {
                    gamma: 0.5,
                    large_exponent: 1.0 + f,
                })
                .mem_constant(3.0)
                .seed(4),
        );
        let input = common::distribute_edges(&cluster, &g);
        // Deliberately tight memory (mem_constant 3.0) to expose the
        // Borůvka schedule — the regime of the legacy oracle loop, whose
        // fused collector waves fit where the engine's explicit per-phase
        // exchanges would overflow strict capacity.
        let r = mst::heterogeneous_mst(&mut cluster, g.n(), input).unwrap();
        assert!(mst::is_minimum_spanning_forest(&g, &r.forest));
        (r.stats.boruvka_steps, cluster.rounds())
    };
    let (steps_near, _) = run(0.0);
    let (steps_super, _) = run(0.4);
    assert!(
        steps_super <= steps_near,
        "superlinear memory should not need more steps ({steps_super} vs {steps_near})"
    );
}
