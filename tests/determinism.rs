//! Reproducibility: every run is a pure function of `(input, seed)`.

use het_mpc::prelude::*;

#[test]
fn mst_is_bit_for_bit_deterministic() {
    let g = generators::gnm(180, 2000, 13).with_random_weights(1 << 16, 13);
    let run = || {
        let mut cluster = Cluster::new(ClusterConfig::new(g.n(), g.m()).seed(99));
        let input = common::distribute_edges(&cluster, &g);
        let r = mst::heterogeneous_mst(&mut cluster, g.n(), input).unwrap();
        (r.forest.keys(), cluster.rounds(), r.stats.boruvka_steps)
    };
    assert_eq!(run(), run());
}

#[test]
fn different_seeds_change_random_choices_not_answers() {
    let g = generators::gnm(150, 1800, 17).with_random_weights(1 << 16, 17);
    let weight_at = |seed: u64| {
        let mut cluster = Cluster::new(ClusterConfig::new(g.n(), g.m()).seed(seed));
        let input = common::distribute_edges(&cluster, &g);
        mst::heterogeneous_mst(&mut cluster, g.n(), input)
            .unwrap()
            .forest
            .total_weight
    };
    // The MST weight is seed-independent even though sampling differs.
    assert_eq!(weight_at(1), weight_at(2));
    assert_eq!(weight_at(2), weight_at(3));
}

#[test]
fn spanner_and_matching_are_deterministic() {
    let g = generators::gnm(160, 1600, 19);
    let spanner_run = || {
        let mut cluster = Cluster::new(
            ClusterConfig::new(g.n(), g.m())
                .seed(5)
                .polylog_exponent(1.6),
        );
        let input = common::distribute_edges(&cluster, &g);
        let r = spanner::heterogeneous_spanner(&mut cluster, g.n(), &input, 3).unwrap();
        (r.spanner.m(), cluster.rounds())
    };
    assert_eq!(spanner_run(), spanner_run());

    let match_run = || {
        let mut cluster = Cluster::new(ClusterConfig::new(g.n(), g.m()).seed(5));
        let input = common::distribute_edges(&cluster, &g);
        let r = matching::heterogeneous_matching(&mut cluster, g.n(), &input).unwrap();
        (r.matching.len(), cluster.rounds())
    };
    assert_eq!(match_run(), match_run());
}
