//! Failure injection: under-provisioned clusters must fail loudly (strict)
//! or degrade observably (record) — never silently corrupt results.

use het_mpc::prelude::*;
use mpc_graph::mst::kruskal;
use mpc_runtime::ModelViolation;

/// A cluster whose small machines are far too small for the workload.
fn starved_cluster(g: &Graph) -> ClusterConfig {
    ClusterConfig::new(g.n(), g.m())
        .mem_constant(0.2) // 30x below the default budget
        .seed(1)
}

#[test]
fn strict_mode_reports_the_offending_exchange() {
    let g = generators::gnm(256, 4096, 1).with_random_weights(1 << 16, 1);
    let mut cluster = Cluster::new(starved_cluster(&g).enforcement(Enforcement::Strict));
    let input = common::distribute_edges(&cluster, &g);
    match mst::heterogeneous_mst(&mut cluster, g.n(), input) {
        Err(mst::MstError::Model(v)) => {
            // The violation names a machine, a round, and a labeled step.
            let s = v.to_string();
            assert!(s.contains("machine"), "uninformative violation: {s}");
            assert!(s.contains("round"), "uninformative violation: {s}");
        }
        Err(other) => panic!("expected a model violation, got {other}"),
        Ok(_) => panic!("a starved cluster must not succeed in strict mode"),
    }
}

#[test]
fn record_mode_still_computes_the_right_answer() {
    let g = generators::gnm(256, 4096, 1).with_random_weights(1 << 16, 1);
    let mut cluster = Cluster::new(starved_cluster(&g).enforcement(Enforcement::Record));
    let input = common::distribute_edges(&cluster, &g);
    let r = mst::heterogeneous_mst(&mut cluster, g.n(), input).unwrap();
    assert_eq!(r.forest.total_weight, kruskal(&g).total_weight);
    assert!(
        !cluster.violations().is_empty(),
        "a starved cluster must record violations"
    );
}

#[test]
fn unknown_destination_fails_in_every_mode() {
    for e in [Enforcement::Strict, Enforcement::Record, Enforcement::Off] {
        let mut cluster = Cluster::new(
            ClusterConfig::new(16, 32)
                .topology(Topology::Custom {
                    capacities: vec![10, 10],
                    large: None,
                })
                .enforcement(e),
        );
        let mut out = cluster.empty_outboxes::<u64>();
        out[0].push((7, 1)); // machine 7 does not exist
        assert!(matches!(
            cluster.exchange("bad", out),
            Err(ModelViolation::UnknownMachine { .. })
        ));
    }
}

#[test]
fn memory_accounting_catches_oversized_state() {
    let mut cluster = Cluster::new(ClusterConfig::new(16, 32).topology(Topology::Custom {
        capacities: vec![100, 20],
        large: Some(0),
    }));
    assert!(cluster.account("big", 1, 19).is_ok());
    let err = cluster.account("more", 1, 5).unwrap_err();
    assert!(matches!(
        err,
        ModelViolation::MemoryOverflow { machine: 1, .. }
    ));
}

#[test]
fn adversarial_layout_does_not_change_results() {
    use mpc_graph::distribution::Layout;
    // Contiguous layout: all of a vertex's edges can sit on one machine —
    // the worst case for the hash-owner primitives' balance assumptions.
    let g = generators::gnm(200, 3000, 9).with_random_weights(1 << 16, 9);
    let mut results = Vec::new();
    for layout in [Layout::RoundRobin, Layout::Contiguous, Layout::Random(5)] {
        let mut cluster = Cluster::new(ClusterConfig::new(g.n(), g.m()).seed(9));
        let input = common::distribute_edges_with(&cluster, &g, layout);
        let r = mst::heterogeneous_mst(&mut cluster, g.n(), input).unwrap();
        results.push(r.forest.total_weight);
    }
    assert_eq!(results[0], kruskal(&g).total_weight);
    assert!(results.windows(2).all(|w| w[0] == w[1]));
}
