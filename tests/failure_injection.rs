//! Failure injection: under-provisioned clusters must fail loudly (strict)
//! or degrade observably (record), and a chaos plan crashing machines
//! mid-run must recover bit-identically — never silently corrupt results.

use het_mpc::prelude::*;
use mpc_graph::mst::kruskal;
use mpc_runtime::ModelViolation;
use rand::RngCore;

/// A cluster whose small machines are far too small for the workload.
fn starved_cluster(g: &Graph) -> ClusterConfig {
    ClusterConfig::new(g.n(), g.m())
        .mem_constant(0.2) // 30x below the default budget
        .seed(1)
}

/// Runs the registry `mst` on a default cluster, returning the result and
/// the cluster for inspection.
fn run_mst(g: &Graph, seed: u64, plan: Option<FaultPlan>, mode: ExecMode) -> (u128, Vec<u64>) {
    let polylog = registry::get("mst").expect("registered").polylog_exponent;
    let mut cluster = Cluster::new(
        ClusterConfig::new(g.n(), g.m())
            .seed(seed)
            .polylog_exponent(polylog),
    );
    let edges = common::distribute_edges(&cluster, g);
    cluster.set_fault_plan(plan);
    let input = AlgoInput::new(g.n(), &edges);
    let out = registry::run("mst", &mut cluster, &input, mode).expect("mst run");
    let draws = cluster
        .rngs_mut()
        .iter_mut()
        .map(RngCore::next_u64)
        .collect();
    (out.digest(), draws)
}

#[test]
fn strict_mode_reports_the_offending_exchange() {
    let g = generators::gnm(256, 4096, 1).with_random_weights(1 << 16, 1);
    let mut cluster = Cluster::new(starved_cluster(&g).enforcement(Enforcement::Strict));
    let edges = common::distribute_edges(&cluster, &g);
    let input = AlgoInput::new(g.n(), &edges);
    match registry::run("mst", &mut cluster, &input, ExecMode::Serial) {
        Err(ExecError::Model(v)) => {
            // The violation names a machine, a round, and a labeled step.
            let s = v.to_string();
            assert!(s.contains("machine"), "uninformative violation: {s}");
            assert!(s.contains("round"), "uninformative violation: {s}");
        }
        Err(other) => panic!("expected a model violation, got {other}"),
        Ok(_) => panic!("a starved cluster must not succeed in strict mode"),
    }
}

#[test]
fn record_mode_still_computes_the_right_answer() {
    let g = generators::gnm(256, 4096, 1).with_random_weights(1 << 16, 1);
    let mut cluster = Cluster::new(starved_cluster(&g).enforcement(Enforcement::Record));
    let edges = common::distribute_edges(&cluster, &g);
    let input = AlgoInput::new(g.n(), &edges);
    let out = registry::run("mst", &mut cluster, &input, ExecMode::Serial).unwrap();
    let r = out.into_mst().expect("mst output");
    assert_eq!(r.forest.total_weight, kruskal(&g).total_weight);
    assert!(
        !cluster.violations().is_empty(),
        "a starved cluster must record violations"
    );
}

#[test]
fn unknown_destination_fails_in_every_mode() {
    for e in [Enforcement::Strict, Enforcement::Record, Enforcement::Off] {
        let mut cluster = Cluster::new(
            ClusterConfig::new(16, 32)
                .topology(Topology::Custom {
                    capacities: vec![10, 10],
                    large: None,
                })
                .enforcement(e),
        );
        let mut out = cluster.empty_outboxes::<u64>();
        out[0].push((7, 1)); // machine 7 does not exist
        assert!(matches!(
            cluster.exchange("bad", out),
            Err(ModelViolation::UnknownMachine { .. })
        ));
    }
}

#[test]
fn memory_accounting_catches_oversized_state() {
    let mut cluster = Cluster::new(ClusterConfig::new(16, 32).topology(Topology::Custom {
        capacities: vec![100, 20],
        large: Some(0),
    }));
    assert!(cluster.account("big", 1, 19).is_ok());
    let err = cluster.account("more", 1, 5).unwrap_err();
    assert!(matches!(
        err,
        ModelViolation::MemoryOverflow { machine: 1, .. }
    ));
}

#[test]
fn adversarial_layout_does_not_change_results() {
    use mpc_graph::distribution::Layout;
    // Contiguous layout: all of a vertex's edges can sit on one machine —
    // the worst case for the hash-owner primitives' balance assumptions.
    let g = generators::gnm(200, 3000, 9).with_random_weights(1 << 16, 9);
    let mut results = Vec::new();
    for layout in [Layout::RoundRobin, Layout::Contiguous, Layout::Random(5)] {
        let polylog = registry::get("mst").expect("registered").polylog_exponent;
        let mut cluster = Cluster::new(
            ClusterConfig::new(g.n(), g.m())
                .seed(9)
                .polylog_exponent(polylog),
        );
        let edges = common::distribute_edges_with(&cluster, &g, layout);
        let input = AlgoInput::new(g.n(), &edges);
        let out = registry::run("mst", &mut cluster, &input, ExecMode::Serial).unwrap();
        let r = out.into_mst().expect("mst output");
        results.push(r.forest.total_weight);
    }
    assert_eq!(results[0], kruskal(&g).total_weight);
    assert!(results.windows(2).all(|w| w[0] == w[1]));
}

#[test]
fn mid_run_crash_recovers_bit_identically_in_serial_mode() {
    let g = generators::gnm(200, 2400, 4).with_random_weights(1 << 16, 4);
    let (clean_digest, clean_draws) = run_mst(&g, 4, None, ExecMode::Serial);
    for seed in 0..3 {
        // Different seeds pick different crash victims among the smalls.
        let plan = FaultPlan::seeded_single_crash(seed, &[1, 2, 3, 4, 5], 30);
        let (digest, draws) = run_mst(&g, 4, Some(plan), ExecMode::Serial);
        assert_eq!(digest, clean_digest, "crash seed {seed} changed the MST");
        assert_eq!(draws, clean_draws, "crash seed {seed} moved RNG streams");
    }
}

#[test]
fn mid_run_crash_recovers_bit_identically_across_pool_sizes() {
    let g = generators::gnm(200, 2400, 8).with_random_weights(1 << 16, 8);
    let (clean_digest, clean_draws) = run_mst(&g, 8, None, ExecMode::Serial);
    let plan = FaultPlan::seeded_single_crash(8, &[1, 2, 3, 4, 5], 30);

    // The registry's parallel path sizes its pool from MPC_POOL_THREADS
    // (the knob CI's thread matrix turns). Pool width must never affect
    // results — with or without a fault plan — so pinning it here only
    // perturbs scheduling for any concurrently running test, never
    // outcomes.
    for threads in [1usize, 3, 16] {
        std::env::set_var("MPC_POOL_THREADS", threads.to_string());
        let (digest, draws) = run_mst(&g, 8, Some(plan.clone()), ExecMode::Parallel);
        assert_eq!(
            digest, clean_digest,
            "{threads}-thread pool diverged under recovery"
        );
        assert_eq!(
            draws, clean_draws,
            "{threads}-thread pool moved RNG streams"
        );
    }
    std::env::remove_var("MPC_POOL_THREADS");
}
