//! The paper's motivating example (§1): the "1-vs-2 cycles" problem.
//!
//! ```text
//! cargo run --example two_vs_one_cycle --release
//! ```
//!
//! Conjecturally, distinguishing one n-cycle from two n/2-cycles needs
//! Ω(log n) rounds in sublinear MPC — yet a *single* near-linear machine
//! makes it trivial. This example measures both: the heterogeneous solver
//! (AGM sketches + one local Borůvka, O(1) rounds) against the sublinear
//! baseline (hooking + pointer jumping, rounds growing with n).

use het_mpc::prelude::*;
use mpc_baselines::sublinear::{distribute_all, sublinear_config, two_vs_one_cycle_baseline};
use mpc_core::ported::connectivity::sketch_friendly_config;

fn main() {
    println!(
        "{:>6} | {:>18} | {:>18}",
        "n", "heterogeneous", "sublinear baseline"
    );
    println!("{:->6}-+-{:->18}-+-{:->18}", "", "", "");
    for exp in [6usize, 7, 8, 9] {
        let n = 1 << exp;
        let mut het_rounds = 0;
        let mut sub_rounds = 0;
        for (label, g) in [
            ("one", generators::cycle(n, exp as u64)),
            ("two", generators::two_cycles(n, exp as u64)),
        ] {
            // Heterogeneous: O(1) rounds via linear sketches, on the
            // parallel engine through the Algorithm registry — "one cycle"
            // iff the component count is 1.
            let mut cluster = Cluster::new(sketch_friendly_config(n, n, 1));
            let input = common::distribute_edges(&cluster, &g);
            let single = registry::run(
                "connectivity",
                &mut cluster,
                &AlgoInput::new(n, &input),
                ExecMode::Parallel,
            )
            .unwrap()
            .into_components()
            .unwrap()
            .count
                == 1;
            assert_eq!(
                single,
                label == "one",
                "het solver wrong on {label}-cycle n={n}"
            );
            het_rounds = het_rounds.max(cluster.rounds());

            // Sublinear baseline: label contraction, rounds grow with n.
            let gw = g.with_random_weights(1 << 10, 3);
            let mut cluster = Cluster::new(sublinear_config(n, n, 1));
            let input = distribute_all(&cluster, &gw);
            let single = two_vs_one_cycle_baseline(&mut cluster, n, &input).unwrap();
            assert_eq!(
                single,
                label == "one",
                "baseline wrong on {label}-cycle n={n}"
            );
            sub_rounds = sub_rounds.max(cluster.rounds());
        }
        println!(
            "{n:>6} | {:>11} rounds | {:>11} rounds",
            het_rounds, sub_rounds
        );
    }
    println!();
    println!("The heterogeneous column stays flat; the sublinear column grows —");
    println!("one near-linear machine dissolves the conjectured Ω(log n) barrier.");
}
