//! Quickstart: exact MST on a heterogeneous cluster, end to end.
//!
//! ```text
//! cargo run --example quickstart
//! ```
//!
//! Builds a random weighted graph, spins up the paper's heterogeneous MPC
//! model (one near-linear machine, many sublinear machines), runs the
//! O(log log(m/n))-round MST algorithm of §3 under strict capacity
//! enforcement, and verifies the answer against sequential Kruskal.

use het_mpc::prelude::*;
use mpc_graph::mst::kruskal;

fn main() {
    let n = 1 << 10;
    let m = n * 32;
    let g = generators::gnm(n, m, 7).with_random_weights(1 << 20, 7);
    println!("input: n = {n}, m = {m}, m/n = {}", m / n);

    let mut cluster = Cluster::new(ClusterConfig::new(n, m).seed(7));
    println!(
        "cluster: {} machines (large: {:?}), small capacity {} words, large capacity {} words",
        cluster.machines(),
        cluster.large(),
        cluster.min_small_capacity(),
        cluster.capacity(cluster.large().unwrap()),
    );

    let input = common::distribute_edges(&cluster, &g);
    let result = mst::heterogeneous_mst(&mut cluster, n, input).expect("strict-mode run");

    println!(
        "MST: {} edges, total weight {}",
        result.forest.len(),
        result.forest.total_weight
    );
    println!(
        "rounds: {} (Borůvka steps: {}, contraction trace: {:?})",
        cluster.rounds(),
        result.stats.boruvka_steps,
        result.stats.contraction_trace
    );
    println!(
        "peak traffic in any round: {} words; violations: {}",
        cluster.max_round_traffic(),
        cluster.violations().len()
    );

    let reference = kruskal(&g);
    assert_eq!(result.forest.total_weight, reference.total_weight);
    println!("verified: weight matches sequential Kruskal ✓");
}
