//! Quickstart: exact MST on a heterogeneous cluster, end to end, through
//! the execution engine's Algorithm registry.
//!
//! ```text
//! cargo run --example quickstart
//! ```
//!
//! Builds a random weighted graph, spins up the paper's heterogeneous MPC
//! model (one near-linear machine, many sublinear machines), runs the
//! O(log log(m/n))-round MST algorithm of §3 on the **parallel worker
//! pool** (`ExecMode::Parallel`) under strict capacity enforcement, and
//! verifies the answer against sequential Kruskal. The same
//! `registry::run` call with `ExecMode::Serial` produces bit-identical
//! results, round logs, and RNG streams.

use het_mpc::prelude::*;
use mpc_graph::mst::kruskal;

fn main() {
    let n = 1 << 10;
    let m = n * 32;
    let g = generators::gnm(n, m, 7).with_random_weights(1 << 20, 7);
    println!("input: n = {n}, m = {m}, m/n = {}", m / n);

    let mut cluster = Cluster::new(ClusterConfig::new(n, m).seed(7));
    println!(
        "cluster: {} machines (large: {:?}), small capacity {} words, large capacity {} words",
        cluster.machines(),
        cluster.large(),
        cluster.min_small_capacity(),
        cluster.capacity(cluster.large().unwrap()),
    );

    let input = common::distribute_edges(&cluster, &g);
    let result = registry::run(
        "mst",
        &mut cluster,
        &AlgoInput::new(n, &input),
        ExecMode::Parallel,
    )
    .expect("strict-mode run")
    .into_mst()
    .expect("mst output");

    println!(
        "MST: {} edges, total weight {}",
        result.forest.len(),
        result.forest.total_weight
    );
    println!(
        "rounds: {} (Borůvka steps: {}, contraction trace: {:?})",
        cluster.rounds(),
        result.stats.boruvka_steps,
        result.stats.contraction_trace
    );
    println!(
        "peak traffic in any round: {} words; violations: {}; \
         simulated critical path {:.1}s",
        cluster.max_round_traffic(),
        cluster.violations().len(),
        cluster.critical_path_seconds(),
    );

    let reference = kruskal(&g);
    assert_eq!(result.forest.total_weight, reference.total_weight);
    println!("verified: weight matches sequential Kruskal ✓");
}
