//! Distance oracle for a router-like network (Corollary 4.2).
//!
//! ```text
//! cargo run --example network_apsp --release
//! ```
//!
//! A power-law "autonomous systems" topology is too big to search from
//! every source on one worker — but a `O(log n)`-spanner of size Õ(n) fits
//! on the large machine, which then answers arbitrary distance queries
//! locally with zero further communication. This example builds the oracle
//! in O(1) rounds and compares its answers against exact Dijkstra.

use het_mpc::prelude::*;
use mpc_core::spanner::apsp;

fn main() {
    let n = 600;
    let g = generators::chung_lu(n, n * 6, 2.4, 11);
    println!(
        "network: n = {}, m = {}, max degree = {}, avg degree = {:.1}",
        g.n(),
        g.m(),
        g.max_degree(),
        g.average_degree()
    );

    let (oracle, rounds) = apsp::oracle_for_graph(&g, 11).expect("oracle build");
    println!(
        "oracle: spanner of {} edges ({}x sparser), stretch bound {}, built in {rounds} rounds",
        oracle.spanner().m(),
        (g.m() as f64 / oracle.spanner().m().max(1) as f64).round(),
        oracle.stretch_bound,
    );

    // Query a few pairs and compare with the exact distances.
    let adj = g.adjacency();
    let mut worst: f64 = 1.0;
    let mut shown = 0;
    for s in [0u32, 17, 101, 311] {
        let exact = mpc_graph::traversal::dijkstra(&adj, s);
        let approx = oracle.distances_from(s);
        for t in [5u32, 50, 250, 500] {
            if s == t || exact[t as usize] == mpc_graph::traversal::UNREACHABLE {
                continue;
            }
            let ratio = approx[t as usize] as f64 / exact[t as usize] as f64;
            worst = worst.max(ratio);
            if shown < 6 {
                println!(
                    "  dist({s:>3}, {t:>3}) exact {:>2}, oracle {:>2}  (stretch {:.2})",
                    exact[t as usize], approx[t as usize], ratio
                );
                shown += 1;
            }
        }
    }
    let measured = apsp::measured_stretch(&g, &oracle, 24);
    println!(
        "worst stretch over sampled sources: {measured:.2} (bound {})",
        oracle.stretch_bound
    );
    assert!(worst <= oracle.stretch_bound as f64);
    println!("within the O(log n) guarantee ✓");
}
