//! Reliability analysis of a datacenter-like topology (Appendix C.2/C.3).
//!
//! ```text
//! cargo run --example datacenter_cuts --release
//! ```
//!
//! Two dense "availability zones" joined by a handful of cross-zone links:
//! the minimum cut — how many link failures disconnect the zones — is the
//! quantity a reliability engineer wants. The exact unweighted min-cut port
//! (2-out contraction) finds it in O(1) rounds; the weighted (1±ε)
//! estimator prices in link capacities.

use het_mpc::prelude::*;

fn main() {
    // 2 zones of 48 racks, dense inside, 5 cross-zone links.
    let g = generators::planted_cut(48, 0.35, 5, 2026);
    println!(
        "topology: n = {}, m = {}, two zones with 5 cross-links",
        g.n(),
        g.m()
    );

    // Exact unweighted min cut (Theorem C.3), on the parallel engine
    // through the Algorithm registry.
    let mut cluster = Cluster::new(ClusterConfig::new(g.n(), g.m()).seed(1));
    let input = common::distribute_edges(&cluster, &g);
    let exact = registry::run(
        "mincut",
        &mut cluster,
        &AlgoInput::new(g.n(), &input).mincut_trials(8),
        ExecMode::Parallel,
    )
    .unwrap()
    .into_mincut()
    .unwrap();
    let reference = mpc_graph::mincut::min_cut(&g).unwrap();
    println!(
        "exact min cut: {} link failures disconnect the zones ({} rounds, 8 trials)",
        exact.value,
        cluster.rounds()
    );
    assert_eq!(exact.value, reference.weight, "must match Stoer–Wagner");

    // Weighted capacities: cross-links get capacity 1..8. Every λ̂ guess
    // of the Theorem C.4 estimator runs interleaved through the
    // multi-program scheduler, so the measured rounds are the paper's
    // parallel figure.
    let gw = g.clone().with_random_weights(8, 7);
    let exact_w = mpc_graph::mincut::min_cut(&gw).unwrap().weight as f64;
    let mut cluster = Cluster::new(
        ClusterConfig::new(gw.n(), gw.m())
            .seed(2)
            .polylog_exponent(1.6),
    );
    let input = common::distribute_edges(&cluster, &gw);
    let approx = registry::run(
        "mincut-approx",
        &mut cluster,
        &AlgoInput::new(gw.n(), &input).epsilon(0.3),
        ExecMode::Parallel,
    )
    .unwrap()
    .into_mincut_approx()
    .unwrap();
    println!(
        "capacity min cut: ≈{:.1} (exact {exact_w:.0}), skeleton of {} edges, {} rounds (batched)",
        approx.estimate,
        approx.skeleton_edges,
        cluster.rounds()
    );

    // Contraction diagnostics: how hard did the 2-out step shrink things?
    for (i, (nv, ne)) in exact.trial_sizes.iter().enumerate().take(3) {
        println!("  trial {i}: contracted to {nv} vertices / {ne} distinct pairs");
    }
    println!("reliability analysis complete ✓");
}
