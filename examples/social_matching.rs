//! Maximal matching on a skewed "social" graph (§5, Theorem 5.1).
//!
//! ```text
//! cargo run --example social_matching --release
//! ```
//!
//! Power-law graphs have a few hub vertices of enormous degree but a small
//! *average* degree d. The heterogeneous three-phase algorithm's rounds
//! track d alone: the small machines match the low-degree part, the large
//! machine absorbs the hubs from 2d·log n random incident edges each, and
//! the leftovers fit on the large machine. The sublinear baseline peels the
//! whole graph instead and pays rounds growing with n.

use het_mpc::prelude::*;
use mpc_baselines::sublinear::{distribute_all, sublinear_config, sublinear_matching};
use mpc_graph::matching::is_maximal_matching;

fn main() {
    println!(
        "{:>6} {:>8} {:>6} | {:>14} | {:>14}",
        "n", "m", "Δ", "het rounds", "sublinear rounds"
    );
    for exp in [8usize, 9, 10] {
        let n = 1 << exp;
        let g = generators::chung_lu(n, n * 4, 2.3, exp as u64);

        // Heterogeneous three-phase matching.
        let mut het = Cluster::new(ClusterConfig::new(g.n(), g.m()).seed(5));
        let input = common::distribute_edges(&het, &g);
        let r = matching::heterogeneous_matching(&mut het, g.n(), &input).unwrap();
        assert!(is_maximal_matching(&g, &r.matching));

        // Sublinear peeling baseline.
        let mut sub = Cluster::new(sublinear_config(g.n(), g.m(), 5));
        let input = distribute_all(&sub, &g);
        let (m2, _) = sublinear_matching(&mut sub, &input).unwrap();
        assert!(is_maximal_matching(&g, &m2));

        println!(
            "{:>6} {:>8} {:>6} | {:>8} rounds | {:>8} rounds   (high-degree hubs: {}, phases: p1={} p2={} p3={})",
            g.n(),
            g.m(),
            g.max_degree(),
            het.rounds(),
            sub.rounds(),
            r.stats.high_vertices,
            r.stats.m1,
            r.stats.m2,
            r.stats.m3,
        );
    }
    println!();
    println!("Heterogeneous rounds follow the (constant) average degree; the");
    println!("baseline follows the full graph — the §5 separation in action.");
}
