//! The execution engine from a consumer's seat: every registered
//! algorithm, driven through `registry::run` on the parallel worker pool,
//! on a cluster with a straggler cost model.
//!
//! For each algorithm the demo prints the exchange rounds consumed, the
//! simulated critical path (sum of per-round makespans under the cost
//! model — the quantity the round-counting model cannot see), and where
//! the makespan went, grouped by exchange label.
//!
//! ```text
//! cargo run --release --example engine_demo
//! ```

use het_mpc::prelude::*;

fn main() {
    let g = generators::gnm(256, 2048, 42).with_random_weights(1 << 16, 42);
    println!(
        "input: n = {}, m = {}; running every registered algorithm in \
         ExecMode::Parallel\n",
        g.n(),
        g.m()
    );

    for algo in registry::algorithms() {
        // Every algorithm declares the polylog capacity headroom its
        // traffic honestly needs (sketches, conflict edges, ...), so new
        // registrations get a suitable cluster without edits here.
        let config = ClusterConfig::new(g.n(), g.m())
            .seed(42)
            .polylog_exponent(algo.polylog_exponent);
        let mut cluster = Cluster::new(config);
        // One small machine runs at 5% speed — watch the critical path.
        let straggler = cluster.small_ids()[0];
        let model =
            CostModel::uniform(cluster.machines(), 1.0, 1.0, 0.5).with_straggler(straggler, 0.05);
        cluster.set_cost_model(model);

        let edges = common::distribute_edges(&cluster, &g);
        let input = AlgoInput::new(g.n(), &edges);
        let outcome = registry::run(algo.name, &mut cluster, &input, ExecMode::Parallel)
            .expect("registered algorithm run");

        let result_line = match outcome {
            AlgoOutput::Components(c) => format!("{} components", c.count),
            AlgoOutput::Forest(f) => format!("MSF weight {}", f.total_weight),
            AlgoOutput::Mst(r) => format!(
                "MST weight {} ({} Borůvka waves)",
                r.forest.total_weight, r.stats.boruvka_steps
            ),
            AlgoOutput::Matching(r) => format!(
                "maximal matching of {} edges ({} peeling iterations)",
                r.matching.len(),
                r.stats.phase1_iterations
            ),
            AlgoOutput::Spanner(r) => format!(
                "spanner with {} of {} edges ({} levels)",
                r.spanner.m(),
                g.m(),
                r.stats.levels
            ),
            AlgoOutput::Apsp { oracle, spanner } => format!(
                "APSP oracle with stretch ≤ {} over a {}-edge spanner (d(0,1) = {})",
                oracle.stretch_bound,
                spanner.spanner.m(),
                oracle.distance(0, 1)
            ),
            AlgoOutput::MstApprox(r) => format!(
                "MST weight ≈ {:.0} ({} thresholds, {} parallel rounds)",
                r.estimate,
                r.thresholds.len(),
                r.parallel_rounds
            ),
            AlgoOutput::MinCut(r) => format!(
                "min cut {} ({}, {} trials)",
                r.value,
                if r.singleton {
                    "singleton"
                } else {
                    "contracted"
                },
                r.trial_sizes.len()
            ),
            AlgoOutput::MinCutApprox(r) => format!(
                "min cut ≈ {:.1} (λ̂ = {}, {} skeleton edges)",
                r.estimate, r.lambda_guess, r.skeleton_edges
            ),
            AlgoOutput::Mis(r) => format!(
                "maximal independent set of {} vertices ({} iterations)",
                r.mis.len(),
                r.iterations
            ),
            AlgoOutput::Coloring(r) => format!(
                "proper coloring with {} conflict edges ({} restarts)",
                r.conflict_edges, r.restarts
            ),
        };

        println!(
            "## {} — {} ({})\n   {}\n   rounds: {}, simulated critical path: {:.1}s \
             (straggler machine {} at 5% speed)",
            algo.name,
            algo.summary,
            algo.paper,
            result_line,
            cluster.rounds(),
            cluster.critical_path_seconds(),
            straggler,
        );
        // Where did the makespan go? Top exchange-label groups.
        let mut summary = cluster.round_summary();
        summary.sort_by(|a, b| b.makespan.partial_cmp(&a.makespan).unwrap());
        for group in summary.iter().take(3) {
            println!(
                "   {:<12} {:>4} rounds {:>8} words {:>9.1}s makespan",
                group.label, group.rounds, group.total_words, group.makespan
            );
        }
        println!();
    }
}
