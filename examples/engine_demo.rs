//! The execution engine from a consumer's seat: a custom
//! [`MachineProgram`] (not one of the built-in ports) driven serially and
//! in parallel, on a cluster with a straggler cost model.
//!
//! The program is a two-round census: every small machine reports its
//! shard size to the large machine, which totals them. Run with:
//!
//! ```text
//! cargo run --release --example engine_demo
//! ```

use het_mpc::prelude::*;
use het_mpc::runtime::MachineId;

/// Per-machine state: my shard size, and (on the large machine) the total.
struct CensusProgram {
    local_items: u64,
    total: Option<u64>,
}

impl MachineProgram for CensusProgram {
    type Message = u64;

    fn step(
        &mut self,
        ctx: &het_mpc::exec::MachineCtx<'_>,
        inbox: Vec<(MachineId, u64)>,
    ) -> StepOutcome<u64> {
        match ctx.round {
            0 => {
                if ctx.is_large() {
                    return StepOutcome::idle();
                }
                let large = ctx.large.expect("census needs a large machine");
                StepOutcome::Send(vec![(large, self.local_items)])
            }
            _ => {
                if ctx.is_large() {
                    self.total = Some(inbox.iter().map(|(_, c)| c).sum());
                }
                StepOutcome::Halt
            }
        }
    }
}

fn main() {
    let g = generators::gnm(256, 2048, 42);
    for mode in [ExecMode::Serial, ExecMode::Parallel] {
        let mut cluster = Cluster::new(ClusterConfig::new(g.n(), g.m()).seed(42));
        // One small machine runs at 5% speed — watch the critical path.
        let straggler = cluster.small_ids()[0];
        let model =
            CostModel::uniform(cluster.machines(), 1.0, 1.0, 0.5).with_straggler(straggler, 0.05);
        cluster.set_cost_model(model);

        let edges = het_mpc::core::common::distribute_edges(&cluster, &g);
        let programs: Vec<CensusProgram> = (0..cluster.machines())
            .map(|mid| CensusProgram {
                local_items: edges.shard(mid).len() as u64,
                total: None,
            })
            .collect();

        let outcome = Executor::new("census", mode)
            .run(&mut cluster, programs)
            .expect("census run");
        let large = cluster.large().unwrap();
        let total = outcome.programs[large]
            .total
            .expect("large totals the census");
        assert_eq!(total, g.m() as u64, "census must count every edge");

        println!(
            "{mode:?}: counted {total} edges on {} machines in {} round(s), \
             wall {:?}, simulated critical path {:.1}s (straggler machine {straggler})",
            cluster.machines(),
            outcome.rounds,
            outcome.wall,
            cluster.critical_path_seconds(),
        );
        for rec in cluster.round_log() {
            println!(
                "  round {:<12} words={:<4} work={:<4} makespan={:.1}s",
                rec.label, rec.total_words, rec.total_work, rec.makespan
            );
        }
    }
}
