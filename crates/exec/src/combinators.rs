//! The program-driver combinator layer: the phase-sequencing boilerplate
//! every ported algorithm shares, factored out of the individual programs.
//!
//! The coordinator-style ports — the flagships
//! ([`MstProgram`](crate::programs::MstProgram),
//! [`MatchingProgram`](crate::programs::MatchingProgram),
//! [`SpannerProgram`](crate::programs::SpannerProgram)) and the Appendix-C
//! algorithms ([`MisProgram`](crate::programs::MisProgram),
//! [`ColoringProgram`](crate::programs::ColoringProgram),
//! [`MinCutProgram`](crate::programs::MinCutProgram),
//! [`MinCutApproxProgram`](crate::programs::MinCutApproxProgram),
//! [`MstApproxProgram`](crate::programs::MstApproxProgram)) — all follow
//! the same shape:
//!
//! * the **large machine** drives the phase sequence (it is the only
//!   machine with the global view the legacy orchestrator had);
//! * the **small machines** double as workers and hash-**owners** of keys
//!   (vertices, edge pairs), exactly like the legacy primitives'
//!   owner-partitioning;
//! * owners remember who *announced* a key so replies flow back only to the
//!   machines that asked — the paper's owner-directed exchange.
//!
//! The pieces here — [`Owners`], [`Outbox`], [`Announcers`], [`fold_best`],
//! [`truncate_top`], and the [`RoleProgram`]/[`Driven`] dispatch wrapper —
//! are that shape as reusable data. A program implements `large_step` /
//! `small_step` and the driver wrapper turns it into a
//! [`MachineProgram`] the [`Executor`](crate::Executor) can run.

use crate::machine::{MachineCtx, MachineProgram, StepOutcome};
use mpc_graph::{Edge, VertexId};
use mpc_runtime::primitives::{owner_of, HashKey};
use mpc_runtime::{Cluster, MachineId, Payload};
use std::collections::BTreeMap;

/// The hash-owner table: all small machines, with deterministic
/// [`HashKey`]-based key placement (identical to the legacy primitives'
/// `owner_of`, so owner shards match the legacy paths bit-for-bit).
#[derive(Clone, Debug)]
pub struct Owners {
    ids: Vec<MachineId>,
}

impl Owners {
    /// The owner table of a cluster (all non-large machines).
    pub fn of_cluster(cluster: &Cluster) -> Self {
        Owners {
            ids: cluster.small_ids(),
        }
    }

    /// The owner machine of `key`.
    pub fn of<K: HashKey>(&self, key: &K) -> MachineId {
        owner_of(key, &self.ids)
    }

    /// The *group collector* of `key` for a sender in `group`: the
    /// intermediate machine of the legacy primitives' two-stage
    /// aggregation (Claims 2 and 4). A key stored on many machines
    /// converges on `≤ ⌈K/√K⌉` collectors before its owner sees it, so no
    /// single machine ever receives a hot key's full multiplicity — the
    /// same `(key, sender-group)` mixing formula as
    /// [`aggregate_by_key`](mpc_runtime::primitives::aggregate_by_key).
    pub fn collector_of<K: HashKey>(&self, key: &K, group: u64) -> MachineId {
        let idx = (key
            .hash64()
            .wrapping_add(group.wrapping_mul(0x9e37_79b9_7f4a_7c15))
            % self.ids.len() as u64) as usize;
        self.ids[idx]
    }

    /// All owner machine ids, ascending.
    pub fn ids(&self) -> &[MachineId] {
        &self.ids
    }
}

/// The sender group of machine `mid` in a `machines`-machine cluster:
/// `⌈√K⌉` consecutive machines share a collector group (the legacy
/// primitives' grouping).
pub fn sender_group(mid: MachineId, machines: usize) -> u64 {
    let group = (machines as f64).sqrt().ceil() as usize;
    (mid / group.max(1)) as u64
}

/// An outbox under construction: the `Vec<(destination, message)>` every
/// step builds, with the common routing patterns as methods.
#[derive(Clone, Debug)]
pub struct Outbox<M> {
    msgs: Vec<(MachineId, M)>,
}

impl<M> Default for Outbox<M> {
    fn default() -> Self {
        Outbox::new()
    }
}

impl<M> Outbox<M> {
    /// An empty outbox.
    pub fn new() -> Self {
        Outbox { msgs: Vec::new() }
    }

    /// Queues one message.
    pub fn send(&mut self, to: MachineId, msg: M) {
        self.msgs.push((to, msg));
    }

    /// Queues `msg` to every machine in `to` (the large machine's command
    /// broadcast).
    pub fn broadcast(&mut self, to: impl IntoIterator<Item = MachineId>, msg: M)
    where
        M: Clone,
    {
        for mid in to {
            self.msgs.push((mid, msg.clone()));
        }
    }

    /// Whether nothing was queued.
    pub fn is_empty(&self) -> bool {
        self.msgs.is_empty()
    }

    /// Finishes the step, staying active.
    pub fn into_step(self) -> StepOutcome<M> {
        StepOutcome::Send(self.msgs)
    }
}

/// Key → announcing machines, in ascending machine order: the routing
/// table an owner builds while aggregating announcements, so later replies
/// (renames, minima, flags) reach exactly the machines that hold the key.
#[derive(Clone, Debug)]
pub struct Announcers<K: Ord> {
    map: BTreeMap<K, Vec<MachineId>>,
}

impl<K: Ord> Default for Announcers<K> {
    fn default() -> Self {
        Announcers {
            map: BTreeMap::new(),
        }
    }
}

impl<K: Ord> Announcers<K> {
    /// Records that `src` announced `key`. Inbox order is ascending by
    /// source, so adjacent deduplication keeps each machine once.
    pub fn note(&mut self, key: K, src: MachineId) {
        let v = self.map.entry(key).or_default();
        if v.last() != Some(&src) {
            v.push(src);
        }
    }

    /// The machines that announced `key`.
    pub fn get(&self, key: &K) -> Option<&[MachineId]> {
        self.map.get(key).map(Vec::as_slice)
    }

    /// Drains the table (typically once per wave).
    pub fn take(&mut self) -> BTreeMap<K, Vec<MachineId>> {
        std::mem::take(&mut self.map)
    }

    /// Whether no announcements are recorded.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }
}

/// The round-0 degree kickoff every Appendix-C port shares: counts this
/// shard's partial degree per endpoint and queues one `make(v, count)`
/// message to each endpoint's hash-owner. Returns the partial-count map so
/// callers can piggyback further per-endpoint announcements (rank
/// requests, owner registrations) on the same keys.
pub fn announce_degrees<M>(
    out: &mut Outbox<M>,
    owners: &Owners,
    edges: &[Edge],
    make: impl Fn(VertexId, u32) -> M,
) -> BTreeMap<VertexId, u32> {
    let mut partial: BTreeMap<VertexId, u32> = BTreeMap::new();
    for e in edges {
        *partial.entry(e.u).or_default() += 1;
        *partial.entry(e.v).or_default() += 1;
    }
    for (&v, &c) in &partial {
        out.send(owners.of(&v), make(v, c));
    }
    partial
}

/// Folds `(key, value)` into an accumulator keeping the better value under
/// `better` (a strict "is left better than right" predicate) — the
/// owner-side aggregation step (per-vertex minimum rank, lightest parallel
/// edge, ...). Associative and commutative whenever `better` is a total
/// order without ties, which is what makes owner aggregation
/// schedule-independent.
pub fn fold_best<K: Ord, V>(
    map: &mut BTreeMap<K, V>,
    key: K,
    value: V,
    better: impl Fn(&V, &V) -> bool,
) {
    match map.get_mut(&key) {
        Some(cur) => {
            if better(&value, cur) {
                *cur = value;
            }
        }
        None => {
            map.insert(key, value);
        }
    }
}

/// Sorts every group ascending by `rank` and truncates it to `t` items —
/// the local/owner/destination truncation stage of the paper's Claim-4
/// top-`t` selection. Truncating at every stage preserves the global
/// top-`t` because a globally-top item is locally-top wherever it appears.
pub fn truncate_top<K, T, R: Ord>(
    groups: &mut BTreeMap<K, Vec<T>>,
    t: usize,
    rank: impl Fn(&T) -> R,
) {
    for vs in groups.values_mut() {
        vs.sort_by_key(&rank);
        vs.truncate(t.max(1));
    }
}

/// A program written as two role-specific step functions — the coordinator
/// pattern all flagship ports share. [`Driven`] lifts it to a
/// [`MachineProgram`].
pub trait RoleProgram: Send {
    /// The message type this program exchanges.
    type Message: Payload + Send;

    /// One round on the large machine (the coordinator).
    fn large_step(
        &mut self,
        ctx: &MachineCtx<'_>,
        inbox: Vec<(MachineId, Self::Message)>,
    ) -> StepOutcome<Self::Message>;

    /// One round on a small machine (worker + owner).
    fn small_step(
        &mut self,
        ctx: &MachineCtx<'_>,
        inbox: Vec<(MachineId, Self::Message)>,
    ) -> StepOutcome<Self::Message>;

    /// See [`MachineProgram::snapshot`]: a checkpointable deep copy, or
    /// `None` (the default) for programs that opt out of recovery.
    fn snapshot(&self) -> Option<Self>
    where
        Self: Sized,
    {
        None
    }

    /// See [`MachineProgram::state_words`].
    fn state_words(&self) -> usize {
        1
    }
}

/// The driver wrapper: dispatches each step to the machine's role. This is
/// the shared "ProgramDriver" — halt/reactivate and outcome packing live in
/// the [`Executor`](crate::Executor); role dispatch and the combinator
/// vocabulary live here; the program itself is pure algorithm state.
pub struct Driven<P>(pub P);

impl<P: RoleProgram> MachineProgram for Driven<P> {
    type Message = P::Message;

    fn step(
        &mut self,
        ctx: &MachineCtx<'_>,
        inbox: Vec<(MachineId, Self::Message)>,
    ) -> StepOutcome<Self::Message> {
        if ctx.is_large() {
            self.0.large_step(ctx, inbox)
        } else {
            self.0.small_step(ctx, inbox)
        }
    }

    fn snapshot(&self) -> Option<Self> {
        self.0.snapshot().map(Driven)
    }

    fn state_words(&self) -> usize {
        self.0.state_words()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn announcers_dedup_adjacent_sources() {
        let mut a: Announcers<u32> = Announcers::default();
        a.note(7, 1);
        a.note(7, 1);
        a.note(7, 3);
        a.note(9, 2);
        assert_eq!(a.get(&7), Some(&[1usize, 3][..]));
        assert_eq!(a.get(&9), Some(&[2usize][..]));
        let taken = a.take();
        assert_eq!(taken.len(), 2);
        assert!(a.is_empty());
    }

    #[test]
    fn fold_best_keeps_minimum() {
        let mut m: BTreeMap<u32, u64> = BTreeMap::new();
        fold_best(&mut m, 1, 10, |a, b| a < b);
        fold_best(&mut m, 1, 5, |a, b| a < b);
        fold_best(&mut m, 1, 7, |a, b| a < b);
        assert_eq!(m[&1], 5);
    }

    #[test]
    fn truncate_top_is_sorted_prefix() {
        let mut g: BTreeMap<u32, Vec<u64>> = BTreeMap::new();
        g.insert(0, vec![9, 3, 7, 1]);
        truncate_top(&mut g, 2, |x| *x);
        assert_eq!(g[&0], vec![1, 3]);
    }
}
