//! Post-run analysis: the [`RunReport`] — per-machine load attribution,
//! load-imbalance ratios, a critical-path breakdown, and a straggler
//! ranking, built entirely from the telemetry event stream.
//!
//! [`registry::run_with_report`](crate::registry::run_with_report) attaches
//! an unbounded ring sink for the duration of one registry run (composing
//! with any sink the caller already installed), then folds the recorded
//! [`TraceEvent`]s into this report. The report answers the questions the
//! round-counting model cannot: which machine the barrier waits on, how
//! much of the critical path is wire vs. compute vs. latency, and how
//! evenly the pool's workers split the host-side stepping work.

use crate::pool::{PoolStats, WorkerStats};
use mpc_runtime::telemetry::TraceEvent;
use mpc_runtime::{CostModel, MachineId};
use std::fmt::Write as _;

/// One machine's whole-run load attribution (summed over rounds).
#[derive(Clone, Debug, PartialEq)]
pub struct MachineLoad {
    /// The machine.
    pub machine: MachineId,
    /// Words sent over the run.
    pub sent_words: u64,
    /// Words received over the run.
    pub recv_words: u64,
    /// Local-computation words charged over the run.
    pub work: u64,
    /// Simulated seconds this machine itself was busy (wire + compute,
    /// before barrier waits) — the straggler-ranking key.
    pub seconds: f64,
    /// Rounds in which this machine was the slowest (the one the barrier
    /// waited on). Ties go to the lowest machine id.
    pub bottleneck_rounds: u64,
    /// Smallest per-round capacity headroom observed:
    /// `capacity − max(sent, recv)`. Negative means a round exceeded the
    /// cap (visible in `Record`/`Off` enforcement).
    pub min_headroom: i64,
}

/// Where the simulated critical path went. The three components sum to
/// `total_seconds` exactly: each round contributes its fixed latency plus
/// the bottleneck machine's wire and compute time.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct CriticalPath {
    /// Sum of per-round makespans (the run's simulated duration).
    pub total_seconds: f64,
    /// Fixed per-round synchronization latency, summed.
    pub latency_seconds: f64,
    /// Wire time of each round's bottleneck machine, summed.
    pub wire_seconds: f64,
    /// Compute time of each round's bottleneck machine, summed.
    pub cpu_seconds: f64,
}

/// Fault-tolerance overhead attribution: how much of the run's simulated
/// time went into checkpoints, replays, and recovery exchanges. All-zero
/// (and unrendered) for runs without a fault plan.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct RecoveryBreakdown {
    /// `FaultInjected` events observed (crashes, drops, delays, slowdowns).
    pub faults_injected: u64,
    /// `MachineQuarantined` events (one per crash, including re-crashes
    /// during recovery).
    pub machines_quarantined: u64,
    /// `RecoveryRound` events (one per machine successfully recovered).
    pub recovery_rounds: u64,
    /// Total driver rounds replayed from checkpoints across all
    /// recoveries.
    pub replay_rounds: u64,
    /// Replication (checkpoint) exchanges the run performed.
    pub checkpoint_rounds: u64,
    /// Simulated seconds spent in recovery exchanges (resends, replayed
    /// compute, retry backoff).
    pub recovery_makespan: f64,
    /// Simulated seconds spent shipping replica checkpoints.
    pub checkpoint_makespan: f64,
    /// `JobQuarantined` events — service jobs pulled mid-wave (engine
    /// errors attributed to them, or missed deadlines).
    pub jobs_quarantined: u64,
    /// `JobRetried` events — quarantined jobs resubmitted under their
    /// retry policy.
    pub jobs_retried: u64,
    /// `JobFailed` events — jobs that exhausted their policy (or were
    /// admitted with a zero budget) and completed as failed.
    pub jobs_failed: u64,
}

impl RecoveryBreakdown {
    /// Fault-tolerance overhead as a fraction of the run's total simulated
    /// time: `(checkpoint + recovery seconds) / total`. 0.0 for fault-free
    /// runs without a plan.
    pub fn overhead_ratio(&self, total_seconds: f64) -> f64 {
        if total_seconds <= 0.0 {
            return 0.0;
        }
        (self.checkpoint_makespan + self.recovery_makespan) / total_seconds
    }

    /// Whether anything fault-tolerance-related happened at all.
    pub fn is_empty(&self) -> bool {
        *self == RecoveryBreakdown::default()
    }
}

/// A straggler/imbalance report for one run, distilled from the telemetry
/// stream (plus the cluster's [`CostModel`] for the wire/compute split).
#[derive(Clone, Debug)]
pub struct RunReport {
    /// The workload name (registry name, or the executor label).
    pub name: String,
    /// Exchange rounds the run consumed (count of `RoundEnd` events).
    pub rounds: u64,
    /// Per-machine load attribution, indexed by machine id.
    pub machines: Vec<MachineLoad>,
    /// Critical-path breakdown over the simulated timeline.
    pub critical_path: CriticalPath,
    /// Simulated load-imbalance ratio: the busiest machine's seconds over
    /// the mean (1.0 = perfectly balanced, 0.0 = no traffic at all).
    pub imbalance: f64,
    /// Host-side pool accounting, reconstructed from `WorkerRound` events
    /// (`None` for serial runs or runs without pool telemetry).
    pub pool: Option<PoolStats>,
    /// Capacity violations observed during the run.
    pub violations: usize,
    /// Fault-tolerance overhead attribution (all-zero without a plan).
    pub recovery: RecoveryBreakdown,
    /// The raw event stream, for exporters
    /// ([`perfetto_export`](mpc_runtime::telemetry::perfetto_export)) and
    /// reconciliation tests.
    pub events: Vec<TraceEvent>,
}

impl RunReport {
    /// Folds a recorded event stream into a report. `cost` supplies the
    /// wire/compute split of the critical path (per-machine bandwidths and
    /// speeds); events referencing machines outside the model are ignored.
    pub fn from_events(name: &str, events: Vec<TraceEvent>, cost: &CostModel) -> Self {
        let k = cost.machines();
        let mut machines: Vec<MachineLoad> = (0..k)
            .map(|machine| MachineLoad {
                machine,
                sent_words: 0,
                recv_words: 0,
                work: 0,
                seconds: 0.0,
                bottleneck_rounds: 0,
                min_headroom: i64::MAX,
            })
            .collect();
        let mut critical_path = CriticalPath::default();
        let mut rounds = 0u64;
        let mut violations = 0usize;
        let mut pool: Option<PoolStats> = None;
        let mut recovery = RecoveryBreakdown::default();
        // Per-round bottleneck tracking: reset at RoundBegin, resolved at
        // RoundEnd (MachineRound events for one round sit between the two).
        let mut bottleneck: Option<(MachineId, f64, usize, u64)> = None; // (mid, secs, sent+recv, work)

        for event in &events {
            match event {
                TraceEvent::RoundBegin { .. } => bottleneck = None,
                TraceEvent::MachineRound {
                    machine,
                    sent_words,
                    recv_words,
                    work,
                    seconds,
                    capacity,
                    ..
                } => {
                    let Some(load) = machines.get_mut(*machine) else {
                        continue;
                    };
                    load.sent_words += *sent_words as u64;
                    load.recv_words += *recv_words as u64;
                    load.work += *work;
                    load.seconds += *seconds;
                    let headroom = *capacity as i64 - *sent_words.max(recv_words) as i64;
                    load.min_headroom = load.min_headroom.min(headroom);
                    // Strictly-greater keeps ties on the lowest machine id,
                    // matching the cost model's fold-max bottleneck.
                    if bottleneck.is_none_or(|(_, best, _, _)| *seconds > best) {
                        bottleneck = Some((*machine, *seconds, sent_words + recv_words, *work));
                    }
                }
                TraceEvent::RoundEnd {
                    makespan, label, ..
                } => {
                    rounds += 1;
                    if label.contains(".ckpt.") {
                        recovery.checkpoint_rounds += 1;
                        recovery.checkpoint_makespan += makespan;
                    } else if label.contains(".recover.") {
                        recovery.recovery_makespan += makespan;
                    }
                    critical_path.total_seconds += makespan;
                    critical_path.latency_seconds += cost.round_latency();
                    if let Some((mid, _, traffic, work)) = bottleneck.take() {
                        critical_path.wire_seconds += traffic as f64 / cost.bandwidth(mid);
                        critical_path.cpu_seconds += work as f64 / cost.speed(mid);
                        if let Some(load) = machines.get_mut(mid) {
                            load.bottleneck_rounds += 1;
                        }
                    }
                }
                TraceEvent::Violation { .. } => violations += 1,
                TraceEvent::FaultInjected { .. } => recovery.faults_injected += 1,
                TraceEvent::MachineQuarantined { .. } => recovery.machines_quarantined += 1,
                TraceEvent::JobQuarantined { .. } => recovery.jobs_quarantined += 1,
                TraceEvent::JobRetried { .. } => recovery.jobs_retried += 1,
                TraceEvent::JobFailed { .. } => recovery.jobs_failed += 1,
                TraceEvent::RecoveryRound { replayed, .. } => {
                    recovery.recovery_rounds += 1;
                    recovery.replay_rounds += replayed;
                }
                TraceEvent::WorkerRound {
                    worker,
                    claimed,
                    stepped,
                    idle_skips,
                    wait_ns,
                    busy_ns,
                    ..
                } => {
                    let stats = pool.get_or_insert_with(PoolStats::default);
                    if stats.per_worker.len() <= *worker {
                        stats.per_worker.resize(worker + 1, WorkerStats::default());
                    }
                    let w = &mut stats.per_worker[*worker];
                    w.claimed += *claimed as u64;
                    w.stepped += *stepped as u64;
                    w.idle_skips += *idle_skips as u64;
                    w.wait_ns += *wait_ns;
                    w.busy_ns += *busy_ns;
                    if *worker == 0 {
                        stats.rounds += 1;
                    }
                }
                _ => {}
            }
        }

        for load in &mut machines {
            if load.min_headroom == i64::MAX {
                load.min_headroom = 0;
            }
        }
        let imbalance = {
            let total: f64 = machines.iter().map(|m| m.seconds).sum();
            if total <= 0.0 || machines.is_empty() {
                0.0
            } else {
                let mean = total / machines.len() as f64;
                machines.iter().map(|m| m.seconds).fold(0.0, f64::max) / mean
            }
        };

        RunReport {
            name: name.to_string(),
            rounds,
            machines,
            critical_path,
            imbalance,
            pool,
            violations,
            recovery,
            events,
        }
    }

    /// Machines sorted by their own busy seconds, descending — the
    /// straggler ranking (index 0 is the machine the run waits on most).
    pub fn straggler_ranking(&self) -> Vec<&MachineLoad> {
        let mut ranked: Vec<&MachineLoad> = self.machines.iter().collect();
        ranked.sort_by(|a, b| {
            b.seconds
                .partial_cmp(&a.seconds)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then(a.machine.cmp(&b.machine))
        });
        ranked
    }

    /// Renders the report as the human-readable table `mpc-trace` prints.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let cp = &self.critical_path;
        let _ = writeln!(
            out,
            "== {} — {} rounds, simulated critical path {:.2}s ==",
            self.name, self.rounds, cp.total_seconds
        );
        let _ = writeln!(
            out,
            "critical path: {:.2}s wire + {:.2}s compute + {:.2}s latency",
            cp.wire_seconds, cp.cpu_seconds, cp.latency_seconds
        );
        let _ = writeln!(
            out,
            "machine load imbalance: {:.2}x (busiest / mean){}",
            self.imbalance,
            if self.violations > 0 {
                format!("; {} capacity violations", self.violations)
            } else {
                String::new()
            }
        );
        let _ = writeln!(
            out,
            "{:>7} {:>10} {:>10} {:>10} {:>9} {:>11} {:>9}",
            "machine", "sent", "recv", "work", "busy(s)", "bottleneck", "headroom"
        );
        for load in self.straggler_ranking() {
            let _ = writeln!(
                out,
                "{:>7} {:>10} {:>10} {:>10} {:>9.2} {:>10}r {:>9}",
                load.machine,
                load.sent_words,
                load.recv_words,
                load.work,
                load.seconds,
                load.bottleneck_rounds,
                load.min_headroom
            );
        }
        if !self.recovery.is_empty() {
            let r = &self.recovery;
            let _ = writeln!(
                out,
                "recovery: {} faults, {} quarantines, {} machines recovered ({} rounds replayed)",
                r.faults_injected, r.machines_quarantined, r.recovery_rounds, r.replay_rounds
            );
            let _ = writeln!(
                out,
                "  overhead: {} checkpoint rounds {:.2}s + recovery {:.2}s = {:.1}% of {:.2}s total",
                r.checkpoint_rounds,
                r.checkpoint_makespan,
                r.recovery_makespan,
                r.overhead_ratio(self.critical_path.total_seconds) * 100.0,
                self.critical_path.total_seconds
            );
            if r.jobs_quarantined + r.jobs_retried + r.jobs_failed > 0 {
                let _ = writeln!(
                    out,
                    "  service: {} jobs quarantined, {} retried, {} failed",
                    r.jobs_quarantined, r.jobs_retried, r.jobs_failed
                );
            }
        }
        if let Some(pool) = &self.pool {
            let _ = writeln!(
                out,
                "pool: {} workers, {:.1}ms barrier-wait, {:.1}ms busy, imbalance {:.2}x",
                pool.workers(),
                pool.total_wait_seconds() * 1e3,
                pool.total_busy_seconds() * 1e3,
                pool.imbalance()
            );
            for (w, s) in pool.per_worker.iter().enumerate() {
                let _ = writeln!(
                    out,
                    "  worker {w}: {} claimed, {} stepped, {} idle-skips, {:.1}ms wait, {:.1}ms busy",
                    s.claimed,
                    s.stepped,
                    s.idle_skips,
                    s.wait_ns as f64 / 1e6,
                    s.busy_ns as f64 / 1e6
                );
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cost() -> CostModel {
        // Machine 1 is a 4x straggler: speed/bandwidth 0.25.
        CostModel::uniform(3, 1.0, 1.0, 0.5).with_straggler(1, 0.25)
    }

    fn round_events(round: u64, traffic: [usize; 3]) -> Vec<TraceEvent> {
        let cost = cost();
        let mut events = vec![TraceEvent::RoundBegin {
            round,
            label: format!("t.r{round:03}"),
        }];
        let mut worst = 0.0f64;
        for (machine, &sent) in traffic.iter().enumerate() {
            let seconds = cost.machine_round_seconds(machine, sent, 0, 0);
            worst = worst.max(seconds);
            events.push(TraceEvent::MachineRound {
                round,
                machine,
                sent_words: sent,
                recv_words: 0,
                work: 0,
                seconds,
                capacity: 100,
            });
        }
        events.push(TraceEvent::RoundEnd {
            round,
            label: format!("t.r{round:03}"),
            total_words: traffic.iter().sum(),
            messages: 3,
            makespan: cost.round_latency() + worst,
        });
        events
    }

    #[test]
    fn report_attributes_bottlenecks_and_splits_the_critical_path() {
        let mut events = round_events(1, [10, 4, 2]); // m1: 4 words at bw 0.25 => 16s
        events.extend(round_events(2, [20, 1, 0])); // m0: 20s
        let report = RunReport::from_events("demo", events, &cost());

        assert_eq!(report.rounds, 2);
        assert_eq!(report.machines[1].bottleneck_rounds, 1);
        assert_eq!(report.machines[0].bottleneck_rounds, 1);
        assert_eq!(report.machines[2].bottleneck_rounds, 0);
        let cp = &report.critical_path;
        // Round 1: latency .5 + wire 16; round 2: latency .5 + wire 20.
        assert!((cp.total_seconds - 37.0).abs() < 1e-9, "{cp:?}");
        assert!((cp.latency_seconds - 1.0).abs() < 1e-9);
        assert!((cp.wire_seconds - 36.0).abs() < 1e-9);
        assert_eq!(cp.cpu_seconds, 0.0);
        assert!(
            (cp.latency_seconds + cp.wire_seconds + cp.cpu_seconds - cp.total_seconds).abs() < 1e-9,
            "components must sum to the total"
        );
        // Straggler ranking: machine 0 (30s) ahead of machine 1 (20s).
        let ranked = report.straggler_ranking();
        assert_eq!(ranked[0].machine, 0);
        assert_eq!(ranked[1].machine, 1);
        assert!(report.imbalance > 1.0);
        assert_eq!(report.machines[0].min_headroom, 100 - 20);
        let text = report.render();
        assert!(text.contains("critical path"));
        assert!(text.contains("imbalance"));
    }

    #[test]
    fn worker_round_events_reconstruct_pool_stats() {
        let mut events = round_events(1, [1, 1, 1]);
        for round in 0..2 {
            for worker in 0..2usize {
                events.push(TraceEvent::WorkerRound {
                    round,
                    worker,
                    claimed: 3,
                    stepped: 2,
                    idle_skips: 1,
                    wait_ns: 100,
                    busy_ns: (worker as u64 + 1) * 1000,
                });
            }
        }
        let report = RunReport::from_events("pooled", events, &cost());
        let pool = report
            .pool
            .as_ref()
            .expect("pool stats from WorkerRound events");
        assert_eq!(pool.workers(), 2);
        assert_eq!(pool.rounds, 2);
        assert_eq!(pool.per_worker[0].claimed, 6);
        assert_eq!(pool.per_worker[1].busy_ns, 4000);
        // busy: [2000, 4000] => mean 3000, max 4000.
        assert!((pool.imbalance() - 4000.0 / 3000.0).abs() < 1e-12);
        assert!(report.render().contains("pool: 2 workers"));
    }

    #[test]
    fn empty_event_streams_produce_a_quiet_report() {
        let report = RunReport::from_events("idle", Vec::new(), &cost());
        assert_eq!(report.rounds, 0);
        assert_eq!(report.imbalance, 0.0);
        assert!(report.pool.is_none());
        assert_eq!(report.machines.len(), 3);
        assert_eq!(report.machines[0].min_headroom, 0);
    }
}
