//! # mpc-exec — the parallel execution engine
//!
//! The paper's model promises that per-round local computation is "free";
//! the legacy simulator nevertheless executes every machine's local work
//! *serially* on one thread, so simulated wall-clock grows with cluster
//! size — the opposite of what an MPC deployment does. This crate closes
//! that gap:
//!
//! * [`MachineProgram`] — an algorithm as a per-machine state machine
//!   (`step(ctx, inbox) -> StepOutcome`), i.e. *data the engine drives*
//!   instead of a loop that owns the [`Cluster`](mpc_runtime::Cluster);
//! * [`Executor`] — a round driver that steps all machines concurrently on
//!   a **persistent worker pool** ([`pool`]; std-only, the offline build
//!   environment has no rayon) with dynamic work claiming, deterministic
//!   inbox ordering, and **bit-identical** round logs, results, and RNG
//!   streams to serial execution under the same seed. The round loop is
//!   allocation-free in steady state (interned labels, reused buffers);
//! * a heterogeneous [`CostModel`](mpc_runtime::CostModel) (per-machine
//!   compute speed, link bandwidth, per-round latency) lives in
//!   `mpc-runtime` and turns every round into a simulated *makespan*, so
//!   straggler and non-uniform-speed scenarios are measurable.
//!
//! Ported programs live in [`programs`]; the legacy call-style signatures
//! survive as thin [`adapters`].
//!
//! ## Example
//!
//! ```
//! use mpc_exec::{ExecMode, adapters};
//! use mpc_core::common;
//! use mpc_core::ported::connectivity::{sketch_friendly_config, ConnectivityConfig};
//! use mpc_graph::generators;
//! use mpc_runtime::Cluster;
//!
//! let g = generators::gnm(64, 160, 7);
//! let mut cluster = Cluster::new(sketch_friendly_config(g.n(), g.m(), 7));
//! let edges = common::distribute_edges(&cluster, &g);
//! let comps = adapters::heterogeneous_connectivity(
//!     &mut cluster, g.n(), &edges, &ConnectivityConfig::for_n(g.n()), ExecMode::Parallel,
//! ).unwrap();
//! assert_eq!(comps, mpc_graph::traversal::connected_components(&g));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod adapters;
pub mod combinators;
pub mod driver;
pub mod machine;
pub mod mixed;
pub mod multiplex;
pub mod pool;
pub mod programs;
pub mod registry;
pub mod report;
pub mod service;

pub use combinators::{Driven, Outbox, Owners, RoleProgram};
pub use driver::{ExecError, ExecMode, ExecOutcome, Executor, WaveRound};
pub use machine::{MachineCtx, MachineProgram, StepOutcome};
pub use mixed::{ErasedMsg, ErasedProgram, MixedMsg, MixedWave};
pub use multiplex::{Multiplexed, Mux, MuxSlot};
pub use programs::{
    BoruvkaProgram, ColoringProgram, ConnectivityProgram, MatchingProgram, MinCutApproxProgram,
    MinCutProgram, MisProgram, MstApproxProgram, MstProgram, SpannerProgram,
};
pub use registry::{AlgoInput, AlgoOutput, Algorithm, JobParams, JobRetryPolicy, JobSpec};
pub use report::{CriticalPath, MachineLoad, RecoveryBreakdown, RunReport};
pub use service::{JobHandle, JobRecord, JobStatus, Service, ServiceRun};
