//! Thin call-style adapters: the legacy function signatures, backed by the
//! execution engine.
//!
//! Existing code written against `mpc_core::ported::heterogeneous_connectivity(
//! &mut cluster, ...)` can switch to the engine by swapping the import; the
//! adapter builds the per-machine programs, runs the driver in the
//! requested [`ExecMode`], and extracts the result from the large
//! machine's final state.

use crate::combinators::Driven;
use crate::driver::{ExecError, ExecMode, Executor};
use crate::programs::{
    BoruvkaProgram, ColoringProgram, ConnectivityProgram, MatchingProgram, MinCutApproxProgram,
    MinCutProgram, MisProgram, MstApproxProgram, MstProgram, SpannerProgram,
};
use mpc_core::matching::MatchingResult;
use mpc_core::mst::{MstConfig, MstResult};
use mpc_core::ported::coloring::ColoringResult;
use mpc_core::ported::connectivity::ConnectivityConfig;
use mpc_core::ported::mincut_approx::ApproxMinCut;
use mpc_core::ported::mincut_exact::MinCutResult;
use mpc_core::ported::mis::MisResult;
use mpc_core::ported::mst_approx::MstApprox;
use mpc_core::spanner::SpannerResult;
use mpc_graph::mst::Forest;
use mpc_graph::traversal::Components;
use mpc_graph::Edge;
use mpc_runtime::{Cluster, ShardedVec};

/// Engine-backed twin of
/// [`mpc_core::ported::heterogeneous_connectivity`]: identical results,
/// machine steps driven by the [`Executor`].
///
/// # Errors
///
/// Propagates capacity violations in strict mode; see [`ExecError`].
pub fn heterogeneous_connectivity(
    cluster: &mut Cluster,
    n: usize,
    edges: &ShardedVec<Edge>,
    config: &ConnectivityConfig,
    mode: ExecMode,
) -> Result<Components, ExecError> {
    let programs = ConnectivityProgram::for_cluster(cluster, n, edges, config);
    let large = cluster
        .large()
        .expect("connectivity requires a large machine");
    let outcome = Executor::new("conn", mode).run(cluster, programs)?;
    Ok(outcome.programs[large]
        .result
        .clone()
        .expect("large machine halts with a result"))
}

/// Engine-backed Borůvka minimum spanning forest: same forest (same
/// tie-breaking) as [`mpc_core::mst::heterogeneous_mst`], computed in
/// 4-round contraction waves.
///
/// # Errors
///
/// Propagates capacity violations in strict mode; see [`ExecError`].
pub fn boruvka_msf(
    cluster: &mut Cluster,
    edges: &ShardedVec<Edge>,
    mode: ExecMode,
) -> Result<Forest, ExecError> {
    let programs = BoruvkaProgram::for_cluster(cluster, edges);
    let large = cluster
        .large()
        .expect("Borůvka MSF requires a large machine");
    let mut outcome = Executor::new("boruvka", mode).run(cluster, programs)?;
    Ok(outcome.programs[large]
        .forest
        .take()
        .expect("large machine halts with a forest"))
}

/// Engine-backed twin of [`mpc_core::mst::heterogeneous_mst`]: the full
/// doubly-exponential-Borůvka + KKT pipeline on the execution engine, with
/// results, statistics, and RNG stream positions bit-identical to the
/// legacy call-style path.
///
/// # Errors
///
/// Propagates capacity violations; KKT sampling failure surfaces as
/// [`ExecError::Algorithm`].
pub fn heterogeneous_mst(
    cluster: &mut Cluster,
    n: usize,
    edges: &ShardedVec<Edge>,
    mode: ExecMode,
) -> Result<MstResult, ExecError> {
    heterogeneous_mst_with(cluster, n, edges, &MstConfig::default(), mode)
}

/// [`heterogeneous_mst`] with explicit configuration.
///
/// # Errors
///
/// See [`heterogeneous_mst`].
pub fn heterogeneous_mst_with(
    cluster: &mut Cluster,
    n: usize,
    edges: &ShardedVec<Edge>,
    config: &MstConfig,
    mode: ExecMode,
) -> Result<MstResult, ExecError> {
    let programs: Vec<_> = MstProgram::for_cluster_with(cluster, n, edges, config)
        .into_iter()
        .map(Driven)
        .collect();
    let large = cluster.large().expect("MST requires a large machine");
    let mut outcome = Executor::new("mst", mode).run(cluster, programs)?;
    outcome.programs[large]
        .0
        .result
        .take()
        .expect("large machine halts with a result")
        .map_err(|e| ExecError::Algorithm {
            message: e.to_string(),
        })
}

/// Engine-backed twin of
/// [`mpc_core::matching::heterogeneous_matching`]: the three-phase maximal
/// matching on the execution engine, with the matching, statistics, and
/// RNG stream positions bit-identical to the legacy call-style path.
///
/// # Errors
///
/// Propagates capacity violations; a Phase-3 residual overflow surfaces as
/// [`ExecError::Algorithm`].
pub fn heterogeneous_matching(
    cluster: &mut Cluster,
    n: usize,
    edges: &ShardedVec<Edge>,
    mode: ExecMode,
) -> Result<MatchingResult, ExecError> {
    let programs: Vec<_> = MatchingProgram::for_cluster(cluster, n, edges)
        .into_iter()
        .map(Driven)
        .collect();
    let large = cluster.large().expect("matching requires a large machine");
    let mut outcome = Executor::new("match", mode).run(cluster, programs)?;
    outcome.programs[large]
        .0
        .result
        .take()
        .expect("large machine halts with a result")
        .map_err(|e| ExecError::Algorithm {
            message: e.to_string(),
        })
}

/// Engine-backed twin of
/// [`mpc_core::spanner::heterogeneous_spanner`]: the `(6k−1)`-spanner on
/// the execution engine, with the spanner, statistics, and RNG stream
/// positions bit-identical to the legacy call-style path.
///
/// # Errors
///
/// Propagates capacity violations; see [`ExecError`].
pub fn heterogeneous_spanner(
    cluster: &mut Cluster,
    n: usize,
    edges: &ShardedVec<Edge>,
    k: usize,
    mode: ExecMode,
) -> Result<SpannerResult, ExecError> {
    let programs: Vec<_> = SpannerProgram::for_cluster(cluster, n, edges, k)
        .into_iter()
        .map(Driven)
        .collect();
    let large = cluster.large().expect("spanner requires a large machine");
    let mut outcome = Executor::new("spanner", mode).run(cluster, programs)?;
    Ok(outcome.programs[large]
        .0
        .result
        .take()
        .expect("large machine halts with a result"))
}

/// Engine-backed twin of
/// [`mpc_core::spanner::heterogeneous_spanner_weighted`]: one unweighted
/// engine run per factor-2 weight class (the \[22\] reduction), with true
/// weights restored on the witness edges — the same sequential class loop
/// as the legacy path, so the per-machine RNG streams stay aligned class
/// by class.
///
/// # Errors
///
/// Propagates capacity violations; see [`ExecError`].
pub fn heterogeneous_spanner_weighted(
    cluster: &mut Cluster,
    n: usize,
    edges: &ShardedVec<Edge>,
    k: usize,
    mode: ExecMode,
) -> Result<SpannerResult, ExecError> {
    mpc_core::spanner::weighted_by_classes(n, edges, |class_edges| {
        heterogeneous_spanner(cluster, n, class_edges, k, mode)
    })
}

/// Engine-backed twin of [`mpc_core::ported::heterogeneous_mis`]: the
/// `O(log log Δ)`-round maximal independent set on the execution engine,
/// with the MIS, statistics, and RNG stream positions bit-identical to the
/// legacy call-style path.
///
/// # Errors
///
/// Propagates capacity violations in strict mode; see [`ExecError`].
pub fn heterogeneous_mis(
    cluster: &mut Cluster,
    n: usize,
    edges: &ShardedVec<Edge>,
    mode: ExecMode,
) -> Result<MisResult, ExecError> {
    let programs: Vec<_> = MisProgram::for_cluster(cluster, n, edges)
        .into_iter()
        .map(Driven)
        .collect();
    let large = cluster.large().expect("MIS requires a large machine");
    let mut outcome = Executor::new("mis", mode).run(cluster, programs)?;
    Ok(outcome.programs[large]
        .0
        .result
        .take()
        .expect("large machine halts with a result"))
}

/// Engine-backed twin of [`mpc_core::ported::heterogeneous_coloring`]: the
/// `O(1)`-round (Δ+1)-coloring on the execution engine, with the coloring,
/// statistics, and RNG stream positions bit-identical to the legacy
/// call-style path.
///
/// # Errors
///
/// Propagates capacity violations in strict mode; see [`ExecError`].
pub fn heterogeneous_coloring(
    cluster: &mut Cluster,
    n: usize,
    edges: &ShardedVec<Edge>,
    mode: ExecMode,
) -> Result<ColoringResult, ExecError> {
    let programs: Vec<_> = ColoringProgram::for_cluster(cluster, n, edges)
        .into_iter()
        .map(Driven)
        .collect();
    let large = cluster.large().expect("coloring requires a large machine");
    let mut outcome = Executor::new("color", mode).run(cluster, programs)?;
    Ok(outcome.programs[large]
        .0
        .result
        .take()
        .expect("large machine halts with a result"))
}

/// Engine-backed twin of [`mpc_core::ported::heterogeneous_min_cut`]: the
/// `O(1)`-round exact unweighted minimum cut on the execution engine, with
/// the cut value, statistics, and RNG stream positions bit-identical to
/// the legacy call-style path.
///
/// # Errors
///
/// Propagates capacity violations in strict mode; see [`ExecError`].
pub fn heterogeneous_min_cut(
    cluster: &mut Cluster,
    n: usize,
    edges: &ShardedVec<Edge>,
    trials: usize,
    mode: ExecMode,
) -> Result<MinCutResult, ExecError> {
    let programs: Vec<_> = MinCutProgram::for_cluster(cluster, n, edges, trials)
        .into_iter()
        .map(Driven)
        .collect();
    let large = cluster.large().expect("min cut requires a large machine");
    let mut outcome = Executor::new("cut", mode).run(cluster, programs)?;
    Ok(outcome.programs[large]
        .0
        .result
        .take()
        .expect("large machine halts with a result"))
}

/// Engine-backed twin of [`mpc_core::ported::approximate_min_cut`]: the
/// `O(1)`-round (1±ε)-approximate weighted minimum cut on the execution
/// engine. Estimate, λ̂ guess, skeleton size, and RNG stream positions are
/// bit-identical to the legacy path; the `parallel_rounds` figure counts
/// *engine* rounds per guess (engine round geometry differs from the
/// legacy primitives' by design).
///
/// # Errors
///
/// Propagates capacity violations in strict mode; see [`ExecError`].
pub fn approximate_min_cut(
    cluster: &mut Cluster,
    n: usize,
    edges: &ShardedVec<Edge>,
    epsilon: f64,
    mode: ExecMode,
) -> Result<ApproxMinCut, ExecError> {
    let programs: Vec<_> = MinCutApproxProgram::for_cluster(cluster, n, edges, epsilon)
        .into_iter()
        .map(Driven)
        .collect();
    let large = cluster.large().expect("min cut requires a large machine");
    let mut outcome = Executor::new("xcut", mode).run(cluster, programs)?;
    Ok(outcome.programs[large]
        .0
        .result
        .take()
        .expect("large machine halts with a result"))
}

/// Engine-backed twin of [`mpc_core::ported::approximate_mst_weight`]: the
/// `O(1)`-round (1+ε)-approximate MST weight on the execution engine.
/// Estimate, thresholds, component counts, and RNG stream positions are
/// bit-identical to the legacy path; the `parallel_rounds` figure counts
/// *engine* rounds per threshold wave.
///
/// # Errors
///
/// Propagates capacity violations in strict mode; see [`ExecError`].
pub fn approximate_mst_weight(
    cluster: &mut Cluster,
    n: usize,
    edges: &ShardedVec<Edge>,
    epsilon: f64,
    mode: ExecMode,
) -> Result<MstApprox, ExecError> {
    let programs: Vec<_> = MstApproxProgram::for_cluster(cluster, n, edges, epsilon)
        .into_iter()
        .map(Driven)
        .collect();
    let large = cluster
        .large()
        .expect("MST estimation requires a large machine");
    let mut outcome = Executor::new("xmst", mode).run(cluster, programs)?;
    Ok(outcome.programs[large]
        .0
        .result
        .take()
        .expect("large machine halts with a result"))
}
