//! Thin call-style adapters: the legacy function signatures, backed by the
//! execution engine.
//!
//! Existing code written against `mpc_core::ported::heterogeneous_connectivity(
//! &mut cluster, ...)` can switch to the engine by swapping the import; the
//! adapter builds the per-machine programs, runs the driver in the
//! requested [`ExecMode`], and extracts the result from the large
//! machine's final state.

use crate::driver::{ExecError, ExecMode, Executor};
use crate::programs::{BoruvkaProgram, ConnectivityProgram};
use mpc_core::ported::connectivity::ConnectivityConfig;
use mpc_graph::mst::Forest;
use mpc_graph::traversal::Components;
use mpc_graph::Edge;
use mpc_runtime::{Cluster, ShardedVec};

/// Engine-backed twin of
/// [`mpc_core::ported::heterogeneous_connectivity`]: identical results,
/// machine steps driven by the [`Executor`].
///
/// # Errors
///
/// Propagates capacity violations in strict mode; see [`ExecError`].
pub fn heterogeneous_connectivity(
    cluster: &mut Cluster,
    n: usize,
    edges: &ShardedVec<Edge>,
    config: &ConnectivityConfig,
    mode: ExecMode,
) -> Result<Components, ExecError> {
    let programs = ConnectivityProgram::for_cluster(cluster, n, edges, config);
    let large = cluster
        .large()
        .expect("connectivity requires a large machine");
    let outcome = Executor::new("conn", mode).run(cluster, programs)?;
    Ok(outcome.programs[large]
        .result
        .clone()
        .expect("large machine halts with a result"))
}

/// Engine-backed Borůvka minimum spanning forest: same forest (same
/// tie-breaking) as [`mpc_core::mst::heterogeneous_mst`], computed in
/// 4-round contraction waves.
///
/// # Errors
///
/// Propagates capacity violations in strict mode; see [`ExecError`].
pub fn boruvka_msf(
    cluster: &mut Cluster,
    edges: &ShardedVec<Edge>,
    mode: ExecMode,
) -> Result<Forest, ExecError> {
    let programs = BoruvkaProgram::for_cluster(cluster, edges);
    let large = cluster
        .large()
        .expect("Borůvka MSF requires a large machine");
    let mut outcome = Executor::new("boruvka", mode).run(cluster, programs)?;
    Ok(outcome.programs[large]
        .forest
        .take()
        .expect("large machine halts with a forest"))
}
