//! Thin call-style adapters: the legacy function signatures, backed by the
//! execution engine.
//!
//! Existing code written against `mpc_core::ported::heterogeneous_connectivity(
//! &mut cluster, ...)` can switch to the engine by swapping the import; the
//! adapter builds the per-machine programs, runs the driver in the
//! requested [`ExecMode`], and extracts the result from the large
//! machine's final state.

use crate::combinators::Driven;
use crate::driver::{ExecError, ExecMode, Executor};
use crate::multiplex::{CapacityFactor, Multiplexed};
use crate::programs::{
    BoruvkaProgram, ColoringProgram, ConnectivityProgram, GuessOutcome, MatchingProgram,
    MinCutApproxProgram, MinCutGuessWave, MinCutProgram, MisProgram, MstApproxProgram,
    MstApproxWave, MstProgram, SpannerProgram, XCutFallback,
};
use mpc_core::matching::MatchingResult;
use mpc_core::mst::{MstConfig, MstResult};
use mpc_core::ported::coloring::ColoringResult;
use mpc_core::ported::connectivity::ConnectivityConfig;
use mpc_core::ported::mincut_approx::ApproxMinCut;
use mpc_core::ported::mincut_approx::SkeletonVerdict;
use mpc_core::ported::mincut_exact::MinCutResult;
use mpc_core::ported::mis::MisResult;
use mpc_core::ported::mst_approx::MstApprox;
use mpc_core::spanner::SpannerResult;
use mpc_graph::mst::Forest;
use mpc_graph::traversal::Components;
use mpc_graph::Edge;
use mpc_runtime::{Cluster, MachineId, ShardedVec};
use rand::Rng;
use std::sync::Arc;

/// Engine-backed twin of
/// [`mpc_core::ported::heterogeneous_connectivity`]: identical results,
/// machine steps driven by the [`Executor`].
///
/// # Errors
///
/// Propagates capacity violations in strict mode; see [`ExecError`].
pub fn heterogeneous_connectivity(
    cluster: &mut Cluster,
    n: usize,
    edges: &ShardedVec<Edge>,
    config: &ConnectivityConfig,
    mode: ExecMode,
) -> Result<Components, ExecError> {
    let programs = ConnectivityProgram::for_cluster(cluster, n, edges, config);
    let large = cluster
        .large()
        .expect("connectivity requires a large machine");
    let outcome = Executor::new("conn", mode).run(cluster, programs)?;
    Ok(outcome.programs[large]
        .result
        .clone()
        .expect("large machine halts with a result"))
}

/// Engine-backed Borůvka minimum spanning forest: same forest (same
/// tie-breaking) as [`mpc_core::mst::heterogeneous_mst`], computed in
/// 4-round contraction waves.
///
/// # Errors
///
/// Propagates capacity violations in strict mode; see [`ExecError`].
pub fn boruvka_msf(
    cluster: &mut Cluster,
    edges: &ShardedVec<Edge>,
    mode: ExecMode,
) -> Result<Forest, ExecError> {
    let programs = BoruvkaProgram::for_cluster(cluster, edges);
    let large = cluster
        .large()
        .expect("Borůvka MSF requires a large machine");
    let mut outcome = Executor::new("boruvka", mode).run(cluster, programs)?;
    Ok(outcome.programs[large]
        .forest
        .take()
        .expect("large machine halts with a forest"))
}

/// Engine-backed twin of [`mpc_core::mst::heterogeneous_mst`]: the full
/// doubly-exponential-Borůvka + KKT pipeline on the execution engine, with
/// results, statistics, and RNG stream positions bit-identical to the
/// legacy call-style path.
///
/// # Errors
///
/// Propagates capacity violations; KKT sampling failure surfaces as
/// [`ExecError::Algorithm`].
pub fn heterogeneous_mst(
    cluster: &mut Cluster,
    n: usize,
    edges: &ShardedVec<Edge>,
    mode: ExecMode,
) -> Result<MstResult, ExecError> {
    heterogeneous_mst_with(cluster, n, edges, &MstConfig::default(), mode)
}

/// [`heterogeneous_mst`] with explicit configuration.
///
/// # Errors
///
/// See [`heterogeneous_mst`].
pub fn heterogeneous_mst_with(
    cluster: &mut Cluster,
    n: usize,
    edges: &ShardedVec<Edge>,
    config: &MstConfig,
    mode: ExecMode,
) -> Result<MstResult, ExecError> {
    let programs: Vec<_> = MstProgram::for_cluster_with(cluster, n, edges, config)
        .into_iter()
        .map(Driven)
        .collect();
    let large = cluster.large().expect("MST requires a large machine");
    let mut outcome = Executor::new("mst", mode).run(cluster, programs)?;
    outcome.programs[large]
        .0
        .result
        .take()
        .expect("large machine halts with a result")
        .map_err(|e| ExecError::Algorithm {
            message: e.to_string(),
        })
}

/// Engine-backed twin of
/// [`mpc_core::matching::heterogeneous_matching`]: the three-phase maximal
/// matching on the execution engine, with the matching, statistics, and
/// RNG stream positions bit-identical to the legacy call-style path.
///
/// # Errors
///
/// Propagates capacity violations; a Phase-3 residual overflow surfaces as
/// [`ExecError::Algorithm`].
pub fn heterogeneous_matching(
    cluster: &mut Cluster,
    n: usize,
    edges: &ShardedVec<Edge>,
    mode: ExecMode,
) -> Result<MatchingResult, ExecError> {
    let programs: Vec<_> = MatchingProgram::for_cluster(cluster, n, edges)
        .into_iter()
        .map(Driven)
        .collect();
    let large = cluster.large().expect("matching requires a large machine");
    let mut outcome = Executor::new("match", mode).run(cluster, programs)?;
    outcome.programs[large]
        .0
        .result
        .take()
        .expect("large machine halts with a result")
        .map_err(|e| ExecError::Algorithm {
            message: e.to_string(),
        })
}

/// Engine-backed twin of
/// [`mpc_core::spanner::heterogeneous_spanner`]: the `(6k−1)`-spanner on
/// the execution engine, with the spanner, statistics, and RNG stream
/// positions bit-identical to the legacy call-style path.
///
/// # Errors
///
/// Propagates capacity violations; see [`ExecError`].
pub fn heterogeneous_spanner(
    cluster: &mut Cluster,
    n: usize,
    edges: &ShardedVec<Edge>,
    k: usize,
    mode: ExecMode,
) -> Result<SpannerResult, ExecError> {
    let programs: Vec<_> = SpannerProgram::for_cluster(cluster, n, edges, k)
        .into_iter()
        .map(Driven)
        .collect();
    let large = cluster.large().expect("spanner requires a large machine");
    let mut outcome = Executor::new("spanner", mode).run(cluster, programs)?;
    Ok(outcome.programs[large]
        .0
        .result
        .take()
        .expect("large machine halts with a result"))
}

/// Engine-backed twin of
/// [`mpc_core::spanner::heterogeneous_spanner_weighted`], **batched**: all
/// factor-2 weight classes (the \[22\] reduction) run as interleaved
/// instances of the [multi-program scheduler](crate::multiplex) in a
/// single engine pass — one 17-round spanner clock for *every* class,
/// instead of one per class. The spanner program's draws happen at fixed
/// rounds and the scheduler steps instances in class order, so each
/// machine consumes its RNG stream class-major — exactly the sequential
/// loop's order — and the spanner, statistics, and RNG stream positions
/// are bit-identical to the sequential (and legacy) paths.
///
/// # Errors
///
/// Propagates capacity violations; see [`ExecError`].
pub fn heterogeneous_spanner_weighted(
    cluster: &mut Cluster,
    n: usize,
    edges: &ShardedVec<Edge>,
    k: usize,
    mode: ExecMode,
) -> Result<SpannerResult, ExecError> {
    heterogeneous_spanner_weighted_opts(cluster, n, edges, k, mode, 0)
}

/// [`heterogeneous_spanner_weighted`] with an explicit worker-thread cap
/// (0 = executor default) — the knob the schedule-independence tests turn.
///
/// # Errors
///
/// See [`heterogeneous_spanner_weighted`].
pub fn heterogeneous_spanner_weighted_opts(
    cluster: &mut Cluster,
    n: usize,
    edges: &ShardedVec<Edge>,
    k: usize,
    mode: ExecMode,
    threads: usize,
) -> Result<SpannerResult, ExecError> {
    let classes = mpc_core::spanner::weight_class_shards(edges);
    if classes.shards.is_empty() {
        return Ok(mpc_core::spanner::merge_class_results(
            n,
            &classes,
            Vec::new(),
        ));
    }
    let per_instance: Vec<Vec<Driven<SpannerProgram>>> = classes
        .shards
        .iter()
        .map(|(_c, class_edges)| {
            SpannerProgram::for_cluster(cluster, n, class_edges, k)
                .into_iter()
                .map(Driven)
                .collect()
        })
        .collect();
    let muxed = Multiplexed::build(cluster, per_instance);
    let large = cluster.large().expect("spanner requires a large machine");
    let mut outcome = {
        let mut scaled = CapacityFactor::scale(cluster, classes.shards.len());
        Executor::new("wspan", mode)
            .threads(threads)
            .run(scaled.cluster(), muxed)
    }?;
    let coordinator = &mut outcome.programs[large];
    let results: Vec<SpannerResult> = (0..coordinator.instances())
        .map(|i| {
            coordinator
                .instance_mut(i)
                .0
                .result
                .take()
                .expect("large machine halts with a per-class result")
        })
        .collect();
    Ok(mpc_core::spanner::merge_class_results(n, &classes, results))
}

/// The PR 4 sequential composition of the weighted spanner: one engine run
/// per weight class, kept as the equivalence oracle for the batched path
/// (identical results and RNG stream positions, `O(classes)`× the rounds).
///
/// # Errors
///
/// Propagates capacity violations; see [`ExecError`].
pub fn heterogeneous_spanner_weighted_sequential(
    cluster: &mut Cluster,
    n: usize,
    edges: &ShardedVec<Edge>,
    k: usize,
    mode: ExecMode,
) -> Result<SpannerResult, ExecError> {
    mpc_core::spanner::weighted_by_classes(n, edges, |class_edges| {
        heterogeneous_spanner(cluster, n, class_edges, k, mode)
    })
}

/// Engine-backed twin of [`mpc_core::ported::heterogeneous_mis`]: the
/// `O(log log Δ)`-round maximal independent set on the execution engine,
/// with the MIS, statistics, and RNG stream positions bit-identical to the
/// legacy call-style path.
///
/// # Errors
///
/// Propagates capacity violations in strict mode; see [`ExecError`].
pub fn heterogeneous_mis(
    cluster: &mut Cluster,
    n: usize,
    edges: &ShardedVec<Edge>,
    mode: ExecMode,
) -> Result<MisResult, ExecError> {
    let programs: Vec<_> = MisProgram::for_cluster(cluster, n, edges)
        .into_iter()
        .map(Driven)
        .collect();
    let large = cluster.large().expect("MIS requires a large machine");
    let mut outcome = Executor::new("mis", mode).run(cluster, programs)?;
    Ok(outcome.programs[large]
        .0
        .result
        .take()
        .expect("large machine halts with a result"))
}

/// Engine-backed twin of [`mpc_core::ported::heterogeneous_coloring`]: the
/// `O(1)`-round (Δ+1)-coloring on the execution engine, with the coloring,
/// statistics, and RNG stream positions bit-identical to the legacy
/// call-style path.
///
/// # Errors
///
/// Propagates capacity violations in strict mode; see [`ExecError`].
pub fn heterogeneous_coloring(
    cluster: &mut Cluster,
    n: usize,
    edges: &ShardedVec<Edge>,
    mode: ExecMode,
) -> Result<ColoringResult, ExecError> {
    let programs: Vec<_> = ColoringProgram::for_cluster(cluster, n, edges)
        .into_iter()
        .map(Driven)
        .collect();
    let large = cluster.large().expect("coloring requires a large machine");
    let mut outcome = Executor::new("color", mode).run(cluster, programs)?;
    Ok(outcome.programs[large]
        .0
        .result
        .take()
        .expect("large machine halts with a result"))
}

/// Engine-backed twin of [`mpc_core::ported::heterogeneous_min_cut`]: the
/// `O(1)`-round exact unweighted minimum cut on the execution engine, with
/// the cut value, statistics, and RNG stream positions bit-identical to
/// the legacy call-style path.
///
/// # Errors
///
/// Propagates capacity violations in strict mode; see [`ExecError`].
pub fn heterogeneous_min_cut(
    cluster: &mut Cluster,
    n: usize,
    edges: &ShardedVec<Edge>,
    trials: usize,
    mode: ExecMode,
) -> Result<MinCutResult, ExecError> {
    let programs: Vec<_> = MinCutProgram::for_cluster(cluster, n, edges, trials)
        .into_iter()
        .map(Driven)
        .collect();
    let large = cluster.large().expect("min cut requires a large machine");
    let mut outcome = Executor::new("cut", mode).run(cluster, programs)?;
    Ok(outcome.programs[large]
        .0
        .result
        .take()
        .expect("large machine halts with a result"))
}

/// Engine-backed twin of [`mpc_core::ported::approximate_min_cut`],
/// **batched**: every geometric λ̂ guess runs as an interleaved instance of
/// the [multi-program scheduler](crate::multiplex) — one 4-round wave for
/// *all* guesses (the paper's parallel figure) instead of one wave per
/// guess. Small machines sample the guesses in guess order within the
/// first combined round (the legacy per-machine draw order, so every
/// guess's skeleton is bit-identical to the sequential path's); the
/// coordinator retires all guesses finer than the first to overflow its
/// skeleton budget (the legacy abort), and the winner is chosen by the
/// same largest-first scan. Estimate, λ̂ guess, and skeleton size match the
/// sequential path per instance; RNG stream positions advance further than
/// the sequential path's whenever its early exit skipped later guesses
/// (the batched run samples them all up front, as the paper does).
///
/// # Errors
///
/// Propagates capacity violations in strict mode; see [`ExecError`].
pub fn approximate_min_cut(
    cluster: &mut Cluster,
    n: usize,
    edges: &ShardedVec<Edge>,
    epsilon: f64,
    mode: ExecMode,
) -> Result<ApproxMinCut, ExecError> {
    approximate_min_cut_opts(cluster, n, edges, epsilon, mode, 0)
}

/// [`approximate_min_cut`] with an explicit worker-thread cap (0 =
/// executor default).
///
/// # Errors
///
/// See [`approximate_min_cut`].
pub fn approximate_min_cut_opts(
    cluster: &mut Cluster,
    n: usize,
    edges: &ShardedVec<Edge>,
    epsilon: f64,
    mode: ExecMode,
    threads: usize,
) -> Result<ApproxMinCut, ExecError> {
    assert!(
        (0.0..1.0).contains(&epsilon) && epsilon > 0.0,
        "epsilon in (0,1)"
    );
    let large = cluster.large().expect("min cut requires a large machine");
    assert!(
        edges.shard(large).is_empty(),
        "engine programs expect the input on the small machines only"
    );
    // Guess grid and sampling constant, host-side — the same derivation
    // the legacy loop performs before its first round.
    let total_weight: u64 = edges.iter().map(|(_, e)| e.w).sum();
    let c_sample = mpc_core::ported::mincut_approx::c_sample_for(n, epsilon);
    let guesses = mpc_core::ported::mincut_approx::lambda_guesses(total_weight);
    let shards: Vec<Arc<[Edge]>> = (0..cluster.machines())
        .map(|mid| Arc::from(edges.shard(mid)))
        .collect();
    let per_instance: Vec<Vec<Driven<MinCutGuessWave>>> = guesses
        .iter()
        .map(|&guess| {
            shards
                .iter()
                .map(|shard| Driven(MinCutGuessWave::new(n, c_sample, guess, shard.clone())))
                .collect()
        })
        .collect();
    let mut muxed = Multiplexed::build(cluster, per_instance);
    // Early-exit controller on the coordinator: the first guess to
    // overflow its skeleton budget retires every finer guess — their
    // staged `Ship` commands are discarded before they leave the machine,
    // so retired guesses contribute zero traffic to later combined rounds.
    let coordinator = muxed.remove(large).with_controller(Arc::new(|_ctx, slots| {
        if let Some(j) = slots
            .iter()
            .position(|s| matches!(s.program.0.outcome, Some(GuessOutcome::OverBudget)))
        {
            for slot in &mut slots[j + 1..] {
                if !slot.is_retired() {
                    slot.retire();
                }
            }
        }
    }));
    muxed.insert(large, coordinator);
    let outcome = {
        let mut scaled = CapacityFactor::scale(cluster, guesses.len());
        Executor::new("xcut", mode)
            .threads(threads)
            .run(scaled.cluster(), muxed)
    }?;
    let parallel_rounds = outcome.rounds;

    // The legacy largest-first scan over the per-guess verdicts: the first
    // over-budget guess aborts to the fallback, the first concentrated
    // estimate wins, anything else keeps scanning.
    let coordinator = &outcome.programs[large];
    let mut winner: Option<ApproxMinCut> = None;
    for (i, &guess) in guesses.iter().enumerate() {
        match &coordinator.instance(i).0.outcome {
            // Over budget, or retired behind an over-budget guess: the
            // legacy loop would have broken to the fallback here.
            None | Some(GuessOutcome::OverBudget) => break,
            Some(GuessOutcome::Judged {
                verdict,
                skeleton_edges,
            }) => match verdict {
                SkeletonVerdict::Disconnected | SkeletonVerdict::NotConcentrated => continue,
                SkeletonVerdict::Estimate(estimate) => {
                    winner = Some(ApproxMinCut {
                        estimate: *estimate,
                        lambda_guess: guess,
                        skeleton_edges: *skeleton_edges,
                        parallel_rounds,
                    });
                    break;
                }
            },
        }
    }
    if let Some(result) = winner {
        return Ok(result);
    }

    // Every guess failed (or the budget was hit): gather the whole graph —
    // the legacy fallback, as a short second engine pass.
    let programs: Vec<_> = shards
        .iter()
        .map(|shard| Driven(XCutFallback::new(n, shard.clone())))
        .collect();
    let mut fb = Executor::new("xcut-fb", mode)
        .threads(threads)
        .run(cluster, programs)?;
    let (estimate, m) = fb.programs[large]
        .0
        .result
        .take()
        .expect("large machine halts with the fallback result");
    Ok(ApproxMinCut {
        estimate,
        lambda_guess: 1,
        skeleton_edges: m,
        parallel_rounds: parallel_rounds + fb.rounds,
    })
}

/// The PR 4 sequential composition of the approximate min cut (guesses
/// issued one at a time), kept as the equivalence oracle for the batched
/// path — estimate, λ̂ guess, skeleton size, and RNG stream positions are
/// bit-identical to the legacy call-style loop.
///
/// # Errors
///
/// Propagates capacity violations in strict mode; see [`ExecError`].
pub fn approximate_min_cut_sequential(
    cluster: &mut Cluster,
    n: usize,
    edges: &ShardedVec<Edge>,
    epsilon: f64,
    mode: ExecMode,
) -> Result<ApproxMinCut, ExecError> {
    let programs: Vec<_> = MinCutApproxProgram::for_cluster(cluster, n, edges, epsilon)
        .into_iter()
        .map(Driven)
        .collect();
    let large = cluster.large().expect("min cut requires a large machine");
    let mut outcome = Executor::new("xcut", mode).run(cluster, programs)?;
    Ok(outcome.programs[large]
        .0
        .result
        .take()
        .expect("large machine halts with a result"))
}

/// Engine-backed twin of [`mpc_core::ported::approximate_mst_weight`],
/// **batched**: every `(1+ε)^j` threshold wave runs as an interleaved
/// instance of the [multi-program scheduler](crate::multiplex) — one
/// 3-round sketch-connectivity wave for *all* thresholds (the paper's
/// parallel figure) instead of one wave per threshold. The per-wave sketch
/// seeds are pre-drawn from the large machine's stream in ascending
/// threshold order — the legacy draw order — so estimate, thresholds,
/// component counts, *and* RNG stream positions are bit-identical to the
/// sequential composition and the legacy call-style path.
///
/// # Errors
///
/// Propagates capacity violations in strict mode; see [`ExecError`].
pub fn approximate_mst_weight(
    cluster: &mut Cluster,
    n: usize,
    edges: &ShardedVec<Edge>,
    epsilon: f64,
    mode: ExecMode,
) -> Result<MstApprox, ExecError> {
    approximate_mst_weight_opts(cluster, n, edges, epsilon, mode, 0)
}

/// [`approximate_mst_weight`] with an explicit worker-thread cap (0 =
/// executor default).
///
/// # Errors
///
/// See [`approximate_mst_weight`].
pub fn approximate_mst_weight_opts(
    cluster: &mut Cluster,
    n: usize,
    edges: &ShardedVec<Edge>,
    epsilon: f64,
    mode: ExecMode,
    threads: usize,
) -> Result<MstApprox, ExecError> {
    assert!(epsilon > 0.0, "epsilon must be positive");
    let large = cluster
        .large()
        .expect("MST estimation requires a large machine");
    assert!(
        edges.shard(large).is_empty(),
        "engine programs expect the input on the small machines only"
    );
    let owners: Arc<[MachineId]> = cluster.small_ids().into();
    assert!(!owners.is_empty(), "MST estimation requires small machines");
    // Threshold grid host-side (the legacy derivation), then one sketch
    // seed per threshold from the large machine's stream — the legacy
    // per-wave draws, performed up front in the legacy order.
    let w_max = edges.iter().map(|(_, e)| e.w).max().unwrap_or(1).max(1);
    let thresholds = mpc_core::ported::mst_approx::geometric_thresholds(w_max, epsilon);
    let phases = mpc_core::ported::connectivity::ConnectivityConfig::for_n(n).phases;
    let seeds: Vec<u64> = thresholds
        .iter()
        .map(|_| cluster.rng(large).random())
        .collect();
    let shards: Vec<Arc<[Edge]>> = (0..cluster.machines())
        .map(|mid| Arc::from(edges.shard(mid)))
        .collect();
    let per_instance: Vec<Vec<Driven<MstApproxWave>>> = thresholds
        .iter()
        .zip(&seeds)
        .map(|(&t, &seed)| {
            shards
                .iter()
                .map(|shard| {
                    Driven(MstApproxWave::new(
                        n,
                        phases,
                        t,
                        seed,
                        owners.clone(),
                        shard.clone(),
                    ))
                })
                .collect()
        })
        .collect();
    let muxed = Multiplexed::build(cluster, per_instance);
    let outcome = {
        let mut scaled = CapacityFactor::scale(cluster, thresholds.len());
        Executor::new("xmst", mode)
            .threads(threads)
            .run(scaled.cluster(), muxed)
    }?;
    let coordinator = &outcome.programs[large];
    let component_counts: Vec<usize> = (0..thresholds.len())
        .map(|i| {
            coordinator
                .instance(i)
                .0
                .count
                .expect("large machine halts with a per-wave count")
        })
        .collect();
    let estimate = mpc_core::ported::mst_approx::estimate_from_counts(
        n,
        w_max,
        &thresholds,
        &component_counts,
    );
    Ok(MstApprox {
        estimate,
        thresholds,
        component_counts,
        parallel_rounds: outcome.rounds,
    })
}

/// The PR 4 sequential composition of the MST-weight estimator (one wave
/// after another), kept as the equivalence oracle for the batched path —
/// estimate, thresholds, component counts, and RNG stream positions are
/// bit-identical to the legacy call-style loop.
///
/// # Errors
///
/// Propagates capacity violations in strict mode; see [`ExecError`].
pub fn approximate_mst_weight_sequential(
    cluster: &mut Cluster,
    n: usize,
    edges: &ShardedVec<Edge>,
    epsilon: f64,
    mode: ExecMode,
) -> Result<MstApprox, ExecError> {
    let programs: Vec<_> = MstApproxProgram::for_cluster(cluster, n, edges, epsilon)
        .into_iter()
        .map(Driven)
        .collect();
    let large = cluster
        .large()
        .expect("MST estimation requires a large machine");
    let mut outcome = Executor::new("xmst", mode).run(cluster, programs)?;
    Ok(outcome.programs[large]
        .0
        .result
        .take()
        .expect("large machine halts with a result"))
}
