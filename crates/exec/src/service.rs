//! The job-queue service: mixed-program multi-tenancy over one engine run.
//!
//! [`MixedWave`] (DESIGN.md §2.8) lets a spanner, a matching, and a min
//! cut share one bulk-synchronous run; this module adds the front end that
//! makes that a *serving* model. Callers [`submit`](Service::submit)
//! [`JobSpec`]s and get [`JobHandle`]s; [`run`](Service::run) drives a
//! single hooked engine run whose coordinator — a [`RoundHook`] executing
//! on the driving thread at the top of every round — retires finished
//! jobs, admits queued ones strictly FIFO while their capacity shares fit,
//! and keeps the cluster's capacity factor equal to the running total, so
//! strict enforcement always reflects the tenants actually on the wire.
//!
//! Determinism: admission decisions depend only on (round, queue order,
//! lane halt votes, inbox tags) — all bit-identical between serial and
//! pool execution — and each job's lanes draw from private
//! [`machine_rng`](mpc_runtime::machine_rng) streams minted from the job's
//! seed. The same submission sequence therefore yields the same admission
//! rounds, round log, and results in every mode, and each job's output is
//! bit-identical to a solo [`registry::run_job`] on a fresh cluster
//! seeded with the job's seed (for `spanner-weighted`/`apsp` the batched
//! solo path; for `mst-approx`/`mincut-approx` the
//! [`sequential_instances`](crate::registry::JobParams::sequential_instances)
//! solo path — their batched forms pre-draw host-side seeds, which has no
//! mid-wave equivalent).
//!
//! [`RoundHook`]: crate::driver::RoundHook

use crate::combinators::Driven;
use crate::driver::{ExecError, ExecMode, Executor, WaveRound};
use crate::mixed::{downcast_program, erase, ErasedProgram, MixedWave};
use crate::multiplex::Multiplexed;
use crate::programs::{
    BoruvkaProgram, ColoringProgram, ConnectivityProgram, MatchingProgram, MinCutApproxProgram,
    MinCutProgram, MisProgram, MstApproxProgram, MstProgram, SpannerProgram,
};
use crate::registry::{self, AlgoOutput, JobSpec};
use mpc_core::ported::connectivity::ConnectivityConfig;
use mpc_core::spanner::apsp::ApspOracle;
use mpc_core::spanner::{merge_class_results, weight_class_shards};
use mpc_runtime::telemetry::TraceEvent;
use mpc_runtime::{machine_rng, Cluster, ClusterConfig, MachineId};
use std::collections::VecDeque;
use std::sync::{Arc, Mutex};

// ---------------------------------------------------------------------------
// Job lifecycle
// ---------------------------------------------------------------------------

/// Where a submitted job is in its lifecycle.
///
/// Failure is a *per-job* event (DESIGN.md §2.9): an engine-level error
/// attributed to one tenant quarantines that job, possibly retries it
/// under its [`JobRetryPolicy`](crate::JobRetryPolicy), and at worst
/// completes it as [`Failed`](JobStatus::Failed) — the run itself, and
/// every other tenant, continues.
#[derive(Clone, Debug, PartialEq)]
pub enum JobStatus {
    /// Waiting in the FIFO queue for capacity shares.
    Queued,
    /// Admitted into the current mixed wave.
    Running,
    /// Finished; the result is waiting in the handle.
    Completed,
    /// Finished with an error — an algorithm-level failure, or an
    /// engine-level failure attributed to this job after its retry policy
    /// was exhausted. The run itself continued.
    Failed {
        /// The typed underlying error.
        error: ExecError,
    },
    /// Cancelled because it ran [`round_deadline`](crate::JobSpec::round_deadline)
    /// rounds past admission. Terminal: deadlines are not retried.
    DeadlineExceeded,
}

/// Shared job state behind a [`JobHandle`].
struct JobState {
    status: JobStatus,
    result: Option<Result<AlgoOutput, ExecError>>,
}

/// The caller's view of a submitted job: poll [`status`](JobHandle::status)
/// during/after a run, then [`take_result`](JobHandle::take_result).
pub struct JobHandle {
    id: u64,
    name: String,
    state: Arc<Mutex<JobState>>,
}

impl JobHandle {
    /// The service-assigned job id (dense, starting at 1 — also the tag on
    /// every wave message and telemetry event this job produces).
    pub fn id(&self) -> u64 {
        self.id
    }

    /// The registry name this job runs.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Current lifecycle state.
    pub fn status(&self) -> JobStatus {
        self.state.lock().unwrap().status.clone()
    }

    /// Takes the job's result out of the handle (`None` if the job has not
    /// finished, or the result was already taken).
    pub fn take_result(&self) -> Option<Result<AlgoOutput, ExecError>> {
        self.state.lock().unwrap().result.take()
    }
}

/// One completed job's scheduling record, as reported by [`ServiceRun`].
#[derive(Clone, Debug)]
pub struct JobRecord {
    /// Service-assigned job id.
    pub job: u64,
    /// Registry name.
    pub name: String,
    /// Capacity shares the job held while running.
    pub shares: usize,
    /// Round the coordinator admitted the job.
    pub admitted_round: u64,
    /// Round the coordinator observed completion (for jobs still in the
    /// final wave, the run's total round count).
    pub completed_round: u64,
    /// `completed_round - admitted_round`.
    pub rounds: u64,
    /// Whether the job finished with an error (algorithm-level, retry
    /// exhaustion, or a missed deadline).
    pub failed: bool,
    /// Admissions the job consumed (1 for a job that never needed a
    /// retry; 0 for a job failed fast by a zero-attempt policy).
    pub attempts: u32,
}

/// What one [`Service::run`] drained: total engine rounds plus one record
/// per job, in job-id (= submission) order.
#[derive(Debug)]
pub struct ServiceRun {
    /// Engine rounds the whole mixed run consumed.
    pub rounds: u64,
    /// Per-job admission/completion records, sorted by job id.
    pub records: Vec<JobRecord>,
}

// ---------------------------------------------------------------------------
// Internals
// ---------------------------------------------------------------------------

struct QueuedJob {
    id: u64,
    spec: JobSpec,
    state: Arc<Mutex<JobState>>,
    /// The attempt the next admission will consume (1-based).
    attempt: u32,
    /// Earliest service round the job may be admitted (linear backoff
    /// after a quarantine; 0 for first-time submissions).
    earliest: u64,
}

/// Consumes the finished per-machine lanes (index = machine id) and turns
/// them back into the algorithm's output.
type Extractor = Box<dyn FnOnce(Vec<Box<dyn ErasedProgram>>) -> Result<AlgoOutput, ExecError>>;

struct RunningJob {
    id: u64,
    shares: usize,
    admitted_round: u64,
    state: Arc<Mutex<JobState>>,
    extract: Extractor,
    /// The full spec, kept so a quarantined job can be resubmitted (its
    /// lanes are rebuilt from scratch on re-admission).
    spec: JobSpec,
    /// The admission attempt this incarnation consumed (1-based).
    attempt: u32,
}

/// What building a job's per-machine programs produced.
enum Built {
    /// Lanes to admit plus the paired extractor.
    Wave {
        programs: Vec<Box<dyn ErasedProgram>>,
        extract: Extractor,
    },
    /// Degenerate input (e.g. a weighted spanner with no edges): the
    /// result exists without touching the wave.
    Immediate(Result<AlgoOutput, ExecError>),
}

fn take_machine(boxes: Vec<Box<dyn ErasedProgram>>, mid: MachineId) -> Box<dyn ErasedProgram> {
    boxes
        .into_iter()
        .nth(mid)
        .expect("per-machine lane vector covers every machine")
}

/// The capacity shares a job occupies while running: its explicit
/// [`JobSpec::shares`] if set, otherwise derived from the program shape —
/// 1 for single-instance jobs, the non-empty weight-class count for the
/// batched weighted-spanner family (each class is a full spanner instance
/// on the wire).
fn derived_shares(spec: &JobSpec) -> usize {
    if spec.shares > 0 {
        return spec.shares;
    }
    match spec.name.as_str() {
        "spanner-weighted" | "apsp" => {
            if spec.name == "apsp" && spec.graph.edges().iter().all(|e| e.w == 1) {
                return 1; // unweighted apsp runs one plain spanner
            }
            let mut classes = std::collections::BTreeSet::new();
            for e in spec.graph.edges() {
                classes.insert(63 - e.w.max(1).leading_zeros());
            }
            classes.len().max(1)
        }
        _ => 1,
    }
}

/// Builds a job's per-machine programs and extractor, mirroring the
/// registry runners' construction (identical `for_cluster` calls, so the
/// lanes are exactly what a solo run would drive). Must run with the
/// cluster's capacity factor at 1 — the constructors snapshot solo
/// capacities.
fn build_job(spec: &JobSpec, cluster: &Cluster) -> Built {
    debug_assert_eq!(cluster.capacity_factor(), 1, "build jobs at solo capacity");
    let n = spec.graph.n();
    let edges = mpc_core::common::distribute_edges(cluster, &spec.graph);
    let large = cluster
        .large()
        .expect("the service requires a large machine");
    let params = spec.params.clone();
    match spec.name.as_str() {
        "connectivity" => {
            let config = params
                .connectivity
                .clone()
                .unwrap_or_else(|| ConnectivityConfig::for_n(n));
            Built::Wave {
                programs: ConnectivityProgram::for_cluster(cluster, n, &edges, &config)
                    .into_iter()
                    .map(erase)
                    .collect(),
                extract: Box::new(move |boxes| {
                    let p = downcast_program::<ConnectivityProgram>(take_machine(boxes, large));
                    Ok(AlgoOutput::Components(
                        p.result.expect("large machine halts with a result"),
                    ))
                }),
            }
        }
        "boruvka-msf" => Built::Wave {
            programs: BoruvkaProgram::for_cluster(cluster, &edges)
                .into_iter()
                .map(erase)
                .collect(),
            extract: Box::new(move |boxes| {
                let p = downcast_program::<BoruvkaProgram>(take_machine(boxes, large));
                Ok(AlgoOutput::Forest(
                    p.forest.expect("large machine halts with a forest"),
                ))
            }),
        },
        "mst" => Built::Wave {
            programs: MstProgram::for_cluster_with(cluster, n, &edges, &params.mst)
                .into_iter()
                .map(|p| erase(Driven(p)))
                .collect(),
            extract: Box::new(move |boxes| {
                let p = downcast_program::<Driven<MstProgram>>(take_machine(boxes, large));
                p.0.result
                    .expect("large machine halts with a result")
                    .map(AlgoOutput::Mst)
                    .map_err(|e| ExecError::Algorithm {
                        message: e.to_string(),
                    })
            }),
        },
        "matching" => Built::Wave {
            programs: MatchingProgram::for_cluster(cluster, n, &edges)
                .into_iter()
                .map(|p| erase(Driven(p)))
                .collect(),
            extract: Box::new(move |boxes| {
                let p = downcast_program::<Driven<MatchingProgram>>(take_machine(boxes, large));
                p.0.result
                    .expect("large machine halts with a result")
                    .map(AlgoOutput::Matching)
                    .map_err(|e| ExecError::Algorithm {
                        message: e.to_string(),
                    })
            }),
        },
        "spanner" => Built::Wave {
            programs: SpannerProgram::for_cluster(cluster, n, &edges, params.spanner_k)
                .into_iter()
                .map(|p| erase(Driven(p)))
                .collect(),
            extract: Box::new(move |boxes| {
                let p = downcast_program::<Driven<SpannerProgram>>(take_machine(boxes, large));
                Ok(AlgoOutput::Spanner(
                    p.0.result.expect("large machine halts with a result"),
                ))
            }),
        },
        "spanner-weighted" => {
            build_weighted_spanner(cluster, n, &edges, params.spanner_k, large, None)
        }
        "apsp" => {
            let k = ApspOracle::stretch_parameter(n);
            let weighted = edges.iter().any(|(_, e)| e.w != 1);
            let stretch_bound = if weighted { 12 * k - 1 } else { 6 * k - 1 };
            if weighted {
                build_weighted_spanner(cluster, n, &edges, k, large, Some(stretch_bound))
            } else {
                Built::Wave {
                    programs: SpannerProgram::for_cluster(cluster, n, &edges, k)
                        .into_iter()
                        .map(|p| erase(Driven(p)))
                        .collect(),
                    extract: Box::new(move |boxes| {
                        let p =
                            downcast_program::<Driven<SpannerProgram>>(take_machine(boxes, large));
                        let spanner = p.0.result.expect("large machine halts with a result");
                        let oracle =
                            ApspOracle::from_spanner(spanner.spanner.clone(), stretch_bound);
                        Ok(AlgoOutput::Apsp { oracle, spanner })
                    }),
                }
            }
        }
        "mst-approx" => Built::Wave {
            programs: MstApproxProgram::for_cluster(cluster, n, &edges, params.epsilon)
                .into_iter()
                .map(|p| erase(Driven(p)))
                .collect(),
            extract: Box::new(move |boxes| {
                let p = downcast_program::<Driven<MstApproxProgram>>(take_machine(boxes, large));
                Ok(AlgoOutput::MstApprox(
                    p.0.result.expect("large machine halts with a result"),
                ))
            }),
        },
        "mincut" => Built::Wave {
            programs: MinCutProgram::for_cluster(cluster, n, &edges, params.mincut_trials)
                .into_iter()
                .map(|p| erase(Driven(p)))
                .collect(),
            extract: Box::new(move |boxes| {
                let p = downcast_program::<Driven<MinCutProgram>>(take_machine(boxes, large));
                Ok(AlgoOutput::MinCut(
                    p.0.result.expect("large machine halts with a result"),
                ))
            }),
        },
        "mincut-approx" => Built::Wave {
            programs: MinCutApproxProgram::for_cluster(cluster, n, &edges, params.epsilon)
                .into_iter()
                .map(|p| erase(Driven(p)))
                .collect(),
            extract: Box::new(move |boxes| {
                let p = downcast_program::<Driven<MinCutApproxProgram>>(take_machine(boxes, large));
                Ok(AlgoOutput::MinCutApprox(
                    p.0.result.expect("large machine halts with a result"),
                ))
            }),
        },
        "mis" => Built::Wave {
            programs: MisProgram::for_cluster(cluster, n, &edges)
                .into_iter()
                .map(|p| erase(Driven(p)))
                .collect(),
            extract: Box::new(move |boxes| {
                let p = downcast_program::<Driven<MisProgram>>(take_machine(boxes, large));
                Ok(AlgoOutput::Mis(
                    p.0.result.expect("large machine halts with a result"),
                ))
            }),
        },
        "coloring" => Built::Wave {
            programs: ColoringProgram::for_cluster(cluster, n, &edges)
                .into_iter()
                .map(|p| erase(Driven(p)))
                .collect(),
            extract: Box::new(move |boxes| {
                let p = downcast_program::<Driven<ColoringProgram>>(take_machine(boxes, large));
                Ok(AlgoOutput::Coloring(
                    p.0.result.expect("large machine halts with a result"),
                ))
            }),
        },
        other => Built::Immediate(Err(ExecError::Algorithm {
            message: format!("no registered algorithm named {other:?}"),
        })),
    }
}

/// The batched weighted-spanner lane shared by `spanner-weighted` and
/// weighted `apsp`: all factor-2 weight classes as a [`Multiplexed`]
/// program (the same construction as the solo adapter), merged back into
/// one spanner at extraction. `apsp_stretch` switches the output variant.
fn build_weighted_spanner(
    cluster: &Cluster,
    n: usize,
    edges: &mpc_runtime::ShardedVec<mpc_graph::Edge>,
    k: usize,
    large: MachineId,
    apsp_stretch: Option<usize>,
) -> Built {
    let classes = weight_class_shards(edges);
    if classes.shards.is_empty() {
        let spanner = merge_class_results(n, &classes, Vec::new());
        return Built::Immediate(Ok(match apsp_stretch {
            Some(stretch_bound) => AlgoOutput::Apsp {
                oracle: ApspOracle::from_spanner(spanner.spanner.clone(), stretch_bound),
                spanner,
            },
            None => AlgoOutput::Spanner(spanner),
        }));
    }
    let per_instance: Vec<Vec<Driven<SpannerProgram>>> = classes
        .shards
        .iter()
        .map(|(_c, class_edges)| {
            SpannerProgram::for_cluster(cluster, n, class_edges, k)
                .into_iter()
                .map(Driven)
                .collect()
        })
        .collect();
    let programs = Multiplexed::build(cluster, per_instance)
        .into_iter()
        .map(erase)
        .collect();
    Built::Wave {
        programs,
        extract: Box::new(move |boxes| {
            let mut coordinator =
                downcast_program::<Multiplexed<Driven<SpannerProgram>>>(take_machine(boxes, large));
            let results: Vec<_> = (0..coordinator.instances())
                .map(|i| {
                    coordinator
                        .instance_mut(i)
                        .0
                        .result
                        .take()
                        .expect("large machine halts with a per-class result")
                })
                .collect();
            let spanner = merge_class_results(n, &classes, results);
            Ok(match apsp_stretch {
                Some(stretch_bound) => AlgoOutput::Apsp {
                    oracle: ApspOracle::from_spanner(spanner.spanner.clone(), stretch_bound),
                    spanner,
                },
                None => AlgoOutput::Spanner(spanner),
            })
        }),
    }
}

/// Marks a job finished: flips its handle state, appends its record, and
/// emits the [`TraceEvent::JobCompleted`] instant.
#[allow(clippy::too_many_arguments)]
fn finish_job(
    cluster: &Cluster,
    records: &mut Vec<JobRecord>,
    id: u64,
    name: String,
    shares: usize,
    admitted_round: u64,
    state: &Arc<Mutex<JobState>>,
    round: u64,
    attempts: u32,
    result: Result<AlgoOutput, ExecError>,
) {
    let failed = result.is_err();
    {
        let mut s = state.lock().unwrap();
        s.status = match &result {
            Ok(_) => JobStatus::Completed,
            Err(e) => JobStatus::Failed { error: e.clone() },
        };
        s.result = Some(result);
    }
    let rounds = round - admitted_round;
    records.push(JobRecord {
        job: id,
        name,
        shares,
        admitted_round,
        completed_round: round,
        rounds,
        failed,
        attempts,
    });
    if let Some(sink) = cluster.trace_sink() {
        sink.record(&TraceEvent::JobCompleted {
            round,
            job: id,
            rounds,
            failed,
        });
    }
}

/// Marks a job terminally failed *without* result extraction — the
/// quarantine path's exit (retry exhaustion, a zero-attempt policy, or a
/// missed deadline). Emits [`TraceEvent::JobFailed`] instead of
/// `JobCompleted`: the job's lanes never retired, they were pulled.
#[allow(clippy::too_many_arguments)]
fn fail_job(
    cluster: &Cluster,
    records: &mut Vec<JobRecord>,
    id: u64,
    name: String,
    shares: usize,
    admitted_round: u64,
    state: &Arc<Mutex<JobState>>,
    round: u64,
    attempts: u32,
    status: JobStatus,
    error: ExecError,
) {
    if let Some(sink) = cluster.trace_sink() {
        sink.record(&TraceEvent::JobFailed {
            round,
            job: id,
            error: error.to_string(),
        });
    }
    {
        let mut s = state.lock().unwrap();
        s.status = status;
        s.result = Some(Err(error));
    }
    records.push(JobRecord {
        job: id,
        name,
        shares,
        admitted_round,
        completed_round: round,
        rounds: round - admitted_round,
        failed: true,
        attempts,
    });
}

// ---------------------------------------------------------------------------
// The service
// ---------------------------------------------------------------------------

/// A multi-tenant job queue over one heterogeneous cluster.
///
/// ```
/// use mpc_exec::{ExecMode, JobSpec, JobStatus, Service};
/// use mpc_graph::generators;
/// use std::sync::Arc;
///
/// let g = Arc::new(generators::gnm(96, 320, 7));
/// let mut svc = Service::new(
///     mpc_runtime::ClusterConfig::new(96, 320).seed(11).polylog_exponent(2.6),
/// );
/// let spanner = svc.submit(JobSpec::new("spanner", g.clone()).seed(1)).unwrap();
/// let matching = svc.submit(JobSpec::new("matching", g.clone()).seed(2)).unwrap();
/// let mis = svc.submit(JobSpec::new("mis", g).seed(3)).unwrap();
/// let run = svc.run(ExecMode::Serial).unwrap();
/// assert_eq!(run.records.len(), 3);
/// assert_eq!(spanner.status(), JobStatus::Completed);
/// assert!(matching.take_result().unwrap().is_ok());
/// assert!(mis.take_result().unwrap().is_ok());
/// ```
pub struct Service {
    config: ClusterConfig,
    capacity_shares: usize,
    max_rounds: u64,
    threads: usize,
    next_id: u64,
    queue: VecDeque<QueuedJob>,
}

impl Service {
    /// A service whose [`run`](Service::run) builds its cluster from
    /// `config`. No share limit: every queued job is admitted immediately.
    pub fn new(config: ClusterConfig) -> Self {
        Service {
            config,
            capacity_shares: 0,
            max_rounds: 0,
            threads: 0,
            next_id: 1,
            queue: VecDeque::new(),
        }
    }

    /// Caps the total capacity shares running at once (0 = unlimited).
    /// Admission is strictly FIFO: a job that does not fit blocks the jobs
    /// behind it until retirement frees shares. A single job wider than
    /// the whole limit is admitted alone rather than deadlocking.
    pub fn capacity_shares(mut self, shares: usize) -> Self {
        self.capacity_shares = shares;
        self
    }

    /// Round-limit override for the underlying executor (0 = its default).
    pub fn max_rounds(mut self, limit: u64) -> Self {
        self.max_rounds = limit;
        self
    }

    /// Worker-thread cap for [`ExecMode::Parallel`] runs (0 = default).
    pub fn threads(mut self, n: usize) -> Self {
        self.threads = n;
        self
    }

    /// Jobs waiting for the next [`run`](Service::run).
    pub fn queued(&self) -> usize {
        self.queue.len()
    }

    /// Enqueues a job, validating its registry name up front.
    ///
    /// # Errors
    ///
    /// [`ExecError::Algorithm`] when `spec.name` is not a registered
    /// algorithm — nothing is enqueued.
    pub fn submit(&mut self, spec: JobSpec) -> Result<JobHandle, ExecError> {
        if registry::get(&spec.name).is_none() {
            return Err(ExecError::Algorithm {
                message: format!("no registered algorithm named {:?}", spec.name),
            });
        }
        let id = self.next_id;
        self.next_id += 1;
        let state = Arc::new(Mutex::new(JobState {
            status: JobStatus::Queued,
            result: None,
        }));
        let handle = JobHandle {
            id,
            name: spec.name.clone(),
            state: Arc::clone(&state),
        };
        self.queue.push_back(QueuedJob {
            id,
            spec,
            state,
            attempt: 1,
            earliest: 0,
        });
        Ok(handle)
    }

    /// Drains the queue in one engine run on a fresh cluster built from
    /// this service's config.
    ///
    /// # Errors
    ///
    /// Engine-level failures attributable to one tenant (capacity
    /// violations, unrecoverable crashes) quarantine that job and the run
    /// continues; per-job algorithm errors only fail that job. Run-global
    /// pathologies (the round limit, hook errors) abort the whole run.
    /// See [`run_on`](Service::run_on).
    pub fn run(&mut self, mode: ExecMode) -> Result<ServiceRun, ExecError> {
        let mut cluster = Cluster::new(self.config.clone());
        self.run_on(&mut cluster, mode)
    }

    /// Whether an engine-level error is attributable to one tenant and
    /// survivable by the rest (DESIGN.md §2.9): capacity violations and
    /// unrecoverable crashes are; the round limit and hook-level errors
    /// are run-global pathologies that still abort everything.
    fn quarantinable(e: &ExecError) -> bool {
        matches!(e, ExecError::Model(_) | ExecError::Unrecoverable { .. })
    }

    /// The driver round an engine error surfaced on, if it carries one.
    fn error_round(e: &ExecError) -> Option<u64> {
        match e {
            ExecError::Unrecoverable { round, .. } => Some(*round),
            ExecError::Model(
                mpc_runtime::ModelViolation::SendOverflow { round, .. }
                | mpc_runtime::ModelViolation::RecvOverflow { round, .. }
                | mpc_runtime::ModelViolation::MemoryOverflow { round, .. },
            ) => Some(*round),
            _ => None,
        }
    }

    /// [`run`](Service::run) against a caller-owned cluster — the entry
    /// point for attaching trace sinks or fault plans, and for reading the
    /// round log afterwards. The cluster's capacity factor must be 1 on
    /// entry; it is 1 again on return (success or failure).
    ///
    /// # Failure isolation (DESIGN.md §2.9)
    ///
    /// A [quarantinable](Self::quarantinable) engine error does not abort
    /// the run. The service attributes it to the *marginal tenant* — the
    /// most recently admitted running job (ties broken toward the higher
    /// id) — quarantines that job, refunds its capacity shares, restarts
    /// the wave, and requeues the survivors at the front of the queue in
    /// their original order. The quarantined job is resubmitted with
    /// linear backoff while its [`JobRetryPolicy`](crate::JobRetryPolicy)
    /// has attempts left, and otherwise completes as
    /// [`JobStatus::Failed`] with the typed error. Survivors' results are
    /// bit-identical to a run that never contained the culprit: every
    /// lane draws only from its job's private RNG streams, so a rebuilt
    /// lane replays exactly.
    ///
    /// # Errors
    ///
    /// Non-quarantinable engine failures (the round limit, hook errors)
    /// abort the whole run: jobs already admitted are marked
    /// [`JobStatus::Failed`] (their lanes died with the run); jobs still
    /// queued return to the service queue untouched.
    pub fn run_on(
        &mut self,
        cluster: &mut Cluster,
        mode: ExecMode,
    ) -> Result<ServiceRun, ExecError> {
        assert_eq!(
            cluster.capacity_factor(),
            1,
            "the service manages the capacity factor; start a run at 1"
        );
        let machines = cluster.machines();
        let limit = if self.capacity_shares == 0 {
            usize::MAX
        } else {
            self.capacity_shares
        };
        let mut queue = std::mem::take(&mut self.queue);
        let mut running: Vec<RunningJob> = Vec::new();
        let mut records: Vec<JobRecord> = Vec::new();

        let mut exec = Executor::new("svc", mode);
        if self.threads > 0 {
            exec = exec.threads(self.threads);
        }
        if self.max_rounds > 0 {
            exec = exec.max_rounds(self.max_rounds);
        }

        // Service rounds stay monotone across wave restarts: `base` is
        // added to every driver round for records, events, deadlines, and
        // backoff gates.
        let mut base: u64 = 0;
        let outcome = loop {
            let waves = MixedWave::for_cluster(cluster);
            let last_hook = std::cell::Cell::new(0u64);
            let result = {
                let running = &mut running;
                let records = &mut records;
                let queue = &mut queue;
                let last_hook = &last_hook;
                let mut hook = |cluster: &mut Cluster,
                                view: &WaveRound<'_, MixedWave>|
                 -> Result<bool, ExecError> {
                    // The service-round clock (monotone across restarts).
                    let round = base + view.round();
                    last_hook.set(view.round());

                    // 1. Retirement: a job is done when every one of its
                    // lanes has voted to halt and no mail tagged with it
                    // is pending. The peek-only scan leaves the round
                    // clean; removal marks it dirty, forcing a checkpoint
                    // under fault plans.
                    let mut i = 0;
                    while i < running.len() {
                        let job = running[i].id;
                        let done = (0..machines).all(|mid| {
                            view.peek(mid, |wave, inbox| {
                                wave.lane_idle(job) && !inbox.iter().any(|(_, m)| m.job == job)
                            })
                        });
                        if !done {
                            i += 1;
                            continue;
                        }
                        let rj = running.remove(i);
                        let boxes: Vec<_> = (0..machines)
                            .map(|mid| {
                                view.with(mid, |wave| {
                                    wave.remove(job)
                                        .expect("a running job has a lane on every machine")
                                })
                            })
                            .collect();
                        let outcome = (rj.extract)(boxes);
                        finish_job(
                            cluster,
                            records,
                            rj.id,
                            rj.spec.name.clone(),
                            rj.shares,
                            rj.admitted_round,
                            &rj.state,
                            round,
                            rj.attempt,
                            outcome,
                        );
                    }

                    // 2. Deadlines: a job still running `round_deadline`
                    // rounds past admission is cancelled through the
                    // quarantine path — lanes pulled, in-flight mail
                    // purged, shares refunded so the queue behind it can
                    // admit this same round. Terminal: no retry.
                    let mut i = 0;
                    while i < running.len() {
                        let over = running[i]
                            .spec
                            .round_deadline
                            .is_some_and(|d| round - running[i].admitted_round >= d);
                        if !over {
                            i += 1;
                            continue;
                        }
                        let rj = running.remove(i);
                        let deadline = rj.spec.round_deadline.expect("checked above");
                        for mid in 0..machines {
                            view.with_mail(mid, |wave, inbox| {
                                wave.quarantine(rj.id);
                                inbox.retain(|(_, m)| m.job != rj.id);
                            });
                        }
                        if let Some(sink) = cluster.trace_sink() {
                            sink.record(&TraceEvent::JobQuarantined {
                                round,
                                job: rj.id,
                                reason: "deadline".into(),
                            });
                        }
                        fail_job(
                            cluster,
                            records,
                            rj.id,
                            rj.spec.name.clone(),
                            rj.shares,
                            rj.admitted_round,
                            &rj.state,
                            round,
                            rj.attempt,
                            JobStatus::DeadlineExceeded,
                            ExecError::RoundLimit { limit: deadline },
                        );
                    }

                    // 3. Admission: strict FIFO while shares fit, with
                    // lanes built at solo (factor-1) capacity — exactly
                    // the snapshots a solo run's constructors would take.
                    // A re-queued job under backoff gates the queue (FIFO
                    // order is part of the determinism contract).
                    if !queue.is_empty() {
                        cluster.set_capacity_factor(1);
                    }
                    while let Some(front) = queue.front() {
                        if round < front.earliest {
                            break;
                        }
                        // A zero-attempt policy fails fast without ever
                        // touching the wave: zero wire impact, so the
                        // surviving tenants' round log is bit-identical
                        // to a queue that never contained this job.
                        if front.spec.retry.max_attempts == 0 {
                            let qj = queue.pop_front().expect("front was just inspected");
                            let shares = derived_shares(&qj.spec);
                            fail_job(
                                cluster,
                                records,
                                qj.id,
                                qj.spec.name.clone(),
                                shares,
                                round,
                                &qj.state,
                                round,
                                0,
                                JobStatus::Failed {
                                    error: ExecError::Algorithm {
                                        message: "retry policy allows zero admission attempts"
                                            .into(),
                                    },
                                },
                                ExecError::Algorithm {
                                    message: "retry policy allows zero admission attempts".into(),
                                },
                            );
                            continue;
                        }
                        let shares = derived_shares(&front.spec);
                        let held: usize = running.iter().map(|r| r.shares).sum();
                        if held + shares > limit && !(running.is_empty() && shares > limit) {
                            break;
                        }
                        let qj = queue.pop_front().expect("front was just inspected");
                        if let Some(sink) = cluster.trace_sink() {
                            sink.record(&TraceEvent::JobAdmitted {
                                round,
                                job: qj.id,
                                name: qj.spec.name.clone(),
                                shares,
                            });
                        }
                        match build_job(&qj.spec, cluster) {
                            Built::Immediate(outcome) => {
                                finish_job(
                                    cluster,
                                    records,
                                    qj.id,
                                    qj.spec.name.clone(),
                                    shares,
                                    round,
                                    &qj.state,
                                    round,
                                    qj.attempt,
                                    outcome,
                                );
                            }
                            Built::Wave { programs, extract } => {
                                qj.state.lock().unwrap().status = JobStatus::Running;
                                for (mid, program) in programs.into_iter().enumerate() {
                                    view.with(mid, |wave| {
                                        wave.admit(
                                            qj.id,
                                            program,
                                            machine_rng(qj.spec.seed, mid),
                                            view.round(),
                                        );
                                    });
                                    view.wake(mid);
                                }
                                running.push(RunningJob {
                                    id: qj.id,
                                    shares,
                                    admitted_round: round,
                                    state: qj.state,
                                    extract,
                                    spec: qj.spec,
                                    attempt: qj.attempt,
                                });
                            }
                        }
                    }

                    // 4. The live capacity factor tracks the running
                    // total, so strict enforcement scales with the
                    // tenants on the wire.
                    let held: usize = running.iter().map(|r| r.shares).sum();
                    cluster.set_capacity_factor(held.max(1));
                    Ok(!queue.is_empty())
                };
                exec.run_hooked(cluster, waves, &mut hook)
            };
            cluster.set_capacity_factor(1);

            let e = match result {
                Ok(outcome) => break outcome,
                Err(e) => e,
            };
            if !Self::quarantinable(&e) || running.is_empty() {
                // Not attributable to one tenant: admitted lanes died
                // with the run; queued jobs survive in the service queue.
                for rj in running.drain(..) {
                    rj.state.lock().unwrap().status = JobStatus::Failed { error: e.clone() };
                }
                self.queue = queue;
                return Err(e);
            }

            // Blast-radius isolation: attribute the failure to the
            // marginal tenant — the most recently admitted job (it pushed
            // the wave over) — quarantine it, and restart the wave with
            // the survivors requeued at the front in their original
            // admission order.
            let round = base + Self::error_round(&e).unwrap_or_else(|| last_hook.get());
            let at = running
                .iter()
                .enumerate()
                .max_by_key(|(_, r)| (r.admitted_round, r.id))
                .map(|(i, _)| i)
                .expect("running is non-empty");
            let culprit = running.remove(at);
            if let Some(sink) = cluster.trace_sink() {
                sink.record(&TraceEvent::JobQuarantined {
                    round,
                    job: culprit.id,
                    reason: e.to_string(),
                });
            }

            let mut survivors: Vec<RunningJob> = std::mem::take(&mut running);
            survivors.sort_by_key(|r| (r.admitted_round, r.id));
            let survivor_count = survivors.len();
            for rj in survivors.into_iter().rev() {
                rj.state.lock().unwrap().status = JobStatus::Queued;
                queue.push_front(QueuedJob {
                    id: rj.id,
                    spec: rj.spec,
                    state: rj.state,
                    attempt: rj.attempt,
                    earliest: 0,
                });
            }

            if culprit.attempt < culprit.spec.retry.max_attempts {
                // Linear backoff: failure k (1-based) delays re-admission
                // by k * backoff_rounds service rounds.
                let attempt = culprit.attempt + 1;
                let earliest =
                    round + u64::from(culprit.attempt) * culprit.spec.retry.backoff_rounds;
                if let Some(sink) = cluster.trace_sink() {
                    sink.record(&TraceEvent::JobRetried {
                        round,
                        job: culprit.id,
                        attempt: u64::from(attempt),
                    });
                }
                culprit.state.lock().unwrap().status = JobStatus::Queued;
                // Directly behind the requeued survivors, ahead of
                // never-admitted jobs: the formerly-running cohort drains
                // before the queue's tail, in its original order.
                queue.insert(
                    survivor_count,
                    QueuedJob {
                        id: culprit.id,
                        spec: culprit.spec,
                        state: culprit.state,
                        attempt,
                        earliest,
                    },
                );
            } else {
                fail_job(
                    cluster,
                    &mut records,
                    culprit.id,
                    culprit.spec.name.clone(),
                    culprit.shares,
                    culprit.admitted_round,
                    &culprit.state,
                    round,
                    culprit.attempt,
                    JobStatus::Failed { error: e.clone() },
                    e.clone(),
                );
            }

            // The crashed wave may have left machines quarantined in the
            // cost model with no recovery to lift it; the restarted wave
            // starts from a full roster. (No-op for healthy machines and
            // fault-free models.)
            for mid in 0..machines {
                cluster.restore_machine(mid);
            }
            base = round + 1;
        };

        // Jobs that halted in the final round never saw another hook call;
        // their lanes sit in the returned wave states.
        let mut waves = outcome.programs;
        for rj in running.drain(..) {
            let boxes: Vec<_> = waves
                .iter_mut()
                .map(|wave| {
                    wave.remove(rj.id)
                        .expect("a running job has a lane on every machine")
                })
                .collect();
            let job_outcome = (rj.extract)(boxes);
            finish_job(
                cluster,
                &mut records,
                rj.id,
                rj.spec.name.clone(),
                rj.shares,
                rj.admitted_round,
                &rj.state,
                base + outcome.rounds,
                rj.attempt,
                job_outcome,
            );
        }

        records.sort_by_key(|r| r.job);
        Ok(ServiceRun {
            rounds: base + outcome.rounds,
            records,
        })
    }
}
