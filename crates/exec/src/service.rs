//! The job-queue service: mixed-program multi-tenancy over one engine run.
//!
//! [`MixedWave`] (DESIGN.md §2.8) lets a spanner, a matching, and a min
//! cut share one bulk-synchronous run; this module adds the front end that
//! makes that a *serving* model. Callers [`submit`](Service::submit)
//! [`JobSpec`]s and get [`JobHandle`]s; [`run`](Service::run) drives a
//! single hooked engine run whose coordinator — a [`RoundHook`] executing
//! on the driving thread at the top of every round — retires finished
//! jobs, admits queued ones strictly FIFO while their capacity shares fit,
//! and keeps the cluster's capacity factor equal to the running total, so
//! strict enforcement always reflects the tenants actually on the wire.
//!
//! Determinism: admission decisions depend only on (round, queue order,
//! lane halt votes, inbox tags) — all bit-identical between serial and
//! pool execution — and each job's lanes draw from private
//! [`machine_rng`](mpc_runtime::machine_rng) streams minted from the job's
//! seed. The same submission sequence therefore yields the same admission
//! rounds, round log, and results in every mode, and each job's output is
//! bit-identical to a solo [`registry::run_job`] on a fresh cluster
//! seeded with the job's seed (for `spanner-weighted`/`apsp` the batched
//! solo path; for `mst-approx`/`mincut-approx` the
//! [`sequential_instances`](crate::registry::JobParams::sequential_instances)
//! solo path — their batched forms pre-draw host-side seeds, which has no
//! mid-wave equivalent).
//!
//! [`RoundHook`]: crate::driver::RoundHook

use crate::combinators::Driven;
use crate::driver::{ExecError, ExecMode, Executor, WaveRound};
use crate::mixed::{downcast_program, erase, ErasedProgram, MixedWave};
use crate::multiplex::Multiplexed;
use crate::programs::{
    BoruvkaProgram, ColoringProgram, ConnectivityProgram, MatchingProgram, MinCutApproxProgram,
    MinCutProgram, MisProgram, MstApproxProgram, MstProgram, SpannerProgram,
};
use crate::registry::{self, AlgoOutput, JobSpec};
use mpc_core::ported::connectivity::ConnectivityConfig;
use mpc_core::spanner::apsp::ApspOracle;
use mpc_core::spanner::{merge_class_results, weight_class_shards};
use mpc_runtime::telemetry::TraceEvent;
use mpc_runtime::{machine_rng, Cluster, ClusterConfig, MachineId};
use std::collections::VecDeque;
use std::sync::{Arc, Mutex};

// ---------------------------------------------------------------------------
// Job lifecycle
// ---------------------------------------------------------------------------

/// Where a submitted job is in its lifecycle.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum JobStatus {
    /// Waiting in the FIFO queue for capacity shares.
    Queued,
    /// Admitted into the current mixed wave.
    Running,
    /// Finished; the result is waiting in the handle.
    Completed,
    /// Finished with an algorithm-level error (the run itself continued).
    Failed,
}

/// Shared job state behind a [`JobHandle`].
struct JobState {
    status: JobStatus,
    result: Option<Result<AlgoOutput, ExecError>>,
}

/// The caller's view of a submitted job: poll [`status`](JobHandle::status)
/// during/after a run, then [`take_result`](JobHandle::take_result).
pub struct JobHandle {
    id: u64,
    name: String,
    state: Arc<Mutex<JobState>>,
}

impl JobHandle {
    /// The service-assigned job id (dense, starting at 1 — also the tag on
    /// every wave message and telemetry event this job produces).
    pub fn id(&self) -> u64 {
        self.id
    }

    /// The registry name this job runs.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Current lifecycle state.
    pub fn status(&self) -> JobStatus {
        self.state.lock().unwrap().status
    }

    /// Takes the job's result out of the handle (`None` if the job has not
    /// finished, or the result was already taken).
    pub fn take_result(&self) -> Option<Result<AlgoOutput, ExecError>> {
        self.state.lock().unwrap().result.take()
    }
}

/// One completed job's scheduling record, as reported by [`ServiceRun`].
#[derive(Clone, Debug)]
pub struct JobRecord {
    /// Service-assigned job id.
    pub job: u64,
    /// Registry name.
    pub name: String,
    /// Capacity shares the job held while running.
    pub shares: usize,
    /// Round the coordinator admitted the job.
    pub admitted_round: u64,
    /// Round the coordinator observed completion (for jobs still in the
    /// final wave, the run's total round count).
    pub completed_round: u64,
    /// `completed_round - admitted_round`.
    pub rounds: u64,
    /// Whether the job finished with an algorithm-level error.
    pub failed: bool,
}

/// What one [`Service::run`] drained: total engine rounds plus one record
/// per job, in job-id (= submission) order.
#[derive(Debug)]
pub struct ServiceRun {
    /// Engine rounds the whole mixed run consumed.
    pub rounds: u64,
    /// Per-job admission/completion records, sorted by job id.
    pub records: Vec<JobRecord>,
}

// ---------------------------------------------------------------------------
// Internals
// ---------------------------------------------------------------------------

struct QueuedJob {
    id: u64,
    spec: JobSpec,
    state: Arc<Mutex<JobState>>,
}

/// Consumes the finished per-machine lanes (index = machine id) and turns
/// them back into the algorithm's output.
type Extractor = Box<dyn FnOnce(Vec<Box<dyn ErasedProgram>>) -> Result<AlgoOutput, ExecError>>;

struct RunningJob {
    id: u64,
    name: String,
    shares: usize,
    admitted_round: u64,
    state: Arc<Mutex<JobState>>,
    extract: Extractor,
}

/// What building a job's per-machine programs produced.
enum Built {
    /// Lanes to admit plus the paired extractor.
    Wave {
        programs: Vec<Box<dyn ErasedProgram>>,
        extract: Extractor,
    },
    /// Degenerate input (e.g. a weighted spanner with no edges): the
    /// result exists without touching the wave.
    Immediate(Result<AlgoOutput, ExecError>),
}

fn take_machine(boxes: Vec<Box<dyn ErasedProgram>>, mid: MachineId) -> Box<dyn ErasedProgram> {
    boxes
        .into_iter()
        .nth(mid)
        .expect("per-machine lane vector covers every machine")
}

/// The capacity shares a job occupies while running: its explicit
/// [`JobSpec::shares`] if set, otherwise derived from the program shape —
/// 1 for single-instance jobs, the non-empty weight-class count for the
/// batched weighted-spanner family (each class is a full spanner instance
/// on the wire).
fn derived_shares(spec: &JobSpec) -> usize {
    if spec.shares > 0 {
        return spec.shares;
    }
    match spec.name.as_str() {
        "spanner-weighted" | "apsp" => {
            if spec.name == "apsp" && spec.graph.edges().iter().all(|e| e.w == 1) {
                return 1; // unweighted apsp runs one plain spanner
            }
            let mut classes = std::collections::BTreeSet::new();
            for e in spec.graph.edges() {
                classes.insert(63 - e.w.max(1).leading_zeros());
            }
            classes.len().max(1)
        }
        _ => 1,
    }
}

/// Builds a job's per-machine programs and extractor, mirroring the
/// registry runners' construction (identical `for_cluster` calls, so the
/// lanes are exactly what a solo run would drive). Must run with the
/// cluster's capacity factor at 1 — the constructors snapshot solo
/// capacities.
fn build_job(spec: &JobSpec, cluster: &Cluster) -> Built {
    debug_assert_eq!(cluster.capacity_factor(), 1, "build jobs at solo capacity");
    let n = spec.graph.n();
    let edges = mpc_core::common::distribute_edges(cluster, &spec.graph);
    let large = cluster
        .large()
        .expect("the service requires a large machine");
    let params = spec.params.clone();
    match spec.name.as_str() {
        "connectivity" => {
            let config = params
                .connectivity
                .clone()
                .unwrap_or_else(|| ConnectivityConfig::for_n(n));
            Built::Wave {
                programs: ConnectivityProgram::for_cluster(cluster, n, &edges, &config)
                    .into_iter()
                    .map(erase)
                    .collect(),
                extract: Box::new(move |boxes| {
                    let p = downcast_program::<ConnectivityProgram>(take_machine(boxes, large));
                    Ok(AlgoOutput::Components(
                        p.result.expect("large machine halts with a result"),
                    ))
                }),
            }
        }
        "boruvka-msf" => Built::Wave {
            programs: BoruvkaProgram::for_cluster(cluster, &edges)
                .into_iter()
                .map(erase)
                .collect(),
            extract: Box::new(move |boxes| {
                let p = downcast_program::<BoruvkaProgram>(take_machine(boxes, large));
                Ok(AlgoOutput::Forest(
                    p.forest.expect("large machine halts with a forest"),
                ))
            }),
        },
        "mst" => Built::Wave {
            programs: MstProgram::for_cluster_with(cluster, n, &edges, &params.mst)
                .into_iter()
                .map(|p| erase(Driven(p)))
                .collect(),
            extract: Box::new(move |boxes| {
                let p = downcast_program::<Driven<MstProgram>>(take_machine(boxes, large));
                p.0.result
                    .expect("large machine halts with a result")
                    .map(AlgoOutput::Mst)
                    .map_err(|e| ExecError::Algorithm {
                        message: e.to_string(),
                    })
            }),
        },
        "matching" => Built::Wave {
            programs: MatchingProgram::for_cluster(cluster, n, &edges)
                .into_iter()
                .map(|p| erase(Driven(p)))
                .collect(),
            extract: Box::new(move |boxes| {
                let p = downcast_program::<Driven<MatchingProgram>>(take_machine(boxes, large));
                p.0.result
                    .expect("large machine halts with a result")
                    .map(AlgoOutput::Matching)
                    .map_err(|e| ExecError::Algorithm {
                        message: e.to_string(),
                    })
            }),
        },
        "spanner" => Built::Wave {
            programs: SpannerProgram::for_cluster(cluster, n, &edges, params.spanner_k)
                .into_iter()
                .map(|p| erase(Driven(p)))
                .collect(),
            extract: Box::new(move |boxes| {
                let p = downcast_program::<Driven<SpannerProgram>>(take_machine(boxes, large));
                Ok(AlgoOutput::Spanner(
                    p.0.result.expect("large machine halts with a result"),
                ))
            }),
        },
        "spanner-weighted" => {
            build_weighted_spanner(cluster, n, &edges, params.spanner_k, large, None)
        }
        "apsp" => {
            let k = ApspOracle::stretch_parameter(n);
            let weighted = edges.iter().any(|(_, e)| e.w != 1);
            let stretch_bound = if weighted { 12 * k - 1 } else { 6 * k - 1 };
            if weighted {
                build_weighted_spanner(cluster, n, &edges, k, large, Some(stretch_bound))
            } else {
                Built::Wave {
                    programs: SpannerProgram::for_cluster(cluster, n, &edges, k)
                        .into_iter()
                        .map(|p| erase(Driven(p)))
                        .collect(),
                    extract: Box::new(move |boxes| {
                        let p =
                            downcast_program::<Driven<SpannerProgram>>(take_machine(boxes, large));
                        let spanner = p.0.result.expect("large machine halts with a result");
                        let oracle =
                            ApspOracle::from_spanner(spanner.spanner.clone(), stretch_bound);
                        Ok(AlgoOutput::Apsp { oracle, spanner })
                    }),
                }
            }
        }
        "mst-approx" => Built::Wave {
            programs: MstApproxProgram::for_cluster(cluster, n, &edges, params.epsilon)
                .into_iter()
                .map(|p| erase(Driven(p)))
                .collect(),
            extract: Box::new(move |boxes| {
                let p = downcast_program::<Driven<MstApproxProgram>>(take_machine(boxes, large));
                Ok(AlgoOutput::MstApprox(
                    p.0.result.expect("large machine halts with a result"),
                ))
            }),
        },
        "mincut" => Built::Wave {
            programs: MinCutProgram::for_cluster(cluster, n, &edges, params.mincut_trials)
                .into_iter()
                .map(|p| erase(Driven(p)))
                .collect(),
            extract: Box::new(move |boxes| {
                let p = downcast_program::<Driven<MinCutProgram>>(take_machine(boxes, large));
                Ok(AlgoOutput::MinCut(
                    p.0.result.expect("large machine halts with a result"),
                ))
            }),
        },
        "mincut-approx" => Built::Wave {
            programs: MinCutApproxProgram::for_cluster(cluster, n, &edges, params.epsilon)
                .into_iter()
                .map(|p| erase(Driven(p)))
                .collect(),
            extract: Box::new(move |boxes| {
                let p = downcast_program::<Driven<MinCutApproxProgram>>(take_machine(boxes, large));
                Ok(AlgoOutput::MinCutApprox(
                    p.0.result.expect("large machine halts with a result"),
                ))
            }),
        },
        "mis" => Built::Wave {
            programs: MisProgram::for_cluster(cluster, n, &edges)
                .into_iter()
                .map(|p| erase(Driven(p)))
                .collect(),
            extract: Box::new(move |boxes| {
                let p = downcast_program::<Driven<MisProgram>>(take_machine(boxes, large));
                Ok(AlgoOutput::Mis(
                    p.0.result.expect("large machine halts with a result"),
                ))
            }),
        },
        "coloring" => Built::Wave {
            programs: ColoringProgram::for_cluster(cluster, n, &edges)
                .into_iter()
                .map(|p| erase(Driven(p)))
                .collect(),
            extract: Box::new(move |boxes| {
                let p = downcast_program::<Driven<ColoringProgram>>(take_machine(boxes, large));
                Ok(AlgoOutput::Coloring(
                    p.0.result.expect("large machine halts with a result"),
                ))
            }),
        },
        other => Built::Immediate(Err(ExecError::Algorithm {
            message: format!("no registered algorithm named {other:?}"),
        })),
    }
}

/// The batched weighted-spanner lane shared by `spanner-weighted` and
/// weighted `apsp`: all factor-2 weight classes as a [`Multiplexed`]
/// program (the same construction as the solo adapter), merged back into
/// one spanner at extraction. `apsp_stretch` switches the output variant.
fn build_weighted_spanner(
    cluster: &Cluster,
    n: usize,
    edges: &mpc_runtime::ShardedVec<mpc_graph::Edge>,
    k: usize,
    large: MachineId,
    apsp_stretch: Option<usize>,
) -> Built {
    let classes = weight_class_shards(edges);
    if classes.shards.is_empty() {
        let spanner = merge_class_results(n, &classes, Vec::new());
        return Built::Immediate(Ok(match apsp_stretch {
            Some(stretch_bound) => AlgoOutput::Apsp {
                oracle: ApspOracle::from_spanner(spanner.spanner.clone(), stretch_bound),
                spanner,
            },
            None => AlgoOutput::Spanner(spanner),
        }));
    }
    let per_instance: Vec<Vec<Driven<SpannerProgram>>> = classes
        .shards
        .iter()
        .map(|(_c, class_edges)| {
            SpannerProgram::for_cluster(cluster, n, class_edges, k)
                .into_iter()
                .map(Driven)
                .collect()
        })
        .collect();
    let programs = Multiplexed::build(cluster, per_instance)
        .into_iter()
        .map(erase)
        .collect();
    Built::Wave {
        programs,
        extract: Box::new(move |boxes| {
            let mut coordinator =
                downcast_program::<Multiplexed<Driven<SpannerProgram>>>(take_machine(boxes, large));
            let results: Vec<_> = (0..coordinator.instances())
                .map(|i| {
                    coordinator
                        .instance_mut(i)
                        .0
                        .result
                        .take()
                        .expect("large machine halts with a per-class result")
                })
                .collect();
            let spanner = merge_class_results(n, &classes, results);
            Ok(match apsp_stretch {
                Some(stretch_bound) => AlgoOutput::Apsp {
                    oracle: ApspOracle::from_spanner(spanner.spanner.clone(), stretch_bound),
                    spanner,
                },
                None => AlgoOutput::Spanner(spanner),
            })
        }),
    }
}

/// Marks a job finished: flips its handle state, appends its record, and
/// emits the [`TraceEvent::JobCompleted`] instant.
#[allow(clippy::too_many_arguments)]
fn finish_job(
    cluster: &Cluster,
    records: &mut Vec<JobRecord>,
    id: u64,
    name: String,
    shares: usize,
    admitted_round: u64,
    state: &Arc<Mutex<JobState>>,
    round: u64,
    result: Result<AlgoOutput, ExecError>,
) {
    let failed = result.is_err();
    {
        let mut s = state.lock().unwrap();
        s.status = if failed {
            JobStatus::Failed
        } else {
            JobStatus::Completed
        };
        s.result = Some(result);
    }
    let rounds = round - admitted_round;
    records.push(JobRecord {
        job: id,
        name,
        shares,
        admitted_round,
        completed_round: round,
        rounds,
        failed,
    });
    if let Some(sink) = cluster.trace_sink() {
        sink.record(&TraceEvent::JobCompleted {
            round,
            job: id,
            rounds,
            failed,
        });
    }
}

// ---------------------------------------------------------------------------
// The service
// ---------------------------------------------------------------------------

/// A multi-tenant job queue over one heterogeneous cluster.
///
/// ```
/// use mpc_exec::{ExecMode, JobSpec, JobStatus, Service};
/// use mpc_graph::generators;
/// use std::sync::Arc;
///
/// let g = Arc::new(generators::gnm(96, 320, 7));
/// let mut svc = Service::new(
///     mpc_runtime::ClusterConfig::new(96, 320).seed(11).polylog_exponent(2.6),
/// );
/// let spanner = svc.submit(JobSpec::new("spanner", g.clone()).seed(1)).unwrap();
/// let matching = svc.submit(JobSpec::new("matching", g.clone()).seed(2)).unwrap();
/// let mis = svc.submit(JobSpec::new("mis", g).seed(3)).unwrap();
/// let run = svc.run(ExecMode::Serial).unwrap();
/// assert_eq!(run.records.len(), 3);
/// assert_eq!(spanner.status(), JobStatus::Completed);
/// assert!(matching.take_result().unwrap().is_ok());
/// assert!(mis.take_result().unwrap().is_ok());
/// ```
pub struct Service {
    config: ClusterConfig,
    capacity_shares: usize,
    max_rounds: u64,
    threads: usize,
    next_id: u64,
    queue: VecDeque<QueuedJob>,
}

impl Service {
    /// A service whose [`run`](Service::run) builds its cluster from
    /// `config`. No share limit: every queued job is admitted immediately.
    pub fn new(config: ClusterConfig) -> Self {
        Service {
            config,
            capacity_shares: 0,
            max_rounds: 0,
            threads: 0,
            next_id: 1,
            queue: VecDeque::new(),
        }
    }

    /// Caps the total capacity shares running at once (0 = unlimited).
    /// Admission is strictly FIFO: a job that does not fit blocks the jobs
    /// behind it until retirement frees shares. A single job wider than
    /// the whole limit is admitted alone rather than deadlocking.
    pub fn capacity_shares(mut self, shares: usize) -> Self {
        self.capacity_shares = shares;
        self
    }

    /// Round-limit override for the underlying executor (0 = its default).
    pub fn max_rounds(mut self, limit: u64) -> Self {
        self.max_rounds = limit;
        self
    }

    /// Worker-thread cap for [`ExecMode::Parallel`] runs (0 = default).
    pub fn threads(mut self, n: usize) -> Self {
        self.threads = n;
        self
    }

    /// Jobs waiting for the next [`run`](Service::run).
    pub fn queued(&self) -> usize {
        self.queue.len()
    }

    /// Enqueues a job, validating its registry name up front.
    ///
    /// # Errors
    ///
    /// [`ExecError::Algorithm`] when `spec.name` is not a registered
    /// algorithm — nothing is enqueued.
    pub fn submit(&mut self, spec: JobSpec) -> Result<JobHandle, ExecError> {
        if registry::get(&spec.name).is_none() {
            return Err(ExecError::Algorithm {
                message: format!("no registered algorithm named {:?}", spec.name),
            });
        }
        let id = self.next_id;
        self.next_id += 1;
        let state = Arc::new(Mutex::new(JobState {
            status: JobStatus::Queued,
            result: None,
        }));
        let handle = JobHandle {
            id,
            name: spec.name.clone(),
            state: Arc::clone(&state),
        };
        self.queue.push_back(QueuedJob { id, spec, state });
        Ok(handle)
    }

    /// Drains the queue in one engine run on a fresh cluster built from
    /// this service's config.
    ///
    /// # Errors
    ///
    /// Engine-level failures (capacity violations in strict mode, the
    /// round limit, unrecoverable crashes) abort the whole run; per-job
    /// algorithm errors only fail that job. See [`run_on`](Service::run_on).
    pub fn run(&mut self, mode: ExecMode) -> Result<ServiceRun, ExecError> {
        let mut cluster = Cluster::new(self.config.clone());
        self.run_on(&mut cluster, mode)
    }

    /// [`run`](Service::run) against a caller-owned cluster — the entry
    /// point for attaching trace sinks or fault plans, and for reading the
    /// round log afterwards. The cluster's capacity factor must be 1 on
    /// entry; it is 1 again on return (success or failure).
    ///
    /// # Errors
    ///
    /// See [`run`](Service::run). On an engine-level error, jobs already
    /// admitted are marked [`JobStatus::Failed`] (their lanes died with
    /// the run); jobs still queued return to the service queue untouched.
    pub fn run_on(
        &mut self,
        cluster: &mut Cluster,
        mode: ExecMode,
    ) -> Result<ServiceRun, ExecError> {
        assert_eq!(
            cluster.capacity_factor(),
            1,
            "the service manages the capacity factor; start a run at 1"
        );
        let machines = cluster.machines();
        let waves = MixedWave::for_cluster(cluster);
        let limit = if self.capacity_shares == 0 {
            usize::MAX
        } else {
            self.capacity_shares
        };
        let mut queue = std::mem::take(&mut self.queue);
        let mut running: Vec<RunningJob> = Vec::new();
        let mut records: Vec<JobRecord> = Vec::new();

        let mut exec = Executor::new("svc", mode);
        if self.threads > 0 {
            exec = exec.threads(self.threads);
        }
        if self.max_rounds > 0 {
            exec = exec.max_rounds(self.max_rounds);
        }

        let result = {
            let running = &mut running;
            let records = &mut records;
            let queue = &mut queue;
            let mut hook = |cluster: &mut Cluster,
                            view: &WaveRound<'_, MixedWave>|
             -> Result<bool, ExecError> {
                let round = view.round();

                // 1. Retirement: a job is done when every one of its lanes
                // has voted to halt and no mail tagged with it is pending.
                // The peek-only scan leaves the round clean; removal marks
                // it dirty, forcing a checkpoint under fault plans.
                let mut i = 0;
                while i < running.len() {
                    let job = running[i].id;
                    let done = (0..machines).all(|mid| {
                        view.peek(mid, |wave, inbox| {
                            wave.lane_idle(job) && !inbox.iter().any(|(_, m)| m.job == job)
                        })
                    });
                    if !done {
                        i += 1;
                        continue;
                    }
                    let rj = running.remove(i);
                    let boxes: Vec<_> = (0..machines)
                        .map(|mid| {
                            view.with(mid, |wave| {
                                wave.remove(job)
                                    .expect("a running job has a lane on every machine")
                            })
                        })
                        .collect();
                    let outcome = (rj.extract)(boxes);
                    finish_job(
                        cluster,
                        records,
                        rj.id,
                        rj.name,
                        rj.shares,
                        rj.admitted_round,
                        &rj.state,
                        round,
                        outcome,
                    );
                }

                // 2. Admission: strict FIFO while shares fit, with lanes
                // built at solo (factor-1) capacity — exactly the
                // snapshots a solo run's constructors would take.
                if !queue.is_empty() {
                    cluster.set_capacity_factor(1);
                }
                while let Some(front) = queue.front() {
                    let shares = derived_shares(&front.spec);
                    let held: usize = running.iter().map(|r| r.shares).sum();
                    if held + shares > limit && !(running.is_empty() && shares > limit) {
                        break;
                    }
                    let qj = queue.pop_front().expect("front was just inspected");
                    if let Some(sink) = cluster.trace_sink() {
                        sink.record(&TraceEvent::JobAdmitted {
                            round,
                            job: qj.id,
                            name: qj.spec.name.clone(),
                            shares,
                        });
                    }
                    match build_job(&qj.spec, cluster) {
                        Built::Immediate(outcome) => {
                            finish_job(
                                cluster,
                                records,
                                qj.id,
                                qj.spec.name.clone(),
                                shares,
                                round,
                                &qj.state,
                                round,
                                outcome,
                            );
                        }
                        Built::Wave { programs, extract } => {
                            qj.state.lock().unwrap().status = JobStatus::Running;
                            for (mid, program) in programs.into_iter().enumerate() {
                                view.with(mid, |wave| {
                                    wave.admit(
                                        qj.id,
                                        program,
                                        machine_rng(qj.spec.seed, mid),
                                        round,
                                    );
                                });
                                view.wake(mid);
                            }
                            running.push(RunningJob {
                                id: qj.id,
                                name: qj.spec.name.clone(),
                                shares,
                                admitted_round: round,
                                state: qj.state,
                                extract,
                            });
                        }
                    }
                }

                // 3. The live capacity factor tracks the running total, so
                // strict enforcement scales with the tenants on the wire.
                let held: usize = running.iter().map(|r| r.shares).sum();
                cluster.set_capacity_factor(held.max(1));
                Ok(!queue.is_empty())
            };
            exec.run_hooked(cluster, waves, &mut hook)
        };
        cluster.set_capacity_factor(1);

        let outcome = match result {
            Ok(outcome) => outcome,
            Err(e) => {
                // Admitted lanes died with the run; queued jobs survive.
                for rj in running.drain(..) {
                    rj.state.lock().unwrap().status = JobStatus::Failed;
                }
                self.queue = queue;
                return Err(e);
            }
        };

        // Jobs that halted in the final round never saw another hook call;
        // their lanes sit in the returned wave states.
        let mut waves = outcome.programs;
        for rj in running.drain(..) {
            let boxes: Vec<_> = waves
                .iter_mut()
                .map(|wave| {
                    wave.remove(rj.id)
                        .expect("a running job has a lane on every machine")
                })
                .collect();
            let job_outcome = (rj.extract)(boxes);
            finish_job(
                cluster,
                &mut records,
                rj.id,
                rj.name,
                rj.shares,
                rj.admitted_round,
                &rj.state,
                outcome.rounds,
                job_outcome,
            );
        }

        records.sort_by_key(|r| r.job);
        Ok(ServiceRun {
            rounds: outcome.rounds,
            records,
        })
    }
}
