//! The [`Algorithm`] registry: every engine-ported algorithm behind one
//! named entry point.
//!
//! `registry::run("mst", &mut cluster, &input, ExecMode::Parallel)` is the
//! single way the facade crate, the examples, the benches, and the CI
//! smoke tests execute a workload: a registered algorithm is guaranteed to
//! run on the [`Executor`](crate::Executor) under both [`ExecMode::Serial`]
//! and [`ExecMode::Parallel`] with bit-identical results, and anything
//! *not* registered here is by definition not fast-path-capable — the
//! `registry` bench experiment fails if a registered program stops
//! producing legacy-identical results.
//!
//! | name | paper result | program |
//! |------|--------------|---------|
//! | `connectivity` | Thm C.1 | [`ConnectivityProgram`](crate::programs::ConnectivityProgram) |
//! | `boruvka-msf`  | §3 building block | [`BoruvkaProgram`](crate::programs::BoruvkaProgram) |
//! | `mst`          | Thm 3.1 | [`MstProgram`](crate::programs::MstProgram) |
//! | `matching`     | Thm 5.1 | [`MatchingProgram`](crate::programs::MatchingProgram) |
//! | `spanner`      | Thm 4.1 | [`SpannerProgram`](crate::programs::SpannerProgram) |
//! | `spanner-weighted` | Thm 4.1 + \[22\] reduction | per-class [`SpannerProgram`](crate::programs::SpannerProgram) |

use crate::adapters;
use crate::driver::{ExecError, ExecMode};
use mpc_core::matching::MatchingResult;
use mpc_core::mst::{MstConfig, MstResult};
use mpc_core::ported::connectivity::ConnectivityConfig;
use mpc_core::spanner::SpannerResult;
use mpc_graph::mst::Forest;
use mpc_graph::traversal::Components;
use mpc_graph::Edge;
use mpc_runtime::{Cluster, ShardedVec};

/// The input every registered algorithm consumes: a vertex universe and
/// the edge list sharded over the small machines (see
/// [`mpc_core::common::distribute_edges`]), plus tuning parameters.
pub struct AlgoInput<'a> {
    /// Number of vertices.
    pub n: usize,
    /// Sharded input edges.
    pub edges: &'a ShardedVec<Edge>,
    /// Spanner stretch parameter `k` (ignored by non-spanner algorithms).
    pub spanner_k: usize,
    /// MST tuning knobs.
    pub mst: MstConfig,
    /// Connectivity configuration (defaults to
    /// [`ConnectivityConfig::for_n`]).
    pub connectivity: Option<ConnectivityConfig>,
}

impl<'a> AlgoInput<'a> {
    /// Input with default parameters (`k = 3` for spanners).
    pub fn new(n: usize, edges: &'a ShardedVec<Edge>) -> Self {
        AlgoInput {
            n,
            edges,
            spanner_k: 3,
            mst: MstConfig::default(),
            connectivity: None,
        }
    }

    /// Overrides the spanner stretch parameter.
    pub fn spanner_k(mut self, k: usize) -> Self {
        self.spanner_k = k;
        self
    }
}

/// What a registered algorithm returns.
#[derive(Debug)]
pub enum AlgoOutput {
    /// Connected components (`connectivity`).
    Components(Components),
    /// A minimum spanning forest without statistics (`boruvka-msf`).
    Forest(Forest),
    /// The full MST result (`mst`).
    Mst(MstResult),
    /// The maximal-matching result (`matching`).
    Matching(MatchingResult),
    /// The spanner result (`spanner`, `spanner-weighted`).
    Spanner(SpannerResult),
}

impl AlgoOutput {
    /// The components, if this output carries them.
    pub fn into_components(self) -> Option<Components> {
        match self {
            AlgoOutput::Components(c) => Some(c),
            _ => None,
        }
    }

    /// The plain forest, if this output carries one.
    pub fn into_forest(self) -> Option<Forest> {
        match self {
            AlgoOutput::Forest(f) => Some(f),
            AlgoOutput::Mst(r) => Some(r.forest),
            _ => None,
        }
    }

    /// The full MST result, if this output carries one.
    pub fn into_mst(self) -> Option<MstResult> {
        match self {
            AlgoOutput::Mst(r) => Some(r),
            _ => None,
        }
    }

    /// The matching result, if this output carries one.
    pub fn into_matching(self) -> Option<MatchingResult> {
        match self {
            AlgoOutput::Matching(r) => Some(r),
            _ => None,
        }
    }

    /// The spanner result, if this output carries one.
    pub fn into_spanner(self) -> Option<SpannerResult> {
        match self {
            AlgoOutput::Spanner(r) => Some(r),
            _ => None,
        }
    }

    /// A deterministic digest of the result — what the benches and smoke
    /// tests compare across execution modes. Covers the actual content
    /// (edge sets are order-normalized and hashed), not just cardinalities,
    /// so a drift that preserves result size still changes the digest.
    pub fn digest(&self) -> u128 {
        fn fold_edges<'a>(edges: impl Iterator<Item = &'a Edge>) -> u128 {
            let mut keys: Vec<_> = edges.map(Edge::weight_key).collect();
            keys.sort_unstable();
            let mut acc: u128 = 0xcbf2_9ce4_8422_2325;
            for key in keys {
                for word in [key.w, key.u as u64, key.v as u64] {
                    acc = (acc ^ word as u128).wrapping_mul(0x0100_0000_01b3);
                }
            }
            acc
        }
        match self {
            AlgoOutput::Components(c) => c.count as u128,
            AlgoOutput::Forest(f) => f.total_weight ^ fold_edges(f.edges.iter()),
            AlgoOutput::Mst(r) => r.forest.total_weight ^ fold_edges(r.forest.edges.iter()),
            AlgoOutput::Matching(r) => {
                r.matching.len() as u128 ^ fold_edges(r.matching.edges.iter())
            }
            AlgoOutput::Spanner(r) => r.spanner.m() as u128 ^ fold_edges(r.spanner.edges().iter()),
        }
    }
}

/// A registered algorithm: a name, its paper anchor, and an engine-backed
/// runner.
pub struct Algorithm {
    /// Registry name (the `run` lookup key).
    pub name: &'static str,
    /// One-line description.
    pub summary: &'static str,
    /// Where in the paper this algorithm lives.
    pub paper: &'static str,
    runner: fn(&mut Cluster, &AlgoInput<'_>, ExecMode) -> Result<AlgoOutput, ExecError>,
}

impl Algorithm {
    /// Runs this algorithm on `cluster` in the given mode.
    ///
    /// # Errors
    ///
    /// See [`ExecError`].
    pub fn run(
        &self,
        cluster: &mut Cluster,
        input: &AlgoInput<'_>,
        mode: ExecMode,
    ) -> Result<AlgoOutput, ExecError> {
        (self.runner)(cluster, input, mode)
    }
}

static ALGORITHMS: &[Algorithm] = &[
    Algorithm {
        name: "connectivity",
        summary: "O(1)-round connected components via linear sketches",
        paper: "Theorem C.1",
        runner: |cluster, input, mode| {
            let config = input
                .connectivity
                .clone()
                .unwrap_or_else(|| ConnectivityConfig::for_n(input.n));
            adapters::heterogeneous_connectivity(cluster, input.n, input.edges, &config, mode)
                .map(AlgoOutput::Components)
        },
    },
    Algorithm {
        name: "boruvka-msf",
        summary: "plain Borůvka minimum spanning forest in 4-round waves",
        paper: "§3 building block",
        runner: |cluster, input, mode| {
            adapters::boruvka_msf(cluster, input.edges, mode).map(AlgoOutput::Forest)
        },
    },
    Algorithm {
        name: "mst",
        summary: "exact MST: doubly-exponential Borůvka + KKT sampling finish",
        paper: "Theorem 3.1",
        runner: |cluster, input, mode| {
            adapters::heterogeneous_mst_with(cluster, input.n, input.edges, &input.mst, mode)
                .map(AlgoOutput::Mst)
        },
    },
    Algorithm {
        name: "matching",
        summary: "maximal matching in rounds depending only on the average degree",
        paper: "Theorem 5.1",
        runner: |cluster, input, mode| {
            adapters::heterogeneous_matching(cluster, input.n, input.edges, mode)
                .map(AlgoOutput::Matching)
        },
    },
    Algorithm {
        name: "spanner",
        summary: "(6k−1)-spanner of size O(n^(1+1/k)) in O(1) rounds (unweighted)",
        paper: "Theorem 4.1",
        runner: |cluster, input, mode| {
            adapters::heterogeneous_spanner(cluster, input.n, input.edges, input.spanner_k, mode)
                .map(AlgoOutput::Spanner)
        },
    },
    Algorithm {
        name: "spanner-weighted",
        summary: "(12k−1)-spanner of a weighted graph via factor-2 weight classes",
        paper: "Theorem 4.1 + [22]",
        runner: |cluster, input, mode| {
            adapters::heterogeneous_spanner_weighted(
                cluster,
                input.n,
                input.edges,
                input.spanner_k,
                mode,
            )
            .map(AlgoOutput::Spanner)
        },
    },
];

/// All registered algorithms, in presentation order.
pub fn algorithms() -> &'static [Algorithm] {
    ALGORITHMS
}

/// All registry names, in presentation order.
pub fn names() -> Vec<&'static str> {
    ALGORITHMS.iter().map(|a| a.name).collect()
}

/// Looks up an algorithm by name.
pub fn get(name: &str) -> Option<&'static Algorithm> {
    ALGORITHMS.iter().find(|a| a.name == name)
}

/// Runs the named algorithm on `cluster` in the given [`ExecMode`] — the
/// registry entry point everything routes through.
///
/// # Errors
///
/// [`ExecError::Algorithm`] for unknown names; otherwise whatever the
/// algorithm surfaces (see [`ExecError`]).
pub fn run(
    name: &str,
    cluster: &mut Cluster,
    input: &AlgoInput<'_>,
    mode: ExecMode,
) -> Result<AlgoOutput, ExecError> {
    let algo = get(name).ok_or_else(|| ExecError::Algorithm {
        message: format!(
            "unknown algorithm '{name}'; registered: {}",
            names().join(", ")
        ),
    })?;
    algo.run(cluster, input, mode)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_covers_the_flagship_algorithms() {
        for name in [
            "connectivity",
            "boruvka-msf",
            "mst",
            "matching",
            "spanner",
            "spanner-weighted",
        ] {
            assert!(get(name).is_some(), "'{name}' not registered");
        }
        assert_eq!(names().len(), ALGORITHMS.len());
    }

    #[test]
    fn unknown_names_error_with_the_catalog() {
        let g = mpc_graph::generators::gnm(16, 32, 1);
        let mut cluster = Cluster::new(mpc_runtime::ClusterConfig::new(g.n(), g.m()));
        let edges = mpc_core::common::distribute_edges(&cluster, &g);
        let input = AlgoInput::new(g.n(), &edges);
        let err = run("nope", &mut cluster, &input, ExecMode::Serial).unwrap_err();
        assert!(err.to_string().contains("unknown algorithm"));
        assert!(err.to_string().contains("mst"));
    }
}
