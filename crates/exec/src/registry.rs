//! The [`Algorithm`] registry: every engine-ported algorithm behind one
//! named entry point.
//!
//! `registry::run("mst", &mut cluster, &input, ExecMode::Parallel)` is the
//! single way the facade crate, the examples, the benches, and the CI
//! smoke tests execute a workload: a registered algorithm is guaranteed to
//! run on the [`Executor`](crate::Executor) under both [`ExecMode::Serial`]
//! and [`ExecMode::Parallel`] with bit-identical results, and anything
//! *not* registered here is by definition not fast-path-capable — the
//! `registry` bench experiment fails if a registered program stops
//! producing legacy-identical results.
//!
//! | name | paper result | program |
//! |------|--------------|---------|
//! | `connectivity` | Thm C.1 | [`ConnectivityProgram`](crate::programs::ConnectivityProgram) |
//! | `boruvka-msf`  | §3 building block | [`BoruvkaProgram`](crate::programs::BoruvkaProgram) |
//! | `mst`          | Thm 3.1 | [`MstProgram`](crate::programs::MstProgram) |
//! | `matching`     | Thm 5.1 | [`MatchingProgram`](crate::programs::MatchingProgram) |
//! | `spanner`      | Thm 4.1 | [`SpannerProgram`](crate::programs::SpannerProgram) |
//! | `spanner-weighted` | Thm 4.1 + \[22\] reduction | per-class [`SpannerProgram`](crate::programs::SpannerProgram), [multiplexed](crate::multiplex) |
//! | `apsp`         | Cor 4.2 | `k = ⌈log₂ n⌉` spanner run, oracle indexed on the large machine |
//! | `mst-approx`   | Thm C.2 | per-wave [`MstApproxWave`](crate::programs::MstApproxWave), [multiplexed](crate::multiplex) |
//! | `mincut`       | Thm C.3 | [`MinCutProgram`](crate::programs::MinCutProgram) |
//! | `mincut-approx` | Thm C.4 | per-guess [`MinCutGuessWave`](crate::programs::MinCutGuessWave), [multiplexed](crate::multiplex) |
//! | `mis`          | Thm C.6 | [`MisProgram`](crate::programs::MisProgram) |
//! | `coloring`     | Thm C.7 | [`ColoringProgram`](crate::programs::ColoringProgram) |

use crate::adapters;
use crate::driver::{ExecError, ExecMode};
use mpc_core::matching::MatchingResult;
use mpc_core::mst::{MstConfig, MstResult};
use mpc_core::ported::coloring::ColoringResult;
use mpc_core::ported::connectivity::ConnectivityConfig;
use mpc_core::ported::mincut_approx::ApproxMinCut;
use mpc_core::ported::mincut_exact::MinCutResult;
use mpc_core::ported::mis::MisResult;
use mpc_core::ported::mst_approx::MstApprox;
use mpc_core::spanner::apsp::ApspOracle;
use mpc_core::spanner::SpannerResult;
use mpc_graph::mst::Forest;
use mpc_graph::traversal::Components;
use mpc_graph::{Edge, Graph};
use mpc_runtime::{Cluster, ShardedVec};
use std::sync::Arc;

/// Every tuning knob a registered algorithm reads, gathered in one place
/// so the two consumer-facing entry points — [`run`] with an [`AlgoInput`]
/// and the [service](crate::service) with a [`JobSpec`] — share a single
/// parameter surface and cannot drift.
#[derive(Clone, Debug)]
pub struct JobParams {
    /// Spanner stretch parameter `k` (ignored by non-spanner algorithms).
    pub spanner_k: usize,
    /// MST tuning knobs.
    pub mst: MstConfig,
    /// Connectivity configuration (defaults to
    /// [`ConnectivityConfig::for_n`]).
    pub connectivity: Option<ConnectivityConfig>,
    /// Contraction trials for `mincut` (Theorem C.3 amplification).
    pub mincut_trials: usize,
    /// Approximation parameter ε for `mincut-approx` and `mst-approx`.
    pub epsilon: f64,
    /// Whether the sequentialized-parallel workloads (`spanner-weighted`,
    /// `mst-approx`, `mincut-approx`) interleave their instances through
    /// the [multi-program scheduler](crate::multiplex) (the default), or
    /// run them one after another (the PR 4 composition, kept as the
    /// equivalence oracle — see [`JobParams::sequential_instances`]).
    pub batch_instances: bool,
}

impl Default for JobParams {
    /// Default parameters: `k = 3` for spanners,
    /// [`DEFAULT_MINCUT_TRIALS`] min-cut trials, ε = 0.3, batched
    /// instances.
    fn default() -> Self {
        JobParams {
            spanner_k: 3,
            mst: MstConfig::default(),
            connectivity: None,
            mincut_trials: DEFAULT_MINCUT_TRIALS,
            epsilon: 0.3,
            batch_instances: true,
        }
    }
}

impl JobParams {
    /// Runs the sequentialized-parallel workloads one instance at a time
    /// (the PR 4 equivalence oracle) instead of batching them through the
    /// multi-program scheduler.
    pub fn sequential_instances(mut self) -> Self {
        self.batch_instances = false;
        self
    }

    /// Overrides the spanner stretch parameter.
    pub fn spanner_k(mut self, k: usize) -> Self {
        self.spanner_k = k;
        self
    }

    /// Overrides the `mincut` trial count.
    pub fn mincut_trials(mut self, trials: usize) -> Self {
        self.mincut_trials = trials;
        self
    }

    /// Overrides the approximation parameter ε.
    pub fn epsilon(mut self, eps: f64) -> Self {
        self.epsilon = eps;
        self
    }

    /// Overrides the MST tuning knobs.
    pub fn mst(mut self, config: MstConfig) -> Self {
        self.mst = config;
        self
    }

    /// Overrides the connectivity configuration.
    pub fn connectivity(mut self, config: ConnectivityConfig) -> Self {
        self.connectivity = Some(config);
        self
    }
}

/// The input every registered algorithm consumes: a vertex universe and
/// the edge list sharded over the small machines (see
/// [`mpc_core::common::distribute_edges`]), plus tuning parameters.
pub struct AlgoInput<'a> {
    /// Number of vertices.
    pub n: usize,
    /// Sharded input edges.
    pub edges: &'a ShardedVec<Edge>,
    /// Tuning parameters (shared with [`JobSpec`]).
    pub params: JobParams,
}

/// Default `mincut` contraction trials — shared by [`JobParams::default`]
/// and the `mincut` round budget, which assumes the default input knobs (a
/// caller overriding `mincut_trials` changes the total round count by
/// `12` engine rounds per trial).
pub const DEFAULT_MINCUT_TRIALS: usize = 8;

impl<'a> AlgoInput<'a> {
    /// Input with [default parameters](JobParams::default).
    pub fn new(n: usize, edges: &'a ShardedVec<Edge>) -> Self {
        AlgoInput {
            n,
            edges,
            params: JobParams::default(),
        }
    }

    /// See [`JobParams::sequential_instances`].
    pub fn sequential_instances(mut self) -> Self {
        self.params = self.params.sequential_instances();
        self
    }

    /// Overrides the spanner stretch parameter.
    pub fn spanner_k(mut self, k: usize) -> Self {
        self.params = self.params.spanner_k(k);
        self
    }

    /// Overrides the `mincut` trial count.
    pub fn mincut_trials(mut self, trials: usize) -> Self {
        self.params = self.params.mincut_trials(trials);
        self
    }

    /// Overrides the approximation parameter ε.
    pub fn epsilon(mut self, eps: f64) -> Self {
        self.params = self.params.epsilon(eps);
        self
    }
}

/// How often the [service](crate::service) re-admits a job after an
/// engine-level failure took its wave down (DESIGN.md §2.9).
///
/// A quarantined job consumes one *attempt* per admission. After failure
/// `k` (1-based) the resubmitted job may not be re-admitted before
/// `failure_round + k * backoff_rounds` — linear backoff in engine
/// rounds, the service's only clock. `max_attempts: 0` is the kill
/// switch: the job fails fast at the front of the queue without ever
/// touching the wave (zero wire impact, so the surviving tenants' round
/// log is bit-identical to a queue that never contained it).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct JobRetryPolicy {
    /// Total admissions the job may consume (default 1: quarantine is
    /// terminal, no resubmission; 0: never admit, fail fast).
    pub max_attempts: u32,
    /// Linear backoff step in engine rounds between re-admissions.
    pub backoff_rounds: u64,
}

impl Default for JobRetryPolicy {
    fn default() -> Self {
        JobRetryPolicy {
            max_attempts: 1,
            backoff_rounds: 1,
        }
    }
}

/// One job for the [service](crate::service): a registry name, the input
/// graph, tuning [`JobParams`], a private seed, and the combined-round
/// capacity shares the job holds while running.
///
/// The same description also runs solo: [`run_job`] distributes the graph
/// and delegates to [`run`], so a service job and its solo twin consume
/// byte-identical inputs — the bit-equality the service tests assert.
#[derive(Clone, Debug)]
pub struct JobSpec {
    /// Registry name ([`CANONICAL_NAMES`]).
    pub name: String,
    /// The input graph (shared, so queued jobs don't duplicate edges).
    pub graph: Arc<Graph>,
    /// Tuning parameters.
    pub params: JobParams,
    /// The job's private seed: its per-machine RNG streams are
    /// [`mpc_runtime::machine_rng`]`(seed, mid)`, exactly the streams a
    /// fresh cluster seeded with `seed` would own — solo replays are
    /// bit-identical.
    pub seed: u64,
    /// Combined-round capacity shares (0 = derive from the program shape:
    /// 1 for single-instance jobs, the instance count for batched ones).
    pub shares: usize,
    /// Retry budget for engine-level failures attributed to this job.
    pub retry: JobRetryPolicy,
    /// Round budget measured from admission: a job still running
    /// `round_deadline` rounds after it was admitted is cancelled through
    /// the quarantine path and completes as
    /// [`JobStatus::DeadlineExceeded`](crate::JobStatus::DeadlineExceeded).
    /// `None` (the default) never expires.
    pub round_deadline: Option<u64>,
}

impl JobSpec {
    /// A job with [default parameters](JobParams::default), seed 0, and
    /// derived capacity shares.
    pub fn new(name: impl Into<String>, graph: impl Into<Arc<Graph>>) -> Self {
        JobSpec {
            name: name.into(),
            graph: graph.into(),
            params: JobParams::default(),
            seed: 0,
            shares: 0,
            retry: JobRetryPolicy::default(),
            round_deadline: None,
        }
    }

    /// Overrides the job's private seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Overrides the capacity-share count.
    pub fn shares(mut self, shares: usize) -> Self {
        self.shares = shares;
        self
    }

    /// Overrides the retry budget for engine-level failures.
    pub fn retry(mut self, retry: JobRetryPolicy) -> Self {
        self.retry = retry;
        self
    }

    /// Sets the round budget measured from admission (see
    /// [`JobSpec::round_deadline`]).
    pub fn round_deadline(mut self, rounds: u64) -> Self {
        self.round_deadline = Some(rounds);
        self
    }

    /// Replaces the tuning parameters wholesale.
    pub fn params(mut self, params: JobParams) -> Self {
        self.params = params;
        self
    }

    /// Overrides the spanner stretch parameter.
    pub fn spanner_k(mut self, k: usize) -> Self {
        self.params = self.params.spanner_k(k);
        self
    }

    /// Overrides the `mincut` trial count.
    pub fn mincut_trials(mut self, trials: usize) -> Self {
        self.params = self.params.mincut_trials(trials);
        self
    }

    /// Overrides the approximation parameter ε.
    pub fn epsilon(mut self, eps: f64) -> Self {
        self.params = self.params.epsilon(eps);
        self
    }
}

/// What a registered algorithm returns.
#[derive(Debug)]
pub enum AlgoOutput {
    /// Connected components (`connectivity`).
    Components(Components),
    /// A minimum spanning forest without statistics (`boruvka-msf`).
    Forest(Forest),
    /// The full MST result (`mst`).
    Mst(MstResult),
    /// The maximal-matching result (`matching`).
    Matching(MatchingResult),
    /// The spanner result (`spanner`, `spanner-weighted`).
    Spanner(SpannerResult),
    /// The APSP distance oracle with the spanner run that built it
    /// (`apsp`) — the first multi-output entry: consumers query the
    /// oracle, diagnostics read the spanner statistics.
    Apsp {
        /// The large-machine-resident distance oracle.
        oracle: ApspOracle,
        /// The spanner run the oracle indexes.
        spanner: SpannerResult,
    },
    /// The (1+ε)-approximate MST weight (`mst-approx`).
    MstApprox(MstApprox),
    /// The exact unweighted min-cut result (`mincut`).
    MinCut(MinCutResult),
    /// The (1±ε)-approximate weighted min cut (`mincut-approx`).
    MinCutApprox(ApproxMinCut),
    /// The maximal-independent-set result (`mis`).
    Mis(MisResult),
    /// The (Δ+1)-coloring result (`coloring`).
    Coloring(ColoringResult),
}

impl AlgoOutput {
    /// The components, if this output carries them.
    pub fn into_components(self) -> Option<Components> {
        match self {
            AlgoOutput::Components(c) => Some(c),
            _ => None,
        }
    }

    /// The plain forest, if this output carries one.
    pub fn into_forest(self) -> Option<Forest> {
        match self {
            AlgoOutput::Forest(f) => Some(f),
            AlgoOutput::Mst(r) => Some(r.forest),
            _ => None,
        }
    }

    /// The full MST result, if this output carries one.
    pub fn into_mst(self) -> Option<MstResult> {
        match self {
            AlgoOutput::Mst(r) => Some(r),
            _ => None,
        }
    }

    /// The matching result, if this output carries one.
    pub fn into_matching(self) -> Option<MatchingResult> {
        match self {
            AlgoOutput::Matching(r) => Some(r),
            _ => None,
        }
    }

    /// The spanner result, if this output carries one (the `apsp` entry
    /// carries the spanner run behind its oracle).
    pub fn into_spanner(self) -> Option<SpannerResult> {
        match self {
            AlgoOutput::Spanner(r) => Some(r),
            AlgoOutput::Apsp { spanner, .. } => Some(spanner),
            _ => None,
        }
    }

    /// The APSP oracle and its spanner run, if this output carries them.
    pub fn into_apsp(self) -> Option<(ApspOracle, SpannerResult)> {
        match self {
            AlgoOutput::Apsp { oracle, spanner } => Some((oracle, spanner)),
            _ => None,
        }
    }

    /// The MST-weight estimate, if this output carries one.
    pub fn into_mst_approx(self) -> Option<MstApprox> {
        match self {
            AlgoOutput::MstApprox(r) => Some(r),
            _ => None,
        }
    }

    /// The exact min-cut result, if this output carries one.
    pub fn into_mincut(self) -> Option<MinCutResult> {
        match self {
            AlgoOutput::MinCut(r) => Some(r),
            _ => None,
        }
    }

    /// The approximate min-cut result, if this output carries one.
    pub fn into_mincut_approx(self) -> Option<ApproxMinCut> {
        match self {
            AlgoOutput::MinCutApprox(r) => Some(r),
            _ => None,
        }
    }

    /// The MIS result, if this output carries one.
    pub fn into_mis(self) -> Option<MisResult> {
        match self {
            AlgoOutput::Mis(r) => Some(r),
            _ => None,
        }
    }

    /// The coloring result, if this output carries one.
    pub fn into_coloring(self) -> Option<ColoringResult> {
        match self {
            AlgoOutput::Coloring(r) => Some(r),
            _ => None,
        }
    }

    /// A deterministic digest of the result — what the benches and smoke
    /// tests compare across execution modes. Covers the actual content
    /// (edge sets are order-normalized and hashed), not just cardinalities,
    /// so a drift that preserves result size still changes the digest.
    pub fn digest(&self) -> u128 {
        fn fold_edges<'a>(edges: impl Iterator<Item = &'a Edge>) -> u128 {
            let mut keys: Vec<_> = edges.map(Edge::weight_key).collect();
            keys.sort_unstable();
            let mut acc: u128 = 0xcbf2_9ce4_8422_2325;
            for key in keys {
                for word in [key.w, key.u as u64, key.v as u64] {
                    acc = (acc ^ word as u128).wrapping_mul(0x0100_0000_01b3);
                }
            }
            acc
        }
        fn fold_words(words: impl Iterator<Item = u64>) -> u128 {
            let mut acc: u128 = 0xcbf2_9ce4_8422_2325;
            for word in words {
                acc = (acc ^ word as u128).wrapping_mul(0x0100_0000_01b3);
            }
            acc
        }
        match self {
            AlgoOutput::Components(c) => c.count as u128,
            AlgoOutput::Forest(f) => f.total_weight ^ fold_edges(f.edges.iter()),
            AlgoOutput::Mst(r) => r.forest.total_weight ^ fold_edges(r.forest.edges.iter()),
            AlgoOutput::Matching(r) => {
                r.matching.len() as u128 ^ fold_edges(r.matching.edges.iter())
            }
            AlgoOutput::Spanner(r) => r.spanner.m() as u128 ^ fold_edges(r.spanner.edges().iter()),
            AlgoOutput::Apsp { oracle, spanner } => {
                (oracle.stretch_bound as u128)
                    ^ (spanner.spanner.m() as u128)
                    ^ fold_edges(spanner.spanner.edges().iter())
            }
            AlgoOutput::MstApprox(r) => {
                (r.estimate.to_bits() as u128)
                    ^ fold_words(r.component_counts.iter().map(|&c| c as u64))
            }
            AlgoOutput::MinCut(r) => {
                r.value
                    ^ fold_words(
                        r.trial_sizes
                            .iter()
                            .map(|&(v, e)| (v as u64) << 32 | e as u64),
                    )
            }
            AlgoOutput::MinCutApprox(r) => {
                (r.estimate.to_bits() as u128)
                    ^ fold_words([r.lambda_guess, r.skeleton_edges as u64].into_iter())
            }
            AlgoOutput::Mis(r) => r.mis.len() as u128 ^ fold_words(r.mis.iter().map(|&v| v as u64)),
            AlgoOutput::Coloring(r) => {
                r.colors.len() as u128 ^ fold_words(r.colors.iter().map(|&c| c as u64))
            }
        }
    }
}

/// A registered algorithm: a name, its paper anchor, and an engine-backed
/// runner.
pub struct Algorithm {
    /// Registry name (the `run` lookup key).
    pub name: &'static str,
    /// One-line description.
    pub summary: &'static str,
    /// Where in the paper this algorithm lives.
    pub paper: &'static str,
    /// The polylog capacity exponent this algorithm's traffic honestly
    /// needs under strict enforcement (its `Õ(·)` factor) — generic
    /// consumers (the registry smoke, `engine_demo`) build their clusters
    /// with `ClusterConfig::polylog_exponent(algo.polylog_exponent)` so a
    /// new registration picks a suitable cluster without per-name edits.
    pub polylog_exponent: f64,
    /// Round budget: the theorem's round class stated as a hard cap for a
    /// run on a cluster of `n` vertices — `O(1)` algorithms get a fixed
    /// constant, `O(log log n)`-class algorithms an explicit
    /// `a·⌈log₂log₂n⌉ + b` cap. The `budgets` bench experiment (a CI gate)
    /// fails the build when a run exceeds it.
    pub round_budget: fn(n: usize) -> u64,
    runner: fn(&mut Cluster, &AlgoInput<'_>, ExecMode) -> Result<AlgoOutput, ExecError>,
}

impl Algorithm {
    /// Runs this algorithm on `cluster` in the given mode.
    ///
    /// # Errors
    ///
    /// See [`ExecError`].
    pub fn run(
        &self,
        cluster: &mut Cluster,
        input: &AlgoInput<'_>,
        mode: ExecMode,
    ) -> Result<AlgoOutput, ExecError> {
        (self.runner)(cluster, input, mode)
    }
}

/// `⌈log₂log₂ n⌉`, floored at 1 — the `O(log log n)` budget scale.
fn loglog(n: usize) -> u64 {
    let l = (n.max(4) as f64).log2().log2().ceil() as u64;
    l.max(1)
}

// The three sequentialized-parallel workloads (`spanner-weighted`,
// `mst-approx`, `mincut-approx`) run their paper-parallel instances
// interleaved through the multi-program scheduler by default, so their
// round budgets are the theorems' *parallel* figures — flat constants,
// independent of the instance count (weight classes, thresholds, λ̂
// guesses). The PR 4 sequential compositions survive behind
// [`AlgoInput::sequential_instances`] as equivalence oracles; the
// `budgets` experiment measures both and gates the ≥5× collapse.

/// `⌈log₂ n⌉`, floored at 1.
fn log2(n: usize) -> u64 {
    ((n.max(2) as f64).log2().ceil() as u64).max(1)
}

static ALGORITHMS: &[Algorithm] = &[
    Algorithm {
        name: "connectivity",
        summary: "O(1)-round connected components via linear sketches",
        paper: "Theorem C.1",
        polylog_exponent: 2.6,
        round_budget: |_n| 6,
        runner: |cluster, input, mode| {
            let config = input
                .params
                .connectivity
                .clone()
                .unwrap_or_else(|| ConnectivityConfig::for_n(input.n));
            adapters::heterogeneous_connectivity(cluster, input.n, input.edges, &config, mode)
                .map(AlgoOutput::Components)
        },
    },
    Algorithm {
        name: "boruvka-msf",
        summary: "plain Borůvka minimum spanning forest in 4-round waves",
        paper: "§3 building block",
        polylog_exponent: 1.3,
        round_budget: |n| 4 * log2(n) + 8,
        runner: |cluster, input, mode| {
            adapters::boruvka_msf(cluster, input.edges, mode).map(AlgoOutput::Forest)
        },
    },
    Algorithm {
        name: "mst",
        summary: "exact MST: doubly-exponential Borůvka + KKT sampling finish",
        paper: "Theorem 3.1",
        polylog_exponent: 1.3,
        round_budget: |n| 6 * loglog(n) + 16,
        runner: |cluster, input, mode| {
            adapters::heterogeneous_mst_with(cluster, input.n, input.edges, &input.params.mst, mode)
                .map(AlgoOutput::Mst)
        },
    },
    Algorithm {
        name: "matching",
        summary: "maximal matching in rounds depending only on the average degree",
        paper: "Theorem 5.1",
        polylog_exponent: 1.3,
        round_budget: |n| 10 * loglog(n) + 36,
        runner: |cluster, input, mode| {
            adapters::heterogeneous_matching(cluster, input.n, input.edges, mode)
                .map(AlgoOutput::Matching)
        },
    },
    Algorithm {
        name: "spanner",
        summary: "(6k−1)-spanner of size O(n^(1+1/k)) in O(1) rounds (unweighted)",
        paper: "Theorem 4.1",
        polylog_exponent: 1.6,
        round_budget: |_n| 24,
        runner: |cluster, input, mode| {
            adapters::heterogeneous_spanner(
                cluster,
                input.n,
                input.edges,
                input.params.spanner_k,
                mode,
            )
            .map(AlgoOutput::Spanner)
        },
    },
    Algorithm {
        name: "spanner-weighted",
        summary: "(12k−1)-spanner of a weighted graph via factor-2 weight classes",
        paper: "Theorem 4.1 + [22]",
        polylog_exponent: 1.6,
        // All weight classes interleaved in one engine run: the solo
        // spanner's O(1) clock, independent of the class count.
        round_budget: |_n| 24,
        runner: |cluster, input, mode| {
            let run = if input.params.batch_instances {
                adapters::heterogeneous_spanner_weighted
            } else {
                adapters::heterogeneous_spanner_weighted_sequential
            };
            run(cluster, input.n, input.edges, input.params.spanner_k, mode)
                .map(AlgoOutput::Spanner)
        },
    },
    Algorithm {
        name: "apsp",
        summary: "O(log n)-approximate APSP oracle from a k=⌈log₂ n⌉ spanner",
        paper: "Corollary 4.2",
        polylog_exponent: 1.6,
        // One spanner run (the fixed 17-round clock, weight classes
        // interleaved when the input is weighted) — oracle indexing is
        // local to the large machine and costs no rounds.
        round_budget: |_n| 24,
        runner: |cluster, input, mode| {
            let k = ApspOracle::stretch_parameter(input.n);
            let weighted = input.edges.iter().any(|(_, e)| e.w != 1);
            let spanner = if weighted {
                let run = if input.params.batch_instances {
                    adapters::heterogeneous_spanner_weighted
                } else {
                    adapters::heterogeneous_spanner_weighted_sequential
                };
                run(cluster, input.n, input.edges, k, mode)?
            } else {
                adapters::heterogeneous_spanner(cluster, input.n, input.edges, k, mode)?
            };
            let stretch_bound = if weighted { 12 * k - 1 } else { 6 * k - 1 };
            let oracle = ApspOracle::from_spanner(spanner.spanner.clone(), stretch_bound);
            Ok(AlgoOutput::Apsp { oracle, spanner })
        },
    },
    Algorithm {
        name: "mst-approx",
        summary: "(1+ε)-approximate MST weight via thresholded connectivity",
        paper: "Theorem C.2",
        polylog_exponent: 2.6,
        // All threshold waves interleaved in one engine run: a single
        // 3-round connectivity wave plus slack, independent of the
        // O(log_{1+ε} W) grid size — the theorem's parallel figure.
        round_budget: |_n| 8,
        runner: |cluster, input, mode| {
            let run = if input.params.batch_instances {
                adapters::approximate_mst_weight
            } else {
                adapters::approximate_mst_weight_sequential
            };
            run(cluster, input.n, input.edges, input.params.epsilon, mode)
                .map(AlgoOutput::MstApprox)
        },
    },
    Algorithm {
        name: "mincut",
        summary: "exact unweighted min cut via 2-out + sampling contraction",
        paper: "Theorem C.3",
        polylog_exponent: 1.3,
        // O(1) per trial (12 engine rounds), at the default trial count,
        // plus the degree kickoff.
        round_budget: |_n| 12 * DEFAULT_MINCUT_TRIALS as u64 + 8,
        runner: |cluster, input, mode| {
            adapters::heterogeneous_min_cut(
                cluster,
                input.n,
                input.edges,
                input.params.mincut_trials,
                mode,
            )
            .map(AlgoOutput::MinCut)
        },
    },
    Algorithm {
        name: "mincut-approx",
        summary: "(1±ε)-approximate weighted min cut via skeleton sampling",
        paper: "Theorem C.4",
        polylog_exponent: 1.6,
        // All λ̂ guesses interleaved in one engine run: one 4-round wave
        // plus the conditional whole-graph fallback, independent of the
        // geometric guess count — the theorem's parallel figure.
        round_budget: |_n| 10,
        runner: |cluster, input, mode| {
            let run = if input.params.batch_instances {
                adapters::approximate_min_cut
            } else {
                adapters::approximate_min_cut_sequential
            };
            run(cluster, input.n, input.edges, input.params.epsilon, mode)
                .map(AlgoOutput::MinCutApprox)
        },
    },
    Algorithm {
        name: "mis",
        summary: "maximal independent set over geometric rank prefixes",
        paper: "Theorem C.6",
        polylog_exponent: 1.6,
        round_budget: |n| 10 * (loglog(n) + 1) + 10,
        runner: |cluster, input, mode| {
            adapters::heterogeneous_mis(cluster, input.n, input.edges, mode).map(AlgoOutput::Mis)
        },
    },
    Algorithm {
        name: "coloring",
        summary: "(Δ+1)-coloring via palette sampling + conflict list-coloring",
        paper: "Theorem C.7",
        polylog_exponent: 2.0,
        // O(1) plus at most MAX_RESTARTS + 1 attempt waves (2 rounds each).
        round_budget: |_n| 6 + 2 * (mpc_core::ported::coloring::MAX_RESTARTS as u64 + 1),
        runner: |cluster, input, mode| {
            adapters::heterogeneous_coloring(cluster, input.n, input.edges, mode)
                .map(AlgoOutput::Coloring)
        },
    },
];

/// The registry names whose paper-parallel instances run interleaved
/// through the [multi-program scheduler](crate::multiplex) by default
/// (and sequentially under [`AlgoInput::sequential_instances`]) — the
/// single source of truth for the `budgets` collapse gate and the
/// `hotpath` batched bench rows.
pub const BATCHED_NAMES: [&str; 3] = ["spanner-weighted", "mst-approx", "mincut-approx"];

/// The canonical registry contents: every paper result, exactly once, in
/// presentation order. `names()` must equal this list (asserted by the
/// registry unit tests *and* the `registry` smoke experiment in CI), so a
/// dropped, duplicated, or misnamed registration fails the build.
pub const CANONICAL_NAMES: [&str; 12] = [
    "connectivity",
    "boruvka-msf",
    "mst",
    "matching",
    "spanner",
    "spanner-weighted",
    "apsp",
    "mst-approx",
    "mincut",
    "mincut-approx",
    "mis",
    "coloring",
];

/// All registered algorithms, in presentation order.
pub fn algorithms() -> &'static [Algorithm] {
    ALGORITHMS
}

/// All registry names, in presentation order.
pub fn names() -> Vec<&'static str> {
    ALGORITHMS.iter().map(|a| a.name).collect()
}

/// Looks up an algorithm by name.
pub fn get(name: &str) -> Option<&'static Algorithm> {
    ALGORITHMS.iter().find(|a| a.name == name)
}

/// Runs the named algorithm on `cluster` in the given [`ExecMode`] — the
/// registry entry point everything routes through.
///
/// # Errors
///
/// [`ExecError::Algorithm`] for unknown names; otherwise whatever the
/// algorithm surfaces (see [`ExecError`]).
pub fn run(
    name: &str,
    cluster: &mut Cluster,
    input: &AlgoInput<'_>,
    mode: ExecMode,
) -> Result<AlgoOutput, ExecError> {
    let algo = get(name).ok_or_else(|| ExecError::Algorithm {
        message: format!(
            "unknown algorithm '{name}'; registered: {}",
            names().join(", ")
        ),
    })?;
    algo.run(cluster, input, mode)
}

/// Runs one [`JobSpec`] solo on `cluster`: distributes the spec's graph
/// and delegates to [`run`] with the spec's parameters — the single
/// bridge between the job description the [service](crate::service)
/// consumes and the [`AlgoInput`] entry point, so the two cannot drift.
/// The caller seeds the cluster (typically with [`JobSpec::seed`]) to
/// reproduce a service job bit-for-bit.
///
/// # Errors
///
/// Same as [`run`].
pub fn run_job(
    spec: &JobSpec,
    cluster: &mut Cluster,
    mode: ExecMode,
) -> Result<AlgoOutput, ExecError> {
    let edges = mpc_core::common::distribute_edges(cluster, &spec.graph);
    let input = AlgoInput {
        n: spec.graph.n(),
        edges: &edges,
        params: spec.params.clone(),
    };
    run(&spec.name, cluster, &input, mode)
}

/// Runs the named algorithm with telemetry recording attached and returns
/// its output together with a [`RunReport`](crate::report::RunReport) —
/// per-machine load, straggler ranking, critical-path breakdown, and (for
/// pool runs) host-side worker accounting.
///
/// An unbounded ring sink is installed for the duration of the run. If the
/// caller already attached a sink it keeps receiving every event (the two
/// are fanned out), and it is restored afterwards either way.
///
/// # Errors
///
/// Same as [`run`]; the caller's sink is restored on the error path too.
pub fn run_with_report(
    name: &str,
    cluster: &mut Cluster,
    input: &AlgoInput<'_>,
    mode: ExecMode,
) -> Result<(AlgoOutput, crate::report::RunReport), ExecError> {
    use mpc_runtime::{FanoutSink, RingSink, TraceSink};
    use std::sync::Arc;

    let ring = Arc::new(RingSink::unbounded());
    let previous = cluster.set_trace_sink(Some(match cluster.trace_sink() {
        Some(existing) => {
            Arc::new(FanoutSink::new(vec![existing, ring.clone()])) as Arc<dyn TraceSink>
        }
        None => ring.clone() as Arc<dyn TraceSink>,
    }));
    let result = run(name, cluster, input, mode);
    cluster.set_trace_sink(previous);
    let output = result?;
    let report = crate::report::RunReport::from_events(name, ring.take(), cluster.cost_model());
    Ok((output, report))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_matches_the_canonical_name_set() {
        assert_eq!(
            names(),
            CANONICAL_NAMES.to_vec(),
            "registry names drifted from the canonical set"
        );
        for name in CANONICAL_NAMES {
            assert!(get(name).is_some(), "'{name}' not registered");
        }
        assert_eq!(names().len(), ALGORITHMS.len());
        for name in BATCHED_NAMES {
            assert!(
                CANONICAL_NAMES.contains(&name),
                "batched name '{name}' missing from the canonical set"
            );
        }
    }

    #[test]
    fn unknown_names_error_with_the_catalog() {
        let g = mpc_graph::generators::gnm(16, 32, 1);
        let mut cluster = Cluster::new(mpc_runtime::ClusterConfig::new(g.n(), g.m()));
        let edges = mpc_core::common::distribute_edges(&cluster, &g);
        let input = AlgoInput::new(g.n(), &edges);
        let err = run("nope", &mut cluster, &input, ExecMode::Serial).unwrap_err();
        assert!(err.to_string().contains("unknown algorithm"));
        assert!(err.to_string().contains("mst"));
    }
}
