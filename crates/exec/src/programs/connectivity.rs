//! [`ConnectivityProgram`]: the paper's `O(1)`-round connectivity port
//! (Theorem C.1) expressed as a per-machine state machine.
//!
//! Same mathematics as [`mpc_core::ported::heterogeneous_connectivity`],
//! re-phased onto the program clock (`ctx.round`):
//!
//! | round | who    | does |
//! |------:|--------|------|
//! | 0     | large  | draws the sketch-family seed from its private RNG, sends it to every machine |
//! | 1     | smalls | build partial sparse sketches of their local edges, send each `(phase, vertex)` partial to its hash-owner |
//! | 2     | owners | sum partials per key (sketches are linear), forward to the large machine |
//! | 3     | large  | dense-ifies the per-vertex sketches, runs sketch-Borůvka locally, halts with the [`Components`] |
//!
//! The seed is the large machine's **first** RNG draw — exactly what the
//! legacy implementation draws — and sketch merging is field addition
//! (commutative and associative), so the resulting components are
//! *identical* to the legacy path on the same cluster seed, which the
//! equivalence tests assert.

use crate::machine::{MachineCtx, MachineProgram, StepOutcome};
use mpc_core::ported::connectivity::ConnectivityConfig;
use mpc_graph::traversal::Components;
use mpc_graph::Edge;
use mpc_runtime::{Cluster, MachineId, Payload, ShardedVec};
use mpc_sketch::{sketch_connectivity, SketchFamily, SparseSketch, VertexSketch};
use rand::Rng;
use std::collections::BTreeMap;

/// Messages of the connectivity program.
#[derive(Clone, Debug)]
pub enum ConnMsg {
    /// The sketch-family seed, broadcast by the large machine.
    Seed(u64),
    /// A (partial or merged) sparse sketch for key `(phase << 32) | vertex`.
    Partial(u64, SparseSketch),
}

impl Payload for ConnMsg {
    fn words(&self) -> usize {
        match self {
            ConnMsg::Seed(_) => 1,
            ConnMsg::Partial(_, s) => 1 + s.words(),
        }
    }
}

/// Per-machine state of the connectivity port.
#[derive(Clone)]
pub struct ConnectivityProgram {
    n: usize,
    phases: usize,
    owners: Vec<MachineId>,
    local_edges: Vec<Edge>,
    /// The family seed: drawn in round 0 on the large machine, received in
    /// round 1 on the smalls.
    seed: Option<u64>,
    /// Set on the large machine when it halts.
    pub result: Option<Components>,
}

impl ConnectivityProgram {
    /// Builds one program per machine of `cluster`, with the input edges
    /// sharded as `edges` (typically
    /// [`common::distribute_edges`](mpc_core::common::distribute_edges)).
    pub fn for_cluster(
        cluster: &Cluster,
        n: usize,
        edges: &ShardedVec<Edge>,
        config: &ConnectivityConfig,
    ) -> Vec<Self> {
        let owners = cluster.small_ids();
        assert!(
            cluster.large().is_some(),
            "connectivity requires a large machine"
        );
        (0..cluster.machines())
            .map(|mid| ConnectivityProgram {
                n,
                phases: config.phases,
                owners: owners.clone(),
                local_edges: edges.shard(mid).to_vec(),
                seed: None,
                result: None,
            })
            .collect()
    }

    fn owner_of(&self, key: u64) -> MachineId {
        self.owners[(key % self.owners.len() as u64) as usize]
    }
}

impl MachineProgram for ConnectivityProgram {
    type Message = ConnMsg;

    fn snapshot(&self) -> Option<Self> {
        Some(self.clone())
    }

    fn step(
        &mut self,
        ctx: &MachineCtx<'_>,
        inbox: Vec<(MachineId, ConnMsg)>,
    ) -> StepOutcome<ConnMsg> {
        match ctx.round {
            // Round 0 — the large machine distributes shared randomness.
            0 => {
                if !ctx.is_large() {
                    return StepOutcome::idle();
                }
                let seed: u64 = ctx.rng().random();
                self.seed = Some(seed);
                let out = ctx
                    .small_ids_iter()
                    .map(|mid| (mid, ConnMsg::Seed(seed)))
                    .collect();
                StepOutcome::Send(out)
            }
            // Round 1 — small machines sketch their local edges.
            1 => {
                let Some((_, ConnMsg::Seed(seed))) = inbox.into_iter().next() else {
                    return StepOutcome::idle(); // the large machine
                };
                self.seed = Some(seed);
                let family = SketchFamily::new(self.n, self.phases, seed);
                let mut partials: BTreeMap<u64, SparseSketch> = BTreeMap::new();
                for e in &self.local_edges {
                    for phase in 0..self.phases {
                        let ku = ((phase as u64) << 32) | e.u as u64;
                        let kv = ((phase as u64) << 32) | e.v as u64;
                        family.add_edge_sparse(partials.entry(ku).or_default(), phase, e.u, e.v);
                        family.add_edge_sparse(partials.entry(kv).or_default(), phase, e.v, e.u);
                    }
                }
                // Sketch construction is the dominant local computation;
                // report it so the cost model sees the skew.
                ctx.charge((self.local_edges.len() * self.phases) as u64);
                let out = partials
                    .into_iter()
                    .map(|(key, s)| (self.owner_of(key), ConnMsg::Partial(key, s)))
                    .collect();
                StepOutcome::Send(out)
            }
            // Round 2 — owners sum partials per key (linearity).
            2 => {
                if inbox.is_empty() {
                    return StepOutcome::idle();
                }
                let large = ctx.large.expect("checked in for_cluster");
                let mut merged: BTreeMap<u64, SparseSketch> = BTreeMap::new();
                for (_, msg) in inbox {
                    if let ConnMsg::Partial(key, s) = msg {
                        merged.entry(key).or_default().merge(&s);
                    }
                }
                let out = merged
                    .into_iter()
                    .map(|(key, s)| (large, ConnMsg::Partial(key, s)))
                    .collect();
                StepOutcome::Send(out)
            }
            // Round 3 — the large machine runs sketch-Borůvka locally.
            _ => {
                if !ctx.is_large() {
                    return StepOutcome::Halt;
                }
                let seed = self.seed.expect("seed drawn in round 0");
                let family = SketchFamily::new(self.n, self.phases, seed);
                let mut rows: Vec<Vec<VertexSketch>> = (0..self.phases)
                    .map(|p| (0..self.n).map(|_| family.empty(p)).collect())
                    .collect();
                for (_, msg) in inbox {
                    if let ConnMsg::Partial(key, sparse) = msg {
                        let phase = (key >> 32) as usize;
                        let v = (key & 0xFFFF_FFFF) as usize;
                        rows[phase][v] = family.to_dense(&sparse);
                    }
                }
                ctx.charge((self.n * self.phases) as u64);
                self.result = Some(sketch_connectivity(&family, &rows, self.n));
                StepOutcome::Halt
            }
        }
    }
}
