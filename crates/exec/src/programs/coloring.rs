//! [`ColoringProgram`]: the `O(1)`-round (Δ+1)-coloring (Theorem C.7 —
//! palette sampling + conflict-graph list coloring) as a per-machine state
//! machine.
//!
//! Same algorithm as the legacy call-style
//! [`mpc_core::ported::heterogeneous_coloring`], in the coordinator shape
//! of the [`combinators`](crate::combinators) layer. All randomness lives
//! on the large machine (the palette seed, then the list-coloring order per
//! attempt — the legacy draw order); the small machines derive palettes
//! from the broadcast seed via the deterministic per-vertex PRF
//! ([`palette`](mpc_core::ported::coloring::palette)) and ship only the
//! conflict edges, so results, statistics, and RNG stream positions are
//! bit-identical to the legacy path.
//!
//! Flow: degrees up (rounds 0–2), then per attempt: `Attempt{seed}`
//! broadcast → conflict edges gathered two rounds later → local list
//! coloring. A failed attempt restarts with a fresh seed; after
//! [`MAX_RESTARTS`](mpc_core::ported::coloring::MAX_RESTARTS) the whole
//! graph is gathered and greedy-colored (the legacy fallback).

use crate::combinators::{announce_degrees, Outbox, Owners, RoleProgram};
use crate::machine::{MachineCtx, StepOutcome};
use mpc_core::ported::coloring::{
    attempt_coloring, edge_conflicts, palette_size_for, ColoringResult, MAX_RESTARTS,
};
use mpc_graph::{Edge, VertexId};
use mpc_runtime::{Cluster, MachineId, Payload, ShardedVec};
use rand::seq::SliceRandom;
use rand::Rng;
use std::collections::BTreeMap;

/// Phase commands broadcast by the large machine.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ColorCmd {
    /// Derive palettes under `seed`, ship the conflict edges.
    Attempt {
        /// The palette seed of this attempt.
        seed: u64,
        /// The maximum degree Δ (palettes sample from `{0, …, Δ}`).
        delta: u32,
    },
    /// Too many restarts: ship the whole shard (fallback).
    SendAll,
    /// The run is over; halt.
    Finish,
}

/// Messages of the coloring program.
#[derive(Clone, Copy, Debug)]
pub enum ColorNetMsg {
    /// Large → smalls: phase command.
    Cmd(ColorCmd),
    /// Small → owner: partial degree count of a vertex.
    DegPartial(VertexId, u32),
    /// Owner → large: final degree of a vertex.
    DegUp(VertexId, u32),
    /// Small → large: a conflict edge.
    Conflict(Edge),
    /// Small → large: a raw input edge (fallback).
    AllEdge(Edge),
}

impl Payload for ColorNetMsg {
    fn words(&self) -> usize {
        match self {
            ColorNetMsg::Cmd(ColorCmd::Attempt { .. }) => 3,
            ColorNetMsg::Cmd(_) => 1,
            ColorNetMsg::DegPartial(_, _) | ColorNetMsg::DegUp(_, _) => 2,
            ColorNetMsg::Conflict(e) | ColorNetMsg::AllEdge(e) => e.words(),
        }
    }
}

/// What the large machine is waiting for.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum LPhase {
    /// Degree reports arrive at round 2.
    Degrees,
    /// `Attempt` issued: conflict edges arrive at `issued + 2`.
    Conflicts { issued: u64 },
    /// `SendAll` issued: the whole graph arrives at `issued + 2`.
    AllEdges { issued: u64 },
    /// Finish broadcast; halt on the next step.
    Done,
}

/// Per-machine state of the coloring program.
#[derive(Clone)]
pub struct ColoringProgram {
    n: usize,
    owners: Owners,
    // ---- small-machine state ----
    input: Vec<Edge>,
    // ---- large-machine state ----
    phase: LPhase,
    delta: u32,
    palette_size: usize,
    seed: u64,
    restarts: usize,
    /// Set on the large machine when it halts.
    pub result: Option<ColoringResult>,
}

impl ColoringProgram {
    /// Builds one program per machine over the sharded input edges.
    pub fn for_cluster(cluster: &Cluster, n: usize, edges: &ShardedVec<Edge>) -> Vec<Self> {
        let owners = Owners::of_cluster(cluster);
        let large = cluster.large().expect("coloring requires a large machine");
        assert!(!owners.ids().is_empty(), "coloring requires small machines");
        assert!(
            edges.shard(large).is_empty(),
            "engine programs expect the input on the small machines only \
             (see common::distribute_edges); the large machine's shard would \
             be silently ignored"
        );
        (0..cluster.machines())
            .map(|mid| ColoringProgram {
                n,
                owners: owners.clone(),
                input: edges.shard(mid).to_vec(),
                phase: LPhase::Degrees,
                delta: 0,
                palette_size: 0,
                seed: 0,
                restarts: 0,
                result: None,
            })
            .collect()
    }

    fn finish(
        &mut self,
        ctx: &MachineCtx<'_>,
        out: &mut Outbox<ColorNetMsg>,
        result: ColoringResult,
    ) {
        self.result = Some(result);
        self.phase = LPhase::Done;
        out.broadcast(ctx.small_ids_iter(), ColorNetMsg::Cmd(ColorCmd::Finish));
    }

    /// Draws a fresh palette seed and broadcasts the next attempt — the
    /// legacy loop head (`seed = rng.random()` then the broadcast).
    fn issue_attempt(&mut self, ctx: &MachineCtx<'_>, out: &mut Outbox<ColorNetMsg>) {
        self.seed = ctx.rng().random();
        out.broadcast(
            ctx.small_ids_iter(),
            ColorNetMsg::Cmd(ColorCmd::Attempt {
                seed: self.seed,
                delta: self.delta,
            }),
        );
        self.phase = LPhase::Conflicts { issued: ctx.round };
    }
}

impl RoleProgram for ColoringProgram {
    type Message = ColorNetMsg;

    fn snapshot(&self) -> Option<Self> {
        Some(self.clone())
    }

    fn large_step(
        &mut self,
        ctx: &MachineCtx<'_>,
        inbox: Vec<(MachineId, ColorNetMsg)>,
    ) -> StepOutcome<ColorNetMsg> {
        let mut out = Outbox::new();
        match self.phase {
            LPhase::Degrees => {
                if ctx.round == 2 {
                    self.delta = inbox
                        .iter()
                        .filter_map(|(_, m)| match m {
                            ColorNetMsg::DegUp(_, d) => Some(*d),
                            _ => None,
                        })
                        .max()
                        .unwrap_or(0);
                    if self.delta == 0 {
                        // Edgeless graph: one color, no randomness consumed
                        // (the legacy early return).
                        let result = ColoringResult {
                            colors: vec![0; self.n],
                            conflict_edges: 0,
                            restarts: 0,
                        };
                        self.finish(ctx, &mut out, result);
                    } else {
                        self.palette_size = palette_size_for(self.n);
                        self.issue_attempt(ctx, &mut out);
                    }
                }
            }
            LPhase::Conflicts { issued } => {
                if ctx.round == issued + 2 {
                    let conflict_edges: Vec<Edge> = inbox
                        .into_iter()
                        .filter_map(|(_, m)| match m {
                            ColorNetMsg::Conflict(e) => Some(e),
                            _ => None,
                        })
                        .collect();
                    ctx.charge(conflict_edges.len() as u64 * 2);
                    let mut order: Vec<VertexId> = (0..self.n as VertexId).collect();
                    order.shuffle(&mut *ctx.rng());
                    if let Some(colors) = attempt_coloring(
                        self.n,
                        &conflict_edges,
                        self.seed,
                        self.delta,
                        self.palette_size,
                        &order,
                    ) {
                        let result = ColoringResult {
                            colors,
                            conflict_edges: conflict_edges.len(),
                            restarts: self.restarts,
                        };
                        self.finish(ctx, &mut out, result);
                    } else {
                        self.restarts += 1;
                        if self.restarts > MAX_RESTARTS {
                            // Degenerate instance: gather the whole graph.
                            out.broadcast(
                                ctx.small_ids_iter(),
                                ColorNetMsg::Cmd(ColorCmd::SendAll),
                            );
                            self.phase = LPhase::AllEdges { issued: ctx.round };
                        } else {
                            self.issue_attempt(ctx, &mut out);
                        }
                    }
                }
            }
            LPhase::AllEdges { issued } => {
                if ctx.round == issued + 2 {
                    let all: Vec<Edge> = inbox
                        .into_iter()
                        .filter_map(|(_, m)| match m {
                            ColorNetMsg::AllEdge(e) => Some(e),
                            _ => None,
                        })
                        .collect();
                    ctx.charge(all.len() as u64 * 2);
                    let g = mpc_graph::Graph::new(self.n, all);
                    let colors = mpc_graph::coloring::greedy_coloring(&g, &[]);
                    let result = ColoringResult {
                        colors,
                        conflict_edges: g.m(),
                        restarts: self.restarts,
                    };
                    self.finish(ctx, &mut out, result);
                }
            }
            LPhase::Done => return StepOutcome::Halt,
        }
        out.into_step()
    }

    fn small_step(
        &mut self,
        ctx: &MachineCtx<'_>,
        inbox: Vec<(MachineId, ColorNetMsg)>,
    ) -> StepOutcome<ColorNetMsg> {
        let mut out = Outbox::new();
        let large = ctx.large.expect("checked in for_cluster");

        if ctx.round == 0 {
            announce_degrees(&mut out, &self.owners, &self.input, ColorNetMsg::DegPartial);
        }

        let mut cmd: Option<ColorCmd> = None;
        let mut deg_sum: BTreeMap<VertexId, u32> = BTreeMap::new();
        for (_src, msg) in inbox {
            match msg {
                ColorNetMsg::Cmd(c) => cmd = Some(c),
                ColorNetMsg::DegPartial(v, c) => *deg_sum.entry(v).or_default() += c,
                _ => {}
            }
        }

        // ---- owner role ----
        for (&v, &d) in &deg_sum {
            out.send(large, ColorNetMsg::DegUp(v, d));
        }

        // ---- worker role ----
        match cmd {
            Some(ColorCmd::Finish) => return StepOutcome::Halt,
            Some(ColorCmd::Attempt { seed, delta }) => {
                let palette_size = palette_size_for(self.n);
                for e in &self.input {
                    if edge_conflicts(seed, e, delta, palette_size) {
                        out.send(large, ColorNetMsg::Conflict(*e));
                    }
                }
                ctx.charge(self.input.len() as u64);
            }
            Some(ColorCmd::SendAll) => {
                for e in &self.input {
                    out.send(large, ColorNetMsg::AllEdge(*e));
                }
            }
            None => {}
        }

        out.into_step()
    }
}
