//! [`BoruvkaProgram`]: the MST contraction phase (§3's Borůvka building
//! block) as a per-machine state machine, iterated to a full MSF.
//!
//! Each Borůvka wave is four synchronized rounds, phased by
//! `ctx.round % 4`:
//!
//! | phase | who    | does |
//! |------:|--------|------|
//! | A     | smalls | apply last wave's renames, drop internal edges, dedup parallel edges locally, announce each current vertex's locally-lightest edge to the vertex's hash-owner |
//! | B     | owners | keep the globally-lightest announcement per vertex (remembering who announced), forward the per-vertex minima to the large machine |
//! | C     | large  | contract along the minimum outgoing edges ([`contract_lightest_lists`] with `k = 1`), collect the chosen MST edges, send each rename pair to its vertex's owner |
//! | D     | owners | forward every rename to exactly the machines that announced its vertex |
//!
//! Ties break on the full [`weight_key`](Edge::weight_key) (weight, then
//! endpoints), a total order, so the chosen edge set is the unique MSF of
//! the perturbed weights — the same tie-breaking the legacy
//! [`heterogeneous_mst`](mpc_core::mst::heterogeneous_mst) uses, which is
//! why the equivalence tests can compare edge sets, not just weights.
//!
//! Unlike the legacy doubly-exponential schedule this is plain Borůvka
//! (`O(log n)` waves, not `O(log log (m/n))`): the point here is the
//! execution model, and a 4-round wave whose every step is per-machine
//! state exercises it far harder than a monolithic loop.

use crate::machine::{MachineCtx, MachineProgram, StepOutcome};
use mpc_core::mst::contract_lightest_lists;
use mpc_graph::mst::Forest;
use mpc_graph::{Edge, VertexId};
use mpc_runtime::payload::TaggedEdge;
use mpc_runtime::{Cluster, MachineId, Payload, ShardedVec};
use std::collections::BTreeMap;

/// Messages of the Borůvka program.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MstMsg {
    /// `(vertex, lightest incident edge known to the sender)`.
    Announce(VertexId, TaggedEdge),
    /// `(old current-id, new current-id)` from the contraction.
    Rename(VertexId, VertexId),
}

impl Payload for MstMsg {
    fn words(&self) -> usize {
        match self {
            MstMsg::Announce(_, te) => 1 + te.words(),
            MstMsg::Rename(_, _) => 2,
        }
    }
}

/// Per-machine state of the Borůvka MSF program.
#[derive(Clone)]
pub struct BoruvkaProgram {
    owners: Vec<MachineId>,
    /// Current contracted edges on this (small) machine.
    local: Vec<TaggedEdge>,
    /// Owner role: vertex -> machines that announced it this wave.
    announcers: BTreeMap<VertexId, Vec<MachineId>>,
    /// Large machine only: MST edges chosen so far (original ids).
    chosen: Vec<Edge>,
    /// Set on the large machine when it halts.
    pub forest: Option<Forest>,
}

impl BoruvkaProgram {
    /// Builds one program per machine, lifting `edges` into tagged form
    /// exactly like the legacy MST entry point.
    pub fn for_cluster(cluster: &Cluster, edges: &ShardedVec<Edge>) -> Vec<Self> {
        let owners = cluster.small_ids();
        assert!(
            cluster.large().is_some(),
            "Borůvka MSF requires a large machine"
        );
        (0..cluster.machines())
            .map(|mid| BoruvkaProgram {
                owners: owners.clone(),
                local: edges
                    .shard(mid)
                    .iter()
                    .map(|&e| TaggedEdge::identity(e.normalized()))
                    .collect(),
                announcers: BTreeMap::new(),
                chosen: Vec::new(),
                forest: None,
            })
            .collect()
    }

    fn owner_of(&self, v: VertexId) -> MachineId {
        self.owners[v as usize % self.owners.len()]
    }

    /// Phase A on a small machine: relabel along `renames`, drop edges that
    /// became internal, keep only the lightest of parallel edges, announce.
    fn relabel_and_announce(
        &mut self,
        renames: &BTreeMap<VertexId, VertexId>,
    ) -> StepOutcome<MstMsg> {
        if !renames.is_empty() {
            let mut dedup: BTreeMap<(VertexId, VertexId), TaggedEdge> = BTreeMap::new();
            for te in self.local.drain(..) {
                let u = *renames.get(&te.cur.u).unwrap_or(&te.cur.u);
                let v = *renames.get(&te.cur.v).unwrap_or(&te.cur.v);
                if u == v {
                    continue;
                }
                let key = (u.min(v), u.max(v));
                let cand = TaggedEdge {
                    cur: Edge::new(key.0, key.1, te.orig.w),
                    orig: te.orig,
                };
                dedup
                    .entry(key)
                    .and_modify(|best| {
                        if cand.orig.weight_key() < best.orig.weight_key() {
                            *best = cand;
                        }
                    })
                    .or_insert(cand);
            }
            self.local = dedup.into_values().collect();
        }
        if self.local.is_empty() {
            return StepOutcome::Halt;
        }
        // Locally-lightest edge per current vertex.
        let mut best: BTreeMap<VertexId, TaggedEdge> = BTreeMap::new();
        for te in &self.local {
            for v in [te.cur.u, te.cur.v] {
                best.entry(v)
                    .and_modify(|b| {
                        if te.orig.weight_key() < b.orig.weight_key() {
                            *b = *te;
                        }
                    })
                    .or_insert(*te);
            }
        }
        let out = best
            .into_iter()
            .map(|(v, te)| (self.owner_of(v), MstMsg::Announce(v, te)))
            .collect();
        StepOutcome::Send(out)
    }
}

impl MachineProgram for BoruvkaProgram {
    type Message = MstMsg;

    fn snapshot(&self) -> Option<Self> {
        Some(self.clone())
    }

    fn step(
        &mut self,
        ctx: &MachineCtx<'_>,
        inbox: Vec<(MachineId, MstMsg)>,
    ) -> StepOutcome<MstMsg> {
        let phase = ctx.round % 4;
        if ctx.is_large() {
            // Phase C: contract; other phases are idle until the lists dry up.
            if phase != 2 {
                return if self.forest.is_some() {
                    StepOutcome::Halt
                } else {
                    StepOutcome::idle()
                };
            }
            if inbox.is_empty() {
                let mut chosen = std::mem::take(&mut self.chosen);
                chosen.sort_by_key(Edge::weight_key);
                chosen.dedup();
                self.forest = Some(Forest::from_edges(chosen));
                return StepOutcome::Halt;
            }
            let lists: Vec<(VertexId, Vec<TaggedEdge>)> = inbox
                .into_iter()
                .filter_map(|(_, msg)| match msg {
                    MstMsg::Announce(v, te) => Some((v, vec![te])),
                    MstMsg::Rename(_, _) => None,
                })
                .collect();
            ctx.charge(lists.len() as u64);
            let outcome = contract_lightest_lists(lists, 1);
            self.chosen.extend(outcome.chosen);
            let out = outcome
                .rename
                .into_iter()
                .filter(|(old, new)| old != new)
                .map(|(old, new)| (self.owner_of(old), MstMsg::Rename(old, new)))
                .collect();
            return StepOutcome::Send(out);
        }

        match phase {
            // Phase A — relabel with incoming renames, announce minima.
            0 => {
                let renames: BTreeMap<VertexId, VertexId> = inbox
                    .into_iter()
                    .filter_map(|(_, msg)| match msg {
                        MstMsg::Rename(old, new) => Some((old, new)),
                        MstMsg::Announce(_, _) => None,
                    })
                    .collect();
                self.relabel_and_announce(&renames)
            }
            // Phase B — owner keeps the lightest announcement per vertex.
            1 => {
                if inbox.is_empty() {
                    return if self.local.is_empty() {
                        StepOutcome::Halt
                    } else {
                        StepOutcome::idle()
                    };
                }
                let large = ctx.large.expect("checked in for_cluster");
                let mut best: BTreeMap<VertexId, TaggedEdge> = BTreeMap::new();
                self.announcers.clear();
                for (src, msg) in inbox {
                    let MstMsg::Announce(v, te) = msg else {
                        continue;
                    };
                    self.announcers.entry(v).or_default().push(src);
                    best.entry(v)
                        .and_modify(|b| {
                            if te.orig.weight_key() < b.orig.weight_key() {
                                *b = te;
                            }
                        })
                        .or_insert(te);
                }
                for senders in self.announcers.values_mut() {
                    senders.sort_unstable();
                    senders.dedup();
                }
                let out = best
                    .into_iter()
                    .map(|(v, te)| (large, MstMsg::Announce(v, te)))
                    .collect();
                StepOutcome::Send(out)
            }
            // Phase C — smalls wait while the large machine contracts.
            2 => {
                if self.local.is_empty() && self.announcers.is_empty() {
                    StepOutcome::Halt
                } else {
                    StepOutcome::idle()
                }
            }
            // Phase D — owner routes each rename to that vertex's announcers.
            _ => {
                if inbox.is_empty() {
                    return if self.local.is_empty() && self.announcers.is_empty() {
                        StepOutcome::Halt
                    } else {
                        StepOutcome::idle()
                    };
                }
                let announcers = std::mem::take(&mut self.announcers);
                let mut out: Vec<(MachineId, MstMsg)> = Vec::new();
                for (_, msg) in inbox {
                    let MstMsg::Rename(old, new) = msg else {
                        continue;
                    };
                    if let Some(machines) = announcers.get(&old) {
                        for &m in machines {
                            out.push((m, MstMsg::Rename(old, new)));
                        }
                    }
                }
                StepOutcome::Send(out)
            }
        }
    }
}
