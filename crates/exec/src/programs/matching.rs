//! [`MatchingProgram`]: the three-phase maximal-matching algorithm (§5,
//! Theorem 5.1 — low-degree peeling, high-degree sampling, residual finish)
//! as a per-machine state machine.
//!
//! Same algorithm as the legacy call-style
//! [`mpc_core::matching::heterogeneous_matching`], in the coordinator shape
//! of the [`combinators`](crate::combinators) layer. Every random draw a
//! small machine makes — the peeling edge ranks over the low-degree
//! subgraph, then the Phase-2 sampling ranks over the high-degree
//! incidences — happens in exactly the legacy per-machine order, so the
//! matching *and* the RNG stream positions are bit-identical to the legacy
//! path (asserted by the registry equivalence tests).
//!
//! Flow (numbers are rounds; peeling iterates the middle block):
//!
//! | round | who    | does |
//! |------:|--------|------|
//! | 0     | smalls | per-vertex degree partials + degree lookups to the vertex owners |
//! | 1     | owners | sum to true degrees, answer lookups, report to the large machine |
//! | 2     | large  | `d`, threshold `d²`, high set; broadcast `Classify` |
//! | 3     | smalls | build the low subgraph, draw the one-time edge ranks, report live counts |
//! | iter  | all    | announce per-vertex minimum ranks → owners reply global minima → winners matched, flags to owners → prune via flag lookups → live counts |
//! | ...   | large  | `PeelDone` → gather `M₁` → broadcast `Phase2{t}` |
//! | ...   | smalls | draw a rank per high-degree incidence, top-`t` per vertex via owners to the large machine |
//! | ...   | large  | greedy `M₂`; matched flags to owners; smalls filter the residual; counted, shipped, finished greedily as `M₃` |

use crate::combinators::{fold_best, truncate_top, Announcers, Outbox, Owners, RoleProgram};
use crate::machine::{MachineCtx, StepOutcome};
use mpc_core::matching::peeling::{local_vertex_minima, winning_edges};
use mpc_core::matching::{
    degree_split, greedy_extend, phase2_t, MatchingError, MatchingResult, MatchingStats,
};
use mpc_graph::matching::{greedy_matching_over, Matching};
use mpc_graph::{Edge, VertexId};
use mpc_runtime::{Cluster, MachineId, Payload, ShardedVec};
use rand::Rng;
use std::collections::{BTreeMap, BTreeSet, HashMap, HashSet};

/// Phase commands broadcast by the large machine.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MatchCmd {
    /// Degrees are known: classify edges against `threshold`, draw the
    /// peeling ranks, report live counts.
    Classify {
        /// The low/high degree threshold `d²`.
        threshold: u64,
    },
    /// Run one peeling iteration.
    PeelIter,
    /// Peeling converged: ship the Phase-1 matching.
    PeelDone,
    /// Sample `t` random incident edges per high-degree vertex.
    Phase2 {
        /// Per-vertex sample size.
        t: u64,
    },
    /// Matched flags are at the owners: filter and count the residual.
    Phase3,
    /// Ship the residual edges.
    SendResidual,
    /// The run is over; halt.
    Finish,
}

/// Messages of the matching program.
#[derive(Clone, Copy, Debug)]
pub enum MatchNetMsg {
    /// Large → smalls: phase command.
    Cmd(MatchCmd),
    /// Small → owner: partial degree count of a vertex.
    DegPartial(VertexId, u32),
    /// Owner → large: final degree of a vertex.
    DegUp(VertexId, u32),
    /// Small → owner: this machine needs the degree of `v`.
    DegAsk(VertexId),
    /// Owner → asker: the degree of `v`.
    DegAns(VertexId, u32),
    /// Small → owner: local minimum `(rank, edge)` at vertex `v`.
    MinAnn(VertexId, u64, Edge),
    /// Owner → announcers: global minimum `(rank, edge)` at vertex `v`.
    MinAns(VertexId, u64, Edge),
    /// Small → owner: `v` was matched this iteration.
    MatchedFlag(VertexId),
    /// Small → owner: is `v` matched? (peeling prune)
    FlagAsk(VertexId),
    /// Owner → asker: whether `v` is matched (peeling).
    FlagAns(VertexId, bool),
    /// Large → owner: `v` is matched after Phases 1–2.
    P3Flag(VertexId),
    /// Small → owner: is `v` matched? (Phase 3)
    P3Ask(VertexId),
    /// Owner → asker: whether `v` is matched (Phase 3).
    P3Ans(VertexId, bool),
    /// Small → large: a count (live edges or residual edges).
    Count(u64),
    /// Small → large: a Phase-1 matching edge.
    MatchEdge(Edge),
    /// Small → owner: a Phase-2 candidate `(vertex, rank, edge)`.
    Cand(VertexId, u64, Edge),
    /// Owner → large: a surviving Phase-2 candidate.
    CandUp(VertexId, u64, Edge),
    /// Small → large: a residual edge.
    Residual(Edge),
}

impl Payload for MatchNetMsg {
    fn words(&self) -> usize {
        match self {
            MatchNetMsg::Cmd(MatchCmd::Classify { .. })
            | MatchNetMsg::Cmd(MatchCmd::Phase2 { .. }) => 2,
            MatchNetMsg::Cmd(_) => 1,
            MatchNetMsg::DegPartial(_, _)
            | MatchNetMsg::DegUp(_, _)
            | MatchNetMsg::DegAns(_, _)
            | MatchNetMsg::FlagAns(_, _)
            | MatchNetMsg::P3Ans(_, _) => 2,
            MatchNetMsg::DegAsk(_)
            | MatchNetMsg::MatchedFlag(_)
            | MatchNetMsg::FlagAsk(_)
            | MatchNetMsg::P3Flag(_)
            | MatchNetMsg::P3Ask(_)
            | MatchNetMsg::Count(_) => 1,
            MatchNetMsg::MinAnn(_, _, e) | MatchNetMsg::MinAns(_, _, e) => 2 + e.words(),
            MatchNetMsg::Cand(_, _, e) | MatchNetMsg::CandUp(_, _, e) => 2 + e.words(),
            MatchNetMsg::MatchEdge(e) | MatchNetMsg::Residual(e) => e.words(),
        }
    }
}

/// What the large machine is waiting for.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum LPhase {
    /// Round 0: handle the empty graph, otherwise wait for degrees.
    Boot,
    /// Degree reports arrive at round 2.
    Degrees,
    /// Live-edge counts arrive (initially and after every iteration).
    PeelCounts,
    /// `PeelDone` issued: the Phase-1 matching arrives at `issued + 2`.
    M1 { issued: u64 },
    /// `Phase2` issued with sample size `t`: candidates arrive at
    /// `issued + 3`.
    Cands { issued: u64, t: usize },
    /// `Phase3` issued: the residual count arrives at `issued + 4`.
    ResidCount { issued: u64 },
    /// `SendResidual` issued: the residual arrives at `issued + 2`.
    Residual { issued: u64 },
    /// Finish broadcast; halt on the next step.
    Done,
}

/// Per-machine state of the three-phase matching program.
#[derive(Clone)]
pub struct MatchingProgram {
    n: usize,
    owners: Owners,
    // ---- small-machine state ----
    /// The input shard (immutable throughout, like the legacy `edges`).
    input: Vec<Edge>,
    /// Endpoint degrees delivered by the owners.
    deg_local: HashMap<VertexId, u32>,
    /// The low/high threshold, from `Classify`.
    threshold: usize,
    /// Live low-degree edges with their one-time ranks.
    live: Vec<(u64, Edge)>,
    /// Phase-1 matching edges discovered by this machine.
    matched_here: Vec<Edge>,
    /// Residual edges (Phase 3), kept until `SendResidual`.
    residual: Vec<Edge>,
    /// Owner role: matched-vertex flags accumulated over the peeling.
    peel_flags: BTreeSet<VertexId>,
    /// Owner role: matched flags for Phase 3.
    p3_flags: BTreeSet<VertexId>,
    /// Owner role: who announced each vertex this peeling iteration.
    announcers: Announcers<VertexId>,
    /// Owner role: Phase-2 truncation size, from the `Phase2` broadcast.
    t: usize,
    // ---- large-machine state ----
    phase: LPhase,
    m_total: usize,
    deg: HashMap<VertexId, u32>,
    high: HashSet<VertexId>,
    d: f64,
    used: HashSet<VertexId>,
    m1: Vec<Edge>,
    m2: Vec<Edge>,
    stats: MatchingStats,
    /// Set on the large machine when it halts.
    pub result: Option<Result<MatchingResult, MatchingError>>,
}

impl MatchingProgram {
    /// Builds one program per machine over the sharded input edges.
    pub fn for_cluster(cluster: &Cluster, n: usize, edges: &ShardedVec<Edge>) -> Vec<Self> {
        let owners = Owners::of_cluster(cluster);
        assert!(
            cluster.large().is_some() && !owners.ids().is_empty(),
            "matching requires a large machine and small machines"
        );
        let m_total = edges.total_len();
        (0..cluster.machines())
            .map(|mid| MatchingProgram {
                n,
                owners: owners.clone(),
                input: edges.shard(mid).to_vec(),
                deg_local: HashMap::new(),
                threshold: 0,
                live: Vec::new(),
                matched_here: Vec::new(),
                residual: Vec::new(),
                peel_flags: BTreeSet::new(),
                p3_flags: BTreeSet::new(),
                announcers: Announcers::default(),
                t: 1,
                phase: LPhase::Boot,
                m_total,
                deg: HashMap::new(),
                high: HashSet::new(),
                d: 0.0,
                used: HashSet::new(),
                m1: Vec::new(),
                m2: Vec::new(),
                stats: MatchingStats::default(),
                result: None,
            })
            .collect()
    }

    fn finish_ok(&mut self, ctx: &MachineCtx<'_>, out: &mut Outbox<MatchNetMsg>, edges: Vec<Edge>) {
        self.result = Some(Ok(MatchingResult {
            matching: Matching { edges },
            stats: std::mem::take(&mut self.stats),
        }));
        self.phase = LPhase::Done;
        out.broadcast(ctx.small_ids_iter(), MatchNetMsg::Cmd(MatchCmd::Finish));
    }
}

impl RoleProgram for MatchingProgram {
    type Message = MatchNetMsg;

    fn snapshot(&self) -> Option<Self> {
        Some(self.clone())
    }

    fn large_step(
        &mut self,
        ctx: &MachineCtx<'_>,
        inbox: Vec<(MachineId, MatchNetMsg)>,
    ) -> StepOutcome<MatchNetMsg> {
        let mut out = Outbox::new();
        match self.phase {
            LPhase::Boot => {
                if self.m_total == 0 {
                    self.finish_ok(ctx, &mut out, Vec::new());
                } else {
                    self.phase = LPhase::Degrees;
                }
            }
            LPhase::Degrees => {
                if !inbox.is_empty() {
                    for (_src, msg) in inbox {
                        if let MatchNetMsg::DegUp(v, dv) = msg {
                            self.deg.insert(v, dv);
                        }
                    }
                    let (d, threshold) = degree_split(self.n, self.m_total);
                    self.d = d;
                    self.stats.average_degree = d;
                    self.stats.threshold = threshold;
                    self.high = self
                        .deg
                        .iter()
                        .filter(|(_, &dv)| dv as usize > threshold)
                        .map(|(&v, _)| v)
                        .collect();
                    self.stats.high_vertices = self.high.len();
                    self.phase = LPhase::PeelCounts;
                    out.broadcast(
                        ctx.small_ids_iter(),
                        MatchNetMsg::Cmd(MatchCmd::Classify {
                            threshold: threshold as u64,
                        }),
                    );
                }
            }
            LPhase::PeelCounts => {
                let counts: Vec<u64> = inbox
                    .iter()
                    .filter_map(|(_, m)| match m {
                        MatchNetMsg::Count(c) => Some(*c),
                        _ => None,
                    })
                    .collect();
                if !counts.is_empty() {
                    let total: u64 = counts.iter().sum();
                    if total > 0 {
                        self.stats.phase1_iterations += 1;
                        out.broadcast(ctx.small_ids_iter(), MatchNetMsg::Cmd(MatchCmd::PeelIter));
                    } else {
                        self.phase = LPhase::M1 { issued: ctx.round };
                        out.broadcast(ctx.small_ids_iter(), MatchNetMsg::Cmd(MatchCmd::PeelDone));
                    }
                }
            }
            LPhase::M1 { issued } => {
                if ctx.round == issued + 2 {
                    self.m1 = inbox
                        .into_iter()
                        .filter_map(|(_, m)| match m {
                            MatchNetMsg::MatchEdge(e) => Some(e),
                            _ => None,
                        })
                        .collect();
                    self.stats.m1 = self.m1.len();
                    for e in &self.m1 {
                        self.used.insert(e.u);
                        self.used.insert(e.v);
                    }
                    let t = phase2_t(ctx.capacity, self.n, self.d, self.high.len());
                    self.phase = LPhase::Cands {
                        issued: ctx.round,
                        t,
                    };
                    out.broadcast(
                        ctx.small_ids_iter(),
                        MatchNetMsg::Cmd(MatchCmd::Phase2 { t: t as u64 }),
                    );
                }
            }
            LPhase::Cands { issued, t } => {
                if ctx.round == issued + 3 {
                    let mut groups: BTreeMap<VertexId, Vec<(u64, Edge)>> = BTreeMap::new();
                    for (_src, msg) in inbox {
                        if let MatchNetMsg::CandUp(v, r, e) = msg {
                            groups.entry(v).or_default().push((r, e));
                        }
                    }
                    truncate_top(&mut groups, t, |re| re.0);
                    let sampled: Vec<(VertexId, Vec<(u64, Edge)>)> = groups.into_iter().collect();
                    self.m2 = greedy_extend(&sampled, &mut self.used);
                    self.stats.m2 = self.m2.len();
                    // Phase 3: push the matched flags to the vertex owners.
                    let mut flags: Vec<VertexId> = self.used.iter().copied().collect();
                    flags.sort_unstable();
                    for v in flags {
                        out.send(self.owners.of(&v), MatchNetMsg::P3Flag(v));
                    }
                    self.phase = LPhase::ResidCount { issued: ctx.round };
                    out.broadcast(ctx.small_ids_iter(), MatchNetMsg::Cmd(MatchCmd::Phase3));
                }
            }
            LPhase::ResidCount { issued } => {
                if ctx.round == issued + 4 {
                    let total: u64 = inbox
                        .iter()
                        .filter_map(|(_, m)| match m {
                            MatchNetMsg::Count(c) => Some(*c),
                            _ => None,
                        })
                        .sum();
                    self.stats.residual_edges = total;
                    let abort_threshold = (ctx.capacity / 4) as u64;
                    if total > abort_threshold {
                        self.result = Some(Err(MatchingError::ResidualOverflow {
                            found: total,
                            threshold: abort_threshold,
                        }));
                        self.phase = LPhase::Done;
                        out.broadcast(ctx.small_ids_iter(), MatchNetMsg::Cmd(MatchCmd::Finish));
                    } else {
                        self.phase = LPhase::Residual { issued: ctx.round };
                        out.broadcast(
                            ctx.small_ids_iter(),
                            MatchNetMsg::Cmd(MatchCmd::SendResidual),
                        );
                    }
                }
            }
            LPhase::Residual { issued } => {
                if ctx.round == issued + 2 {
                    let residual: Vec<Edge> = inbox
                        .into_iter()
                        .filter_map(|(_, m)| match m {
                            MatchNetMsg::Residual(e) => Some(e),
                            _ => None,
                        })
                        .collect();
                    ctx.charge(residual.len() as u64);
                    let pre: Vec<VertexId> = self.used.iter().copied().collect();
                    let m3 = greedy_matching_over(self.n, residual, &pre);
                    self.stats.m3 = m3.len();
                    let mut all = std::mem::take(&mut self.m1);
                    all.extend(std::mem::take(&mut self.m2));
                    all.extend(m3.edges);
                    self.finish_ok(ctx, &mut out, all);
                }
            }
            LPhase::Done => return StepOutcome::Halt,
        }
        out.into_step()
    }

    fn small_step(
        &mut self,
        ctx: &MachineCtx<'_>,
        inbox: Vec<(MachineId, MatchNetMsg)>,
    ) -> StepOutcome<MatchNetMsg> {
        let mut out = Outbox::new();
        let large = ctx.large.expect("checked in for_cluster");

        // Round 0: kick off the degree phase from the input shard.
        if ctx.round == 0 {
            let mut partial: BTreeMap<VertexId, u32> = BTreeMap::new();
            for e in &self.input {
                *partial.entry(e.u).or_default() += 1;
                *partial.entry(e.v).or_default() += 1;
            }
            for (&v, &c) in &partial {
                out.send(self.owners.of(&v), MatchNetMsg::DegPartial(v, c));
            }
            for &v in partial.keys() {
                out.send(self.owners.of(&v), MatchNetMsg::DegAsk(v));
            }
        }

        // Two-pass inbox handling: data/flags first, then lookups/replies,
        // so owner answers always reflect this round's updates.
        let mut cmd: Option<MatchCmd> = None;
        let mut deg_sum: BTreeMap<VertexId, u32> = BTreeMap::new();
        let mut deg_asks: Vec<(MachineId, VertexId)> = Vec::new();
        let mut minima: BTreeMap<VertexId, (u64, Edge)> = BTreeMap::new();
        let mut got_minima = false;
        let mut min_answers: HashMap<VertexId, (u64, Edge)> = HashMap::new();
        let mut got_min_answers = false;
        let mut flag_asks: Vec<(MachineId, VertexId)> = Vec::new();
        let mut flag_answers: HashMap<VertexId, bool> = HashMap::new();
        let mut got_flag_answers = false;
        let mut p3_asks: Vec<(MachineId, VertexId)> = Vec::new();
        let mut p3_answers: HashMap<VertexId, bool> = HashMap::new();
        let mut got_p3_answers = false;
        let mut cands: BTreeMap<VertexId, Vec<(u64, Edge)>> = BTreeMap::new();

        for (src, msg) in inbox {
            match msg {
                MatchNetMsg::Cmd(c) => cmd = Some(c),
                MatchNetMsg::DegPartial(v, c) => *deg_sum.entry(v).or_default() += c,
                MatchNetMsg::DegAsk(v) => deg_asks.push((src, v)),
                MatchNetMsg::DegAns(v, dv) => {
                    self.deg_local.insert(v, dv);
                }
                MatchNetMsg::MinAnn(v, r, e) => {
                    self.announcers.note(v, src);
                    got_minima = true;
                    fold_best(&mut minima, v, (r, e), |a, b| a.0 < b.0);
                }
                MatchNetMsg::MinAns(v, r, e) => {
                    got_min_answers = true;
                    min_answers.insert(v, (r, e));
                }
                MatchNetMsg::MatchedFlag(v) => {
                    self.peel_flags.insert(v);
                }
                MatchNetMsg::FlagAsk(v) => flag_asks.push((src, v)),
                MatchNetMsg::FlagAns(v, f) => {
                    got_flag_answers = true;
                    flag_answers.insert(v, f);
                }
                MatchNetMsg::P3Flag(v) => {
                    self.p3_flags.insert(v);
                }
                MatchNetMsg::P3Ask(v) => p3_asks.push((src, v)),
                MatchNetMsg::P3Ans(v, f) => {
                    got_p3_answers = true;
                    p3_answers.insert(v, f);
                }
                MatchNetMsg::Cand(v, r, e) => cands.entry(v).or_default().push((r, e)),
                _ => {}
            }
        }

        // ---- owner role ----
        if !deg_sum.is_empty() {
            for (&v, &dv) in &deg_sum {
                out.send(large, MatchNetMsg::DegUp(v, dv));
            }
        }
        for (src, v) in deg_asks {
            out.send(src, MatchNetMsg::DegAns(v, *deg_sum.get(&v).unwrap_or(&0)));
        }
        if got_minima {
            for (v, (r, e)) in minima {
                if let Some(machines) = self.announcers.get(&v) {
                    for &m in machines {
                        out.send(m, MatchNetMsg::MinAns(v, r, e));
                    }
                }
            }
            self.announcers.take();
        }
        for (src, v) in flag_asks {
            out.send(src, MatchNetMsg::FlagAns(v, self.peel_flags.contains(&v)));
        }
        for (src, v) in p3_asks {
            out.send(src, MatchNetMsg::P3Ans(v, self.p3_flags.contains(&v)));
        }
        if !cands.is_empty() {
            truncate_top(&mut cands, self.t, |re| re.0);
            for (v, res) in cands {
                for (r, e) in res {
                    out.send(large, MatchNetMsg::CandUp(v, r, e));
                }
            }
        }

        // ---- worker role: command handling ----
        match cmd {
            Some(MatchCmd::Finish) => return StepOutcome::Halt,
            Some(MatchCmd::Classify { threshold }) => {
                self.threshold = threshold as usize;
                // Low subgraph in shard order, then the one-time ranks —
                // the legacy draw order.
                for e in &self.input {
                    let du = self.deg_local[&e.u] as usize;
                    let dv = self.deg_local[&e.v] as usize;
                    if du <= self.threshold && dv <= self.threshold {
                        let rank = ctx.rng().random::<u64>();
                        self.live.push((rank, *e));
                    }
                }
                out.send(large, MatchNetMsg::Count(self.live.len() as u64));
            }
            Some(MatchCmd::PeelIter) => {
                for (v, (r, e)) in local_vertex_minima(&self.live) {
                    out.send(self.owners.of(&v), MatchNetMsg::MinAnn(v, r, e));
                }
            }
            Some(MatchCmd::PeelDone) => {
                for e in &self.matched_here {
                    out.send(large, MatchNetMsg::MatchEdge(*e));
                }
            }
            Some(MatchCmd::Phase2 { t }) => {
                self.t = t as usize;
                // One rank per high-degree incidence, in shard order — the
                // legacy draw order.
                let mut groups: BTreeMap<VertexId, Vec<(u64, Edge)>> = BTreeMap::new();
                for e in &self.input {
                    for v in [e.u, e.v] {
                        if *self.deg_local.get(&v).unwrap_or(&0) as usize > self.threshold {
                            let rank = ctx.rng().random::<u64>();
                            groups.entry(v).or_default().push((rank, *e));
                        }
                    }
                }
                truncate_top(&mut groups, self.t, |re| re.0);
                for (v, res) in groups {
                    let dst = self.owners.of(&v);
                    for (r, e) in res {
                        out.send(dst, MatchNetMsg::Cand(v, r, e));
                    }
                }
            }
            Some(MatchCmd::Phase3) => {
                let mut endpoints: BTreeSet<VertexId> = BTreeSet::new();
                for e in &self.input {
                    endpoints.insert(e.u);
                    endpoints.insert(e.v);
                }
                for v in endpoints {
                    out.send(self.owners.of(&v), MatchNetMsg::P3Ask(v));
                }
            }
            Some(MatchCmd::SendResidual) => {
                for e in self.residual.drain(..) {
                    out.send(large, MatchNetMsg::Residual(e));
                }
            }
            None => {}
        }

        // ---- worker role: inbox-triggered steps ----
        if got_min_answers {
            // Winners matched; flags to the owners, prune lookups out.
            let won = winning_edges(&self.live, &min_answers);
            for e in &won {
                self.matched_here.push(*e);
                out.send(self.owners.of(&e.u), MatchNetMsg::MatchedFlag(e.u));
                out.send(self.owners.of(&e.v), MatchNetMsg::MatchedFlag(e.v));
            }
            let mut endpoints: BTreeSet<VertexId> = BTreeSet::new();
            for (_r, e) in &self.live {
                endpoints.insert(e.u);
                endpoints.insert(e.v);
            }
            for v in endpoints {
                out.send(self.owners.of(&v), MatchNetMsg::FlagAsk(v));
            }
        }
        if got_flag_answers {
            let dead: HashSet<VertexId> = flag_answers
                .iter()
                .filter(|(_, &f)| f)
                .map(|(&v, _)| v)
                .collect();
            self.live
                .retain(|(_, e)| !dead.contains(&e.u) && !dead.contains(&e.v));
            out.send(large, MatchNetMsg::Count(self.live.len() as u64));
        }
        if got_p3_answers {
            for e in &self.input {
                let fu = *p3_answers.get(&e.u).unwrap_or(&false);
                let fv = *p3_answers.get(&e.v).unwrap_or(&false);
                if !fu && !fv {
                    self.residual.push(*e);
                }
            }
            out.send(large, MatchNetMsg::Count(self.residual.len() as u64));
        }

        out.into_step()
    }
}
