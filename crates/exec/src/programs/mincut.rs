//! [`MinCutProgram`]: the `O(1)`-round exact unweighted minimum cut
//! (Theorem C.3 — 2-out contraction + random-sampling contraction +
//! Stoer–Wagner on the contracted multigraph) as a per-machine state
//! machine.
//!
//! Same algorithm as the legacy call-style
//! [`mpc_core::ported::heterogeneous_min_cut`], in the coordinator shape of
//! the [`combinators`](crate::combinators) layer. All randomness lives on
//! the *small* machines (two edge ranks per local edge, then one
//! `Bernoulli(1/(2δ))` draw per surviving inter-component edge — the legacy
//! per-machine order); the large machine draws nothing, contracts, and runs
//! Stoer–Wagner locally. Top-2 rank selection and pair-multiplicity
//! aggregation route through the legacy primitives' group-collector trees
//! ([`Owners::collector_of`]), so no machine ever receives a hot key's full
//! multiplicity. Results, statistics, and RNG stream positions are
//! bit-identical to the legacy path.
//!
//! One trial (`Trial` broadcast at round `R`):
//!
//! | round | who | does |
//! |------:|-----|------|
//! | R+1   | smalls | rank every edge twice, local top-2 per vertex → collectors |
//! | R+2/3 | collectors/owners | re-truncate top-2, owners → large |
//! | R+4   | large  | contract 2-out; labels → owners |
//! | R+5   | owners | labels → registered announcers |
//! | R+6   | smalls | sample crossing edges w.p. `1/(2δ)` → large |
//! | R+7/8 | large/owners | second contraction; labels back out |
//! | R+9–11| smalls/collectors/owners | pair multiplicities aggregate up |
//! | R+12  | large  | Stoer–Wagner on the multigraph; next trial or finish |

use crate::combinators::{announce_degrees, sender_group, Announcers, Outbox, Owners, RoleProgram};
use crate::machine::{MachineCtx, StepOutcome};
use mpc_core::ported::mincut_exact::{
    evaluate_contraction, step2_probability, MinCutResult, TrialOutcome,
};
use mpc_graph::{DisjointSets, Edge, VertexId};
use mpc_runtime::{Cluster, MachineId, Payload, ShardedVec};
use rand::Rng;
use std::collections::{BTreeMap, HashMap};

/// Phase commands broadcast by the large machine.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MinCutCmd {
    /// Start one contraction trial (`delta` = min degree, for the sampling
    /// probability).
    Trial {
        /// The minimum degree δ.
        delta: u32,
    },
    /// The run is over; halt.
    Finish,
}

/// Messages of the exact min-cut program.
#[derive(Clone, Copy, Debug)]
pub enum MinCutNetMsg {
    /// Large → smalls: phase command.
    Cmd(MinCutCmd),
    /// Small → owner: partial degree count of a vertex.
    DegPartial(VertexId, u32),
    /// Owner → large: final degree of a vertex.
    DegUp(VertexId, u32),
    /// Small → owner: this machine stores edges of `v` (label routing).
    Register(VertexId),
    /// Small → collector: a locally-top-2 ranked incident edge of `v`.
    TwoOutC(VertexId, u64, Edge),
    /// Collector → owner: a group-top-2 ranked incident edge of `v`.
    TwoOutO(VertexId, u64, Edge),
    /// Owner → large: a globally-top-2 incident edge of `v`.
    TwoOutUp(VertexId, u64, Edge),
    /// First-wave component label of `v` (large → owner → announcers).
    LabelA(VertexId, VertexId),
    /// Small → large: a sampled surviving inter-component edge.
    Sampled(Edge),
    /// Second-wave component label of `v` (large → owner → announcers).
    LabelB(VertexId, VertexId),
    /// Small → collector: partial multiplicity of a contracted pair.
    PairC((u32, u32), u64),
    /// Collector → owner: partial multiplicity of a contracted pair.
    PairO((u32, u32), u64),
    /// Owner → large: final multiplicity of a contracted pair.
    PairUp((u32, u32), u64),
}

impl Payload for MinCutNetMsg {
    fn words(&self) -> usize {
        match self {
            MinCutNetMsg::Cmd(MinCutCmd::Trial { .. }) => 2,
            MinCutNetMsg::Cmd(_) | MinCutNetMsg::Register(_) => 1,
            MinCutNetMsg::DegPartial(_, _)
            | MinCutNetMsg::DegUp(_, _)
            | MinCutNetMsg::LabelA(_, _)
            | MinCutNetMsg::LabelB(_, _) => 2,
            MinCutNetMsg::TwoOutC(_, _, e)
            | MinCutNetMsg::TwoOutO(_, _, e)
            | MinCutNetMsg::TwoOutUp(_, _, e) => 2 + e.words(),
            MinCutNetMsg::Sampled(e) => e.words(),
            MinCutNetMsg::PairC(_, _) | MinCutNetMsg::PairO(_, _) | MinCutNetMsg::PairUp(_, _) => 3,
        }
    }
}

/// What the large machine is waiting for.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum LPhase {
    /// Degree reports arrive at round 2.
    Degrees,
    /// `Trial` issued at `issued`: the 2-out edges arrive at `issued + 4`,
    /// sampled edges at `issued + 7`, pair multiplicities at `issued + 12`.
    Trial { issued: u64 },
    /// Finish broadcast; halt on the next step.
    Done,
}

/// Per-machine state of the exact min-cut program.
#[derive(Clone)]
pub struct MinCutProgram {
    n: usize,
    trials: usize,
    owners: Owners,
    // ---- small-machine state ----
    /// The input shard.
    input: Vec<Edge>,
    /// Labels of this shard's endpoints, refreshed each dissemination wave.
    labels: HashMap<VertexId, VertexId>,
    /// δ from the trial command (drives the sampling probability).
    delta: u32,
    /// Round the `Trial` command arrived (drives the worker clock).
    trial_round: Option<u64>,
    /// Owner role: which machines hold edges of each owned vertex.
    announcers: Announcers<VertexId>,
    // ---- large-machine state ----
    phase: LPhase,
    dsu: Option<DisjointSets>,
    /// Contracted component count after both steps of the current trial.
    contracted: usize,
    best: u128,
    singleton: bool,
    trial_sizes: Vec<(usize, usize)>,
    trial_idx: usize,
    /// Set on the large machine when it halts.
    pub result: Option<MinCutResult>,
}

impl MinCutProgram {
    /// Builds one program per machine over the sharded input edges.
    pub fn for_cluster(
        cluster: &Cluster,
        n: usize,
        edges: &ShardedVec<Edge>,
        trials: usize,
    ) -> Vec<Self> {
        let owners = Owners::of_cluster(cluster);
        let large = cluster.large().expect("min cut requires a large machine");
        assert!(!owners.ids().is_empty(), "min cut requires small machines");
        assert!(
            edges.shard(large).is_empty(),
            "engine programs expect the input on the small machines only \
             (see common::distribute_edges); the large machine's shard would \
             be silently ignored"
        );
        (0..cluster.machines())
            .map(|mid| MinCutProgram {
                n,
                trials,
                owners: owners.clone(),
                input: edges.shard(mid).to_vec(),
                labels: HashMap::new(),
                delta: 0,
                trial_round: None,
                announcers: Announcers::default(),
                phase: LPhase::Degrees,
                dsu: None,
                contracted: 0,
                best: 0,
                singleton: true,
                trial_sizes: Vec::new(),
                trial_idx: 0,
                result: None,
            })
            .collect()
    }

    /// Broadcasts the next trial or finishes — the legacy `for _trial in
    /// 0..trials` loop head, replayed by the coordinator.
    fn advance(&mut self, ctx: &MachineCtx<'_>, out: &mut Outbox<MinCutNetMsg>) {
        if self.trial_idx < self.trials {
            self.trial_idx += 1;
            out.broadcast(
                ctx.small_ids_iter(),
                MinCutNetMsg::Cmd(MinCutCmd::Trial { delta: self.delta }),
            );
            self.phase = LPhase::Trial { issued: ctx.round };
        } else {
            self.result = Some(MinCutResult {
                value: self.best,
                singleton: self.singleton,
                trial_sizes: std::mem::take(&mut self.trial_sizes),
            });
            out.broadcast(ctx.small_ids_iter(), MinCutNetMsg::Cmd(MinCutCmd::Finish));
            self.phase = LPhase::Done;
        }
    }

    /// Routes the fresh component labels to the owners of every vertex.
    fn push_labels(
        &mut self,
        out: &mut Outbox<MinCutNetMsg>,
        make: impl Fn(VertexId, VertexId) -> MinCutNetMsg,
    ) {
        let dsu = self.dsu.as_mut().expect("dsu built this trial");
        let labels = mpc_graph::traversal::components_from_dsu(dsu);
        self.contracted = labels.count;
        for v in 0..self.n as VertexId {
            out.send(self.owners.of(&v), make(v, labels.label[v as usize]));
        }
    }
}

impl RoleProgram for MinCutProgram {
    type Message = MinCutNetMsg;

    fn snapshot(&self) -> Option<Self> {
        Some(self.clone())
    }

    fn large_step(
        &mut self,
        ctx: &MachineCtx<'_>,
        inbox: Vec<(MachineId, MinCutNetMsg)>,
    ) -> StepOutcome<MinCutNetMsg> {
        let mut out = Outbox::new();
        match self.phase {
            LPhase::Degrees => {
                if ctx.round == 2 {
                    self.delta = inbox
                        .iter()
                        .filter_map(|(_, m)| match m {
                            MinCutNetMsg::DegUp(_, d) => Some(*d),
                            _ => None,
                        })
                        .min()
                        .unwrap_or(0)
                        .max(1);
                    self.best = u128::from(self.delta);
                    self.singleton = true;
                    self.advance(ctx, &mut out);
                }
            }
            LPhase::Trial { issued } => {
                if ctx.round == issued + 4 {
                    // Step 1: contract the 2-out sample.
                    let mut dsu = DisjointSets::new(self.n);
                    for (_src, m) in &inbox {
                        if let MinCutNetMsg::TwoOutUp(_, _, e) = m {
                            dsu.union(e.u, e.v);
                        }
                    }
                    self.dsu = Some(dsu);
                    self.push_labels(&mut out, MinCutNetMsg::LabelA);
                } else if ctx.round == issued + 7 {
                    // Step 2: contract the sampled surviving edges.
                    let dsu = self.dsu.as_mut().expect("dsu built this trial");
                    for (_src, m) in &inbox {
                        if let MinCutNetMsg::Sampled(e) = m {
                            dsu.union(e.u, e.v);
                        }
                    }
                    self.push_labels(&mut out, MinCutNetMsg::LabelB);
                } else if ctx.round == issued + 12 {
                    // Step 3: Stoer–Wagner on the contracted multigraph.
                    let mut sums: BTreeMap<(u32, u32), u64> = BTreeMap::new();
                    for (_src, m) in &inbox {
                        if let MinCutNetMsg::PairUp(p, c) = m {
                            *sums.entry(*p).or_default() += c;
                        }
                    }
                    let pairs: Vec<((u32, u32), u64)> = sums.into_iter().collect();
                    ctx.charge(pairs.len() as u64 * 3);
                    let (sizes, outcome) = evaluate_contraction(self.contracted, &pairs);
                    self.trial_sizes.push(sizes);
                    match outcome {
                        TrialOutcome::TooSmall => {}
                        TrialOutcome::Cut(w) => {
                            if w < self.best {
                                self.best = w;
                                self.singleton = false;
                            }
                        }
                        TrialOutcome::Disconnected => {
                            self.best = 0;
                            self.singleton = false;
                        }
                    }
                    self.advance(ctx, &mut out);
                }
            }
            LPhase::Done => return StepOutcome::Halt,
        }
        out.into_step()
    }

    fn small_step(
        &mut self,
        ctx: &MachineCtx<'_>,
        inbox: Vec<(MachineId, MinCutNetMsg)>,
    ) -> StepOutcome<MinCutNetMsg> {
        let mut out = Outbox::new();
        let large = ctx.large.expect("checked in for_cluster");

        // Round 0: kick off degrees and register as an announcer of every
        // endpoint, so owners can route label waves back without per-wave
        // request rounds.
        if ctx.round == 0 {
            let partial = announce_degrees(
                &mut out,
                &self.owners,
                &self.input,
                MinCutNetMsg::DegPartial,
            );
            for &v in partial.keys() {
                out.send(self.owners.of(&v), MinCutNetMsg::Register(v));
            }
        }

        // Two-pass inbox handling: stores first, then routing, so owner
        // forwards always reflect this round's pushed state.
        let mut cmd: Option<MinCutCmd> = None;
        let mut deg_sum: BTreeMap<VertexId, u32> = BTreeMap::new();
        let mut two_out_c: BTreeMap<VertexId, Vec<(u64, Edge)>> = BTreeMap::new();
        let mut two_out_o: BTreeMap<VertexId, Vec<(u64, Edge)>> = BTreeMap::new();
        let mut label_a_fwd: Vec<(VertexId, VertexId)> = Vec::new();
        let mut label_b_fwd: Vec<(VertexId, VertexId)> = Vec::new();
        let mut pair_c: BTreeMap<(u32, u32), u64> = BTreeMap::new();
        let mut pair_o: BTreeMap<(u32, u32), u64> = BTreeMap::new();

        for (src, msg) in inbox {
            match msg {
                MinCutNetMsg::Cmd(c) => cmd = Some(c),
                MinCutNetMsg::DegPartial(v, c) => *deg_sum.entry(v).or_default() += c,
                MinCutNetMsg::Register(v) => self.announcers.note(v, src),
                MinCutNetMsg::TwoOutC(v, r, e) => two_out_c.entry(v).or_default().push((r, e)),
                MinCutNetMsg::TwoOutO(v, r, e) => two_out_o.entry(v).or_default().push((r, e)),
                MinCutNetMsg::LabelA(v, l) => {
                    if src == large {
                        label_a_fwd.push((v, l));
                    } else {
                        self.labels.insert(v, l);
                    }
                }
                MinCutNetMsg::LabelB(v, l) => {
                    if src == large {
                        label_b_fwd.push((v, l));
                    } else {
                        self.labels.insert(v, l);
                    }
                }
                MinCutNetMsg::PairC(p, c) => *pair_c.entry(p).or_default() += c,
                MinCutNetMsg::PairO(p, c) => *pair_o.entry(p).or_default() += c,
                _ => {}
            }
        }

        // ---- owner/collector roles ----
        for (&v, &d) in &deg_sum {
            out.send(large, MinCutNetMsg::DegUp(v, d));
        }
        for (v, mut vs) in two_out_c {
            vs.sort_by_key(|x| x.0);
            vs.truncate(2);
            for (r, e) in vs {
                out.send(self.owners.of(&v), MinCutNetMsg::TwoOutO(v, r, e));
            }
        }
        for (v, mut vs) in two_out_o {
            vs.sort_by_key(|x| x.0);
            vs.truncate(2);
            for (r, e) in vs {
                out.send(large, MinCutNetMsg::TwoOutUp(v, r, e));
            }
        }
        for (v, l) in label_a_fwd {
            for &m in self.announcers.get(&v).unwrap_or(&[]) {
                out.send(m, MinCutNetMsg::LabelA(v, l));
            }
        }
        for (v, l) in label_b_fwd {
            for &m in self.announcers.get(&v).unwrap_or(&[]) {
                out.send(m, MinCutNetMsg::LabelB(v, l));
            }
        }
        for (p, c) in pair_c {
            out.send(self.owners.of(&p), MinCutNetMsg::PairO(p, c));
        }
        for (p, c) in pair_o {
            out.send(large, MinCutNetMsg::PairUp(p, c));
        }

        // ---- worker role: command handling ----
        match cmd {
            Some(MinCutCmd::Finish) => return StepOutcome::Halt,
            Some(MinCutCmd::Trial { delta }) => {
                self.delta = delta;
                self.trial_round = Some(ctx.round);
                // Step 1: two random ranks per local edge, in shard order —
                // the legacy per-machine draw order — then local top-2 per
                // incident vertex toward the collector tree.
                let mut items: BTreeMap<VertexId, Vec<(u64, Edge)>> = BTreeMap::new();
                for e in &self.input {
                    let r1 = ctx.rng().random::<u64>();
                    let r2 = ctx.rng().random::<u64>();
                    items.entry(e.u).or_default().push((r1, *e));
                    items.entry(e.v).or_default().push((r2, *e));
                }
                let group = sender_group(ctx.mid, ctx.machines);
                for (v, mut vs) in items {
                    vs.sort_by_key(|x| x.0);
                    vs.truncate(2);
                    for (r, e) in vs {
                        out.send(
                            self.owners.collector_of(&v, group),
                            MinCutNetMsg::TwoOutC(v, r, e),
                        );
                    }
                }
                ctx.charge(self.input.len() as u64 * 2);
            }
            None => {}
        }

        // ---- worker role: the label-wave clock ----
        if let Some(t) = self.trial_round {
            if ctx.round == t + 5 {
                // First-wave labels are in: sample each surviving
                // inter-component edge w.p. 1/(2δ), in shard order (the
                // legacy draw order).
                let p = step2_probability(self.delta);
                for e in &self.input {
                    if self.labels[&e.u] != self.labels[&e.v] && ctx.rng().random_bool(p) {
                        out.send(large, MinCutNetMsg::Sampled(*e));
                    }
                }
            }
            if ctx.round == t + 8 {
                // Second-wave labels are in: aggregate the contracted
                // multigraph's pair multiplicities toward the collectors.
                let mut partial: BTreeMap<(u32, u32), u64> = BTreeMap::new();
                for e in &self.input {
                    let (a, b) = (self.labels[&e.u], self.labels[&e.v]);
                    if a != b {
                        *partial.entry((a.min(b), a.max(b))).or_default() += 1;
                    }
                }
                let group = sender_group(ctx.mid, ctx.machines);
                for (p, c) in partial {
                    out.send(
                        self.owners.collector_of(&p, group),
                        MinCutNetMsg::PairC(p, c),
                    );
                }
                self.trial_round = None;
            }
        }

        out.into_step()
    }
}
