//! [`SpannerProgram`]: the `O(1)`-round `(6k−1)`-spanner (§4, Theorem 4.1
//! — clustering graphs + per-level Baswana–Sen) as a per-machine state
//! machine.
//!
//! Same algorithm as the legacy call-style
//! [`mpc_core::spanner::heterogeneous_spanner`], in the coordinator shape
//! of the [`combinators`](crate::combinators) layer. The phase structure is
//! *static* (no data-dependent iteration), so the whole program runs on a
//! fixed 17-round clock with no per-phase commands beyond the initial
//! `Levels` broadcast:
//!
//! | round | who    | does |
//! |------:|--------|------|
//! | 0–1   | smalls/owners | per-vertex degrees to the owners, up to the large machine |
//! | 2     | large  | levels `⌈log₂Δ⌉`; hitting-set masks drawn (Algorithm 5) and pushed to the owners |
//! | 3–4   | all    | mask lookups for edge endpoints |
//! | 5–6   | smalls/owners | coverage OR-aggregation, up to the large machine |
//! | 7–8   | large/owners | `B_i` masks finalized, pushed, looked up |
//! | 9–10  | smalls/owners | min-neighbor-in-`B` candidates aggregated; star centers `σ` assigned |
//! | 11–12 | smalls/owners | cluster edges `(level, σ_u, σ_v)` deduplicated at owners; per-level subsamples drawn and shipped |
//! | 13    | large  | per-level spanning ([`span_levels`](mpc_core::spanner::span_levels)); history answers |
//! | 14–15 | owners | removal candidates aggregated; stars + removals shipped |
//! | 16    | large  | combine (Lemma A.2), halt |
//!
//! Every random draw — the large machine's hitting-set masks, the small
//! machines' per-cluster-edge subsampling coins — happens in exactly the
//! legacy per-machine order, so the spanner edge set, the statistics, and
//! the RNG stream positions are bit-identical to the legacy path (asserted
//! by the registry equivalence tests).

use crate::combinators::{fold_best, Outbox, Owners, RoleProgram};
use crate::machine::{MachineCtx, StepOutcome};
use mpc_core::spanner::clustering::{
    edge_level, finalize_b_masks, level_edge_key, levels_for_delta, min_neighbor_candidates,
    sample_hitting_masks, sigma_for, unpack_level_edge, LevelEdgeKey,
};
use mpc_core::spanner::{
    removal_candidates_for, sampling_probability, span_levels, SpannerResult, SpannerStats,
};
use mpc_graph::{Edge, Graph, VertexId};
use mpc_runtime::{Cluster, MachineId, Payload, ShardedVec};
use rand::Rng;
use std::collections::{BTreeMap, BTreeSet, HashMap};

/// Messages of the spanner program.
#[derive(Clone, Debug)]
pub enum SpannerNetMsg {
    /// Large → smalls: the number of clustering levels.
    Levels(u32),
    /// Small → owner: partial degree count of a vertex.
    DegPartial(VertexId, u32),
    /// Owner → large: final degree of a vertex.
    DegUp(VertexId, u32),
    /// Large → owner: `(v, deg, hitting-set membership mask)`.
    MaskInfo(VertexId, u32, u64),
    /// Small → owner: this machine needs the mask of `v`.
    MaskAsk(VertexId),
    /// Owner → asker: the mask of `v`.
    MaskAns(VertexId, u64),
    /// Small → owner: OR of the masks of `v`'s neighbors (partial).
    CoverPartial(VertexId, u64),
    /// Owner → large: OR of the masks of `v`'s neighbors (final).
    CoverUp(VertexId, u64),
    /// Large → owner: `(v, deg, B-level mask)`.
    BInfo(VertexId, u32, u64),
    /// Small → owner: this machine needs the B-mask of `v`.
    BAsk(VertexId),
    /// Owner → asker: the B-mask of `v`.
    BAns(VertexId, u64),
    /// Small → owner: per-level smallest neighbor of `v` in `B_i`.
    CandPartial(VertexId, Vec<u32>),
    /// Small → owner: this machine needs `(σ_v, deg_v)`.
    SigmaAsk(VertexId),
    /// Owner → asker: `(v, σ_v, deg_v)`.
    SigmaAns(VertexId, VertexId, u32),
    /// Small → owner: a cluster edge `(key, witness)` dedup partial.
    LevelEdge(u64, u64, Edge),
    /// Owner → large: per-level cluster-edge counts.
    LevelCount(Vec<u64>),
    /// Owner → large: a (sub)sampled cluster edge `(tag, key, witness)`.
    Sample(u32, u64, u64, Edge),
    /// Owner → large: this machine needs the center history of a
    /// `(level << 32) | vertex` key.
    HistAsk(u64),
    /// Large → asker: the center history of a key.
    HistAns(u64, Vec<u32>),
    /// Owner → owner: a removal candidate `(key, y, witness)`.
    RCand(u64, u64, u32, Edge),
    /// Owner → large: a star edge.
    Star(Edge),
    /// Owner → large: a removal edge.
    Removal(Edge),
    /// Large → smalls: the run is over; halt.
    Finish,
}

impl Payload for SpannerNetMsg {
    fn words(&self) -> usize {
        match self {
            SpannerNetMsg::Levels(_) | SpannerNetMsg::Finish => 1,
            SpannerNetMsg::DegPartial(_, _)
            | SpannerNetMsg::DegUp(_, _)
            | SpannerNetMsg::MaskAns(_, _)
            | SpannerNetMsg::CoverPartial(_, _)
            | SpannerNetMsg::CoverUp(_, _)
            | SpannerNetMsg::BAns(_, _) => 2,
            SpannerNetMsg::MaskAsk(_)
            | SpannerNetMsg::BAsk(_)
            | SpannerNetMsg::SigmaAsk(_)
            | SpannerNetMsg::HistAsk(_) => 1,
            SpannerNetMsg::MaskInfo(_, _, _)
            | SpannerNetMsg::BInfo(_, _, _)
            | SpannerNetMsg::SigmaAns(_, _, _) => 3,
            SpannerNetMsg::CandPartial(_, v) => 1 + v.words(),
            SpannerNetMsg::LevelEdge(_, _, e) => 2 + e.words(),
            SpannerNetMsg::LevelCount(v) => v.words(),
            SpannerNetMsg::Sample(_, _, _, e) => 3 + e.words(),
            SpannerNetMsg::HistAns(_, h) => 1 + h.words(),
            SpannerNetMsg::RCand(_, _, _, e) => 3 + e.words(),
            SpannerNetMsg::Star(e) | SpannerNetMsg::Removal(e) => e.words(),
        }
    }
}

/// Per-machine state of the spanner program.
#[derive(Clone)]
pub struct SpannerProgram {
    n: usize,
    k: usize,
    owners: Owners,
    // ---- small-machine state ----
    /// The input shard (unweighted view; immutable throughout).
    input: Vec<Edge>,
    /// Sorted, deduplicated endpoints of `input` (computed once).
    endpoints: Vec<VertexId>,
    /// Number of clustering levels, from the `Levels` broadcast.
    levels: usize,
    /// Owner role: `(deg, sampled mask)` of owned vertices.
    mask_store: HashMap<VertexId, (u32, u64)>,
    /// Owner role: `(v, deg, B-mask)` of owned vertices, in arrival order.
    binfo: Vec<(VertexId, u32, u64)>,
    /// Owner role: B-mask lookup index over `binfo` (answers `BAsk` in
    /// O(1) instead of scanning the arrival list per ask).
    binfo_mask: HashMap<VertexId, u64>,
    /// Owner role: aggregated per-level neighbor candidates.
    cands: BTreeMap<VertexId, Vec<u32>>,
    /// Owner role: `σ` assignments of owned vertices.
    sigma: BTreeMap<VertexId, (VertexId, u32)>,
    /// Owner role: star edges of owned vertices (σ-assignment order).
    stars: Vec<Edge>,
    /// Owner role: deduplicated cluster edges, sorted by key.
    cluster_shard: BTreeMap<LevelEdgeKey, Edge>,
    /// Worker scratch: masks of this machine's edge endpoints.
    masks_local: HashMap<VertexId, u64>,
    // ---- large-machine state ----
    deg: Vec<u32>,
    sampled_masks: Vec<u64>,
    spanner_edges: Vec<Edge>,
    stats: SpannerStats,
    /// Set on the large machine when it halts.
    pub result: Option<SpannerResult>,
}

impl SpannerProgram {
    /// Builds one program per machine over the sharded (unweighted) input.
    pub fn for_cluster(
        cluster: &Cluster,
        n: usize,
        edges: &ShardedVec<Edge>,
        k: usize,
    ) -> Vec<Self> {
        assert!(k >= 2, "spanner parameter k must be at least 2");
        let owners = Owners::of_cluster(cluster);
        assert!(
            cluster.large().is_some() && !owners.ids().is_empty(),
            "spanner requires a large machine and small machines"
        );
        (0..cluster.machines())
            .map(|mid| {
                let input: Vec<Edge> = edges.shard(mid).to_vec();
                let mut endpoints: Vec<VertexId> = input.iter().flat_map(|e| [e.u, e.v]).collect();
                endpoints.sort_unstable();
                endpoints.dedup();
                SpannerProgram {
                    n,
                    k,
                    owners: owners.clone(),
                    input,
                    endpoints,
                    levels: 0,
                    mask_store: HashMap::new(),
                    binfo: Vec::new(),
                    binfo_mask: HashMap::new(),
                    cands: BTreeMap::new(),
                    sigma: BTreeMap::new(),
                    stars: Vec::new(),
                    cluster_shard: BTreeMap::new(),
                    masks_local: HashMap::new(),
                    deg: Vec::new(),
                    sampled_masks: Vec::new(),
                    spanner_edges: Vec::new(),
                    stats: SpannerStats::default(),
                    result: None,
                }
            })
            .collect()
    }
}

impl RoleProgram for SpannerProgram {
    type Message = SpannerNetMsg;

    fn snapshot(&self) -> Option<Self> {
        Some(self.clone())
    }

    fn large_step(
        &mut self,
        ctx: &MachineCtx<'_>,
        inbox: Vec<(MachineId, SpannerNetMsg)>,
    ) -> StepOutcome<SpannerNetMsg> {
        let mut out = Outbox::new();
        match ctx.round {
            // Degrees arrive: fix the level count, draw the hitting sets.
            2 => {
                self.deg = vec![0; self.n];
                for (_src, msg) in inbox {
                    if let SpannerNetMsg::DegUp(v, d) = msg {
                        self.deg[v as usize] = d;
                    }
                }
                let delta = self.deg.iter().copied().max().unwrap_or(0);
                let levels = levels_for_delta(delta);
                assert!(
                    levels * mpc_core::spanner::clustering::HITTING_SET_TRIALS <= 60,
                    "mask packing supports log Δ · trials <= 60"
                );
                self.levels = levels;
                self.stats.levels = levels;
                self.stats.weight_classes = 1;
                for i in 0..levels {
                    let p = sampling_probability(self.k, i);
                    if p >= 1.0 {
                        self.stats.full_levels.push(i);
                    } else {
                        self.stats.sampled_levels.push((i, p));
                    }
                }
                self.sampled_masks = sample_hitting_masks(&mut ctx.rng(), self.n, levels);
                ctx.charge(self.n as u64);
                for v in 0..self.n {
                    if self.deg[v] > 0 {
                        out.send(
                            self.owners.of(&(v as VertexId)),
                            SpannerNetMsg::MaskInfo(
                                v as VertexId,
                                self.deg[v],
                                self.sampled_masks[v],
                            ),
                        );
                    }
                }
                out.broadcast(ctx.small_ids_iter(), SpannerNetMsg::Levels(levels as u32));
            }
            // Coverage arrives: finalize the B-masks.
            7 => {
                let mut covered: Vec<u64> = vec![0; self.n];
                for (_src, msg) in inbox {
                    if let SpannerNetMsg::CoverUp(v, c) = msg {
                        covered[v as usize] = c;
                    }
                }
                let b_mask =
                    finalize_b_masks(&self.deg, &self.sampled_masks, &covered, self.levels);
                ctx.charge(self.n as u64);
                for v in 0..self.n {
                    if self.deg[v] > 0 {
                        out.send(
                            self.owners.of(&(v as VertexId)),
                            SpannerNetMsg::BInfo(v as VertexId, self.deg[v], b_mask[v]),
                        );
                    }
                }
            }
            // Samples + history requests arrive: span every level locally.
            13 => {
                let mut received: Vec<(u32, LevelEdgeKey, Edge)> = Vec::new();
                let mut asks: Vec<(MachineId, u64)> = Vec::new();
                let mut level_counts = vec![0u64; self.levels.max(1)];
                for (src, msg) in inbox {
                    match msg {
                        SpannerNetMsg::Sample(tag, k0, k1, e) => received.push((tag, (k0, k1), e)),
                        SpannerNetMsg::HistAsk(key) => asks.push((src, key)),
                        SpannerNetMsg::LevelCount(counts) => {
                            for (acc, c) in level_counts.iter_mut().zip(counts) {
                                *acc += c;
                            }
                        }
                        _ => {}
                    }
                }
                self.stats.level_edge_counts = level_counts.iter().map(|&c| c as usize).collect();
                let spans = span_levels(self.n, self.k, &received);
                ctx.charge((received.len() + self.n) as u64);
                self.stats.phase1_edges += spans.phase1_edges;
                self.spanner_edges = spans.edges;
                for (src, key) in asks {
                    let level = (key >> 32) as usize;
                    let v = (key & 0xFFFF_FFFF) as VertexId;
                    if let Some(p1) = spans.phase1.get(&level) {
                        out.send(src, SpannerNetMsg::HistAns(key, p1.history(v)));
                    }
                }
            }
            // Stars and removals arrive: combine (Lemma A.2) and finish.
            16 => {
                let mut stars: Vec<Edge> = Vec::new();
                let mut removals: Vec<Edge> = Vec::new();
                for (_src, msg) in inbox {
                    match msg {
                        SpannerNetMsg::Star(e) => stars.push(e),
                        SpannerNetMsg::Removal(e) => removals.push(e),
                        _ => {}
                    }
                }
                self.stats.star_edges = stars.len();
                self.stats.removal_edges = removals.len();
                self.spanner_edges.extend(stars);
                self.spanner_edges.extend(removals);
                let edges = std::mem::take(&mut self.spanner_edges);
                let spanner = Graph::new(self.n, edges.into_iter().map(|e| e.normalized()));
                ctx.charge(spanner.m() as u64);
                self.result = Some(SpannerResult {
                    spanner,
                    stats: std::mem::take(&mut self.stats),
                });
                out.broadcast(ctx.small_ids_iter(), SpannerNetMsg::Finish);
            }
            17 => return StepOutcome::Halt,
            _ => {}
        }
        out.into_step()
    }

    fn small_step(
        &mut self,
        ctx: &MachineCtx<'_>,
        inbox: Vec<(MachineId, SpannerNetMsg)>,
    ) -> StepOutcome<SpannerNetMsg> {
        let mut out = Outbox::new();
        let large = ctx.large.expect("checked in for_cluster");

        // Two-pass: stores/partials first, then lookups — owner answers
        // always reflect this round's pushed state.
        let mut deg_sum: BTreeMap<VertexId, u32> = BTreeMap::new();
        let mut mask_asks: Vec<(MachineId, VertexId)> = Vec::new();
        let mut cover_or: BTreeMap<VertexId, u64> = BTreeMap::new();
        let mut got_cover = false;
        let mut b_asks: Vec<(MachineId, VertexId)> = Vec::new();
        let mut bmask_local: HashMap<VertexId, u64> = HashMap::new();
        let mut got_bans = false;
        let mut sigma_asks: Vec<(MachineId, VertexId)> = Vec::new();
        let mut sigma_local: HashMap<VertexId, (VertexId, u32)> = HashMap::new();
        let mut got_sigma = false;
        let mut hist: HashMap<u64, Vec<u32>> = HashMap::new();
        let mut got_hist = false;
        let mut rcands: BTreeMap<(u64, u64), (u32, Edge)> = BTreeMap::new();
        let mut got_rcands = false;
        let mut got_level_edges = false;

        for (src, msg) in inbox {
            match msg {
                SpannerNetMsg::Levels(l) => self.levels = l as usize,
                SpannerNetMsg::DegPartial(v, c) => *deg_sum.entry(v).or_default() += c,
                SpannerNetMsg::MaskInfo(v, d, m) => {
                    self.mask_store.insert(v, (d, m));
                }
                SpannerNetMsg::MaskAsk(v) => mask_asks.push((src, v)),
                SpannerNetMsg::MaskAns(v, m) => {
                    self.masks_local.insert(v, m);
                }
                SpannerNetMsg::CoverPartial(v, m) => {
                    got_cover = true;
                    *cover_or.entry(v).or_default() |= m;
                }
                SpannerNetMsg::BInfo(v, d, bm) => {
                    self.binfo.push((v, d, bm));
                    self.binfo_mask.insert(v, bm);
                }
                SpannerNetMsg::BAsk(v) => b_asks.push((src, v)),
                SpannerNetMsg::BAns(v, bm) => {
                    got_bans = true;
                    bmask_local.insert(v, bm);
                }
                SpannerNetMsg::CandPartial(v, c) => match self.cands.get_mut(&v) {
                    Some(acc) => {
                        for (a, b) in acc.iter_mut().zip(c) {
                            *a = (*a).min(b);
                        }
                    }
                    None => {
                        self.cands.insert(v, c);
                    }
                },
                SpannerNetMsg::SigmaAsk(v) => sigma_asks.push((src, v)),
                SpannerNetMsg::SigmaAns(v, s, d) => {
                    got_sigma = true;
                    sigma_local.insert(v, (s, d));
                }
                SpannerNetMsg::LevelEdge(k0, k1, e) => {
                    got_level_edges = true;
                    fold_best(&mut self.cluster_shard, (k0, k1), e, |a, b| a < b);
                }
                SpannerNetMsg::HistAns(key, h) => {
                    got_hist = true;
                    hist.insert(key, h);
                }
                SpannerNetMsg::RCand(k0, k1, y, e) => {
                    got_rcands = true;
                    fold_best(&mut rcands, (k0, k1), (y, e), |a, b| a.0 < b.0);
                }
                SpannerNetMsg::Finish => return StepOutcome::Halt,
                _ => {}
            }
        }

        // ---- round-0 kick-off: degree partials ----
        if ctx.round == 0 {
            let mut partial: BTreeMap<VertexId, u32> = BTreeMap::new();
            for e in &self.input {
                *partial.entry(e.u).or_default() += 1;
                *partial.entry(e.v).or_default() += 1;
            }
            for (v, c) in partial {
                out.send(self.owners.of(&v), SpannerNetMsg::DegPartial(v, c));
            }
        }

        // ---- owner role ----
        if !deg_sum.is_empty() {
            for (&v, &d) in &deg_sum {
                out.send(large, SpannerNetMsg::DegUp(v, d));
            }
        }
        for (src, v) in mask_asks {
            let mask = self.mask_store.get(&v).map_or(0, |&(_, m)| m);
            out.send(src, SpannerNetMsg::MaskAns(v, mask));
        }
        if got_cover {
            for (v, m) in cover_or {
                out.send(large, SpannerNetMsg::CoverUp(v, m));
            }
        }
        for (src, v) in b_asks {
            // Every asked endpoint has deg > 0, so BInfo covers it.
            let bm = self.binfo_mask.get(&v).copied().unwrap_or(0);
            out.send(src, SpannerNetMsg::BAns(v, bm));
        }
        if !sigma_asks.is_empty() {
            // σ assignment happens exactly once, in BInfo arrival order
            // (ascending vertex id — the legacy owner loop order).
            if self.sigma.is_empty() {
                let binfo = std::mem::take(&mut self.binfo);
                for (v, d, bm) in binfo {
                    let (s, _iu) = sigma_for(v, bm, self.cands.get(&v), self.levels);
                    self.sigma.insert(v, (s, d));
                    if s != v {
                        self.stars.push(Edge::unweighted(v, s));
                    }
                }
            }
            for (src, v) in sigma_asks {
                let (s, d) = *self.sigma.get(&v).expect("sigma covers owned vertices");
                out.send(src, SpannerNetMsg::SigmaAns(v, s, d));
            }
        }
        if got_level_edges {
            // The shard is complete this round: report counts, draw the
            // per-level subsamples in key order (the legacy shard order and
            // the legacy per-machine RNG order), request histories.
            let mut counts = vec![0u64; self.levels.max(1)];
            for key in self.cluster_shard.keys() {
                counts[unpack_level_edge(key).0] += 1;
            }
            out.send(large, SpannerNetMsg::LevelCount(counts));
            let mut hist_keys: BTreeSet<u64> = BTreeSet::new();
            for (key, orig) in &self.cluster_shard {
                let (i, a, b) = unpack_level_edge(key);
                let p = sampling_probability(self.k, i);
                if p >= 1.0 {
                    out.send(
                        large,
                        SpannerNetMsg::Sample((i as u32) << 8, key.0, key.1, *orig),
                    );
                } else {
                    for j in 1..self.k as u32 {
                        if ctx.rng().random_bool(p) {
                            out.send(
                                large,
                                SpannerNetMsg::Sample(((i as u32) << 8) | j, key.0, key.1, *orig),
                            );
                        }
                    }
                    hist_keys.insert(((i as u64) << 32) | a as u64);
                    hist_keys.insert(((i as u64) << 32) | b as u64);
                }
            }
            ctx.charge(self.cluster_shard.len() as u64);
            for key in hist_keys {
                out.send(large, SpannerNetMsg::HistAsk(key));
            }
        }
        if got_hist {
            // Removal candidates over this machine's cluster edges.
            for (key, orig) in &self.cluster_shard {
                let (i, a, b) = unpack_level_edge(key);
                let (Some(ha), Some(hb)) = (
                    hist.get(&(((i as u64) << 32) | a as u64)),
                    hist.get(&(((i as u64) << 32) | b as u64)),
                ) else {
                    continue;
                };
                for (ck, cv) in removal_candidates_for(i, a, b, ha, hb, *orig) {
                    out.send(
                        self.owners.of(&ck),
                        SpannerNetMsg::RCand(ck.0, ck.1, cv.0, cv.1),
                    );
                }
            }
        }
        if got_rcands {
            for (_key, (_y, orig)) in rcands {
                out.send(large, SpannerNetMsg::Removal(orig));
            }
        }
        // Stars ship together with the removals (round 15).
        if ctx.round == 15 {
            for e in self.stars.drain(..) {
                out.send(large, SpannerNetMsg::Star(e));
            }
        }

        // ---- worker clock ----
        match ctx.round {
            // Levels received: look up endpoint masks.
            3 => {
                for &v in &self.endpoints {
                    out.send(self.owners.of(&v), SpannerNetMsg::MaskAsk(v));
                }
            }
            // B-masks are at the owners next round: ask.
            7 => {
                for &v in &self.endpoints {
                    out.send(self.owners.of(&v), SpannerNetMsg::BAsk(v));
                }
            }
            _ => {}
        }
        // Masks received: coverage partials (OR of neighbor masks).
        if ctx.round == 5 && !self.input.is_empty() {
            let mut acc: BTreeMap<VertexId, u64> = BTreeMap::new();
            for e in &self.input {
                let mu = self.masks_local.get(&e.u).copied().unwrap_or(0);
                let mv = self.masks_local.get(&e.v).copied().unwrap_or(0);
                *acc.entry(e.u).or_default() |= mv;
                *acc.entry(e.v).or_default() |= mu;
            }
            for (v, m) in acc {
                out.send(self.owners.of(&v), SpannerNetMsg::CoverPartial(v, m));
            }
        }
        // B-masks received: candidate partials + σ lookups.
        if got_bans {
            let per_vertex = min_neighbor_candidates(self.levels, &self.input, |y| {
                bmask_local.get(&y).copied().unwrap_or(0)
            });
            for (v, c) in per_vertex {
                out.send(self.owners.of(&v), SpannerNetMsg::CandPartial(v, c));
            }
            for &v in &self.endpoints {
                out.send(self.owners.of(&v), SpannerNetMsg::SigmaAsk(v));
            }
        }
        // σ received: emit the cluster edges.
        if got_sigma {
            for e in &self.input {
                let (su, du) = sigma_local[&e.u];
                let (sv, dv) = sigma_local[&e.v];
                if su == sv {
                    continue;
                }
                let level = edge_level(du, dv, self.levels);
                let key = level_edge_key(level, su, sv);
                out.send(
                    self.owners.of(&key),
                    SpannerNetMsg::LevelEdge(key.0, key.1, *e),
                );
            }
        }

        out.into_step()
    }
}
