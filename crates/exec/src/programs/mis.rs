//! [`MisProgram`]: the `O(log log Δ)`-round maximal independent set
//! (Theorem C.6 — greedy-by-`π` over geometrically growing rank prefixes)
//! as a per-machine state machine.
//!
//! Same algorithm as the legacy call-style
//! [`mpc_core::ported::heterogeneous_mis`], in the coordinator shape of the
//! [`combinators`](crate::combinators) layer. The large machine draws the
//! permutation (its **only** RNG draw, mirroring the legacy order), owns
//! the prefix schedule, and replays every legacy orchestrator decision
//! (batch-budget skips, the early-stop rule) from the same aggregated
//! counts; the small machines double as workers over their live-edge
//! shards and as hash-owners of per-vertex ranks, chosen flags, and
//! domination flags. Small machines draw no randomness at all, so results,
//! statistics, and RNG stream positions are bit-identical to the legacy
//! path (asserted by the registry equivalence tests).
//!
//! One prefix iteration (`Batch` issued at round `R`):
//!
//! | round | who | does |
//! |------:|-----|------|
//! | R+1   | smalls | select the rank-prefix batch from live edges, report counts |
//! | R+2   | large  | skip (over budget) or request the batch (`ShipBatch`) |
//! | R+4   | large  | greedy extension; chosen flags → owners; `Mark` broadcast |
//! | R+5–7 | smalls/owners | chosen lookups → domination partials → domination flags up + lookups |
//! | R+9   | smalls | prune live edges, report live counts |
//! | R+10  | large  | early-stop or next prefix |

use crate::combinators::{announce_degrees, Outbox, Owners, RoleProgram};
use crate::machine::{MachineCtx, StepOutcome};
use mpc_core::ported::mis::{
    final_sweep, greedy_extend_prefix, mis_budget, permutation_ranks, prefix_thresholds, MisResult,
};
use mpc_graph::{Edge, VertexId};
use mpc_runtime::{Cluster, MachineId, Payload, ShardedVec};
use std::collections::{BTreeMap, BTreeSet, HashMap};

/// Phase commands broadcast by the large machine.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MisCmd {
    /// Select the batch of live edges with both endpoint ranks `< t`,
    /// report its size.
    Batch {
        /// The prefix threshold.
        t: u32,
    },
    /// The batch fits: ship it to the large machine.
    ShipBatch,
    /// Chosen flags are at the owners: run the domination/prune wave.
    Mark,
    /// Ship the remaining live edges for the final sweep.
    Final,
    /// The run is over; halt.
    Finish,
}

/// Messages of the MIS program.
#[derive(Clone, Copy, Debug)]
pub enum MisNetMsg {
    /// Large → smalls: phase command.
    Cmd(MisCmd),
    /// Small → owner: partial degree count of a vertex.
    DegPartial(VertexId, u32),
    /// Owner → large: final degree of a vertex.
    DegUp(VertexId, u32),
    /// Large → owner: the permutation rank of a vertex.
    RankInfo(VertexId, u32),
    /// Small → owner: this machine needs the rank of `v`.
    RankAsk(VertexId),
    /// Owner → asker: the rank of `v`.
    RankAns(VertexId, u32),
    /// Small → large: a count (batch size or live size, by phase).
    Count(u64),
    /// Small → large: a batch edge.
    BatchEdge(Edge),
    /// Large → owner: `v` joined the MIS this iteration.
    Chosen(VertexId),
    /// Small → owner: did `v` join this iteration?
    ChosenAsk(VertexId),
    /// Owner → asker: whether `v` joined this iteration.
    ChosenAns(VertexId, bool),
    /// Small → owner: `v` is dominated this iteration (partial).
    DomPartial(VertexId),
    /// Owner → large: `v` is dominated.
    DomUp(VertexId),
    /// Small → owner: is `v` dominated this iteration?
    DomAsk(VertexId),
    /// Owner → asker: whether `v` is dominated.
    DomAns(VertexId, bool),
    /// Small → large: a surviving live edge (final sweep).
    FinalEdge(Edge),
}

impl Payload for MisNetMsg {
    fn words(&self) -> usize {
        match self {
            MisNetMsg::Cmd(MisCmd::Batch { .. }) => 2,
            MisNetMsg::Cmd(_) => 1,
            MisNetMsg::DegPartial(_, _)
            | MisNetMsg::DegUp(_, _)
            | MisNetMsg::RankInfo(_, _)
            | MisNetMsg::RankAns(_, _)
            | MisNetMsg::ChosenAns(_, _)
            | MisNetMsg::DomAns(_, _) => 2,
            MisNetMsg::RankAsk(_)
            | MisNetMsg::Count(_)
            | MisNetMsg::Chosen(_)
            | MisNetMsg::ChosenAsk(_)
            | MisNetMsg::DomPartial(_)
            | MisNetMsg::DomUp(_)
            | MisNetMsg::DomAsk(_) => 1,
            MisNetMsg::BatchEdge(e) | MisNetMsg::FinalEdge(e) => e.words(),
        }
    }
}

/// What the large machine is waiting for.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum LPhase {
    /// Round 0: draw the permutation, push ranks to the owners.
    Boot,
    /// Degree reports arrive at round 2.
    Degrees,
    /// `Batch` issued: counts arrive at `issued + 2`.
    BatchCount { issued: u64 },
    /// `ShipBatch` issued: the batch arrives at `issued + 2`.
    Batch { issued: u64 },
    /// `Mark` issued: domination flags arrive at `issued + 5`.
    DomWait { issued: u64 },
    /// Live counts arrive at `issued + 6`.
    LiveCount { issued: u64 },
    /// `Final` issued: the residual graph arrives at `issued + 2`.
    Final { issued: u64 },
    /// Finish broadcast; halt on the next step.
    Done,
}

/// Per-machine state of the MIS program.
#[derive(Clone)]
pub struct MisProgram {
    n: usize,
    owners: Owners,
    // ---- small-machine state ----
    /// Live edges: the input shard at round 0 (which is when the degree
    /// and rank kickoff reads it), pruned in place as the MIS grows.
    live: Vec<Edge>,
    /// Endpoint ranks delivered by the owners.
    rank_local: HashMap<VertexId, u32>,
    /// The held batch (selected on `Batch`, shipped on `ShipBatch`).
    batch: Vec<Edge>,
    /// Round the `Mark` command arrived (drives the domination wave).
    mark_round: Option<u64>,
    /// Live endpoints captured at `Mark`, reused by the DomAsk wave.
    mark_endpoints: Vec<VertexId>,
    /// Owner role: ranks of owned vertices.
    rank_store: HashMap<VertexId, u32>,
    /// Owner role: this iteration's chosen vertices.
    chosen: BTreeSet<VertexId>,
    // ---- large-machine state ----
    phase: LPhase,
    perm: Vec<VertexId>,
    rank: Vec<u32>,
    in_mis: Vec<bool>,
    dominated_flag: Vec<bool>,
    thresholds: Vec<u32>,
    t_idx: usize,
    decided_upto: u32,
    iterations: usize,
    batch_edges: Vec<usize>,
    budget: usize,
    /// Set on the large machine when it halts.
    pub result: Option<MisResult>,
}

impl MisProgram {
    /// Builds one program per machine over the sharded input edges.
    pub fn for_cluster(cluster: &Cluster, n: usize, edges: &ShardedVec<Edge>) -> Vec<Self> {
        let owners = Owners::of_cluster(cluster);
        let large = cluster.large().expect("MIS requires a large machine");
        assert!(!owners.ids().is_empty(), "MIS requires small machines");
        assert!(
            edges.shard(large).is_empty(),
            "engine programs expect the input on the small machines only \
             (see common::distribute_edges); the large machine's shard would \
             be silently ignored"
        );
        (0..cluster.machines())
            .map(|mid| MisProgram {
                n,
                owners: owners.clone(),
                live: edges.shard(mid).to_vec(),
                rank_local: HashMap::new(),
                batch: Vec::new(),
                mark_round: None,
                mark_endpoints: Vec::new(),
                rank_store: HashMap::new(),
                chosen: BTreeSet::new(),
                phase: LPhase::Boot,
                perm: Vec::new(),
                rank: Vec::new(),
                in_mis: Vec::new(),
                dominated_flag: Vec::new(),
                thresholds: Vec::new(),
                t_idx: 0,
                decided_upto: 0,
                iterations: 0,
                batch_edges: Vec::new(),
                budget: 0,
                result: None,
            })
            .collect()
    }

    /// Sorted, deduplicated endpoints of the live shard.
    fn live_endpoints(&self) -> Vec<VertexId> {
        let mut eps: Vec<VertexId> = self.live.iter().flat_map(|e| [e.u, e.v]).collect();
        eps.sort_unstable();
        eps.dedup();
        eps
    }

    /// Issues the next prefix iteration, the final sweep, or nothing more —
    /// the legacy loop's control flow, replayed by the coordinator.
    fn advance(&mut self, ctx: &MachineCtx<'_>, out: &mut Outbox<MisNetMsg>) {
        self.t_idx += 1;
        if self.t_idx >= self.thresholds.len() || self.decided_upto as usize >= self.n {
            self.issue_final(ctx, out);
        } else {
            self.issue_batch(ctx, out);
        }
    }

    fn issue_batch(&mut self, ctx: &MachineCtx<'_>, out: &mut Outbox<MisNetMsg>) {
        self.iterations += 1;
        let t = self.thresholds[self.t_idx];
        out.broadcast(ctx.small_ids_iter(), MisNetMsg::Cmd(MisCmd::Batch { t }));
        self.phase = LPhase::BatchCount { issued: ctx.round };
    }

    fn issue_final(&mut self, ctx: &MachineCtx<'_>, out: &mut Outbox<MisNetMsg>) {
        out.broadcast(ctx.small_ids_iter(), MisNetMsg::Cmd(MisCmd::Final));
        self.phase = LPhase::Final { issued: ctx.round };
    }
}

impl RoleProgram for MisProgram {
    type Message = MisNetMsg;

    fn snapshot(&self) -> Option<Self> {
        Some(self.clone())
    }

    fn large_step(
        &mut self,
        ctx: &MachineCtx<'_>,
        inbox: Vec<(MachineId, MisNetMsg)>,
    ) -> StepOutcome<MisNetMsg> {
        let mut out = Outbox::new();
        match self.phase {
            LPhase::Boot => {
                // The permutation is the algorithm's single random draw —
                // first thing the legacy path does.
                let (perm, rank) = permutation_ranks(&mut ctx.rng(), self.n);
                ctx.charge(self.n as u64);
                for v in 0..self.n {
                    out.send(
                        self.owners.of(&(v as VertexId)),
                        MisNetMsg::RankInfo(v as VertexId, rank[v]),
                    );
                }
                self.perm = perm;
                self.rank = rank;
                self.in_mis = vec![false; self.n];
                self.dominated_flag = vec![false; self.n];
                self.phase = LPhase::Degrees;
            }
            LPhase::Degrees => {
                if ctx.round == 2 {
                    let delta = inbox
                        .iter()
                        .filter_map(|(_, m)| match m {
                            MisNetMsg::DegUp(_, d) => Some(*d),
                            _ => None,
                        })
                        .max()
                        .unwrap_or(1)
                        .max(2);
                    self.thresholds = prefix_thresholds(self.n, delta);
                    self.budget = mis_budget(ctx.capacity);
                    self.issue_batch(ctx, &mut out);
                }
            }
            LPhase::BatchCount { issued } => {
                if ctx.round == issued + 2 {
                    let total: u64 = inbox
                        .iter()
                        .filter_map(|(_, m)| match m {
                            MisNetMsg::Count(c) => Some(*c),
                            _ => None,
                        })
                        .sum();
                    self.batch_edges.push(total as usize);
                    if total as usize * 2 > self.budget {
                        // Residual prefix unexpectedly dense: skip to a
                        // smaller growth step (the legacy `continue`).
                        self.advance(ctx, &mut out);
                    } else {
                        out.broadcast(ctx.small_ids_iter(), MisNetMsg::Cmd(MisCmd::ShipBatch));
                        self.phase = LPhase::Batch { issued: ctx.round };
                    }
                }
            }
            LPhase::Batch { issued } => {
                if ctx.round == issued + 2 {
                    let batch: Vec<Edge> = inbox
                        .into_iter()
                        .filter_map(|(_, m)| match m {
                            MisNetMsg::BatchEdge(e) => Some(e),
                            _ => None,
                        })
                        .collect();
                    ctx.charge(batch.len() as u64 * 2);
                    let t = self.thresholds[self.t_idx];
                    let newly = greedy_extend_prefix(
                        &self.perm,
                        &self.rank,
                        t,
                        self.decided_upto,
                        &self.dominated_flag,
                        &mut self.in_mis,
                        &batch,
                    );
                    self.decided_upto = t;
                    for &v in &newly {
                        out.send(self.owners.of(&v), MisNetMsg::Chosen(v));
                    }
                    out.broadcast(ctx.small_ids_iter(), MisNetMsg::Cmd(MisCmd::Mark));
                    self.phase = LPhase::DomWait { issued: ctx.round };
                }
            }
            LPhase::DomWait { issued } => {
                if ctx.round == issued + 5 {
                    for (_src, m) in inbox {
                        if let MisNetMsg::DomUp(v) = m {
                            self.dominated_flag[v as usize] = true;
                        }
                    }
                    self.phase = LPhase::LiveCount { issued };
                }
            }
            LPhase::LiveCount { issued } => {
                if ctx.round == issued + 6 {
                    let live_total: u64 = inbox
                        .iter()
                        .filter_map(|(_, m)| match m {
                            MisNetMsg::Count(c) => Some(*c),
                            _ => None,
                        })
                        .sum();
                    // The paper's stop rule: once the residual graph fits
                    // the large machine, the final sweep gathers it whole.
                    if live_total as usize * 2 <= self.budget {
                        self.issue_final(ctx, &mut out);
                    } else {
                        self.advance(ctx, &mut out);
                    }
                }
            }
            LPhase::Final { issued } => {
                if ctx.round == issued + 2 {
                    let rest: Vec<Edge> = inbox
                        .into_iter()
                        .filter_map(|(_, m)| match m {
                            MisNetMsg::FinalEdge(e) => Some(e),
                            _ => None,
                        })
                        .collect();
                    ctx.charge(rest.len() as u64 * 2);
                    final_sweep(
                        &self.perm,
                        &self.rank,
                        self.decided_upto,
                        &self.dominated_flag,
                        &mut self.in_mis,
                        &rest,
                    );
                    let mis: Vec<VertexId> = (0..self.n as VertexId)
                        .filter(|&v| self.in_mis[v as usize])
                        .collect();
                    self.result = Some(MisResult {
                        mis,
                        iterations: self.iterations,
                        batch_edges: std::mem::take(&mut self.batch_edges),
                    });
                    out.broadcast(ctx.small_ids_iter(), MisNetMsg::Cmd(MisCmd::Finish));
                    self.phase = LPhase::Done;
                }
            }
            LPhase::Done => return StepOutcome::Halt,
        }
        out.into_step()
    }

    fn small_step(
        &mut self,
        ctx: &MachineCtx<'_>,
        inbox: Vec<(MachineId, MisNetMsg)>,
    ) -> StepOutcome<MisNetMsg> {
        let mut out = Outbox::new();
        let large = ctx.large.expect("checked in for_cluster");

        // Round 0: kick off degrees and rank lookups from the input shard
        // (`live` still equals the input here; pruning starts later).
        if ctx.round == 0 {
            let partial =
                announce_degrees(&mut out, &self.owners, &self.live, MisNetMsg::DegPartial);
            for &v in partial.keys() {
                out.send(self.owners.of(&v), MisNetMsg::RankAsk(v));
            }
        }

        // Two-pass inbox handling: stores/partials first, then lookups, so
        // owner answers always reflect this round's pushed state.
        let mut cmd: Option<MisCmd> = None;
        let mut deg_sum: BTreeMap<VertexId, u32> = BTreeMap::new();
        let mut rank_asks: Vec<(MachineId, VertexId)> = Vec::new();
        let mut chosen_asks: Vec<(MachineId, VertexId)> = Vec::new();
        let mut chosen_local: BTreeSet<VertexId> = BTreeSet::new();
        let mut dom_partials: BTreeSet<VertexId> = BTreeSet::new();
        let mut got_dom_partials = false;
        let mut dom_asks: Vec<(MachineId, VertexId)> = Vec::new();
        let mut dom_answers: HashMap<VertexId, bool> = HashMap::new();
        let mut got_dom_answers = false;

        for (src, msg) in inbox {
            match msg {
                MisNetMsg::Cmd(c) => cmd = Some(c),
                MisNetMsg::DegPartial(v, c) => *deg_sum.entry(v).or_default() += c,
                MisNetMsg::RankInfo(v, r) => {
                    self.rank_store.insert(v, r);
                }
                MisNetMsg::RankAsk(v) => rank_asks.push((src, v)),
                MisNetMsg::RankAns(v, r) => {
                    self.rank_local.insert(v, r);
                }
                MisNetMsg::Chosen(v) => {
                    self.chosen.insert(v);
                }
                MisNetMsg::ChosenAsk(v) => chosen_asks.push((src, v)),
                MisNetMsg::ChosenAns(v, true) => {
                    chosen_local.insert(v);
                }
                MisNetMsg::DomPartial(v) => {
                    got_dom_partials = true;
                    dom_partials.insert(v);
                }
                MisNetMsg::DomUp(_) => {}
                MisNetMsg::DomAsk(v) => dom_asks.push((src, v)),
                MisNetMsg::DomAns(v, f) => {
                    got_dom_answers = true;
                    dom_answers.insert(v, f);
                }
                _ => {}
            }
        }

        // ---- owner role ----
        if !deg_sum.is_empty() {
            for (&v, &d) in &deg_sum {
                out.send(large, MisNetMsg::DegUp(v, d));
            }
        }
        for (src, v) in rank_asks {
            let r = self.rank_store.get(&v).copied().unwrap_or(0);
            out.send(src, MisNetMsg::RankAns(v, r));
        }
        if !chosen_asks.is_empty() {
            for (src, v) in chosen_asks {
                out.send(src, MisNetMsg::ChosenAns(v, self.chosen.contains(&v)));
            }
            self.chosen.clear();
        }
        if got_dom_partials {
            for &v in &dom_partials {
                out.send(large, MisNetMsg::DomUp(v));
            }
        }
        for (src, v) in dom_asks {
            out.send(src, MisNetMsg::DomAns(v, dom_partials.contains(&v)));
        }

        // ---- worker role: command handling ----
        match cmd {
            Some(MisCmd::Finish) => return StepOutcome::Halt,
            Some(MisCmd::Batch { t }) => {
                self.batch = self
                    .live
                    .iter()
                    .filter(|e| self.rank_local[&e.u] < t && self.rank_local[&e.v] < t)
                    .copied()
                    .collect();
                out.send(large, MisNetMsg::Count(self.batch.len() as u64));
            }
            Some(MisCmd::ShipBatch) => {
                for e in &self.batch {
                    out.send(large, MisNetMsg::BatchEdge(*e));
                }
            }
            Some(MisCmd::Mark) => {
                self.mark_round = Some(ctx.round);
                // `live` only changes at mark+4, so this endpoint list is
                // reused for the DomAsk wave at mark+2.
                self.mark_endpoints = self.live_endpoints();
                for &v in &self.mark_endpoints {
                    out.send(self.owners.of(&v), MisNetMsg::ChosenAsk(v));
                }
            }
            Some(MisCmd::Final) => {
                for e in &self.live {
                    out.send(large, MisNetMsg::FinalEdge(*e));
                }
            }
            None => {}
        }

        // ---- worker role: the domination wave, on the Mark clock ----
        if let Some(mark) = self.mark_round {
            if ctx.round == mark + 2 {
                // Chosen answers are in: dominated candidates are the
                // chosen endpoints and their live neighbors.
                let mut dominated: BTreeSet<VertexId> = BTreeSet::new();
                for e in &self.live {
                    if chosen_local.contains(&e.u) {
                        dominated.insert(e.v);
                        dominated.insert(e.u);
                    }
                    if chosen_local.contains(&e.v) {
                        dominated.insert(e.u);
                        dominated.insert(e.v);
                    }
                }
                for &v in &dominated {
                    out.send(self.owners.of(&v), MisNetMsg::DomPartial(v));
                }
                for v in std::mem::take(&mut self.mark_endpoints) {
                    out.send(self.owners.of(&v), MisNetMsg::DomAsk(v));
                }
            }
            if ctx.round == mark + 4 {
                debug_assert!(got_dom_answers || self.live.is_empty());
                let dead: BTreeSet<VertexId> = dom_answers
                    .iter()
                    .filter(|(_, &f)| f)
                    .map(|(&v, _)| v)
                    .collect();
                self.live
                    .retain(|e| !dead.contains(&e.u) && !dead.contains(&e.v));
                out.send(large, MisNetMsg::Count(self.live.len() as u64));
                self.mark_round = None;
            }
        }

        out.into_step()
    }
}
