//! [`MstProgram`]: the full heterogeneous MST algorithm (§3, Theorem 3.1 —
//! doubly-exponential Borůvka + KKT sampling finish) as a per-machine state
//! machine.
//!
//! This is the *same algorithm* as the legacy call-style
//! [`mpc_core::mst::heterogeneous_mst`], re-expressed in the coordinator
//! shape of the [`combinators`](crate::combinators) layer: the large
//! machine replays the legacy orchestrator's decisions through the shared
//! [`next_move`](mpc_core::mst::next_move) rule, and every small machine
//! draws its KKT sampling coins in exactly the legacy per-machine order —
//! so the resulting forest, the statistics, *and* the per-machine RNG
//! stream positions are bit-identical to the legacy path (asserted by the
//! registry equivalence tests). The forest itself is additionally forced
//! by the workspace's total edge order: the MSF is unique, so any exact
//! schedule must produce it.
//!
//! One contraction wave spans nine rounds, clocked from the round `W` at
//! which the smalls receive [`MstCmd::Wave`]. Collection and dedup go
//! through *group collectors* (the legacy Claim-2/Claim-4 two-stage
//! trees), so a hot vertex never concentrates its full multiplicity on one
//! machine:
//!
//! | round | who        | does |
//! |------:|------------|------|
//! | W     | smalls     | announce each current vertex's `k` locally-lightest edges to the vertex's group collector |
//! | W+1   | collectors | keep the `k` lightest per vertex, forward to the vertex's hash-owner |
//! | W+2   | owners     | keep the `k` globally-lightest per vertex, forward to the large machine |
//! | W+3   | large      | [`contract_lightest_lists`], send rename pairs to the owners |
//! | W+4   | owners     | route each rename to the collectors that forwarded its vertex |
//! | W+5   | collectors | route each rename to exactly the machines that announced its vertex |
//! | W+6   | smalls     | relabel, drop internals, send `(pair, original)` partials to the pair's collector |
//! | W+7   | collectors | pre-combine parallel pairs, forward to the pair's hash-owner |
//! | W+8   | owners     | dedup keeping the lightest — the new owner-sorted shards — report counts |
//! | W+9   | large      | update `(n', m')`, pick the next move via the shared rule |
//!
//! The KKT finish (sample → count → choose repetition → labels → F-light →
//! local MST) and the tiny-remainder direct gather mirror
//! [`mpc_core::mst::kkt`] step for step through the shared
//! `sample_probability` / `span_sample` / `finish_pool` functions.

use crate::combinators::{truncate_top, Announcers, Outbox, Owners, RoleProgram};
use crate::machine::{MachineCtx, StepOutcome};
use mpc_core::mst::{
    collection_budget, contract_lightest_lists, kkt, local_msf_finish, next_move, pair_to_tagged,
    relabel_pairs, MstConfig, MstError, MstMove, MstResult, MstStats,
};
use mpc_graph::mst::Forest;
use mpc_graph::{Edge, VertexId};
use mpc_labeling::{Label, MaxEdgeLabeling};
use mpc_runtime::payload::TaggedEdge;
use mpc_runtime::{Cluster, MachineId, Payload, ShardedVec};
use rand::Rng;
use std::collections::{BTreeMap, BTreeSet, HashMap};

/// Phase commands broadcast by the large machine.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum MstCmd {
    /// Run one contraction wave with lightest-list length `k`.
    Wave {
        /// List length for this wave.
        k: u32,
    },
    /// Ship everything to the large machine (tiny remainder).
    Gather,
    /// Draw the KKT samples: `reps` repetitions at probability `p`.
    Sample {
        /// Sampling probability as `f64` bits (exact transport).
        p_bits: u64,
        /// Number of repetitions.
        reps: u32,
    },
    /// Ship the chosen repetition's sample and request labels.
    ChooseRep {
        /// The repetition that fit the budget.
        rep: u32,
    },
    /// The run is over; halt.
    Finish,
}

/// Messages of the MST program.
#[derive(Clone, Debug)]
pub enum MstNetMsg {
    /// Large → smalls: phase command.
    Cmd(MstCmd),
    /// Small → large: current local edge count after a relabel.
    Count(u64),
    /// Small → group collector: one entry of a vertex's locally-lightest
    /// list.
    Announce(VertexId, TaggedEdge),
    /// Collector → owner: a surviving lightest-list entry.
    AnnounceFwd(VertexId, TaggedEdge),
    /// Owner → large: one entry of a vertex's globally-lightest list.
    Collected(VertexId, TaggedEdge),
    /// Large → owner: a rename pair from the contraction.
    Rename(VertexId, VertexId),
    /// Owner → collectors: a rename pair, one routing hop down.
    RenameToC(VertexId, VertexId),
    /// Collector → announcers: a rename pair for a vertex this machine holds.
    RenameFwd(VertexId, VertexId),
    /// Small → group collector: relabeled `(pair, original)` dedup partial.
    Pair(u32, u32, Edge),
    /// Collector → owner: a combined `(pair, original)` partial.
    PairFwd(u32, u32, Edge),
    /// Small → large: a tagged edge (gather / sample / F-light shipment).
    Ship(TaggedEdge),
    /// Small → large: per-repetition KKT sample counts.
    SampleCounts(Vec<u64>),
    /// Small → owner: this machine needs the label of `v`.
    Need(VertexId),
    /// Owner → large: some machine needs the label of `v`.
    NeedUp(VertexId),
    /// Large → owner: the label of `v`.
    LabelPush(VertexId, Label),
    /// Owner → needers: the label of `v`.
    LabelAns(VertexId, Label),
}

impl Payload for MstNetMsg {
    fn words(&self) -> usize {
        match self {
            MstNetMsg::Cmd(MstCmd::Sample { .. }) => 3,
            MstNetMsg::Cmd(MstCmd::Wave { .. }) | MstNetMsg::Cmd(MstCmd::ChooseRep { .. }) => 2,
            MstNetMsg::Cmd(MstCmd::Gather) | MstNetMsg::Cmd(MstCmd::Finish) => 1,
            MstNetMsg::Count(_) | MstNetMsg::Need(_) | MstNetMsg::NeedUp(_) => 1,
            MstNetMsg::Announce(_, te)
            | MstNetMsg::AnnounceFwd(_, te)
            | MstNetMsg::Collected(_, te) => 1 + te.words(),
            MstNetMsg::Rename(_, _) | MstNetMsg::RenameToC(_, _) | MstNetMsg::RenameFwd(_, _) => 2,
            MstNetMsg::Pair(_, _, e) | MstNetMsg::PairFwd(_, _, e) => 2 + e.words(),
            MstNetMsg::Ship(te) => te.words(),
            MstNetMsg::SampleCounts(v) => v.words(),
            MstNetMsg::LabelPush(_, l) | MstNetMsg::LabelAns(_, l) => 1 + l.words(),
        }
    }
}

/// What the large machine is currently waiting for. Variants carry the
/// round at which their command was broadcast; every follow-up is a fixed
/// offset from it.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum LargePhase {
    /// Round 0: issue the first command.
    Boot,
    /// Contract at `issued + 4`, post-relabel counts at `issued + 10`.
    Wave { issued: u64, k: usize },
    /// Remainder arrives at `issued + 2`.
    Gather { issued: u64 },
    /// Per-repetition sample counts arrive at `issued + 2`.
    SampleCounts { issued: u64 },
    /// Sample at `issued + 2`, needs at `+3`, F-light edges at `+6`.
    Kkt { issued: u64, rep: usize },
    /// Finish broadcast; halt on the next step.
    Done,
}

/// Per-machine state of the heterogeneous MST program.
#[derive(Clone)]
pub struct MstProgram {
    n: usize,
    config: MstConfig,
    owners: Owners,
    // ---- small-machine state ----
    /// Current contracted edges: initially the input shard, after each wave
    /// the owner-sorted deduplicated pairs — exactly the legacy shard
    /// content and order, which is what makes the KKT coin flips align.
    local: Vec<TaggedEdge>,
    /// Collector role: which machines announced each vertex this wave.
    announcers: Announcers<VertexId>,
    /// Owner role: which collectors forwarded each vertex this wave.
    collectors_of: Announcers<VertexId>,
    /// Owner role: who needs each label (KKT).
    needers: Announcers<VertexId>,
    /// Worker clock: round at which `Wave` was received, plus its `k`.
    wave: Option<(u64, usize)>,
    /// KKT samples, one per repetition, until a repetition is chosen.
    samples: Vec<Vec<TaggedEdge>>,
    // ---- large-machine state ----
    phase: LargePhase,
    budget: usize,
    m_cur: usize,
    n_cur: usize,
    chosen: Vec<Edge>,
    stats: MstStats,
    /// KKT pool: the gathered sample, later extended with F-light edges.
    pool: Vec<TaggedEdge>,
    /// Set on the large machine when it halts.
    pub result: Option<Result<MstResult, MstError>>,
}

impl MstProgram {
    /// Builds one program per machine, lifting `edges` into tagged form
    /// exactly like the legacy entry point.
    pub fn for_cluster(cluster: &Cluster, n: usize, edges: &ShardedVec<Edge>) -> Vec<Self> {
        Self::for_cluster_with(cluster, n, edges, &MstConfig::default())
    }

    /// [`for_cluster`](MstProgram::for_cluster) with explicit configuration.
    pub fn for_cluster_with(
        cluster: &Cluster,
        n: usize,
        edges: &ShardedVec<Edge>,
        config: &MstConfig,
    ) -> Vec<Self> {
        let large = cluster.large().expect("MST requires a large machine");
        let owners = Owners::of_cluster(cluster);
        assert!(!owners.ids().is_empty(), "MST requires small machines");
        let budget = collection_budget(cluster.capacity(large));
        let m0 = edges.total_len();
        (0..cluster.machines())
            .map(|mid| MstProgram {
                n,
                config: config.clone(),
                owners: owners.clone(),
                local: edges
                    .shard(mid)
                    .iter()
                    .map(|&e| TaggedEdge::identity(e.normalized()))
                    .collect(),
                announcers: Announcers::default(),
                collectors_of: Announcers::default(),
                needers: Announcers::default(),
                wave: None,
                samples: Vec::new(),
                phase: LargePhase::Boot,
                budget,
                m_cur: m0,
                n_cur: n,
                chosen: Vec::new(),
                stats: MstStats::default(),
                pool: Vec::new(),
                result: None,
            })
            .collect()
    }

    /// Issues the next orchestration move — the shared legacy decision rule.
    fn issue_next(&mut self, ctx: &MachineCtx<'_>, out: &mut Outbox<MstNetMsg>) {
        match next_move(
            self.m_cur,
            self.n_cur,
            self.stats.boruvka_steps,
            self.budget,
            &self.config,
        ) {
            MstMove::FinishGather => {
                self.phase = LargePhase::Gather { issued: ctx.round };
                out.broadcast(ctx.small_ids_iter(), MstNetMsg::Cmd(MstCmd::Gather));
            }
            MstMove::Kkt => {
                let p = kkt::sample_probability(self.budget, self.m_cur.max(1));
                self.phase = LargePhase::SampleCounts { issued: ctx.round };
                out.broadcast(
                    ctx.small_ids_iter(),
                    MstNetMsg::Cmd(MstCmd::Sample {
                        p_bits: p.to_bits(),
                        reps: self.config.kkt_repetitions as u32,
                    }),
                );
            }
            MstMove::Wave { k } => {
                self.phase = LargePhase::Wave {
                    issued: ctx.round,
                    k,
                };
                out.broadcast(
                    ctx.small_ids_iter(),
                    MstNetMsg::Cmd(MstCmd::Wave { k: k as u32 }),
                );
            }
        }
    }

    /// Finalizes the run on the large machine and broadcasts `Finish`.
    fn finish(&mut self, ctx: &MachineCtx<'_>, out: &mut Outbox<MstNetMsg>) {
        let mut chosen = std::mem::take(&mut self.chosen);
        chosen.sort_by_key(Edge::weight_key);
        chosen.dedup();
        self.result = Some(Ok(MstResult {
            forest: Forest::from_edges(chosen),
            stats: std::mem::take(&mut self.stats),
        }));
        self.phase = LargePhase::Done;
        out.broadcast(ctx.small_ids_iter(), MstNetMsg::Cmd(MstCmd::Finish));
    }

    /// Extracts the `Ship`ped tagged edges of an inbox, in arrival order
    /// (ascending source, then send order — the legacy gather order).
    fn shipped(inbox: Vec<(MachineId, MstNetMsg)>) -> Vec<TaggedEdge> {
        inbox
            .into_iter()
            .filter_map(|(_, m)| match m {
                MstNetMsg::Ship(te) => Some(te),
                _ => None,
            })
            .collect()
    }
}

impl RoleProgram for MstProgram {
    type Message = MstNetMsg;

    fn snapshot(&self) -> Option<Self> {
        Some(self.clone())
    }

    fn large_step(
        &mut self,
        ctx: &MachineCtx<'_>,
        inbox: Vec<(MachineId, MstNetMsg)>,
    ) -> StepOutcome<MstNetMsg> {
        let mut out = Outbox::new();
        match self.phase {
            LargePhase::Boot => self.issue_next(ctx, &mut out),
            LargePhase::Wave { issued, k } => {
                if ctx.round == issued + 4 {
                    // Collected lists are in: contract locally.
                    let mut lists: BTreeMap<VertexId, Vec<TaggedEdge>> = BTreeMap::new();
                    for (_src, msg) in inbox {
                        if let MstNetMsg::Collected(v, te) = msg {
                            lists.entry(v).or_default().push(te);
                        }
                    }
                    truncate_top(&mut lists, k, |te| te.orig.weight_key());
                    ctx.charge(lists.len() as u64);
                    let outcome = contract_lightest_lists(lists.into_iter().collect(), k);
                    self.stats.boruvka_steps += 1;
                    self.chosen.extend(outcome.chosen);
                    self.n_cur = outcome.new_vertex_count.max(1);
                    for (old, new) in outcome.rename {
                        if old != new {
                            out.send(self.owners.of(&old), MstNetMsg::Rename(old, new));
                        }
                    }
                } else if ctx.round == issued + 10 {
                    // Post-relabel counts are in: update m' and decide.
                    self.m_cur = inbox
                        .iter()
                        .map(|(_, m)| match m {
                            MstNetMsg::Count(c) => *c as usize,
                            _ => 0,
                        })
                        .sum();
                    self.stats.contraction_trace.push((self.n_cur, self.m_cur));
                    if self.m_cur == 0 {
                        self.stats.finished_by_direct_gather = true;
                        self.finish(ctx, &mut out);
                    } else {
                        self.issue_next(ctx, &mut out);
                    }
                }
            }
            LargePhase::Gather { issued } => {
                if ctx.round == issued + 2 {
                    let rest = Self::shipped(inbox);
                    ctx.charge(rest.len() as u64);
                    self.chosen.extend(local_msf_finish(self.n, &rest));
                    self.stats.finished_by_direct_gather = true;
                    self.finish(ctx, &mut out);
                }
            }
            LargePhase::SampleCounts { issued } => {
                if ctx.round == issued + 2 {
                    let reps = self.config.kkt_repetitions;
                    let mut totals = vec![0u64; reps];
                    for (_src, msg) in inbox {
                        if let MstNetMsg::SampleCounts(counts) = msg {
                            for (t, c) in totals.iter_mut().zip(counts) {
                                *t += c;
                            }
                        }
                    }
                    match totals.iter().position(|&c| (c as usize) <= self.budget) {
                        Some(rep) => {
                            self.phase = LargePhase::Kkt {
                                issued: ctx.round,
                                rep,
                            };
                            out.broadcast(
                                ctx.small_ids_iter(),
                                MstNetMsg::Cmd(MstCmd::ChooseRep { rep: rep as u32 }),
                            );
                        }
                        None => {
                            self.result = Some(Err(MstError::SamplingFailed));
                            self.phase = LargePhase::Done;
                            out.broadcast(ctx.small_ids_iter(), MstNetMsg::Cmd(MstCmd::Finish));
                        }
                    }
                }
            }
            LargePhase::Kkt { issued, rep } => {
                if ctx.round == issued + 2 {
                    // The chosen sample arrives (gather order).
                    self.pool = Self::shipped(inbox);
                } else if ctx.round == issued + 3 {
                    // Distinct label needs arrive; span the sample, push
                    // the needed labels to their owners.
                    let mut needed: BTreeSet<VertexId> = BTreeSet::new();
                    for (_src, msg) in inbox {
                        if let MstNetMsg::NeedUp(v) = msg {
                            needed.insert(v);
                        }
                    }
                    let (_msf, labeling) = kkt::span_sample(self.n, &self.pool);
                    ctx.charge((self.pool.len() + self.n) as u64);
                    for v in needed {
                        out.send(
                            self.owners.of(&v),
                            MstNetMsg::LabelPush(v, labeling.label(v).clone()),
                        );
                    }
                } else if ctx.round == issued + 6 {
                    // The F-light edges arrive; finish locally.
                    let lights = Self::shipped(inbox);
                    self.stats.kkt_rep_used = Some(rep);
                    self.stats.f_light_edges = lights.len();
                    self.pool.extend(lights);
                    ctx.charge(self.pool.len() as u64);
                    let pool = std::mem::take(&mut self.pool);
                    self.chosen.extend(kkt::finish_pool(self.n, &pool));
                    self.finish(ctx, &mut out);
                }
            }
            LargePhase::Done => return StepOutcome::Halt,
        }
        out.into_step()
    }

    fn small_step(
        &mut self,
        ctx: &MachineCtx<'_>,
        inbox: Vec<(MachineId, MstNetMsg)>,
    ) -> StepOutcome<MstNetMsg> {
        let mut out = Outbox::new();
        // Owner-side scratch filled from this round's inbox.
        let mut cmd: Option<MstCmd> = None;
        let mut renames: HashMap<VertexId, VertexId> = HashMap::new();
        let mut pair_dedup: BTreeMap<(u32, u32), Edge> = BTreeMap::new();
        let mut announce_lists: BTreeMap<VertexId, Vec<TaggedEdge>> = BTreeMap::new();
        let mut needs: BTreeSet<VertexId> = BTreeSet::new();
        let mut labels: HashMap<VertexId, Label> = HashMap::new();
        let mut routed_labels = false;

        let mut fwd_lists: BTreeMap<VertexId, Vec<TaggedEdge>> = BTreeMap::new();
        let mut pair_combine: BTreeMap<(u32, u32), Edge> = BTreeMap::new();
        for (src, msg) in inbox {
            match msg {
                MstNetMsg::Cmd(c) => cmd = Some(c),
                // Collector role: group announces per vertex.
                MstNetMsg::Announce(v, te) => {
                    self.announcers.note(v, src);
                    announce_lists.entry(v).or_default().push(te);
                }
                // Owner role: group the collectors' survivors per vertex.
                MstNetMsg::AnnounceFwd(v, te) => {
                    self.collectors_of.note(v, src);
                    fwd_lists.entry(v).or_default().push(te);
                }
                // Owner role: route each rename one hop down the tree.
                MstNetMsg::Rename(old, new) => {
                    if let Some(machines) = self.collectors_of.get(&old) {
                        for &m in machines {
                            out.send(m, MstNetMsg::RenameToC(old, new));
                        }
                    }
                }
                // Collector role: route each rename to the announcers.
                MstNetMsg::RenameToC(old, new) => {
                    if let Some(machines) = self.announcers.get(&old) {
                        for &m in machines {
                            out.send(m, MstNetMsg::RenameFwd(old, new));
                        }
                    }
                }
                // Worker role: collect the renames for this round's relabel.
                MstNetMsg::RenameFwd(old, new) => {
                    renames.insert(old, new);
                }
                // Collector role: pre-combine pair partials.
                MstNetMsg::Pair(a, b, orig) => {
                    crate::combinators::fold_best(&mut pair_combine, (a, b), orig, |x, y| {
                        x.weight_key() < y.weight_key()
                    });
                }
                // Owner role: final pair dedup (the new shard).
                MstNetMsg::PairFwd(a, b, orig) => {
                    crate::combinators::fold_best(&mut pair_dedup, (a, b), orig, |x, y| {
                        x.weight_key() < y.weight_key()
                    });
                }
                MstNetMsg::Need(v) => {
                    self.needers.note(v, src);
                    needs.insert(v);
                }
                MstNetMsg::LabelPush(v, l) => {
                    routed_labels = true;
                    if let Some(machines) = self.needers.get(&v) {
                        for &m in machines {
                            out.send(m, MstNetMsg::LabelAns(v, l.clone()));
                        }
                    }
                }
                MstNetMsg::LabelAns(v, l) => {
                    labels.insert(v, l);
                }
                _ => {}
            }
        }

        // Collector role: truncate each vertex's list to the k survivors
        // and forward them to the vertex's hash-owner.
        if !announce_lists.is_empty() {
            let k = self.wave.map_or(1, |(_, k)| k);
            truncate_top(&mut announce_lists, k, |te| te.orig.weight_key());
            for (v, tes) in announce_lists {
                let dst = self.owners.of(&v);
                for te in tes {
                    out.send(dst, MstNetMsg::AnnounceFwd(v, te));
                }
            }
        }
        // Owner role: forward each vertex's globally-lightest list.
        if !fwd_lists.is_empty() {
            let k = self.wave.map_or(1, |(_, k)| k);
            truncate_top(&mut fwd_lists, k, |te| te.orig.weight_key());
            let large = ctx.large.expect("checked in for_cluster");
            for (v, tes) in fwd_lists {
                for te in tes {
                    out.send(large, MstNetMsg::Collected(v, te));
                }
            }
        }
        // Collector role: forward the combined pair partials to the owners.
        if !pair_combine.is_empty() {
            for ((a, b), orig) in pair_combine {
                out.send(self.owners.of(&(a, b)), MstNetMsg::PairFwd(a, b, orig));
            }
        }
        // Owner role: forward distinct label needs to the large machine.
        if !needs.is_empty() {
            let large = ctx.large.expect("checked in for_cluster");
            for v in needs {
                out.send(large, MstNetMsg::NeedUp(v));
            }
        }
        if routed_labels {
            self.needers.take();
        }

        // Worker role: command handling.
        match cmd {
            Some(MstCmd::Finish) => return StepOutcome::Halt,
            Some(MstCmd::Wave { k }) => {
                self.wave = Some((ctx.round, k as usize));
                self.announcers.take();
                self.collectors_of.take();
                // Announce each current vertex's k locally-lightest edges
                // to the vertex's group collector (Claim-4 tree, stage 1).
                let group = crate::combinators::sender_group(ctx.mid, ctx.machines);
                let mut lists: BTreeMap<VertexId, Vec<TaggedEdge>> = BTreeMap::new();
                for te in &self.local {
                    lists.entry(te.cur.u).or_default().push(*te);
                    lists.entry(te.cur.v).or_default().push(*te);
                }
                truncate_top(&mut lists, k as usize, |te| te.orig.weight_key());
                ctx.charge(self.local.len() as u64);
                for (v, tes) in lists {
                    let dst = self.owners.collector_of(&v, group);
                    for te in tes {
                        out.send(dst, MstNetMsg::Announce(v, te));
                    }
                }
            }
            Some(MstCmd::Gather) => {
                for te in self.local.drain(..) {
                    out.send(ctx.large.expect("checked"), MstNetMsg::Ship(te));
                }
                self.wave = None;
            }
            Some(MstCmd::Sample { p_bits, reps }) => {
                // The legacy per-machine draw order: repetition-major over
                // the shard — bit-identical RNG consumption.
                let p = f64::from_bits(p_bits);
                self.samples = (0..reps as usize)
                    .map(|_| {
                        let mut keep = Vec::new();
                        for te in &self.local {
                            if ctx.rng().random_bool(p) {
                                keep.push(*te);
                            }
                        }
                        keep
                    })
                    .collect();
                let counts: Vec<u64> = self.samples.iter().map(|s| s.len() as u64).collect();
                out.send(ctx.large.expect("checked"), MstNetMsg::SampleCounts(counts));
            }
            Some(MstCmd::ChooseRep { rep }) => {
                let large = ctx.large.expect("checked");
                let samples = std::mem::take(&mut self.samples);
                for te in &samples[rep as usize] {
                    out.send(large, MstNetMsg::Ship(*te));
                }
                // Request labels for this machine's current endpoints
                // (sorted and deduplicated, the legacy request shape).
                let mut endpoints: BTreeSet<VertexId> = BTreeSet::new();
                for te in &self.local {
                    endpoints.insert(te.cur.u);
                    endpoints.insert(te.cur.v);
                }
                for v in endpoints {
                    out.send(self.owners.of(&v), MstNetMsg::Need(v));
                }
            }
            None => {}
        }

        // Worker clock: relabel at wave+6 (renames took two routing hops),
        // rebuild the shard and report counts at wave+8 (pairs took two).
        if let Some((w, _k)) = self.wave {
            if ctx.round == w + 6 {
                let local = std::mem::take(&mut self.local);
                let group = crate::combinators::sender_group(ctx.mid, ctx.machines);
                for ((a, b), orig) in relabel_pairs(&local, &renames) {
                    out.send(
                        self.owners.collector_of(&(a, b), group),
                        MstNetMsg::Pair(a, b, orig),
                    );
                }
                ctx.charge(local.len() as u64);
            } else if ctx.round == w + 8 {
                // Owner role: the deduplicated pairs become the new shard
                // (sorted by pair key — the legacy owner-shard order).
                self.local = pair_dedup
                    .into_iter()
                    .map(|(pair, orig)| pair_to_tagged(pair, orig))
                    .collect();
                self.wave = None;
                out.send(
                    ctx.large.expect("checked"),
                    MstNetMsg::Count(self.local.len() as u64),
                );
            }
        }

        // KKT F-light filtering: triggered by label answers arriving.
        if !labels.is_empty() {
            let large = ctx.large.expect("checked");
            for te in &self.local {
                let (Some(lu), Some(lv)) = (labels.get(&te.cur.u), labels.get(&te.cur.v)) else {
                    out.send(large, MstNetMsg::Ship(*te));
                    continue;
                };
                if MaxEdgeLabeling::is_f_light(lu, lv, &te.cur) {
                    out.send(large, MstNetMsg::Ship(*te));
                }
            }
            ctx.charge(self.local.len() as u64);
        }

        out.into_step()
    }
}
