//! [`MinCutApproxProgram`]: the `O(1)`-round (1±ε)-approximate weighted
//! minimum cut (Theorem C.4 — Karger-style skeleton sampling over geometric
//! `λ` guesses) as a per-machine state machine.
//!
//! Same algorithm as the legacy call-style
//! [`mpc_core::ported::approximate_min_cut`], in the coordinator shape of
//! the [`combinators`](crate::combinators) layer. All randomness lives on
//! the *small* machines (one `Binomial(w, p)` draw per local edge per
//! guess, in shard order — the legacy per-machine order, via the shared
//! [`sample_binomial`]); the large machine draws nothing.
//!
//! Two execution shapes share the per-guess wave:
//!
//! * [`MinCutGuessWave`] — one λ̂ guess as a standalone instance for the
//!   [multi-program scheduler](crate::multiplex): the **default** path
//!   runs every guess interleaved in one engine run (`O(1)` combined
//!   rounds, the paper's parallel figure). Small machines sample all
//!   guesses in guess order inside the first combined round — the legacy
//!   per-machine draw order, so each guess's skeleton is bit-identical to
//!   the sequential path's — and the coordinator keeps the legacy early
//!   exit by *retiring* every guess finer than the first one to overflow
//!   its skeleton budget (finer guesses only get denser), so retired
//!   guesses ship nothing. The winning verdict is chosen by the same
//!   largest-first scan the sequential loop performs;
//! * [`MinCutApproxProgram`] — the PR 4 sequential composition (guesses
//!   issued one at a time, with the same budget rule and whole-graph
//!   fallback), kept as the equivalence oracle. Its RNG consumption stops
//!   at the successful guess, whereas the batched path necessarily samples
//!   every guess up front — results agree per instance, RNG stream
//!   positions agree only when no early exit fires.
//!
//! One guess (`Guess` broadcast at round `R`):
//!
//! | round | who | does |
//! |------:|-----|------|
//! | R+1   | smalls | sample the skeleton shard, report its size |
//! | R+2   | large  | abort to the fallback (over budget) or request the shard |
//! | R+3   | smalls | ship `(edge, multiplicity)` pairs |
//! | R+4   | large  | connectivity + Stoer–Wagner verdict; estimate, next guess, or fallback |

use crate::combinators::{Outbox, RoleProgram};
use crate::machine::{MachineCtx, StepOutcome};
use mpc_core::ported::mincut_approx::{
    c_sample_for, evaluate_skeleton, lambda_guesses, sample_binomial, skeleton_budget,
    ApproxMinCut, SkeletonVerdict,
};
use mpc_graph::Edge;
use mpc_runtime::{Cluster, MachineId, Payload, ShardedVec};
use std::sync::Arc;

/// Phase commands broadcast by the large machine.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum XCutCmd {
    /// Sample a skeleton under this `λ̂` guess, report its size.
    Guess {
        /// The current geometric guess for λ.
        guess: u64,
    },
    /// The skeleton fits: ship it to the large machine.
    Ship,
    /// Every guess failed (or oversampled): ship the whole shard.
    SendAll,
    /// The run is over; halt.
    Finish,
}

/// Messages of the approximate min-cut program.
#[derive(Clone, Copy, Debug)]
pub enum XCutNetMsg {
    /// Large → smalls: phase command.
    Cmd(XCutCmd),
    /// Small → large: total edge weight of this machine's shard.
    WeightSum(u64),
    /// Small → large: skeleton shard size under the current guess.
    Count(u64),
    /// Small → large: a skeleton edge with its sampled multiplicity.
    Skel(Edge, u32),
    /// Small → large: a raw input edge (fallback).
    AllEdge(Edge),
}

impl Payload for XCutNetMsg {
    fn words(&self) -> usize {
        match self {
            XCutNetMsg::Cmd(XCutCmd::Guess { .. }) => 2,
            XCutNetMsg::Cmd(_) => 1,
            XCutNetMsg::WeightSum(_) | XCutNetMsg::Count(_) => 1,
            XCutNetMsg::Skel(e, _) => 1 + e.words(),
            XCutNetMsg::AllEdge(e) => e.words(),
        }
    }
}

/// What the large machine is waiting for.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum LPhase {
    /// Shard weight sums arrive at round 1.
    Weights,
    /// `Guess` issued: skeleton sizes arrive at `issued + 2`.
    Count { issued: u64 },
    /// `Ship` issued: the skeleton arrives at `issued + 2`.
    Skeleton { issued: u64 },
    /// `SendAll` issued: the whole graph arrives at `issued + 2`.
    Fallback { issued: u64 },
    /// Finish broadcast; halt on the next step.
    Done,
}

/// Per-machine state of the approximate min-cut program.
#[derive(Clone)]
pub struct MinCutApproxProgram {
    n: usize,
    /// `c = 3·ln n / ε²`, identical on every machine (same formula, same
    /// inputs), so smalls derive the sampling probability from the
    /// broadcast guess alone.
    c_sample: f64,
    // ---- small-machine state ----
    input: Vec<Edge>,
    /// The sampled skeleton shard (built on `Guess`, shipped on `Ship`).
    skeleton: Vec<(Edge, u32)>,
    // ---- large-machine state ----
    phase: LPhase,
    guesses: Vec<u64>,
    guess_idx: usize,
    /// Round the current guess was issued (for the parallel-rounds figure).
    guess_issued: u64,
    parallel_rounds: u64,
    /// Set on the large machine when it halts.
    pub result: Option<ApproxMinCut>,
}

impl MinCutApproxProgram {
    /// Builds one program per machine over the sharded input edges.
    pub fn for_cluster(
        cluster: &Cluster,
        n: usize,
        edges: &ShardedVec<Edge>,
        epsilon: f64,
    ) -> Vec<Self> {
        assert!(
            (0.0..1.0).contains(&epsilon) && epsilon > 0.0,
            "epsilon in (0,1)"
        );
        let large = cluster.large().expect("min cut requires a large machine");
        assert!(
            cluster.machines() > 1,
            "min cut requires a large machine and small machines"
        );
        assert!(
            edges.shard(large).is_empty(),
            "engine programs expect the input on the small machines only \
             (see common::distribute_edges); the large machine's shard would \
             be silently ignored"
        );
        let c_sample = c_sample_for(n, epsilon);
        (0..cluster.machines())
            .map(|mid| MinCutApproxProgram {
                n,
                c_sample,
                input: edges.shard(mid).to_vec(),
                skeleton: Vec::new(),
                phase: LPhase::Weights,
                guesses: Vec::new(),
                guess_idx: 0,
                guess_issued: 0,
                parallel_rounds: 0,
                result: None,
            })
            .collect()
    }

    /// The sampling probability of guess `g`.
    fn p_of(&self, g: u64) -> f64 {
        (self.c_sample / g as f64).min(1.0)
    }

    /// Issues the next guess, or the fallback when the guesses ran out —
    /// the legacy loop head.
    fn advance(&mut self, ctx: &MachineCtx<'_>, out: &mut Outbox<XCutNetMsg>) {
        if self.guess_idx < self.guesses.len() {
            let guess = self.guesses[self.guess_idx];
            out.broadcast(
                ctx.small_ids_iter(),
                XCutNetMsg::Cmd(XCutCmd::Guess { guess }),
            );
            self.guess_issued = ctx.round;
            self.phase = LPhase::Count { issued: ctx.round };
        } else {
            out.broadcast(ctx.small_ids_iter(), XCutNetMsg::Cmd(XCutCmd::SendAll));
            self.phase = LPhase::Fallback { issued: ctx.round };
        }
    }

    fn finish(&mut self, ctx: &MachineCtx<'_>, out: &mut Outbox<XCutNetMsg>, result: ApproxMinCut) {
        self.result = Some(result);
        self.phase = LPhase::Done;
        out.broadcast(ctx.small_ids_iter(), XCutNetMsg::Cmd(XCutCmd::Finish));
    }
}

/// What one batched λ̂ guess concluded on the large machine.
#[derive(Clone, Debug, PartialEq)]
pub enum GuessOutcome {
    /// The sampled skeleton overflowed the (solo-capacity) budget before
    /// shipping — the legacy abort: every finer guess is pointless.
    OverBudget,
    /// The skeleton was shipped and judged.
    Judged {
        /// The Stoer–Wagner / connectivity verdict on the skeleton.
        verdict: SkeletonVerdict,
        /// Skeleton edge count (the figure the result reports).
        skeleton_edges: usize,
    },
}

/// One λ̂ guess of the Theorem C.4 estimator as a standalone instance for
/// the [multi-program scheduler](crate::multiplex).
///
/// Wave shape (combined-round clock): smalls sample + report counts at
/// round 0, the large machine budget-checks at round 1 (over budget →
/// [`GuessOutcome::OverBudget`], halt — the coordinator's controller then
/// retires every finer guess), smalls ship at round 2, the large machine
/// judges at round 3. Small machines halt whenever they have nothing in
/// flight, so a guess that is never shipped costs zero traffic after its
/// count report.
#[derive(Clone)]
pub struct MinCutGuessWave {
    n: usize,
    c_sample: f64,
    /// This instance's λ̂ guess.
    pub guess: u64,
    input: Arc<[Edge]>,
    skeleton: Vec<(Edge, u32)>,
    /// Rounds tracked by the large machine: the round `Ship` was issued.
    ship_issued: Option<u64>,
    /// Set on the large machine when the guess resolves.
    pub outcome: Option<GuessOutcome>,
}

impl MinCutGuessWave {
    /// One machine's half of a single guess wave.
    pub fn new(n: usize, c_sample: f64, guess: u64, input: Arc<[Edge]>) -> Self {
        MinCutGuessWave {
            n,
            c_sample,
            guess,
            input,
            skeleton: Vec::new(),
            ship_issued: None,
            outcome: None,
        }
    }

    /// The sampling probability of this guess.
    fn p(&self) -> f64 {
        (self.c_sample / self.guess as f64).min(1.0)
    }
}

impl RoleProgram for MinCutGuessWave {
    type Message = XCutNetMsg;

    fn snapshot(&self) -> Option<Self> {
        Some(self.clone())
    }

    fn large_step(
        &mut self,
        ctx: &MachineCtx<'_>,
        inbox: Vec<(MachineId, XCutNetMsg)>,
    ) -> StepOutcome<XCutNetMsg> {
        if self.outcome.is_some() {
            return StepOutcome::Halt;
        }
        match self.ship_issued {
            None => {
                if ctx.round == 0 {
                    // Counts land next round.
                    return StepOutcome::idle();
                }
                let total: u64 = inbox
                    .iter()
                    .filter_map(|(_, m)| match m {
                        XCutNetMsg::Count(c) => Some(*c),
                        _ => None,
                    })
                    .sum();
                // `ctx.capacity` is the solo capacity (the multiplexer
                // snapshots it before the combined-run factor is applied),
                // so the budget rule is bit-identical to a solo run.
                if total > skeleton_budget(ctx.capacity) {
                    self.outcome = Some(GuessOutcome::OverBudget);
                    return StepOutcome::Halt;
                }
                let mut out = Outbox::new();
                out.broadcast(ctx.small_ids_iter(), XCutNetMsg::Cmd(XCutCmd::Ship));
                self.ship_issued = Some(ctx.round);
                out.into_step()
            }
            Some(issued) => {
                if ctx.round < issued + 2 {
                    // The skeleton is still in flight (possibly empty, so
                    // stay on the clock rather than waiting for mail).
                    return StepOutcome::idle();
                }
                let sk: Vec<(Edge, u32)> = inbox
                    .into_iter()
                    .filter_map(|(_, m)| match m {
                        XCutNetMsg::Skel(e, c) => Some((e, c)),
                        _ => None,
                    })
                    .collect();
                ctx.charge(sk.len() as u64 * 3);
                let verdict = evaluate_skeleton(self.n, &sk, self.c_sample, self.p());
                self.outcome = Some(GuessOutcome::Judged {
                    verdict,
                    skeleton_edges: sk.len(),
                });
                StepOutcome::Halt
            }
        }
    }

    fn small_step(
        &mut self,
        ctx: &MachineCtx<'_>,
        inbox: Vec<(MachineId, XCutNetMsg)>,
    ) -> StepOutcome<XCutNetMsg> {
        let large = ctx.large.expect("batched min cut requires a large machine");
        let mut out = Outbox::new();
        if ctx.round == 0 {
            // One Binomial(w, p) draw per edge in shard order; the
            // multiplexer steps instances in guess order, so the machine's
            // stream is consumed guess-major — the legacy order.
            let p = self.p();
            for e in self.input.iter() {
                let copies = sample_binomial(&mut ctx.rng(), e.w, p);
                if copies > 0 {
                    self.skeleton.push((*e, copies));
                }
            }
            ctx.charge(self.input.len() as u64);
            out.send(large, XCutNetMsg::Count(self.skeleton.len() as u64));
            return out.into_step();
        }
        let ship = inbox
            .iter()
            .any(|(_, m)| matches!(m, XCutNetMsg::Cmd(XCutCmd::Ship)));
        if ship {
            for &(e, c) in &self.skeleton {
                out.send(large, XCutNetMsg::Skel(e, c));
            }
            return out.into_step();
        }
        // Nothing in flight for this guess on this machine: sleep (a later
        // `Ship` would reactivate, a retired guess never will).
        StepOutcome::Halt
    }
}

/// The whole-graph fallback of Theorem C.4 (every guess failed or the
/// budget was hit): gather the input to the large machine and solve
/// locally — the engine twin of the legacy `xcut.fallback` gather, run as
/// a short second engine pass only when the batched guesses demand it.
#[derive(Clone)]
pub struct XCutFallback {
    n: usize,
    input: Arc<[Edge]>,
    /// Set on the large machine: `(estimate, gathered edge count)`.
    pub result: Option<(f64, usize)>,
}

impl XCutFallback {
    /// One machine's half of the fallback gather.
    pub fn new(n: usize, input: Arc<[Edge]>) -> Self {
        XCutFallback {
            n,
            input,
            result: None,
        }
    }
}

impl RoleProgram for XCutFallback {
    type Message = XCutNetMsg;

    fn snapshot(&self) -> Option<Self> {
        Some(self.clone())
    }

    fn large_step(
        &mut self,
        ctx: &MachineCtx<'_>,
        inbox: Vec<(MachineId, XCutNetMsg)>,
    ) -> StepOutcome<XCutNetMsg> {
        if ctx.round == 0 {
            return StepOutcome::idle();
        }
        let all: Vec<Edge> = inbox
            .into_iter()
            .filter_map(|(_, m)| match m {
                XCutNetMsg::AllEdge(e) => Some(e),
                _ => None,
            })
            .collect();
        ctx.charge(all.len() as u64 * 2);
        let g = mpc_graph::Graph::new(self.n, all);
        let est = mpc_graph::mincut::min_cut(&g).map_or(0.0, |m| m.weight as f64);
        self.result = Some((est, g.m()));
        StepOutcome::Halt
    }

    fn small_step(
        &mut self,
        ctx: &MachineCtx<'_>,
        _inbox: Vec<(MachineId, XCutNetMsg)>,
    ) -> StepOutcome<XCutNetMsg> {
        if ctx.round > 0 {
            return StepOutcome::Halt;
        }
        let large = ctx.large.expect("batched min cut requires a large machine");
        let mut out = Outbox::new();
        for e in self.input.iter() {
            out.send(large, XCutNetMsg::AllEdge(*e));
        }
        out.into_step()
    }
}

impl RoleProgram for MinCutApproxProgram {
    type Message = XCutNetMsg;

    fn snapshot(&self) -> Option<Self> {
        Some(self.clone())
    }

    fn large_step(
        &mut self,
        ctx: &MachineCtx<'_>,
        inbox: Vec<(MachineId, XCutNetMsg)>,
    ) -> StepOutcome<XCutNetMsg> {
        let mut out = Outbox::new();
        match self.phase {
            LPhase::Weights => {
                if ctx.round == 1 {
                    let total_weight: u64 = inbox
                        .iter()
                        .filter_map(|(_, m)| match m {
                            XCutNetMsg::WeightSum(w) => Some(*w),
                            _ => None,
                        })
                        .sum();
                    self.guesses = lambda_guesses(total_weight);
                    self.advance(ctx, &mut out);
                }
            }
            LPhase::Count { issued } => {
                if ctx.round == issued + 2 {
                    let total: u64 = inbox
                        .iter()
                        .filter_map(|(_, m)| match m {
                            XCutNetMsg::Count(c) => Some(*c),
                            _ => None,
                        })
                        .sum();
                    let budget = skeleton_budget(ctx.capacity);
                    if total > budget {
                        // Finer guesses only get denser: abort to the
                        // fallback (the legacy `break`).
                        self.parallel_rounds =
                            self.parallel_rounds.max(ctx.round - self.guess_issued);
                        self.guess_idx = self.guesses.len();
                        self.advance(ctx, &mut out);
                    } else {
                        out.broadcast(ctx.small_ids_iter(), XCutNetMsg::Cmd(XCutCmd::Ship));
                        self.phase = LPhase::Skeleton { issued: ctx.round };
                    }
                }
            }
            LPhase::Skeleton { issued } => {
                if ctx.round == issued + 2 {
                    let sk: Vec<(Edge, u32)> = inbox
                        .into_iter()
                        .filter_map(|(_, m)| match m {
                            XCutNetMsg::Skel(e, c) => Some((e, c)),
                            _ => None,
                        })
                        .collect();
                    ctx.charge(sk.len() as u64 * 3);
                    self.parallel_rounds = self.parallel_rounds.max(ctx.round - self.guess_issued);
                    let guess = self.guesses[self.guess_idx];
                    let p = self.p_of(guess);
                    match evaluate_skeleton(self.n, &sk, self.c_sample, p) {
                        SkeletonVerdict::Disconnected | SkeletonVerdict::NotConcentrated => {
                            self.guess_idx += 1;
                            self.advance(ctx, &mut out);
                        }
                        SkeletonVerdict::Estimate(estimate) => {
                            let result = ApproxMinCut {
                                estimate,
                                lambda_guess: guess,
                                skeleton_edges: sk.len(),
                                parallel_rounds: self.parallel_rounds,
                            };
                            self.finish(ctx, &mut out, result);
                        }
                    }
                }
            }
            LPhase::Fallback { issued } => {
                if ctx.round == issued + 2 {
                    let all: Vec<Edge> = inbox
                        .into_iter()
                        .filter_map(|(_, m)| match m {
                            XCutNetMsg::AllEdge(e) => Some(e),
                            _ => None,
                        })
                        .collect();
                    ctx.charge(all.len() as u64 * 2);
                    let g = mpc_graph::Graph::new(self.n, all);
                    let est = mpc_graph::mincut::min_cut(&g).map_or(0.0, |m| m.weight as f64);
                    let result = ApproxMinCut {
                        estimate: est,
                        lambda_guess: 1,
                        skeleton_edges: g.m(),
                        parallel_rounds: self.parallel_rounds,
                    };
                    self.finish(ctx, &mut out, result);
                }
            }
            LPhase::Done => return StepOutcome::Halt,
        }
        out.into_step()
    }

    fn small_step(
        &mut self,
        ctx: &MachineCtx<'_>,
        inbox: Vec<(MachineId, XCutNetMsg)>,
    ) -> StepOutcome<XCutNetMsg> {
        let mut out = Outbox::new();
        let large = ctx.large.expect("checked in for_cluster");

        if ctx.round == 0 {
            let sum: u64 = self.input.iter().map(|e| e.w).sum();
            out.send(large, XCutNetMsg::WeightSum(sum));
        }

        let cmd = inbox.into_iter().find_map(|(_, m)| match m {
            XCutNetMsg::Cmd(c) => Some(c),
            _ => None,
        });

        match cmd {
            Some(XCutCmd::Finish) => return StepOutcome::Halt,
            Some(XCutCmd::Guess { guess }) => {
                // One Binomial(w, p) draw per edge, in shard order — the
                // legacy per-machine draw order (shared sampler).
                let p = self.p_of(guess);
                self.skeleton.clear();
                for e in &self.input {
                    let copies = sample_binomial(&mut ctx.rng(), e.w, p);
                    if copies > 0 {
                        self.skeleton.push((*e, copies));
                    }
                }
                ctx.charge(self.input.len() as u64);
                out.send(large, XCutNetMsg::Count(self.skeleton.len() as u64));
            }
            Some(XCutCmd::Ship) => {
                for &(e, c) in &self.skeleton {
                    out.send(large, XCutNetMsg::Skel(e, c));
                }
            }
            Some(XCutCmd::SendAll) => {
                for e in &self.input {
                    out.send(large, XCutNetMsg::AllEdge(*e));
                }
            }
            None => {}
        }

        out.into_step()
    }
}
