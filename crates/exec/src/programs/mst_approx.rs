//! [`MstApproxProgram`]: the `O(1)`-round (1+ε)-approximate MST weight
//! (Theorem C.2 — the CRT/AGM estimator over geometric weight thresholds)
//! as a per-machine state machine.
//!
//! Same algorithm as the legacy call-style
//! [`mpc_core::ported::approximate_mst_weight`]: one sketch-connectivity
//! instance (Theorem C.1) per threshold `τ_j = (1+ε)^j`, each the exact
//! 3-round wave of [`ConnectivityProgram`](crate::programs::ConnectivityProgram)
//! re-keyed onto a per-wave clock — the large machine draws one sketch seed
//! per threshold (the legacy draw order; small machines draw nothing), the
//! smalls sketch their weight-filtered shards, hash-owners merge by
//! linearity, and the large machine runs sketch-Borůvka locally.
//!
//! Two execution shapes share that wave:
//!
//! * [`MstApproxWave`] — one threshold as a standalone instance for the
//!   [multi-program scheduler](crate::multiplex): the **default** path runs
//!   all waves interleaved in one engine run (`O(1)` combined rounds, the
//!   paper's parallel figure), with the per-wave seeds pre-drawn by the
//!   batched adapter in the legacy threshold order so results *and* RNG
//!   stream positions stay bit-identical to the sequential composition;
//! * [`MstApproxProgram`] — the PR 4 sequential composition (one wave
//!   after another inside a single program), kept as the equivalence
//!   oracle the batched path is tested against.
//!
//! One wave (`Wave` broadcast at round `W`):
//!
//! | round | who | does |
//! |------:|-----|------|
//! | W+1   | smalls | sketch edges of weight `≤ τ`, partials → hash-owners |
//! | W+2   | owners | sum partials per `(phase, vertex)` key |
//! | W+3   | large  | sketch-Borůvka; record `c_τ`; next wave or estimate |

use crate::combinators::{Outbox, RoleProgram};
use crate::machine::{MachineCtx, StepOutcome};
use mpc_core::ported::mst_approx::{estimate_from_counts, geometric_thresholds, MstApprox};
use mpc_graph::Edge;
use mpc_runtime::{Cluster, MachineId, Payload, ShardedVec};
use mpc_sketch::{sketch_connectivity, SketchFamily, SparseSketch, VertexSketch};
use rand::Rng;
use std::collections::BTreeMap;
use std::sync::Arc;

/// Messages of the MST-weight estimator program.
#[derive(Clone, Debug)]
pub enum MstApproxNetMsg {
    /// Small → large: maximum edge weight of this machine's shard.
    MaxW(u64),
    /// Large → smalls: run one connectivity wave at this threshold with
    /// this sketch-family seed.
    Wave(u64, u64),
    /// A (partial or merged) sparse sketch for key `(phase << 32) | vertex`.
    Partial(u64, SparseSketch),
    /// Large → smalls: the run is over; halt.
    Finish,
}

impl Payload for MstApproxNetMsg {
    fn words(&self) -> usize {
        match self {
            MstApproxNetMsg::MaxW(_) | MstApproxNetMsg::Finish => 1,
            MstApproxNetMsg::Wave(_, _) => 2,
            MstApproxNetMsg::Partial(_, s) => 1 + s.words(),
        }
    }
}

/// What the large machine is waiting for.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum LPhase {
    /// Shard weight maxima arrive at round 1.
    MaxW,
    /// `Wave` issued: merged sketches arrive at `issued + 3`.
    Wave { issued: u64 },
    /// Finish broadcast; halt on the next step.
    Done,
}

/// Per-machine state of the MST-weight estimator program.
#[derive(Clone)]
pub struct MstApproxProgram {
    n: usize,
    /// Sketch-Borůvka phases (`ConnectivityConfig::for_n`, both paths).
    phases: usize,
    /// The estimator's ε (the geometric grid's spacing).
    epsilon: f64,
    owners: Vec<MachineId>,
    // ---- small-machine state ----
    input: Vec<Edge>,
    // ---- large-machine state ----
    phase: LPhase,
    w_max: u64,
    thresholds: Vec<u64>,
    t_idx: usize,
    /// The seed drawn for the current wave (for the dense decode).
    seed: u64,
    component_counts: Vec<usize>,
    parallel_rounds: u64,
    /// Set on the large machine when it halts.
    pub result: Option<MstApprox>,
}

impl MstApproxProgram {
    /// Builds one program per machine over the sharded input edges.
    pub fn for_cluster(
        cluster: &Cluster,
        n: usize,
        edges: &ShardedVec<Edge>,
        epsilon: f64,
    ) -> Vec<Self> {
        assert!(epsilon > 0.0, "epsilon must be positive");
        let owners = cluster.small_ids();
        let large = cluster
            .large()
            .expect("MST estimation requires a large machine");
        assert!(!owners.is_empty(), "MST estimation requires small machines");
        assert!(
            edges.shard(large).is_empty(),
            "engine programs expect the input on the small machines only \
             (see common::distribute_edges); the large machine's shard would \
             be silently ignored"
        );
        let phases = mpc_core::ported::connectivity::ConnectivityConfig::for_n(n).phases;
        (0..cluster.machines())
            .map(|mid| MstApproxProgram {
                n,
                phases,
                epsilon,
                owners: owners.clone(),
                input: edges.shard(mid).to_vec(),
                phase: LPhase::MaxW,
                w_max: 1,
                thresholds: Vec::new(),
                t_idx: 0,
                seed: 0,
                component_counts: Vec::new(),
                parallel_rounds: 0,
                result: None,
            })
            .collect()
    }

    fn owner_of(&self, key: u64) -> MachineId {
        self.owners[(key % self.owners.len() as u64) as usize]
    }

    /// Issues the next threshold wave, drawing its sketch seed — the legacy
    /// per-instance seed draw, in threshold order.
    fn issue_wave(&mut self, ctx: &MachineCtx<'_>, out: &mut Outbox<MstApproxNetMsg>) {
        let t = self.thresholds[self.t_idx];
        self.seed = ctx.rng().random();
        out.broadcast(ctx.small_ids_iter(), MstApproxNetMsg::Wave(t, self.seed));
        self.phase = LPhase::Wave { issued: ctx.round };
    }
}

/// One threshold wave of the Theorem C.2 estimator as a standalone
/// instance for the [multi-program scheduler](crate::multiplex): sketch
/// the weight-filtered shard, merge at owners, count components on the
/// large machine — three combined rounds for *every* threshold at once.
///
/// The sketch seed is baked in at construction (pre-drawn by the batched
/// adapter from the large machine's stream, one per threshold in ascending
/// threshold order — exactly the legacy draw order), so the instance draws
/// nothing at run time and the per-machine RNG positions after the batched
/// run equal the sequential composition's.
#[derive(Clone)]
pub struct MstApproxWave {
    n: usize,
    phases: usize,
    threshold: u64,
    seed: u64,
    owners: Arc<[MachineId]>,
    /// This machine's input shard, shared across the instances multiplexed
    /// onto the machine.
    input: Arc<[Edge]>,
    /// Set on the large machine when the wave completes: `c_τ`.
    pub count: Option<usize>,
}

impl MstApproxWave {
    /// One machine's half of a single threshold wave.
    pub fn new(
        n: usize,
        phases: usize,
        threshold: u64,
        seed: u64,
        owners: Arc<[MachineId]>,
        input: Arc<[Edge]>,
    ) -> Self {
        MstApproxWave {
            n,
            phases,
            threshold,
            seed,
            owners,
            input,
            count: None,
        }
    }

    fn owner_of(&self, key: u64) -> MachineId {
        self.owners[(key % self.owners.len() as u64) as usize]
    }
}

impl RoleProgram for MstApproxWave {
    type Message = MstApproxNetMsg;

    fn snapshot(&self) -> Option<Self> {
        Some(self.clone())
    }

    fn large_step(
        &mut self,
        ctx: &MachineCtx<'_>,
        inbox: Vec<(MachineId, MstApproxNetMsg)>,
    ) -> StepOutcome<MstApproxNetMsg> {
        // The wave runs a fixed clock (workers at round 0, owners at round
        // 1, this machine at round 2), so wait for the clock rather than
        // for mail — a threshold that filters out every edge still counts
        // its (all-singleton) components, like the sequential wave does.
        if ctx.round < 2 {
            return StepOutcome::idle();
        }
        if self.count.is_some() {
            return StepOutcome::Halt;
        }
        // Dense-ify the merged sketches and run sketch-Borůvka locally —
        // identical to the sequential program's wave-final step.
        let family = SketchFamily::new(self.n, self.phases, self.seed);
        let mut rows: Vec<Vec<VertexSketch>> = (0..self.phases)
            .map(|p| (0..self.n).map(|_| family.empty(p)).collect())
            .collect();
        for (_, msg) in inbox {
            if let MstApproxNetMsg::Partial(key, sparse) = msg {
                let phase = (key >> 32) as usize;
                let v = (key & 0xFFFF_FFFF) as usize;
                rows[phase][v] = family.to_dense(&sparse);
            }
        }
        ctx.charge((self.n * self.phases) as u64);
        self.count = Some(sketch_connectivity(&family, &rows, self.n).count);
        StepOutcome::Halt
    }

    fn small_step(
        &mut self,
        ctx: &MachineCtx<'_>,
        inbox: Vec<(MachineId, MstApproxNetMsg)>,
    ) -> StepOutcome<MstApproxNetMsg> {
        let mut out = Outbox::new();
        let large = ctx
            .large
            .expect("batched estimator requires a large machine");

        if ctx.round == 0 {
            // Worker role: sketch the weight-filtered shard (no seed
            // broadcast — the seed is baked in).
            let family = SketchFamily::new(self.n, self.phases, self.seed);
            let mut partials: BTreeMap<u64, SparseSketch> = BTreeMap::new();
            let mut filtered = 0u64;
            for e in self.input.iter().filter(|e| e.w <= self.threshold) {
                filtered += 1;
                for phase in 0..self.phases {
                    let ku = ((phase as u64) << 32) | e.u as u64;
                    let kv = ((phase as u64) << 32) | e.v as u64;
                    family.add_edge_sparse(partials.entry(ku).or_default(), phase, e.u, e.v);
                    family.add_edge_sparse(partials.entry(kv).or_default(), phase, e.v, e.u);
                }
            }
            ctx.charge(filtered * self.phases as u64);
            for (key, s) in partials {
                out.send(self.owner_of(key), MstApproxNetMsg::Partial(key, s));
            }
            return out.into_step();
        }

        if inbox.is_empty() {
            return StepOutcome::Halt;
        }
        // Owner role: sum partials per key (linearity), forward.
        let mut merged: BTreeMap<u64, SparseSketch> = BTreeMap::new();
        for (_src, msg) in inbox {
            if let MstApproxNetMsg::Partial(key, s) = msg {
                merged.entry(key).or_default().merge(&s);
            }
        }
        for (key, s) in merged {
            out.send(large, MstApproxNetMsg::Partial(key, s));
        }
        out.into_step()
    }
}

impl RoleProgram for MstApproxProgram {
    type Message = MstApproxNetMsg;

    fn snapshot(&self) -> Option<Self> {
        Some(self.clone())
    }

    fn large_step(
        &mut self,
        ctx: &MachineCtx<'_>,
        inbox: Vec<(MachineId, MstApproxNetMsg)>,
    ) -> StepOutcome<MstApproxNetMsg> {
        let mut out = Outbox::new();
        match self.phase {
            LPhase::MaxW => {
                if ctx.round == 1 {
                    self.w_max = inbox
                        .iter()
                        .filter_map(|(_, m)| match m {
                            MstApproxNetMsg::MaxW(w) => Some(*w),
                            _ => None,
                        })
                        .max()
                        .unwrap_or(1)
                        .max(1);
                    self.thresholds = geometric_thresholds(self.w_max, self.epsilon);
                    self.issue_wave(ctx, &mut out);
                }
            }
            LPhase::Wave { issued } => {
                if ctx.round == issued + 3 {
                    // Dense-ify the merged sketches and run sketch-Borůvka
                    // locally — the connectivity wave's final step.
                    let family = SketchFamily::new(self.n, self.phases, self.seed);
                    let mut rows: Vec<Vec<VertexSketch>> = (0..self.phases)
                        .map(|p| (0..self.n).map(|_| family.empty(p)).collect())
                        .collect();
                    for (_, msg) in inbox {
                        if let MstApproxNetMsg::Partial(key, sparse) = msg {
                            let phase = (key >> 32) as usize;
                            let v = (key & 0xFFFF_FFFF) as usize;
                            rows[phase][v] = family.to_dense(&sparse);
                        }
                    }
                    ctx.charge((self.n * self.phases) as u64);
                    let components = sketch_connectivity(&family, &rows, self.n);
                    self.component_counts.push(components.count);
                    self.parallel_rounds = self.parallel_rounds.max(ctx.round - issued);
                    self.t_idx += 1;
                    if self.t_idx < self.thresholds.len() {
                        self.issue_wave(ctx, &mut out);
                    } else {
                        let estimate = estimate_from_counts(
                            self.n,
                            self.w_max,
                            &self.thresholds,
                            &self.component_counts,
                        );
                        self.result = Some(MstApprox {
                            estimate,
                            thresholds: std::mem::take(&mut self.thresholds),
                            component_counts: std::mem::take(&mut self.component_counts),
                            parallel_rounds: self.parallel_rounds,
                        });
                        out.broadcast(ctx.small_ids_iter(), MstApproxNetMsg::Finish);
                        self.phase = LPhase::Done;
                    }
                }
            }
            LPhase::Done => return StepOutcome::Halt,
        }
        out.into_step()
    }

    fn small_step(
        &mut self,
        ctx: &MachineCtx<'_>,
        inbox: Vec<(MachineId, MstApproxNetMsg)>,
    ) -> StepOutcome<MstApproxNetMsg> {
        let mut out = Outbox::new();
        let large = ctx.large.expect("checked in for_cluster");

        if ctx.round == 0 {
            let max_w = self.input.iter().map(|e| e.w).max().unwrap_or(0);
            out.send(large, MstApproxNetMsg::MaxW(max_w));
        }

        let mut wave: Option<(u64, u64)> = None;
        let mut merged: BTreeMap<u64, SparseSketch> = BTreeMap::new();
        let mut owner_stage = false;
        for (_src, msg) in inbox {
            match msg {
                MstApproxNetMsg::Finish => return StepOutcome::Halt,
                MstApproxNetMsg::Wave(t, seed) => wave = Some((t, seed)),
                MstApproxNetMsg::Partial(key, s) => {
                    owner_stage = true;
                    merged.entry(key).or_default().merge(&s);
                }
                MstApproxNetMsg::MaxW(_) => {}
            }
        }

        // ---- owner role: sum partials per key (linearity), forward. ----
        if owner_stage {
            for (key, s) in merged {
                out.send(large, MstApproxNetMsg::Partial(key, s));
            }
        }

        // ---- worker role: sketch the weight-filtered shard. ----
        if let Some((t, seed)) = wave {
            let family = SketchFamily::new(self.n, self.phases, seed);
            let mut partials: BTreeMap<u64, SparseSketch> = BTreeMap::new();
            let mut filtered = 0u64;
            for e in self.input.iter().filter(|e| e.w <= t) {
                filtered += 1;
                for phase in 0..self.phases {
                    let ku = ((phase as u64) << 32) | e.u as u64;
                    let kv = ((phase as u64) << 32) | e.v as u64;
                    family.add_edge_sparse(partials.entry(ku).or_default(), phase, e.u, e.v);
                    family.add_edge_sparse(partials.entry(kv).or_default(), phase, e.v, e.u);
                }
            }
            ctx.charge(filtered * self.phases as u64);
            for (key, s) in partials {
                out.send(self.owner_of(key), MstApproxNetMsg::Partial(key, s));
            }
        }

        out.into_step()
    }
}
