//! Algorithms ported to the [`MachineProgram`](crate::MachineProgram)
//! execution model.
//!
//! Each port is mathematically the same algorithm as its legacy call-style
//! twin in `mpc-core` and produces **identical results** on the same
//! cluster seed (asserted by the `legacy_equivalence` tests); what changes
//! is the shape: per-machine state machines the engine can schedule
//! concurrently, instead of a loop that owns the whole cluster.

pub mod boruvka;
pub mod coloring;
pub mod connectivity;
pub mod matching;
pub mod mincut;
pub mod mincut_approx;
pub mod mis;
pub mod mst;
pub mod mst_approx;
pub mod spanner;

pub use boruvka::{BoruvkaProgram, MstMsg};
pub use coloring::{ColorCmd, ColorNetMsg, ColoringProgram};
pub use connectivity::{ConnMsg, ConnectivityProgram};
pub use matching::{MatchCmd, MatchNetMsg, MatchingProgram};
pub use mincut::{MinCutCmd, MinCutNetMsg, MinCutProgram};
pub use mincut_approx::{
    GuessOutcome, MinCutApproxProgram, MinCutGuessWave, XCutCmd, XCutFallback, XCutNetMsg,
};
pub use mis::{MisCmd, MisNetMsg, MisProgram};
pub use mst::{MstCmd, MstNetMsg, MstProgram};
pub use mst_approx::{MstApproxNetMsg, MstApproxProgram, MstApproxWave};
pub use spanner::{SpannerNetMsg, SpannerProgram};
