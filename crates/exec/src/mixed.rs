//! Type-erased mixed-program waves: different algorithms in one run.
//!
//! [`Multiplexed`](crate::Multiplexed) interleaves many instances of the
//! *same* program `P` into one bulk-synchronous run. The service layer
//! (DESIGN.md §2.8) needs the heterogeneous version of that: a spanner, a
//! matching, and a min cut sharing one engine run, admitted and retired
//! independently. [`MixedWave`] is that scheduler. Each job owns a *lane*
//! per machine — a boxed, type-erased program plus a private per-job RNG
//! stream — and every message crosses the wire as a [`MixedMsg`]: a job
//! tag around an [`ErasedMsg`] box. Tags are free (like
//! [`Mux`](crate::Mux), the tag is bookkeeping the paper's model does not
//! charge); the boxed payload reports its true word size, so capacity
//! accounting is exactly the sum of the lanes' solo traffic.
//!
//! Determinism: lanes step in admission order, each against its own RNG
//! (minted via [`mpc_runtime::machine_rng`] from the job's seed), its own
//! program-local round clock (`ctx.round - base_round`), and the *solo*
//! capacity snapshotted before any combined-round scaling — so a job's
//! execution inside a mixed wave is bit-identical to the same job run
//! alone on a cluster seeded with its job seed.

use crate::machine::{MachineCtx, MachineProgram, StepOutcome};
use mpc_runtime::{Cluster, MachineId, Payload};
use rand::rngs::SmallRng;
use std::any::Any;

// ---------------------------------------------------------------------------
// Message erasure
// ---------------------------------------------------------------------------

/// Object-safe view of a [`Payload`] message: size, clone, and downcast.
trait AnyMsg: Send {
    fn words_dyn(&self) -> usize;
    fn clone_box(&self) -> Box<dyn AnyMsg>;
    fn into_any(self: Box<Self>) -> Box<dyn Any + Send>;
}

impl<M: Payload + Send + 'static> AnyMsg for M {
    fn words_dyn(&self) -> usize {
        self.words()
    }
    fn clone_box(&self) -> Box<dyn AnyMsg> {
        Box::new(self.clone())
    }
    fn into_any(self: Box<Self>) -> Box<dyn Any + Send> {
        self
    }
}

/// A boxed message of some concrete [`Payload`] type. Words delegate to
/// the payload inside, so erasure is invisible to capacity accounting.
pub struct ErasedMsg(Box<dyn AnyMsg>);

impl ErasedMsg {
    /// Boxes a concrete message.
    pub fn new<M: Payload + Send + 'static>(msg: M) -> Self {
        ErasedMsg(Box::new(msg))
    }

    /// Recovers the concrete message, panicking on a type mismatch (a
    /// mismatch means two lanes shared a job tag — a scheduler bug, not a
    /// recoverable condition).
    fn downcast<M: Payload + Send + 'static>(self) -> M {
        *self
            .0
            .into_any()
            .downcast::<M>()
            .expect("mixed-wave message arrived at a lane of a different program type")
    }
}

impl Clone for ErasedMsg {
    fn clone(&self) -> Self {
        ErasedMsg(self.0.clone_box())
    }
}

impl Payload for ErasedMsg {
    fn words(&self) -> usize {
        self.0.words_dyn()
    }
}

/// One wave message: the owning job's tag around the erased payload. The
/// tag is free, matching [`Mux`](crate::Mux).
#[derive(Clone)]
pub struct MixedMsg {
    /// The job whose lane this message belongs to.
    pub job: u64,
    msg: ErasedMsg,
}

impl Payload for MixedMsg {
    fn words(&self) -> usize {
        self.msg.words()
    }
}

// ---------------------------------------------------------------------------
// Program erasure
// ---------------------------------------------------------------------------

/// Object-safe view of a [`MachineProgram`]: step on erased messages,
/// snapshot behind a box, and downcast back out for result extraction.
///
/// Blanket-implemented for every `'static` program, so
/// [`erase`] is the only conversion a caller needs.
pub trait ErasedProgram: Send {
    /// [`MachineProgram::step`] with boxed messages on both sides.
    fn step_erased(
        &mut self,
        ctx: &MachineCtx<'_>,
        inbox: Vec<(MachineId, ErasedMsg)>,
    ) -> StepOutcome<ErasedMsg>;

    /// [`MachineProgram::snapshot`] behind a box (`None` opts the lane —
    /// and with it the whole wave — out of checkpointing).
    fn snapshot_erased(&self) -> Option<Box<dyn ErasedProgram>>;

    /// [`MachineProgram::state_words`].
    fn state_words_erased(&self) -> usize;

    /// Downcast support for result extraction.
    fn into_any(self: Box<Self>) -> Box<dyn Any>;
}

impl<P> ErasedProgram for P
where
    P: MachineProgram + 'static,
    P::Message: 'static,
{
    fn step_erased(
        &mut self,
        ctx: &MachineCtx<'_>,
        inbox: Vec<(MachineId, ErasedMsg)>,
    ) -> StepOutcome<ErasedMsg> {
        let inbox = inbox
            .into_iter()
            .map(|(src, msg)| (src, msg.downcast::<P::Message>()))
            .collect();
        match self.step(ctx, inbox) {
            StepOutcome::Halt => StepOutcome::Halt,
            StepOutcome::Send(msgs) => StepOutcome::Send(
                msgs.into_iter()
                    .map(|(dst, msg)| (dst, ErasedMsg::new(msg)))
                    .collect(),
            ),
        }
    }

    fn snapshot_erased(&self) -> Option<Box<dyn ErasedProgram>> {
        self.snapshot()
            .map(|p| Box::new(p) as Box<dyn ErasedProgram>)
    }

    fn state_words_erased(&self) -> usize {
        self.state_words()
    }

    fn into_any(self: Box<Self>) -> Box<dyn Any> {
        self
    }
}

/// Boxes a concrete program for admission into a [`MixedWave`].
pub fn erase<P>(program: P) -> Box<dyn ErasedProgram>
where
    P: MachineProgram + 'static,
    P::Message: 'static,
{
    Box::new(program)
}

/// Recovers the concrete program from an extracted lane, panicking on a
/// type mismatch (the extractor and builder are paired per job, so a
/// mismatch is a scheduler bug).
pub fn downcast_program<P: MachineProgram + 'static>(boxed: Box<dyn ErasedProgram>) -> P {
    *boxed
        .into_any()
        .downcast::<P>()
        .expect("mixed-wave lane held a different program type than its extractor expects")
}

// ---------------------------------------------------------------------------
// The wave
// ---------------------------------------------------------------------------

/// One job's per-machine lane: the erased program, its private RNG
/// stream, its program-local round origin, and its halt vote.
struct MixedLane {
    job: u64,
    program: Box<dyn ErasedProgram>,
    rng: SmallRng,
    base_round: u64,
    halted: bool,
    /// Demux scratch, drained every step.
    inbox: Vec<(MachineId, ErasedMsg)>,
}

/// The per-machine mixed-program scheduler: any number of lanes, each a
/// different algorithm, stepped in admission order within one engine
/// round. An empty wave halts immediately; the service hook wakes the
/// machine when it admits a lane.
pub struct MixedWave {
    lanes: Vec<MixedLane>,
    /// This machine's capacity with no combined-round scaling applied —
    /// what each lane's program sees, exactly as in a solo run.
    solo_capacity: usize,
}

impl MixedWave {
    /// One empty wave per machine, snapshotting solo capacities. Call with
    /// the capacity factor at 1 (asserted), before any per-job scaling.
    pub fn for_cluster(cluster: &Cluster) -> Vec<MixedWave> {
        assert_eq!(
            cluster.capacity_factor(),
            1,
            "mixed waves must snapshot solo capacities (reset the factor first)"
        );
        (0..cluster.machines())
            .map(|mid| MixedWave {
                lanes: Vec::new(),
                solo_capacity: cluster.capacity(mid),
            })
            .collect()
    }

    /// Installs a job's lane on this machine. `base_round` becomes the
    /// lane's round-0 origin; `rng` is the job's private stream for this
    /// machine ([`mpc_runtime::machine_rng`] of the job seed).
    pub fn admit(
        &mut self,
        job: u64,
        program: Box<dyn ErasedProgram>,
        rng: SmallRng,
        base_round: u64,
    ) {
        debug_assert!(
            self.lanes.iter().all(|l| l.job != job),
            "job {job} admitted twice on one machine"
        );
        self.lanes.push(MixedLane {
            job,
            program,
            rng,
            base_round,
            halted: false,
            inbox: Vec::new(),
        });
    }

    /// Whether this machine's lane for `job` has voted to halt (vacuously
    /// true if the lane was never admitted or already removed). Completion
    /// additionally requires no in-flight mail tagged with the job — the
    /// service checks the slot inbox for that.
    pub fn lane_idle(&self, job: u64) -> bool {
        self.lanes
            .iter()
            .find(|l| l.job == job)
            .is_none_or(|l| l.halted)
    }

    /// Removes the lane for `job`, returning its program for extraction.
    pub fn remove(&mut self, job: u64) -> Option<Box<dyn ErasedProgram>> {
        let at = self.lanes.iter().position(|l| l.job == job)?;
        Some(self.lanes.remove(at).program)
    }

    /// Quarantines `job` on this machine: drops its lane — program, RNG
    /// stream, and any demuxed mail — without extraction. Returns whether
    /// a lane existed. The caller must also purge job-tagged messages
    /// from the machine's pending inbox
    /// ([`WaveRound::with_mail`](crate::WaveRound::with_mail)), or the
    /// next [`step`](MachineProgram::step) would panic on mail addressed
    /// to a lane that no longer exists.
    pub fn quarantine(&mut self, job: u64) -> bool {
        let at = self.lanes.iter().position(|l| l.job == job);
        if let Some(at) = at {
            self.lanes.remove(at);
        }
        at.is_some()
    }

    /// Number of lanes currently installed.
    pub fn lanes(&self) -> usize {
        self.lanes.len()
    }
}

impl MachineProgram for MixedWave {
    type Message = MixedMsg;

    fn step(
        &mut self,
        ctx: &MachineCtx<'_>,
        inbox: Vec<(MachineId, MixedMsg)>,
    ) -> StepOutcome<MixedMsg> {
        // Demux by job tag. A message for a lane this machine does not
        // hold means the service removed a job with mail still in flight —
        // a scheduler bug worth failing loudly on.
        for (src, msg) in inbox {
            let lane = self
                .lanes
                .iter_mut()
                .find(|l| l.job == msg.job)
                .unwrap_or_else(|| {
                    panic!(
                        "message for job {} with no lane on machine {}",
                        msg.job, ctx.mid
                    )
                });
            lane.inbox.push((src, msg.msg));
        }

        let mut out: Vec<(MachineId, MixedMsg)> = Vec::new();
        for lane in &mut self.lanes {
            let mail = std::mem::take(&mut lane.inbox);
            if lane.halted && mail.is_empty() {
                continue;
            }
            let sub = MachineCtx::new(
                ctx.mid,
                ctx.machines,
                ctx.large,
                self.solo_capacity,
                ctx.round - lane.base_round,
                &mut lane.rng,
                ctx.sink(),
            );
            let outcome = lane.program.step_erased(&sub, mail);
            ctx.charge(sub.charged());
            match outcome {
                StepOutcome::Halt => lane.halted = true,
                StepOutcome::Send(msgs) => {
                    lane.halted = false;
                    out.extend(
                        msgs.into_iter()
                            .map(|(dst, msg)| (dst, MixedMsg { job: lane.job, msg })),
                    );
                }
            }
        }

        if out.is_empty() && self.lanes.iter().all(|l| l.halted) {
            StepOutcome::Halt
        } else {
            StepOutcome::Send(out)
        }
    }

    fn snapshot(&self) -> Option<Self> {
        let mut lanes = Vec::with_capacity(self.lanes.len());
        for lane in &self.lanes {
            lanes.push(MixedLane {
                job: lane.job,
                program: lane.program.snapshot_erased()?,
                rng: lane.rng.clone(),
                base_round: lane.base_round,
                halted: lane.halted,
                inbox: lane.inbox.clone(),
            });
        }
        Some(MixedWave {
            lanes,
            solo_capacity: self.solo_capacity,
        })
    }

    fn state_words(&self) -> usize {
        self.lanes
            .iter()
            .map(|l| l.program.state_words_erased())
            .sum::<usize>()
            .max(1)
    }
}
