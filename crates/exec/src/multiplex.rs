//! The multi-program scheduler: N independent [`MachineProgram`] instances
//! interleaved into **one** bulk-synchronous engine run.
//!
//! The paper's Theorem C.2 estimator, the C.4 approximate min cut, and the
//! weighted-spanner reduction all consist of many *independent* MPC
//! instances (threshold waves, λ̂ guesses, weight classes) that the paper
//! runs in parallel. PR 4 ported each per-wave state machine but executed
//! the waves one after another, so measured round counts were
//! `O(waves · per-wave rounds)` instead of the theorems' parallel figure.
//! [`Multiplexed`] closes that gap:
//!
//! * each machine holds one sub-program **per instance**; every combined
//!   round it steps each live instance once, in instance order, against a
//!   sub-context that shares the machine's private RNG stream and the
//!   global round clock but reports the **solo** (single-instance)
//!   capacity — so per-instance decisions (e.g. the C.4 skeleton budget)
//!   are bit-identical to a solo run;
//! * outgoing messages are tagged with their instance id ([`Mux`]) and the
//!   union of all instances' outboxes moves through a single
//!   [`exchange_into`](mpc_runtime::Cluster::exchange_into), so the cost
//!   model is charged once per *combined* round. The tag itself is free
//!   (addressing metadata of the scheduler, like the `(src, dst)` routing
//!   words the model never charges); the combined round's word count is
//!   exactly the sum of the live instances' traffic. Callers pair the run
//!   with [`Cluster::set_capacity_factor`](mpc_runtime::Cluster::set_capacity_factor)
//!   so strict enforcement checks that sum against the aggregate budget of
//!   the interleaved instances;
//! * a per-instance halt flag mirrors the engine's machine-level
//!   halt/reactivate protocol: a halted instance is skipped (zero work,
//!   zero RNG draws, zero traffic) until a tagged message reactivates it,
//!   and the machine as a whole halts only when every instance has;
//! * an optional [`MuxController`] runs after the instances step and may
//!   **retire** instances — force-halt them and discard their pending
//!   outboxes — which is how cross-instance early exit works: when the C.4
//!   coordinator sees a guess overflow its skeleton budget, every finer
//!   guess is retired before its `Ship` command leaves the machine, so a
//!   retired instance contributes zero traffic to all later combined
//!   rounds (its small-machine halves are never reactivated).
//!
//! Determinism: the combined inbox arrives in the engine's canonical order
//! (ascending source, then send order); demultiplexing preserves that
//! order per instance, and instances step in instance-id order, so each
//! machine's RNG consumption is the instance-major order the sequential
//! composition used — which is exactly why the batched `mst-approx` and
//! `spanner-weighted` runs reproduce the legacy draws bit-for-bit.

use crate::machine::{MachineCtx, MachineProgram, StepOutcome};
use mpc_runtime::telemetry::TraceEvent;
use mpc_runtime::{Cluster, MachineId, Payload};
use std::sync::Arc;

/// An instance-tagged message: `(instance id, inner message)`.
///
/// The tag costs zero words — it is scheduler addressing metadata, so the
/// combined round's accounted traffic equals the sum of the instances'
/// solo traffic (the quantity the paper's parallel composition budgets).
#[derive(Clone, Debug, PartialEq)]
pub struct Mux<M>(pub u32, pub M);

impl<M: Payload> Payload for Mux<M> {
    fn words(&self) -> usize {
        self.1.words()
    }
}

/// One instance's slot on one machine: the sub-program plus its lifecycle
/// flags and the outbox staged this round (visible to the controller
/// before it is merged and exchanged).
pub struct MuxSlot<P: MachineProgram> {
    /// The instance's sub-program on this machine.
    pub program: P,
    halted: bool,
    retired: bool,
    outbox: Vec<(MachineId, P::Message)>,
}

impl<P: MachineProgram> MuxSlot<P> {
    /// Whether this instance has voted to halt on this machine.
    pub fn is_halted(&self) -> bool {
        self.halted
    }

    /// Whether this instance was retired by the controller.
    pub fn is_retired(&self) -> bool {
        self.retired
    }

    /// Retires the instance: discards its staged outbox and prevents any
    /// further steps. Mail addressed to a retired instance is dropped, so
    /// it contributes zero traffic and zero work to later combined rounds.
    pub fn retire(&mut self) {
        self.retired = true;
        self.halted = true;
        self.outbox.clear();
    }
}

/// Cross-instance coordination, run on a machine after all of its live
/// instances stepped in a round — the hook that implements early exit
/// across instances (typically installed on the large machine only).
/// Shared and stateless (`Arc<dyn Fn>`) so a checkpoint snapshot can carry
/// the controller along: coordinator failover (DESIGN.md §2.9) must be
/// able to restore the large machine, controller included.
pub type MuxController<P> = Arc<dyn Fn(&MachineCtx<'_>, &mut [MuxSlot<P>]) + Send + Sync>;

/// RAII wrapper for [`Cluster::set_capacity_factor`]: scales the cluster's
/// capacities for a combined (multiplexed) run and restores the solo
/// factor of 1 on drop — including when the run panics, so a caller that
/// catches the panic never observes a cluster with silently-disabled
/// strict enforcement.
pub struct CapacityFactor<'a> {
    cluster: &'a mut Cluster,
}

impl<'a> CapacityFactor<'a> {
    /// Applies `factor` (clamped to ≥ 1) for the guard's lifetime.
    pub fn scale(cluster: &'a mut Cluster, factor: usize) -> Self {
        cluster.set_capacity_factor(factor.max(1));
        CapacityFactor { cluster }
    }

    /// The scaled cluster (borrow this for the combined run).
    pub fn cluster(&mut self) -> &mut Cluster {
        self.cluster
    }
}

impl Drop for CapacityFactor<'_> {
    fn drop(&mut self) {
        self.cluster.set_capacity_factor(1);
    }
}

/// N independent program instances multiplexed onto one machine — itself a
/// [`MachineProgram`], so the ordinary [`Executor`](crate::Executor)
/// drives the combined run (serial or pooled, bit-identical either way).
pub struct Multiplexed<P: MachineProgram> {
    slots: Vec<MuxSlot<P>>,
    /// The capacity sub-programs observe: this machine's solo (factor-1)
    /// capacity, snapshotted before the combined-run capacity factor is
    /// applied to the cluster.
    solo_capacity: usize,
    controller: Option<MuxController<P>>,
    /// Per-instance inbox scratch, reused across rounds.
    inboxes: Vec<Vec<(MachineId, P::Message)>>,
}

impl<P: MachineProgram> Multiplexed<P> {
    /// Builds the per-machine multiplexed programs from per-instance
    /// program vectors: `per_instance[i][mid]` is instance `i`'s program on
    /// machine `mid` (the shape every `for_cluster` constructor produces).
    /// Capacities are snapshotted from `cluster` now, so call this *before*
    /// [`Cluster::set_capacity_factor`].
    ///
    /// # Panics
    ///
    /// Panics if the instance vectors disagree on the machine count or no
    /// instance is supplied.
    pub fn build(cluster: &Cluster, per_instance: Vec<Vec<P>>) -> Vec<Multiplexed<P>> {
        assert!(!per_instance.is_empty(), "need at least one instance");
        let machines = cluster.machines();
        for (i, progs) in per_instance.iter().enumerate() {
            assert_eq!(
                progs.len(),
                machines,
                "instance {i}: one program per machine required"
            );
        }
        let instances = per_instance.len();
        let mut columns: Vec<Multiplexed<P>> = (0..machines)
            .map(|mid| Multiplexed {
                slots: Vec::with_capacity(instances),
                solo_capacity: cluster.capacity(mid),
                controller: None,
                inboxes: (0..instances).map(|_| Vec::new()).collect(),
            })
            .collect();
        for progs in per_instance {
            for (mid, program) in progs.into_iter().enumerate() {
                columns[mid].slots.push(MuxSlot {
                    program,
                    halted: false,
                    retired: false,
                    outbox: Vec::new(),
                });
            }
        }
        columns
    }

    /// Installs the cross-instance controller on this machine.
    pub fn with_controller(mut self, controller: MuxController<P>) -> Self {
        self.controller = Some(controller);
        self
    }

    /// Number of instances multiplexed onto this machine.
    pub fn instances(&self) -> usize {
        self.slots.len()
    }

    /// Instance `i`'s sub-program on this machine.
    pub fn instance(&self, i: usize) -> &P {
        &self.slots[i].program
    }

    /// Mutable access to instance `i`'s sub-program (result extraction).
    pub fn instance_mut(&mut self, i: usize) -> &mut P {
        &mut self.slots[i].program
    }

    /// Whether instance `i` was retired on this machine.
    pub fn retired(&self, i: usize) -> bool {
        self.slots[i].retired
    }

    /// Consumes the wrapper, yielding the sub-programs in instance order.
    pub fn into_programs(self) -> Vec<P> {
        self.slots.into_iter().map(|s| s.program).collect()
    }
}

impl<P: MachineProgram> MachineProgram for Multiplexed<P> {
    type Message = Mux<P::Message>;

    fn step(
        &mut self,
        ctx: &MachineCtx<'_>,
        inbox: Vec<(MachineId, Mux<P::Message>)>,
    ) -> StepOutcome<Mux<P::Message>> {
        // Demultiplex: the combined inbox is in canonical order (ascending
        // source, send order), so each instance's slice of it is too.
        for (src, Mux(instance, msg)) in inbox {
            let i = instance as usize;
            assert!(i < self.slots.len(), "message for unknown instance {i}");
            self.inboxes[i].push((src, msg));
        }

        let mut live = 0usize;
        for (i, slot) in self.slots.iter_mut().enumerate() {
            let mail = std::mem::take(&mut self.inboxes[i]);
            if slot.retired {
                continue; // retired: mail (if any) is dropped, no step
            }
            if slot.halted && mail.is_empty() {
                continue; // idle-instance skip: zero work, zero RNG draws
            }
            live += 1;
            // The sub-context reborrows this machine's private RNG, so the
            // instances consume one stream in instance-major order, and
            // reports the solo capacity so per-instance decisions match a
            // single-instance run bit-for-bit.
            let (outcome, extra) = {
                let mut rng = ctx.rng();
                let sub = MachineCtx::new(
                    ctx.mid,
                    ctx.machines,
                    ctx.large,
                    self.solo_capacity,
                    ctx.round,
                    &mut rng,
                    ctx.sink(),
                );
                let outcome = slot.program.step(&sub, mail);
                (outcome, sub.charged())
            };
            ctx.charge(extra);
            match outcome {
                StepOutcome::Halt => slot.halted = true,
                StepOutcome::Send(msgs) => {
                    slot.halted = false;
                    slot.outbox = msgs;
                }
            }
        }

        if let Some(controller) = self.controller.clone() {
            // Snapshot retired flags (allocating only when a sink listens)
            // so controller-driven retirements become discrete events.
            let before: Vec<bool> = if ctx.tracing() {
                self.slots.iter().map(|s| s.retired).collect()
            } else {
                Vec::new()
            };
            controller(ctx, &mut self.slots);
            if ctx.tracing() {
                for (i, (slot, was)) in self.slots.iter().zip(&before).enumerate() {
                    if slot.retired && !was {
                        ctx.trace(|| TraceEvent::InstanceRetired {
                            round: ctx.round,
                            machine: ctx.mid,
                            instance: i as u32,
                        });
                    }
                }
            }
        }
        ctx.trace(|| TraceEvent::MuxRound {
            round: ctx.round,
            machine: ctx.mid,
            live,
            retired: self.slots.iter().filter(|s| s.retired).count(),
        });

        let mut all_halted = true;
        let mut out: Vec<(MachineId, Mux<P::Message>)> = Vec::new();
        for (i, slot) in self.slots.iter_mut().enumerate() {
            all_halted &= slot.halted;
            for (dst, msg) in slot.outbox.drain(..) {
                out.push((dst, Mux(i as u32, msg)));
            }
        }
        if all_halted && out.is_empty() {
            StepOutcome::Halt
        } else {
            StepOutcome::Send(out)
        }
    }

    /// A multiplexed machine checkpoints iff every instance's sub-program
    /// does. Controllers are shared, stateless closures, so the snapshot
    /// carries the same controller — a restored coordinator keeps making
    /// the same cross-instance decisions during replay.
    fn snapshot(&self) -> Option<Self> {
        let mut slots = Vec::with_capacity(self.slots.len());
        for slot in &self.slots {
            slots.push(MuxSlot {
                program: slot.program.snapshot()?,
                halted: slot.halted,
                retired: slot.retired,
                outbox: slot.outbox.clone(),
            });
        }
        Some(Multiplexed {
            slots,
            solo_capacity: self.solo_capacity,
            controller: self.controller.clone(),
            inboxes: self.inboxes.clone(),
        })
    }

    fn state_words(&self) -> usize {
        self.slots
            .iter()
            .map(|slot| slot.program.state_words())
            .sum::<usize>()
            .max(1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::driver::Executor;
    use mpc_runtime::{ClusterConfig, Topology};

    /// A two-machine ping-pong: machine 0 sends `budget` tokens to machine
    /// 1, one per round; machine 1 echoes each. Tracks everything received.
    struct PingPong {
        budget: u64,
        received: u64,
    }

    impl MachineProgram for PingPong {
        type Message = u64;

        fn step(&mut self, ctx: &MachineCtx<'_>, inbox: Vec<(MachineId, u64)>) -> StepOutcome<u64> {
            self.received += inbox.iter().map(|(_, m)| m).sum::<u64>();
            if ctx.mid == 0 {
                if ctx.round < self.budget {
                    return StepOutcome::Send(vec![(1, ctx.round + 1)]);
                }
                return StepOutcome::Halt;
            }
            if inbox.is_empty() {
                return StepOutcome::Halt;
            }
            StepOutcome::Send(inbox.into_iter().map(|(src, m)| (src, m * 10)).collect())
        }
    }

    fn two_machine_cluster() -> Cluster {
        Cluster::new(ClusterConfig::new(16, 16).topology(Topology::Custom {
            capacities: vec![1000, 1000],
            large: Some(0),
        }))
    }

    #[test]
    fn multiplexed_instances_match_solo_runs() {
        // Three instances with different budgets, interleaved.
        let budgets = [1u64, 3, 2];
        let solo: Vec<(u64, u64)> = budgets
            .iter()
            .map(|&b| {
                let mut cluster = two_machine_cluster();
                let programs = vec![
                    PingPong {
                        budget: b,
                        received: 0,
                    },
                    PingPong {
                        budget: b,
                        received: 0,
                    },
                ];
                let out = Executor::serial("solo")
                    .run(&mut cluster, programs)
                    .unwrap();
                (out.programs[0].received, out.programs[1].received)
            })
            .collect();

        let mut cluster = two_machine_cluster();
        let per_instance: Vec<Vec<PingPong>> = budgets
            .iter()
            .map(|&b| {
                vec![
                    PingPong {
                        budget: b,
                        received: 0,
                    },
                    PingPong {
                        budget: b,
                        received: 0,
                    },
                ]
            })
            .collect();
        let muxed = Multiplexed::build(&cluster, per_instance);
        let out = {
            let mut scaled = CapacityFactor::scale(&mut cluster, budgets.len());
            Executor::serial("mux")
                .run(scaled.cluster(), muxed)
                .unwrap()
        };

        // The combined run takes max(solo rounds) — budget b finishes in
        // b + 1 rounds (last echo lands at round b + 1) — not the sum.
        assert_eq!(out.rounds, 3 + 1, "combined rounds = slowest instance");
        let m0 = &out.programs[0];
        let m1 = &out.programs[1];
        for (i, &(s0, s1)) in solo.iter().enumerate() {
            assert_eq!(m0.instance(i).received, s0, "instance {i} on machine 0");
            assert_eq!(m1.instance(i).received, s1, "instance {i} on machine 1");
        }
    }

    #[test]
    fn retired_instances_contribute_zero_traffic_to_later_rounds() {
        // Two instances; the controller on machine 0 retires instance 1
        // after round 1, discarding its staged outbox — so rounds ≥ 1 carry
        // only instance 0's traffic and instance 1's peer is never
        // reactivated.
        let mut cluster = two_machine_cluster();
        let per_instance: Vec<Vec<PingPong>> = (0..2)
            .map(|_| {
                vec![
                    PingPong {
                        budget: 6,
                        received: 0,
                    },
                    PingPong {
                        budget: 6,
                        received: 0,
                    },
                ]
            })
            .collect();
        let mut muxed = Multiplexed::build(&cluster, per_instance);
        let coordinator = muxed.remove(0);
        let coordinator = coordinator.with_controller(Arc::new(
            |ctx: &MachineCtx<'_>, slots: &mut [MuxSlot<PingPong>]| {
                if ctx.round == 1 {
                    slots[1].retire();
                }
            },
        ));
        muxed.insert(0, coordinator);
        let out = {
            let mut scaled = CapacityFactor::scale(&mut cluster, 2);
            Executor::serial("retire")
                .run(scaled.cluster(), muxed)
                .unwrap()
        };

        assert!(out.programs[0].retired(1));
        // Rounds 0–1 carry both instances; from round 2 on, only instance
        // 0's token + echo (2 words) are in flight — instance 1's machine-1
        // half was never reactivated, so the retired instance contributes
        // zero words to every later combined round.
        let log = cluster.round_log();
        assert!(log[1].total_words >= 3, "both instances live at round 1");
        for rec in &log[2..] {
            assert!(
                rec.total_words <= 2,
                "retired instance leaked traffic into {}: {} words",
                rec.label,
                rec.total_words
            );
        }
        // Instance 1's machine-1 half stopped at the retirement point;
        // instance 0 ran to completion.
        assert!(out.programs[1].instance(1).received < out.programs[1].instance(0).received);
    }

    #[test]
    fn halted_instances_reactivate_on_tagged_mail() {
        // Instance 0 finishes long before instance 1; the machine as a
        // whole must stay live and instance 1's late mail must still be
        // delivered (per-instance halt mirrors machine-level halt).
        let mut cluster = two_machine_cluster();
        let per_instance = vec![
            vec![
                PingPong {
                    budget: 1,
                    received: 0,
                },
                PingPong {
                    budget: 1,
                    received: 0,
                },
            ],
            vec![
                PingPong {
                    budget: 5,
                    received: 0,
                },
                PingPong {
                    budget: 5,
                    received: 0,
                },
            ],
        ];
        let muxed = Multiplexed::build(&cluster, per_instance);
        let out = {
            let mut scaled = CapacityFactor::scale(&mut cluster, 2);
            Executor::serial("late")
                .run(scaled.cluster(), muxed)
                .unwrap()
        };
        // Instance 1 exchanged all 5 tokens even though instance 0's halves
        // halted rounds earlier.
        assert_eq!(
            out.programs[0].instance(1).received,
            (10 + 20 + 30 + 40 + 50)
        );
        assert_eq!(out.programs[1].instance(1).received, 1 + 2 + 3 + 4 + 5);
    }
}
