//! The persistent worker pool: one set of OS threads per run, not per
//! round.
//!
//! `std::thread::scope` costs a spawn + join of every worker on **every
//! round**; at hundreds of rounds that syscall traffic dominates the
//! engine's host wall-clock (see the `hotpath` bench). The pool spawns its
//! workers once per [`Executor::run`](crate::Executor::run) and drives them
//! through a condvar round barrier instead.
//!
//! Work is claimed **dynamically**: workers pull machine indices off a
//! shared atomic counter one at a time, so a straggler machine (the large
//! machine deliberately carries the heaviest per-round workload in the
//! paper's heterogeneous regime) occupies one worker while the rest drain
//! every other machine — static chunking would serialize the straggler's
//! whole chunk behind it. Dynamic claiming is still deterministic: each
//! machine's step touches only that machine's own state, so *which* worker
//! runs it (and in what order) cannot influence any output; the driver
//! folds results back in machine-id order.
//!
//! A panic inside a job is caught ([`std::panic::catch_unwind`]), parked in
//! the pool, and re-raised on the driving thread by
//! [`run_round`](PoolCore::run_round) — a panicking
//! [`MachineProgram::step`](crate::MachineProgram::step) propagates to the
//! caller instead of deadlocking the barrier.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Condvar, Mutex};
use std::thread::Scope;
use std::time::Instant;

/// A panic payload carried off a worker thread.
pub type PanicPayload = Box<dyn std::any::Any + Send + 'static>;

/// One worker's counters for one round (or, accumulated, for a whole run
/// — see [`PoolStats`]). All times are host nanoseconds.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct WorkerStats {
    /// Machine indices claimed off the shared counter.
    pub claimed: u64,
    /// Claimed machines that were active and invoked the job.
    pub stepped: u64,
    /// Claimed machines skipped because their activity flag was off.
    pub idle_skips: u64,
    /// Nanoseconds blocked at the round-start barrier.
    pub wait_ns: u64,
    /// Nanoseconds in the claim loop (stepping + skipping).
    pub busy_ns: u64,
}

/// Per-worker accounting accumulated over a whole pooled run — the
/// evidence base for the load-imbalance and barrier-wait columns in the
/// bench tables and [`RunReport`](crate::report::RunReport).
#[derive(Clone, Debug, Default, PartialEq)]
pub struct PoolStats {
    /// Pool rounds executed.
    pub rounds: u64,
    /// Run totals per worker, indexed by worker id.
    pub per_worker: Vec<WorkerStats>,
}

impl PoolStats {
    /// Folds one round's drained per-worker counters into the run totals.
    pub fn add_round(&mut self, round: &[WorkerStats]) {
        if self.per_worker.len() < round.len() {
            self.per_worker.resize(round.len(), WorkerStats::default());
        }
        for (total, r) in self.per_worker.iter_mut().zip(round) {
            total.claimed += r.claimed;
            total.stepped += r.stepped;
            total.idle_skips += r.idle_skips;
            total.wait_ns += r.wait_ns;
            total.busy_ns += r.busy_ns;
        }
        self.rounds += 1;
    }

    /// Number of workers the stats cover.
    pub fn workers(&self) -> usize {
        self.per_worker.len()
    }

    /// Total barrier-wait across all workers, in seconds.
    pub fn total_wait_seconds(&self) -> f64 {
        self.per_worker.iter().map(|w| w.wait_ns).sum::<u64>() as f64 / 1e9
    }

    /// Total claim-loop time across all workers, in seconds.
    pub fn total_busy_seconds(&self) -> f64 {
        self.per_worker.iter().map(|w| w.busy_ns).sum::<u64>() as f64 / 1e9
    }

    /// Load-imbalance ratio: the busiest worker's claim-loop time divided
    /// by the mean (1.0 = perfectly balanced; 0.0 when no work ran).
    pub fn imbalance(&self) -> f64 {
        if self.per_worker.is_empty() {
            return 0.0;
        }
        let busy: Vec<u64> = self.per_worker.iter().map(|w| w.busy_ns).collect();
        let total: u64 = busy.iter().sum();
        if total == 0 {
            return 0.0;
        }
        let mean = total as f64 / busy.len() as f64;
        *busy.iter().max().unwrap() as f64 / mean
    }
}

/// A worker's live counter cells (relaxed atomics: the coord-lock barrier
/// handshake orders every worker write before the driving thread's
/// post-round drain).
#[derive(Default)]
struct WorkerCells {
    claimed: AtomicU64,
    stepped: AtomicU64,
    idle_skips: AtomicU64,
    wait_ns: AtomicU64,
    busy_ns: AtomicU64,
}

impl WorkerCells {
    fn drain(&self) -> WorkerStats {
        WorkerStats {
            claimed: self.claimed.swap(0, Ordering::Relaxed),
            stepped: self.stepped.swap(0, Ordering::Relaxed),
            idle_skips: self.idle_skips.swap(0, Ordering::Relaxed),
            wait_ns: self.wait_ns.swap(0, Ordering::Relaxed),
            busy_ns: self.busy_ns.swap(0, Ordering::Relaxed),
        }
    }
}

/// Round-barrier state shared by the driving thread and the workers.
struct Coord {
    /// Bumped by the driving thread to release the workers into a round.
    epoch: u64,
    /// The round number workers pass to the job for the current epoch.
    round: u64,
    /// Workers that have not yet finished the current epoch.
    remaining: usize,
    /// Set once; workers exit at the next barrier.
    shutdown: bool,
}

/// The shared core of a worker pool (created once per run; workers borrow
/// it for the enclosing [`std::thread::scope`]).
pub struct PoolCore {
    items: usize,
    workers: usize,
    /// Next unclaimed machine index of the current round.
    next: AtomicUsize,
    /// Per-item activity mask: the driving thread clears entries for idle
    /// items (halted machines with empty inboxes, e.g. every machine of a
    /// retired multiplexed instance) before releasing a round, and workers
    /// skip them without invoking the job — an idle item costs one relaxed
    /// atomic load instead of a mutex claim cycle.
    active: Vec<AtomicBool>,
    coord: Mutex<Coord>,
    /// Wakes workers at a round start (and for shutdown).
    start: Condvar,
    /// Wakes the driving thread when the last worker finishes a round.
    done: Condvar,
    /// First panic caught in a job this round, if any.
    panic: Mutex<Option<PanicPayload>>,
    /// Per-worker counters, present only when telemetry asked for them —
    /// `None` keeps the claim loop free of clock reads and counter bumps.
    stats: Option<Vec<WorkerCells>>,
}

impl PoolCore {
    /// A pool that distributes `items` jobs per round over `workers`
    /// threads (callers clamp `workers` to a sensible range first).
    pub fn new(items: usize, workers: usize) -> Self {
        assert!(workers > 0, "pool needs at least one worker");
        PoolCore {
            items,
            workers,
            next: AtomicUsize::new(0),
            active: (0..items).map(|_| AtomicBool::new(true)).collect(),
            coord: Mutex::new(Coord {
                epoch: 0,
                round: 0,
                remaining: 0,
                shutdown: false,
            }),
            start: Condvar::new(),
            done: Condvar::new(),
            panic: Mutex::new(None),
            stats: None,
        }
    }

    /// Enables per-worker counters (claims, steps, idle skips, barrier-wait
    /// and claim-loop time). Off by default: the instrumented claim loop
    /// reads the clock twice per round per worker, which the zero-overhead
    /// guarantee only permits when someone is listening.
    pub fn with_stats(mut self, enabled: bool) -> Self {
        self.stats = enabled.then(|| (0..self.workers).map(|_| WorkerCells::default()).collect());
        self
    }

    /// Drains the per-worker counters accumulated since the previous drain
    /// (typically: this round's). Returns one entry per worker, or an empty
    /// vector if the pool was built without stats. Call between rounds, on
    /// the driving thread — the barrier handshake makes every worker write
    /// visible by the time [`run_round`](PoolCore::run_round) returns.
    pub fn take_round_stats(&self) -> Vec<WorkerStats> {
        match &self.stats {
            Some(cells) => cells.iter().map(WorkerCells::drain).collect(),
            None => Vec::new(),
        }
    }

    /// Number of worker threads the pool was sized for.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Marks item `i` active or idle for the next round. Must only be
    /// called between rounds (by the driving thread, before
    /// [`run_round`](PoolCore::run_round)); workers observe the flags via
    /// the same epoch handshake that publishes the round number.
    pub fn set_active(&self, i: usize, on: bool) {
        self.active[i].store(on, Ordering::Relaxed);
    }

    /// Spawns the worker threads into `scope`. `job(index, round)` steps
    /// one machine; it must be safe to call concurrently for distinct
    /// indices (each worker claims disjoint indices).
    pub fn spawn_workers<'scope, 'env, F>(
        &'scope self,
        scope: &'scope Scope<'scope, 'env>,
        job: &'scope F,
    ) where
        F: Fn(usize, u64) + Sync,
    {
        for w in 0..self.workers {
            scope.spawn(move || self.worker(w, job));
        }
    }

    fn worker<F: Fn(usize, u64) + Sync>(&self, w: usize, job: &F) {
        let mut seen_epoch = 0u64;
        loop {
            // Clock reads happen only on the instrumented pool; the
            // uninstrumented claim loop is identical to the original.
            let wait_start = self.stats.as_ref().map(|_| Instant::now());
            let round = {
                let mut c = self.coord.lock().unwrap();
                while !c.shutdown && c.epoch == seen_epoch {
                    c = self.start.wait(c).unwrap();
                }
                if c.shutdown {
                    return;
                }
                seen_epoch = c.epoch;
                c.round
            };
            let cells = self.stats.as_ref().map(|cells| {
                let cell = &cells[w];
                if let Some(t0) = wait_start {
                    cell.wait_ns
                        .fetch_add(t0.elapsed().as_nanos() as u64, Ordering::Relaxed);
                }
                (cell, Instant::now())
            });
            // Dynamic claiming: one machine at a time off the shared
            // counter, so no worker ever queues behind a straggler.
            loop {
                let i = self.next.fetch_add(1, Ordering::Relaxed);
                if i >= self.items {
                    break;
                }
                if let Some((cell, _)) = &cells {
                    cell.claimed.fetch_add(1, Ordering::Relaxed);
                }
                if !self.active[i].load(Ordering::Relaxed) {
                    if let Some((cell, _)) = &cells {
                        cell.idle_skips.fetch_add(1, Ordering::Relaxed);
                    }
                    continue;
                }
                if let Some((cell, _)) = &cells {
                    cell.stepped.fetch_add(1, Ordering::Relaxed);
                }
                // Catching inside the claim loop keeps the barrier sound:
                // the worker still reports completion, and the driving
                // thread re-raises the payload after the round.
                if let Err(payload) = catch_unwind(AssertUnwindSafe(|| job(i, round))) {
                    let mut slot = self.panic.lock().unwrap();
                    if slot.is_none() {
                        *slot = Some(payload);
                    }
                }
            }
            if let Some((cell, busy_start)) = &cells {
                cell.busy_ns
                    .fetch_add(busy_start.elapsed().as_nanos() as u64, Ordering::Relaxed);
            }
            let mut c = self.coord.lock().unwrap();
            c.remaining -= 1;
            if c.remaining == 0 {
                self.done.notify_all();
            }
        }
    }

    /// Runs one round: releases the workers, waits for all of them, and
    /// re-raises the first panic any job hit.
    ///
    /// # Errors
    ///
    /// Returns the caught panic payload; the caller is expected to
    /// [`std::panic::resume_unwind`] it after shutting the pool down.
    pub fn run_round(&self, round: u64) -> Result<(), PanicPayload> {
        // The claim counter reset happens-before any worker claims: workers
        // only start after observing the epoch bump under the coord lock.
        self.next.store(0, Ordering::Relaxed);
        {
            let mut c = self.coord.lock().unwrap();
            c.epoch += 1;
            c.round = round;
            c.remaining = self.workers;
            self.start.notify_all();
        }
        let mut c = self.coord.lock().unwrap();
        while c.remaining != 0 {
            c = self.done.wait(c).unwrap();
        }
        drop(c);
        match self.panic.lock().unwrap().take() {
            Some(payload) => Err(payload),
            None => Ok(()),
        }
    }

    /// Tells the workers to exit at the next barrier. Must be called before
    /// the enclosing scope ends on **every** path, or the scope's implicit
    /// join blocks forever.
    pub fn shutdown(&self) {
        let mut c = self.coord.lock().unwrap();
        c.shutdown = true;
        self.start.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn pool_runs_every_item_exactly_once_per_round() {
        let hits: Vec<AtomicU64> = (0..23).map(|_| AtomicU64::new(0)).collect();
        let pool = PoolCore::new(hits.len(), 4);
        let job = |i: usize, _round: u64| {
            hits[i].fetch_add(1, Ordering::Relaxed);
        };
        std::thread::scope(|scope| {
            pool.spawn_workers(scope, &job);
            for round in 0..5 {
                pool.run_round(round).unwrap();
            }
            pool.shutdown();
        });
        for (i, h) in hits.iter().enumerate() {
            assert_eq!(h.load(Ordering::Relaxed), 5, "item {i}");
        }
    }

    #[test]
    fn idle_items_are_skipped_without_invoking_the_job() {
        let hits: Vec<AtomicU64> = (0..10).map(|_| AtomicU64::new(0)).collect();
        let pool = PoolCore::new(hits.len(), 3);
        let job = |i: usize, _round: u64| {
            hits[i].fetch_add(1, Ordering::Relaxed);
        };
        std::thread::scope(|scope| {
            pool.spawn_workers(scope, &job);
            pool.run_round(0).unwrap();
            for idle in [2usize, 7] {
                pool.set_active(idle, false);
            }
            pool.run_round(1).unwrap();
            pool.set_active(2, true);
            pool.run_round(2).unwrap();
            pool.shutdown();
        });
        for (i, h) in hits.iter().enumerate() {
            let want = match i {
                2 => 2,
                7 => 1,
                _ => 3,
            };
            assert_eq!(h.load(Ordering::Relaxed), want, "item {i}");
        }
    }

    #[test]
    fn instrumented_pool_counts_claims_steps_and_skips() {
        let pool = PoolCore::new(10, 3).with_stats(true);
        let job = |_i: usize, _round: u64| {};
        let mut totals = PoolStats::default();
        std::thread::scope(|scope| {
            pool.spawn_workers(scope, &job);
            pool.run_round(0).unwrap();
            totals.add_round(&pool.take_round_stats());
            for idle in [2usize, 7] {
                pool.set_active(idle, false);
            }
            pool.run_round(1).unwrap();
            totals.add_round(&pool.take_round_stats());
            pool.shutdown();
        });
        assert_eq!(totals.rounds, 2);
        assert_eq!(totals.workers(), 3);
        let claimed: u64 = totals.per_worker.iter().map(|w| w.claimed).sum();
        let stepped: u64 = totals.per_worker.iter().map(|w| w.stepped).sum();
        let skips: u64 = totals.per_worker.iter().map(|w| w.idle_skips).sum();
        assert_eq!(claimed, 20, "10 items claimed per round");
        assert_eq!(stepped, 18, "2 items idle in round 1");
        assert_eq!(skips, 2);
    }

    #[test]
    fn uninstrumented_pool_reports_no_stats() {
        let pool = PoolCore::new(4, 2);
        let job = |_i: usize, _round: u64| {};
        std::thread::scope(|scope| {
            pool.spawn_workers(scope, &job);
            pool.run_round(0).unwrap();
            assert!(pool.take_round_stats().is_empty());
            pool.shutdown();
        });
    }

    #[test]
    fn pool_stats_imbalance_is_max_over_mean() {
        let mut stats = PoolStats::default();
        stats.add_round(&[
            WorkerStats {
                busy_ns: 300,
                ..Default::default()
            },
            WorkerStats {
                busy_ns: 100,
                ..Default::default()
            },
        ]);
        // mean = 200, max = 300 => 1.5
        assert!((stats.imbalance() - 1.5).abs() < 1e-12);
        assert_eq!(PoolStats::default().imbalance(), 0.0);
    }

    #[test]
    fn pool_reports_a_job_panic_instead_of_deadlocking() {
        let pool = PoolCore::new(8, 3);
        let job = |i: usize, _round: u64| {
            if i == 5 {
                panic!("job 5 exploded");
            }
        };
        std::thread::scope(|scope| {
            pool.spawn_workers(scope, &job);
            let err = pool.run_round(0).unwrap_err();
            let msg = err.downcast_ref::<&str>().copied().unwrap_or_default();
            assert!(msg.contains("exploded"), "unexpected payload: {msg}");
            // The pool survives the panic: the next round still runs.
            pool.run_round(1).unwrap_err(); // item 5 panics every round
            pool.shutdown();
        });
    }
}
