//! The persistent worker pool: one set of OS threads per run, not per
//! round.
//!
//! `std::thread::scope` costs a spawn + join of every worker on **every
//! round**; at hundreds of rounds that syscall traffic dominates the
//! engine's host wall-clock (see the `hotpath` bench). The pool spawns its
//! workers once per [`Executor::run`](crate::Executor::run) and drives them
//! through a condvar round barrier instead.
//!
//! Work is claimed **dynamically**: workers pull machine indices off a
//! shared atomic counter one at a time, so a straggler machine (the large
//! machine deliberately carries the heaviest per-round workload in the
//! paper's heterogeneous regime) occupies one worker while the rest drain
//! every other machine — static chunking would serialize the straggler's
//! whole chunk behind it. Dynamic claiming is still deterministic: each
//! machine's step touches only that machine's own state, so *which* worker
//! runs it (and in what order) cannot influence any output; the driver
//! folds results back in machine-id order.
//!
//! A panic inside a job is caught ([`std::panic::catch_unwind`]), parked in
//! the pool, and re-raised on the driving thread by
//! [`run_round`](PoolCore::run_round) — a panicking
//! [`MachineProgram::step`](crate::MachineProgram::step) propagates to the
//! caller instead of deadlocking the barrier.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Condvar, Mutex};
use std::thread::Scope;

/// A panic payload carried off a worker thread.
pub type PanicPayload = Box<dyn std::any::Any + Send + 'static>;

/// Round-barrier state shared by the driving thread and the workers.
struct Coord {
    /// Bumped by the driving thread to release the workers into a round.
    epoch: u64,
    /// The round number workers pass to the job for the current epoch.
    round: u64,
    /// Workers that have not yet finished the current epoch.
    remaining: usize,
    /// Set once; workers exit at the next barrier.
    shutdown: bool,
}

/// The shared core of a worker pool (created once per run; workers borrow
/// it for the enclosing [`std::thread::scope`]).
pub struct PoolCore {
    items: usize,
    workers: usize,
    /// Next unclaimed machine index of the current round.
    next: AtomicUsize,
    /// Per-item activity mask: the driving thread clears entries for idle
    /// items (halted machines with empty inboxes, e.g. every machine of a
    /// retired multiplexed instance) before releasing a round, and workers
    /// skip them without invoking the job — an idle item costs one relaxed
    /// atomic load instead of a mutex claim cycle.
    active: Vec<AtomicBool>,
    coord: Mutex<Coord>,
    /// Wakes workers at a round start (and for shutdown).
    start: Condvar,
    /// Wakes the driving thread when the last worker finishes a round.
    done: Condvar,
    /// First panic caught in a job this round, if any.
    panic: Mutex<Option<PanicPayload>>,
}

impl PoolCore {
    /// A pool that distributes `items` jobs per round over `workers`
    /// threads (callers clamp `workers` to a sensible range first).
    pub fn new(items: usize, workers: usize) -> Self {
        assert!(workers > 0, "pool needs at least one worker");
        PoolCore {
            items,
            workers,
            next: AtomicUsize::new(0),
            active: (0..items).map(|_| AtomicBool::new(true)).collect(),
            coord: Mutex::new(Coord {
                epoch: 0,
                round: 0,
                remaining: 0,
                shutdown: false,
            }),
            start: Condvar::new(),
            done: Condvar::new(),
            panic: Mutex::new(None),
        }
    }

    /// Number of worker threads the pool was sized for.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Marks item `i` active or idle for the next round. Must only be
    /// called between rounds (by the driving thread, before
    /// [`run_round`](PoolCore::run_round)); workers observe the flags via
    /// the same epoch handshake that publishes the round number.
    pub fn set_active(&self, i: usize, on: bool) {
        self.active[i].store(on, Ordering::Relaxed);
    }

    /// Spawns the worker threads into `scope`. `job(index, round)` steps
    /// one machine; it must be safe to call concurrently for distinct
    /// indices (each worker claims disjoint indices).
    pub fn spawn_workers<'scope, 'env, F>(
        &'scope self,
        scope: &'scope Scope<'scope, 'env>,
        job: &'scope F,
    ) where
        F: Fn(usize, u64) + Sync,
    {
        for _ in 0..self.workers {
            scope.spawn(move || self.worker(job));
        }
    }

    fn worker<F: Fn(usize, u64) + Sync>(&self, job: &F) {
        let mut seen_epoch = 0u64;
        loop {
            let round = {
                let mut c = self.coord.lock().unwrap();
                while !c.shutdown && c.epoch == seen_epoch {
                    c = self.start.wait(c).unwrap();
                }
                if c.shutdown {
                    return;
                }
                seen_epoch = c.epoch;
                c.round
            };
            // Dynamic claiming: one machine at a time off the shared
            // counter, so no worker ever queues behind a straggler.
            loop {
                let i = self.next.fetch_add(1, Ordering::Relaxed);
                if i >= self.items {
                    break;
                }
                if !self.active[i].load(Ordering::Relaxed) {
                    continue;
                }
                // Catching inside the claim loop keeps the barrier sound:
                // the worker still reports completion, and the driving
                // thread re-raises the payload after the round.
                if let Err(payload) = catch_unwind(AssertUnwindSafe(|| job(i, round))) {
                    let mut slot = self.panic.lock().unwrap();
                    if slot.is_none() {
                        *slot = Some(payload);
                    }
                }
            }
            let mut c = self.coord.lock().unwrap();
            c.remaining -= 1;
            if c.remaining == 0 {
                self.done.notify_all();
            }
        }
    }

    /// Runs one round: releases the workers, waits for all of them, and
    /// re-raises the first panic any job hit.
    ///
    /// # Errors
    ///
    /// Returns the caught panic payload; the caller is expected to
    /// [`std::panic::resume_unwind`] it after shutting the pool down.
    pub fn run_round(&self, round: u64) -> Result<(), PanicPayload> {
        // The claim counter reset happens-before any worker claims: workers
        // only start after observing the epoch bump under the coord lock.
        self.next.store(0, Ordering::Relaxed);
        {
            let mut c = self.coord.lock().unwrap();
            c.epoch += 1;
            c.round = round;
            c.remaining = self.workers;
            self.start.notify_all();
        }
        let mut c = self.coord.lock().unwrap();
        while c.remaining != 0 {
            c = self.done.wait(c).unwrap();
        }
        drop(c);
        match self.panic.lock().unwrap().take() {
            Some(payload) => Err(payload),
            None => Ok(()),
        }
    }

    /// Tells the workers to exit at the next barrier. Must be called before
    /// the enclosing scope ends on **every** path, or the scope's implicit
    /// join blocks forever.
    pub fn shutdown(&self) {
        let mut c = self.coord.lock().unwrap();
        c.shutdown = true;
        self.start.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn pool_runs_every_item_exactly_once_per_round() {
        let hits: Vec<AtomicU64> = (0..23).map(|_| AtomicU64::new(0)).collect();
        let pool = PoolCore::new(hits.len(), 4);
        let job = |i: usize, _round: u64| {
            hits[i].fetch_add(1, Ordering::Relaxed);
        };
        std::thread::scope(|scope| {
            pool.spawn_workers(scope, &job);
            for round in 0..5 {
                pool.run_round(round).unwrap();
            }
            pool.shutdown();
        });
        for (i, h) in hits.iter().enumerate() {
            assert_eq!(h.load(Ordering::Relaxed), 5, "item {i}");
        }
    }

    #[test]
    fn idle_items_are_skipped_without_invoking_the_job() {
        let hits: Vec<AtomicU64> = (0..10).map(|_| AtomicU64::new(0)).collect();
        let pool = PoolCore::new(hits.len(), 3);
        let job = |i: usize, _round: u64| {
            hits[i].fetch_add(1, Ordering::Relaxed);
        };
        std::thread::scope(|scope| {
            pool.spawn_workers(scope, &job);
            pool.run_round(0).unwrap();
            for idle in [2usize, 7] {
                pool.set_active(idle, false);
            }
            pool.run_round(1).unwrap();
            pool.set_active(2, true);
            pool.run_round(2).unwrap();
            pool.shutdown();
        });
        for (i, h) in hits.iter().enumerate() {
            let want = match i {
                2 => 2,
                7 => 1,
                _ => 3,
            };
            assert_eq!(h.load(Ordering::Relaxed), want, "item {i}");
        }
    }

    #[test]
    fn pool_reports_a_job_panic_instead_of_deadlocking() {
        let pool = PoolCore::new(8, 3);
        let job = |i: usize, _round: u64| {
            if i == 5 {
                panic!("job 5 exploded");
            }
        };
        std::thread::scope(|scope| {
            pool.spawn_workers(scope, &job);
            let err = pool.run_round(0).unwrap_err();
            let msg = err.downcast_ref::<&str>().copied().unwrap_or_default();
            assert!(msg.contains("exploded"), "unexpected payload: {msg}");
            // The pool survives the panic: the next round still runs.
            pool.run_round(1).unwrap_err(); // item 5 panics every round
            pool.shutdown();
        });
    }
}
