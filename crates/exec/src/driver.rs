//! The round driver: steps every machine, serially or concurrently, with
//! bit-identical results either way.
//!
//! Determinism argument: each machine's step consumes only (a) its own
//! program state, (b) its own private RNG stream, and (c) its inbox, whose
//! order [`Cluster::exchange`](mpc_runtime::Cluster::exchange) fixes
//! (ascending source id, then send order). Machines share nothing mutable,
//! so the *schedule* of steps cannot influence any machine's output;
//! running them on one thread or sixteen produces the same outboxes, the
//! same round log, and the same RNG streams. The `parallel_matches_serial`
//! tests assert this bit-for-bit.

use crate::machine::{MachineCtx, MachineProgram, StepOutcome};
use mpc_runtime::{Cluster, MachineId, ModelViolation};
use std::error::Error;
use std::fmt;
use std::time::{Duration, Instant};

/// How the driver schedules machine steps within a round.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum ExecMode {
    /// One machine after another on the calling thread.
    Serial,
    /// All machines concurrently on scoped OS threads (the environment has
    /// no crates.io access, so this uses `std::thread::scope` with evenly
    /// chunked machines instead of a rayon pool).
    #[default]
    Parallel,
}

/// Errors of a program execution.
#[derive(Clone, Debug, PartialEq)]
pub enum ExecError {
    /// A capacity violation surfaced by the cluster in strict mode.
    Model(ModelViolation),
    /// The program did not terminate within the round limit.
    RoundLimit {
        /// The limit that was hit.
        limit: u64,
    },
}

impl fmt::Display for ExecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ExecError::Model(v) => write!(f, "model violation: {v}"),
            ExecError::RoundLimit { limit } => {
                write!(f, "program exceeded the round limit of {limit}")
            }
        }
    }
}

impl Error for ExecError {}

impl From<ModelViolation> for ExecError {
    fn from(v: ModelViolation) -> Self {
        ExecError::Model(v)
    }
}

/// What a finished run returns.
#[derive(Debug)]
pub struct ExecOutcome<P> {
    /// Final per-machine program states (extract results from these).
    pub programs: Vec<P>,
    /// Exchange rounds this run consumed.
    pub rounds: u64,
    /// Host wall-clock time of the run (the quantity the serial-vs-parallel
    /// bench compares; simulated time lives in the cluster's round log).
    pub wall: Duration,
}

/// Drives a [`MachineProgram`] over a cluster.
#[derive(Clone, Debug)]
pub struct Executor {
    label: String,
    mode: ExecMode,
    max_rounds: u64,
    threads: usize,
}

/// Result of stepping one machine.
struct StepSlot<M> {
    outbox: Vec<(MachineId, M)>,
    halt: bool,
    work: u64,
}

/// One machine's inputs for a round, bundled so a worker thread can own it.
struct WorkItem<'a, P: MachineProgram> {
    mid: MachineId,
    stepping: bool,
    program: &'a mut P,
    rng: &'a mut rand::rngs::SmallRng,
    inbox: Vec<(MachineId, P::Message)>,
    slot: Option<StepSlot<P::Message>>,
}

impl Executor {
    /// An executor labeling its exchanges `{label}.r{round}`.
    pub fn new(label: &str, mode: ExecMode) -> Self {
        Executor {
            label: label.to_string(),
            mode,
            max_rounds: 100_000,
            threads: 0,
        }
    }

    /// Serial executor (reference schedule).
    pub fn serial(label: &str) -> Self {
        Executor::new(label, ExecMode::Serial)
    }

    /// Parallel executor (one chunk of machines per OS thread).
    pub fn parallel(label: &str) -> Self {
        Executor::new(label, ExecMode::Parallel)
    }

    /// Overrides the termination safety net (default 100 000 rounds).
    pub fn max_rounds(mut self, limit: u64) -> Self {
        self.max_rounds = limit.max(1);
        self
    }

    /// Caps worker threads in parallel mode (0 = one per available core).
    pub fn threads(mut self, n: usize) -> Self {
        self.threads = n;
        self
    }

    fn worker_threads(&self) -> usize {
        if self.threads > 0 {
            return self.threads;
        }
        std::thread::available_parallelism().map_or(4, |n| n.get())
    }

    /// Runs `programs` (one per machine) to completion.
    ///
    /// Every round: step all active machines, charge each machine's message
    /// volume plus [`MachineCtx::charge`]d extra as local work, then move
    /// the union of outboxes through one capacity-checked
    /// [`exchange`](Cluster::exchange). Ends when all machines have halted
    /// with nothing in flight.
    ///
    /// # Errors
    ///
    /// [`ExecError::Model`] on a capacity violation in strict mode;
    /// [`ExecError::RoundLimit`] if the program fails to terminate.
    ///
    /// # Panics
    ///
    /// Panics if `programs.len()` differs from the cluster's machine count.
    pub fn run<P: MachineProgram>(
        &self,
        cluster: &mut Cluster,
        mut programs: Vec<P>,
    ) -> Result<ExecOutcome<P>, ExecError> {
        let k = cluster.machines();
        assert_eq!(programs.len(), k, "need exactly one program per machine");
        let caps: Vec<usize> = (0..k).map(|m| cluster.capacity(m)).collect();
        let large = cluster.large();
        let start = Instant::now();

        let mut halted = vec![false; k];
        let mut inboxes: Vec<Vec<(MachineId, P::Message)>> = (0..k).map(|_| Vec::new()).collect();
        let mut round: u64 = 0;

        loop {
            let any_stepping = (0..k).any(|m| !halted[m] || !inboxes[m].is_empty());
            if !any_stepping {
                break;
            }
            if round >= self.max_rounds {
                return Err(ExecError::RoundLimit {
                    limit: self.max_rounds,
                });
            }

            // Bundle per-machine state so threads can own disjoint slices.
            let rngs = cluster.rngs_mut();
            let mut items: Vec<WorkItem<'_, P>> = programs
                .iter_mut()
                .zip(rngs.iter_mut())
                .zip(inboxes.iter_mut().map(std::mem::take))
                .enumerate()
                .map(|(mid, ((program, rng), inbox))| WorkItem {
                    mid,
                    stepping: !halted[mid] || !inbox.is_empty(),
                    program,
                    rng,
                    inbox,
                    slot: None,
                })
                .collect();

            match self.mode {
                ExecMode::Serial => {
                    for item in &mut items {
                        step_item(item, &caps, large, k, round);
                    }
                }
                ExecMode::Parallel => {
                    let threads = self.worker_threads().min(k).max(1);
                    let chunk = k.div_ceil(threads);
                    std::thread::scope(|scope| {
                        for chunk_items in items.chunks_mut(chunk) {
                            let caps = &caps;
                            scope.spawn(move || {
                                for item in chunk_items {
                                    step_item(item, caps, large, k, round);
                                }
                            });
                        }
                    });
                }
            }

            // Fold results back in machine order (deterministic regardless
            // of which thread ran which machine).
            let mut outgoing: Vec<Vec<(MachineId, P::Message)>> =
                (0..k).map(|_| Vec::new()).collect();
            let mut any_messages = false;
            let mut work_charges: Vec<(MachineId, u64)> = Vec::new();
            for item in items {
                let mid = item.mid;
                if let Some(slot) = item.slot {
                    halted[mid] = slot.halt;
                    any_messages |= !slot.outbox.is_empty();
                    if slot.work > 0 {
                        work_charges.push((mid, slot.work));
                    }
                    outgoing[mid] = slot.outbox;
                }
            }
            for (mid, work) in work_charges {
                cluster.charge_work(mid, work);
            }

            if !any_messages && halted.iter().all(|&h| h) {
                // Everyone is done and nothing is in flight: no final
                // exchange, the round was pure local wind-down.
                break;
            }
            inboxes = cluster.exchange(&format!("{}.r{:03}", self.label, round), outgoing)?;
            round += 1;
        }

        Ok(ExecOutcome {
            programs,
            rounds: round,
            wall: start.elapsed(),
        })
    }
}

/// Steps one machine: builds its context, runs the program, records the
/// outcome and the deterministic work charge (inbox + outbox words + any
/// explicitly charged computation).
fn step_item<P: MachineProgram>(
    item: &mut WorkItem<'_, P>,
    caps: &[usize],
    large: Option<MachineId>,
    machines: usize,
    round: u64,
) {
    if !item.stepping {
        item.slot = None;
        return;
    }
    let inbox = std::mem::take(&mut item.inbox);
    let inbox_words: usize = inbox
        .iter()
        .map(|(_, m)| mpc_runtime::Payload::words(m))
        .sum();
    let ctx = MachineCtx::new(item.mid, machines, large, caps[item.mid], round, item.rng);
    let outcome = item.program.step(&ctx, inbox);
    let extra = ctx.charged();
    let (outbox, halt) = match outcome {
        StepOutcome::Send(outbox) => (outbox, false),
        StepOutcome::Halt => (Vec::new(), true),
    };
    let outbox_words: usize = outbox
        .iter()
        .map(|(_, m)| mpc_runtime::Payload::words(m))
        .sum();
    item.slot = Some(StepSlot {
        outbox,
        halt,
        work: inbox_words as u64 + outbox_words as u64 + extra,
    });
}
