//! The round driver: steps every machine, serially or concurrently, with
//! bit-identical results either way.
//!
//! Determinism argument: each machine's step consumes only (a) its own
//! program state, (b) its own private RNG stream, and (c) its inbox, whose
//! order [`Cluster::exchange`](mpc_runtime::Cluster::exchange) fixes
//! (ascending source id, then send order). Machines share nothing mutable,
//! so the *schedule* of steps cannot influence any machine's output;
//! running them on one thread or sixteen — statically chunked or
//! dynamically claimed off the worker pool — produces the same outboxes,
//! the same round log, and the same RNG streams. The
//! `parallel_matches_serial` tests and `crates/exec/tests/pool.rs` assert
//! this bit-for-bit.
//!
//! The round loop is the engine's host-side hot path, so it allocates
//! nothing per round in steady state: exchanges go through the
//! buffer-reusing [`Cluster::exchange_into`](mpc_runtime::Cluster::exchange_into),
//! round labels share one interned prefix
//! ([`RoundLabel`](mpc_runtime::RoundLabel)), and in
//! [`ExecMode::Parallel`] the worker threads are spawned **once per run**
//! ([`pool`](crate::pool)) instead of once per round.

use crate::machine::{MachineCtx, MachineProgram, StepOutcome};
use crate::pool::{PanicPayload, PoolCore, PoolStats};
use mpc_runtime::telemetry::{TraceEvent, TraceSink};
use mpc_runtime::{Cluster, MachineId, ModelViolation, RoundLabel};
use rand::rngs::SmallRng;
use rand::SeedableRng;
use std::error::Error;
use std::fmt;
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// How the driver schedules machine steps within a round.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum ExecMode {
    /// One machine after another on the calling thread.
    Serial,
    /// All machines concurrently on a persistent worker pool (spawned once
    /// per run; machines are claimed dynamically so a straggler machine
    /// never serializes anyone else's work). Std-only — the environment
    /// has no crates.io access, hence no rayon.
    #[default]
    Parallel,
    /// The pre-pool baseline: scoped OS threads spawned **every round**,
    /// with machines statically chunked per thread. Kept so the `hotpath`
    /// bench can measure what the pool buys; not a mode to pick otherwise.
    SpawnPerRound,
}

/// Errors of a program execution.
#[derive(Clone, Debug, PartialEq)]
pub enum ExecError {
    /// A capacity violation surfaced by the cluster in strict mode.
    Model(ModelViolation),
    /// The program did not terminate within the round limit.
    RoundLimit {
        /// The limit that was hit.
        limit: u64,
    },
    /// An algorithm-level failure reported by a program (e.g. KKT sampling
    /// exceeded its volume bound, or a residual overflow in matching) — the
    /// engine twins of the legacy `MstError`/`MatchingError` variants.
    Algorithm {
        /// Human-readable failure description.
        message: String,
    },
}

impl fmt::Display for ExecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ExecError::Model(v) => write!(f, "model violation: {v}"),
            ExecError::RoundLimit { limit } => {
                write!(f, "program exceeded the round limit of {limit}")
            }
            ExecError::Algorithm { message } => write!(f, "algorithm failure: {message}"),
        }
    }
}

impl Error for ExecError {}

impl From<ModelViolation> for ExecError {
    fn from(v: ModelViolation) -> Self {
        ExecError::Model(v)
    }
}

/// What a finished run returns.
#[derive(Debug)]
pub struct ExecOutcome<P> {
    /// Final per-machine program states (extract results from these).
    pub programs: Vec<P>,
    /// Exchange rounds this run consumed.
    pub rounds: u64,
    /// Host wall-clock time of the run (the quantity the serial-vs-parallel
    /// bench compares; simulated time lives in the cluster's round log).
    pub wall: Duration,
    /// Per-worker pool accounting (claims, steps, barrier waits). Populated
    /// only for [`ExecMode::Parallel`] runs with a trace sink attached to
    /// the cluster; `None` otherwise — the uninstrumented pool reads no
    /// clocks.
    pub pool: Option<PoolStats>,
}

/// Drives a [`MachineProgram`] over a cluster.
#[derive(Clone, Debug)]
pub struct Executor {
    label: String,
    mode: ExecMode,
    max_rounds: u64,
    threads: usize,
}

/// Result of stepping one machine.
struct StepSlot<M> {
    outbox: Vec<(MachineId, M)>,
    halt: bool,
    work: u64,
}

/// One machine's run-long state: program, private RNG, and the per-round
/// inbox/outcome mailboxes. Owned behind a `Mutex` so pool workers can
/// claim machines in any order; each slot is only ever touched by one
/// thread at a time (the claim counter hands out disjoint indices), so the
/// locks never contend.
struct MachineSlot<P: MachineProgram> {
    program: P,
    rng: SmallRng,
    inbox: Vec<(MachineId, P::Message)>,
    halted: bool,
    /// Whether this machine steps this round (active, or reactivated by a
    /// message). Set by the driving thread before the round barrier.
    stepping: bool,
    /// The step's outcome, folded back in machine-id order after the round.
    outcome: Option<StepSlot<P::Message>>,
}

/// Immutable cluster shape shared with the step job.
struct StepCtx {
    caps: Vec<usize>,
    large: Option<MachineId>,
    machines: usize,
    /// The cluster's telemetry sink at run start, shared with every step's
    /// [`MachineCtx`] (workers record concurrently; sinks are `Sync`).
    sink: Option<Arc<dyn TraceSink>>,
}

/// How one `run` ended, before panic payloads are re-raised.
enum DriveEnd {
    Done(u64),
    Failed(ExecError),
    Panicked(PanicPayload),
}

impl Executor {
    /// An executor labeling its exchanges `{label}.r{round}`.
    pub fn new(label: &str, mode: ExecMode) -> Self {
        Executor {
            label: label.to_string(),
            mode,
            max_rounds: 100_000,
            threads: 0,
        }
    }

    /// Serial executor (reference schedule).
    pub fn serial(label: &str) -> Self {
        Executor::new(label, ExecMode::Serial)
    }

    /// Parallel executor (persistent worker pool, dynamic claiming).
    pub fn parallel(label: &str) -> Self {
        Executor::new(label, ExecMode::Parallel)
    }

    /// Overrides the termination safety net (default 100 000 rounds).
    pub fn max_rounds(mut self, limit: u64) -> Self {
        self.max_rounds = limit.max(1);
        self
    }

    /// Caps worker threads in parallel mode (0 = one per available core,
    /// overridable via the `MPC_POOL_THREADS` environment variable — the
    /// knob CI's pool-thread matrix turns without touching call sites).
    pub fn threads(mut self, n: usize) -> Self {
        self.threads = n;
        self
    }

    fn worker_threads(&self) -> usize {
        if self.threads > 0 {
            return self.threads;
        }
        if let Some(n) = std::env::var("MPC_POOL_THREADS")
            .ok()
            .and_then(|v| v.trim().parse::<usize>().ok())
            .filter(|&n| n > 0)
        {
            return n;
        }
        std::thread::available_parallelism().map_or(4, |n| n.get())
    }

    /// Runs `programs` (one per machine) to completion.
    ///
    /// Every round: step all active machines, charge each machine's message
    /// volume plus [`MachineCtx::charge`]d extra as local work, then move
    /// the union of outboxes through one capacity-checked
    /// [`exchange`](Cluster::exchange). Ends when all machines have halted
    /// with nothing in flight.
    ///
    /// # Errors
    ///
    /// [`ExecError::Model`] on a capacity violation in strict mode;
    /// [`ExecError::RoundLimit`] if the program fails to terminate.
    ///
    /// # Panics
    ///
    /// Panics if `programs.len()` differs from the cluster's machine count,
    /// or if a [`MachineProgram::step`] panics (the panic is re-raised on
    /// the calling thread in every mode).
    pub fn run<P: MachineProgram>(
        &self,
        cluster: &mut Cluster,
        programs: Vec<P>,
    ) -> Result<ExecOutcome<P>, ExecError> {
        let k = cluster.machines();
        assert_eq!(programs.len(), k, "need exactly one program per machine");
        let start = Instant::now();
        let ctx = StepCtx {
            caps: (0..k).map(|m| cluster.capacity(m)).collect(),
            large: cluster.large(),
            machines: k,
            sink: cluster.trace_sink(),
        };

        // Move each machine's program and private RNG into its slot for the
        // duration of the run (the RNGs go back below, stream positions
        // intact, so the cluster observes exactly a serial execution).
        let mut slots: Vec<Mutex<MachineSlot<P>>> = programs
            .into_iter()
            .zip(cluster.rngs_mut().iter_mut())
            .map(|(program, rng)| {
                Mutex::new(MachineSlot {
                    program,
                    rng: std::mem::replace(rng, SmallRng::seed_from_u64(0)),
                    inbox: Vec::new(),
                    halted: false,
                    stepping: false,
                    outcome: None,
                })
            })
            .collect();

        let tracing = ctx.sink.is_some();
        let mut pool_stats: Option<PoolStats> = None;

        // Serial and spawn-per-round wrap their stepping in `catch_unwind`
        // for the same reason the pool catches on its workers: a step panic
        // must flow through `DriveEnd::Panicked` so the RNG/program
        // restoration below runs before the payload is re-raised —
        // post-panic cluster state is identical in every mode.
        let end = match self.mode {
            ExecMode::Serial => {
                let slots = &slots;
                self.drive(cluster, slots, &mut |_mid, _on| {}, &mut |round| {
                    std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                        for mid in 0..k {
                            step_slot(&slots[mid], mid, &ctx, round);
                        }
                    }))
                })
            }
            ExecMode::SpawnPerRound => {
                let threads = self.worker_threads().min(k).max(1);
                let chunk = k.div_ceil(threads);
                let ids: Vec<usize> = (0..k).collect();
                let slots = &slots;
                let ctx = &ctx;
                self.drive(cluster, slots, &mut |_mid, _on| {}, &mut |round| {
                    std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                        std::thread::scope(|scope| {
                            for chunk_ids in ids.chunks(chunk) {
                                scope.spawn(move || {
                                    for &mid in chunk_ids {
                                        step_slot(&slots[mid], mid, ctx, round);
                                    }
                                });
                            }
                        });
                    }))
                })
            }
            ExecMode::Parallel => {
                let pool =
                    PoolCore::new(k, self.worker_threads().min(k).max(1)).with_stats(tracing);
                let sink = ctx.sink.clone();
                let slots_ref = &slots;
                let ctx = &ctx;
                let job = move |mid: usize, round: u64| step_slot(&slots_ref[mid], mid, ctx, round);
                let stats = &mut pool_stats;
                std::thread::scope(|scope| {
                    pool.spawn_workers(scope, &job);
                    // Publish each round's activity flags to the pool, so
                    // workers skip idle machines (halted, nothing in the
                    // inbox) without a mutex claim cycle.
                    let end = self.drive(
                        cluster,
                        slots_ref,
                        &mut |mid, on| pool.set_active(mid, on),
                        &mut |round| {
                            let result = pool.run_round(round);
                            if result.is_ok() && tracing {
                                // Drain this round's per-worker counters into
                                // the run totals and the event stream.
                                let round_stats = pool.take_round_stats();
                                if let Some(sink) = &sink {
                                    for (worker, s) in round_stats.iter().enumerate() {
                                        sink.record(&TraceEvent::WorkerRound {
                                            round,
                                            worker,
                                            claimed: s.claimed as usize,
                                            stepped: s.stepped as usize,
                                            idle_skips: s.idle_skips as usize,
                                            wait_ns: s.wait_ns,
                                            busy_ns: s.busy_ns,
                                        });
                                    }
                                }
                                stats
                                    .get_or_insert_with(PoolStats::default)
                                    .add_round(&round_stats);
                            }
                            result
                        },
                    );
                    // Every exit path must release the workers, or the
                    // scope's implicit join would hang.
                    pool.shutdown();
                    end
                })
            }
        };

        // Hand the programs and the advanced RNG streams back. A panicking
        // step poisons its slot's mutex; ignore the poison here so the
        // *original* payload (not a `PoisonError`) reaches the caller.
        let mut programs = Vec::with_capacity(k);
        for (slot, rng) in slots.iter_mut().zip(cluster.rngs_mut().iter_mut()) {
            let slot = slot.get_mut().unwrap_or_else(|p| p.into_inner());
            std::mem::swap(rng, &mut slot.rng);
        }
        for slot in slots {
            let slot = slot.into_inner().unwrap_or_else(|p| p.into_inner());
            programs.push(slot.program);
        }

        match end {
            DriveEnd::Done(rounds) => Ok(ExecOutcome {
                programs,
                rounds,
                wall: start.elapsed(),
                pool: pool_stats,
            }),
            DriveEnd::Failed(e) => Err(e),
            DriveEnd::Panicked(payload) => std::panic::resume_unwind(payload),
        }
    }

    /// The mode-independent round loop: activation flags, the step barrier
    /// (`step_all`), machine-order fold-back, and the exchange — with the
    /// outbox/inbox buffers reused across rounds.
    fn drive<P: MachineProgram>(
        &self,
        cluster: &mut Cluster,
        slots: &[Mutex<MachineSlot<P>>],
        mark_active: &mut dyn FnMut(MachineId, bool),
        step_all: &mut dyn FnMut(u64) -> Result<(), PanicPayload>,
    ) -> DriveEnd {
        let k = slots.len();
        let prefix: Arc<str> = Arc::from(self.label.as_str());
        let sink = cluster.trace_sink();
        let mut outgoing: Vec<Vec<(MachineId, P::Message)>> = (0..k).map(|_| Vec::new()).collect();
        let mut inboxes: Vec<Vec<(MachineId, P::Message)>> = Vec::new();
        let mut round: u64 = 0;

        loop {
            let mut stepping_count = 0usize;
            for (mid, slot) in slots.iter().enumerate() {
                let mut s = slot.lock().unwrap();
                s.stepping = !s.halted || !s.inbox.is_empty();
                mark_active(mid, s.stepping);
                stepping_count += s.stepping as usize;
            }
            if stepping_count == 0 {
                break;
            }
            if round >= self.max_rounds {
                return DriveEnd::Failed(ExecError::RoundLimit {
                    limit: self.max_rounds,
                });
            }
            if let Some(sink) = &sink {
                sink.record(&TraceEvent::StepSchedule {
                    round,
                    stepping: stepping_count,
                    machines: k,
                });
            }

            if let Err(payload) = step_all(round) {
                return DriveEnd::Panicked(payload);
            }

            // Fold results back in machine order (deterministic regardless
            // of which thread ran which machine).
            let mut any_messages = false;
            let mut all_halted = true;
            for (mid, slot) in slots.iter().enumerate() {
                let mut s = slot.lock().unwrap();
                if let Some(step) = s.outcome.take() {
                    s.halted = step.halt;
                    any_messages |= !step.outbox.is_empty();
                    if step.work > 0 {
                        cluster.charge_work(mid, step.work);
                    }
                    outgoing[mid] = step.outbox;
                } else {
                    outgoing[mid].clear();
                }
                all_halted &= s.halted;
            }

            if !any_messages && all_halted {
                // Everyone is done and nothing is in flight: no final
                // exchange, the round was pure local wind-down.
                break;
            }
            if let Err(v) = cluster.exchange_into(
                RoundLabel::with_seq(&prefix, round),
                &mut outgoing,
                &mut inboxes,
            ) {
                return DriveEnd::Failed(v.into());
            }
            round += 1;
            for (mid, slot) in slots.iter().enumerate() {
                let mut s = slot.lock().unwrap();
                std::mem::swap(&mut s.inbox, &mut inboxes[mid]);
            }
        }

        DriveEnd::Done(round)
    }
}

/// Steps one machine: builds its context, runs the program, records the
/// outcome and the deterministic work charge (inbox + outbox words + any
/// explicitly charged computation). The slot lock is uncontended by
/// construction — each machine index is handed to exactly one thread.
fn step_slot<P: MachineProgram>(
    slot: &Mutex<MachineSlot<P>>,
    mid: MachineId,
    ctx: &StepCtx,
    round: u64,
) {
    let mut slot = match slot.lock() {
        Ok(s) => s,
        Err(poisoned) => poisoned.into_inner(),
    };
    let slot = &mut *slot;
    if !slot.stepping {
        slot.outcome = None;
        return;
    }
    let inbox = std::mem::take(&mut slot.inbox);
    let inbox_words: usize = inbox
        .iter()
        .map(|(_, m)| mpc_runtime::Payload::words(m))
        .sum();
    let mctx = MachineCtx::new(
        mid,
        ctx.machines,
        ctx.large,
        ctx.caps[mid],
        round,
        &mut slot.rng,
        ctx.sink.as_deref(),
    );
    let outcome = slot.program.step(&mctx, inbox);
    let extra = mctx.charged();
    let (outbox, halt) = match outcome {
        StepOutcome::Send(outbox) => (outbox, false),
        StepOutcome::Halt => (Vec::new(), true),
    };
    let outbox_words: usize = outbox
        .iter()
        .map(|(_, m)| mpc_runtime::Payload::words(m))
        .sum();
    slot.outcome = Some(StepSlot {
        outbox,
        halt,
        work: inbox_words as u64 + outbox_words as u64 + extra,
    });
}
