//! The round driver: steps every machine, serially or concurrently, with
//! bit-identical results either way.
//!
//! Determinism argument: each machine's step consumes only (a) its own
//! program state, (b) its own private RNG stream, and (c) its inbox, whose
//! order [`Cluster::exchange`](mpc_runtime::Cluster::exchange) fixes
//! (ascending source id, then send order). Machines share nothing mutable,
//! so the *schedule* of steps cannot influence any machine's output;
//! running them on one thread or sixteen — statically chunked or
//! dynamically claimed off the worker pool — produces the same outboxes,
//! the same round log, and the same RNG streams. The
//! `parallel_matches_serial` tests and `crates/exec/tests/pool.rs` assert
//! this bit-for-bit.
//!
//! The round loop is the engine's host-side hot path, so it allocates
//! nothing per round in steady state: exchanges go through the
//! buffer-reusing [`Cluster::exchange_into`](mpc_runtime::Cluster::exchange_into),
//! round labels share one interned prefix
//! ([`RoundLabel`](mpc_runtime::RoundLabel)), and in
//! [`ExecMode::Parallel`] the worker threads are spawned **once per run**
//! ([`pool`](crate::pool)) instead of once per round.

use crate::machine::{MachineCtx, MachineProgram, StepOutcome};
use crate::pool::{PanicPayload, PoolCore, PoolStats};
use mpc_runtime::fault::{Fault, FiredFault, RecoveryPolicy, ReplicaChunk};
use mpc_runtime::telemetry::{TraceEvent, TraceSink};
use mpc_runtime::{Cluster, MachineId, ModelViolation, RoundLabel};
use rand::rngs::SmallRng;
use rand::SeedableRng;
use std::cell::Cell;
use std::collections::{BTreeMap, BTreeSet};
use std::error::Error;
use std::fmt;
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// How the driver schedules machine steps within a round.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum ExecMode {
    /// One machine after another on the calling thread.
    Serial,
    /// All machines concurrently on a persistent worker pool (spawned once
    /// per run; machines are claimed dynamically so a straggler machine
    /// never serializes anyone else's work). Std-only — the environment
    /// has no crates.io access, hence no rayon.
    #[default]
    Parallel,
    /// The pre-pool baseline: scoped OS threads spawned **every round**,
    /// with machines statically chunked per thread. Kept so the `hotpath`
    /// bench can measure what the pool buys; not a mode to pick otherwise.
    SpawnPerRound,
}

/// Errors of a program execution.
#[derive(Clone, Debug, PartialEq)]
pub enum ExecError {
    /// A capacity violation surfaced by the cluster in strict mode.
    Model(ModelViolation),
    /// The program did not terminate within the round limit.
    RoundLimit {
        /// The limit that was hit.
        limit: u64,
    },
    /// An algorithm-level failure reported by a program (e.g. KKT sampling
    /// exceeded its volume bound, or a residual overflow in matching) — the
    /// engine twins of the legacy `MstError`/`MatchingError` variants.
    Algorithm {
        /// Human-readable failure description.
        message: String,
    },
    /// A crashed machine could not be brought back: no replica peer holds
    /// its shard (`replicas = 0`, a lone small machine, a program without
    /// snapshot support), or the recovery protocol itself kept getting
    /// disrupted past the retry budget. The large machine is *not* on this
    /// list: its shard checkpoints to the durable host on the same cadence
    /// as small-machine replicas, so a coordinator crash replays like any
    /// other (DESIGN.md §2.9).
    Unrecoverable {
        /// The machine that stayed down.
        machine: MachineId,
        /// Driver round of the disrupted exchange.
        round: u64,
        /// Why recovery was impossible.
        reason: String,
    },
}

impl fmt::Display for ExecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ExecError::Model(v) => write!(f, "model violation: {v}"),
            ExecError::RoundLimit { limit } => {
                write!(f, "program exceeded the round limit of {limit}")
            }
            ExecError::Algorithm { message } => write!(f, "algorithm failure: {message}"),
            ExecError::Unrecoverable {
                machine,
                round,
                reason,
            } => write!(
                f,
                "machine {machine} unrecoverable at driver round {round}: {reason}"
            ),
        }
    }
}

impl Error for ExecError {}

impl From<ModelViolation> for ExecError {
    fn from(v: ModelViolation) -> Self {
        ExecError::Model(v)
    }
}

/// What a finished run returns.
#[derive(Debug)]
pub struct ExecOutcome<P> {
    /// Final per-machine program states (extract results from these).
    pub programs: Vec<P>,
    /// Exchange rounds this run consumed.
    pub rounds: u64,
    /// Host wall-clock time of the run (the quantity the serial-vs-parallel
    /// bench compares; simulated time lives in the cluster's round log).
    pub wall: Duration,
    /// Per-worker pool accounting (claims, steps, barrier waits). Populated
    /// only for [`ExecMode::Parallel`] runs with a trace sink attached to
    /// the cluster; `None` otherwise — the uninstrumented pool reads no
    /// clocks.
    pub pool: Option<PoolStats>,
}

/// Drives a [`MachineProgram`] over a cluster.
#[derive(Clone, Debug)]
pub struct Executor {
    label: String,
    mode: ExecMode,
    max_rounds: u64,
    threads: usize,
}

/// Result of stepping one machine.
struct StepSlot<M> {
    outbox: Vec<(MachineId, M)>,
    halt: bool,
    work: u64,
}

/// One machine's run-long state: program, private RNG, and the per-round
/// inbox/outcome mailboxes. Owned behind a `Mutex` so pool workers can
/// claim machines in any order; each slot is only ever touched by one
/// thread at a time (the claim counter hands out disjoint indices), so the
/// locks never contend.
struct MachineSlot<P: MachineProgram> {
    program: P,
    rng: SmallRng,
    inbox: Vec<(MachineId, P::Message)>,
    halted: bool,
    /// Whether this machine steps this round (active, or reactivated by a
    /// message). Set by the driving thread before the round barrier.
    stepping: bool,
    /// The step's outcome, folded back in machine-id order after the round.
    outcome: Option<StepSlot<P::Message>>,
}

/// Immutable cluster shape shared with the step job.
struct StepCtx {
    caps: Vec<usize>,
    large: Option<MachineId>,
    machines: usize,
    /// The cluster's telemetry sink at run start, shared with every step's
    /// [`MachineCtx`] (workers record concurrently; sinks are `Sync`).
    sink: Option<Arc<dyn TraceSink>>,
}

/// How one `run` ended, before panic payloads are re-raised.
enum DriveEnd {
    Done(u64),
    Failed(ExecError),
    Panicked(PanicPayload),
}

/// The between-rounds view a [`run_hooked`](Executor::run_hooked) hook
/// gets: the machines' programs and pending inboxes at the top of a round,
/// before any machine steps. The hook always runs on the driving thread —
/// in every [`ExecMode`] — so whatever it does is bit-identical between
/// serial and pool runs.
///
/// Mutating access ([`with`](WaveRound::with), [`wake`](WaveRound::wake))
/// marks the round *dirty*; with a fault plan attached, a dirty round
/// forces a checkpoint before stepping, because hook-time mutations happen
/// outside [`MachineProgram::step`] and replay-from-checkpoint could not
/// otherwise reproduce them.
pub struct WaveRound<'a, P: MachineProgram> {
    slots: &'a [Mutex<MachineSlot<P>>],
    round: u64,
    dirty: Cell<bool>,
}

impl<P: MachineProgram> WaveRound<'_, P> {
    /// The driver round about to execute (0-based program clock).
    pub fn round(&self) -> u64 {
        self.round
    }

    /// Number of machines.
    pub fn machines(&self) -> usize {
        self.slots.len()
    }

    /// Read-only access to one machine's program and pending inbox (does
    /// not mark the round dirty — completion scans stay checkpoint-free).
    pub fn peek<R>(
        &self,
        mid: MachineId,
        f: impl FnOnce(&P, &[(MachineId, P::Message)]) -> R,
    ) -> R {
        let s = self.slots[mid].lock().unwrap();
        f(&s.program, &s.inbox)
    }

    /// Mutable access to one machine's program; marks the round dirty.
    pub fn with<R>(&self, mid: MachineId, f: impl FnOnce(&mut P) -> R) -> R {
        self.dirty.set(true);
        let mut s = self.slots[mid].lock().unwrap();
        f(&mut s.program)
    }

    /// Mutable access to one machine's program *and* its pending inbox;
    /// marks the round dirty. This is the quarantine primitive: cancelling
    /// a job mid-wave must purge its in-flight mail along with its lane,
    /// or the next step would deliver messages to a lane that no longer
    /// exists (DESIGN.md §2.9).
    pub fn with_mail<R>(
        &self,
        mid: MachineId,
        f: impl FnOnce(&mut P, &mut Vec<(MachineId, P::Message)>) -> R,
    ) -> R {
        self.dirty.set(true);
        let mut s = self.slots[mid].lock().unwrap();
        let MachineSlot {
            ref mut program,
            ref mut inbox,
            ..
        } = *s;
        f(program, inbox)
    }

    /// Clears a machine's halt vote so it steps this round (admission into
    /// an otherwise-idle wave); marks the round dirty.
    pub fn wake(&self, mid: MachineId) {
        self.dirty.set(true);
        self.slots[mid].lock().unwrap().halted = false;
    }
}

/// A [`run_hooked`](Executor::run_hooked) coordinator callback: runs at
/// the top of every round, may mutate programs through the [`WaveRound`],
/// and returns whether work is still *queued* beyond what is running (so
/// the driver keeps the round loop alive across full drains instead of
/// ending the run).
pub type RoundHook<'h, P> =
    &'h mut dyn FnMut(&mut Cluster, &WaveRound<'_, P>) -> Result<bool, ExecError>;

impl Executor {
    /// An executor labeling its exchanges `{label}.r{round}`.
    pub fn new(label: &str, mode: ExecMode) -> Self {
        Executor {
            label: label.to_string(),
            mode,
            max_rounds: 100_000,
            threads: 0,
        }
    }

    /// Serial executor (reference schedule).
    pub fn serial(label: &str) -> Self {
        Executor::new(label, ExecMode::Serial)
    }

    /// Parallel executor (persistent worker pool, dynamic claiming).
    pub fn parallel(label: &str) -> Self {
        Executor::new(label, ExecMode::Parallel)
    }

    /// Overrides the termination safety net (default 100 000 rounds).
    pub fn max_rounds(mut self, limit: u64) -> Self {
        self.max_rounds = limit.max(1);
        self
    }

    /// Caps worker threads in parallel mode (0 = one per available core,
    /// overridable via the `MPC_POOL_THREADS` environment variable — the
    /// knob CI's pool-thread matrix turns without touching call sites).
    pub fn threads(mut self, n: usize) -> Self {
        self.threads = n;
        self
    }

    fn worker_threads(&self) -> usize {
        if self.threads > 0 {
            return self.threads;
        }
        if let Some(n) = std::env::var("MPC_POOL_THREADS")
            .ok()
            .and_then(|v| v.trim().parse::<usize>().ok())
            .filter(|&n| n > 0)
        {
            return n;
        }
        std::thread::available_parallelism().map_or(4, |n| n.get())
    }

    /// Runs `programs` (one per machine) to completion.
    ///
    /// Every round: step all active machines, charge each machine's message
    /// volume plus [`MachineCtx::charge`]d extra as local work, then move
    /// the union of outboxes through one capacity-checked
    /// [`exchange`](Cluster::exchange). Ends when all machines have halted
    /// with nothing in flight.
    ///
    /// # Errors
    ///
    /// [`ExecError::Model`] on a capacity violation in strict mode;
    /// [`ExecError::RoundLimit`] if the program fails to terminate.
    ///
    /// # Panics
    ///
    /// Panics if `programs.len()` differs from the cluster's machine count,
    /// or if a [`MachineProgram::step`] panics (the panic is re-raised on
    /// the calling thread in every mode).
    pub fn run<P: MachineProgram>(
        &self,
        cluster: &mut Cluster,
        programs: Vec<P>,
    ) -> Result<ExecOutcome<P>, ExecError> {
        self.run_inner(cluster, programs, None)
    }

    /// [`run`](Executor::run) with a coordinator hook called at the top of
    /// every round, before any machine steps — the service scheduler's
    /// admission point. The hook runs on the driving thread in every mode
    /// (so serial == pool bit-equality extends to hooked runs), may mutate
    /// machine programs through the [`WaveRound`], and reports whether
    /// more work is queued; while it does, the driver keeps the loop alive
    /// through fully-drained rounds (empty exchanges) instead of ending
    /// the run.
    ///
    /// # Errors
    ///
    /// Everything [`run`](Executor::run) returns, plus any error the hook
    /// itself raises (which aborts the run).
    pub fn run_hooked<P: MachineProgram>(
        &self,
        cluster: &mut Cluster,
        programs: Vec<P>,
        hook: RoundHook<'_, P>,
    ) -> Result<ExecOutcome<P>, ExecError> {
        self.run_inner(cluster, programs, Some(hook))
    }

    fn run_inner<P: MachineProgram>(
        &self,
        cluster: &mut Cluster,
        programs: Vec<P>,
        hook: Option<RoundHook<'_, P>>,
    ) -> Result<ExecOutcome<P>, ExecError> {
        let k = cluster.machines();
        assert_eq!(programs.len(), k, "need exactly one program per machine");
        let start = Instant::now();
        let ctx = StepCtx {
            caps: (0..k).map(|m| cluster.capacity(m)).collect(),
            large: cluster.large(),
            machines: k,
            sink: cluster.trace_sink(),
        };

        // Move each machine's program and private RNG into its slot for the
        // duration of the run (the RNGs go back below, stream positions
        // intact, so the cluster observes exactly a serial execution).
        let mut slots: Vec<Mutex<MachineSlot<P>>> = programs
            .into_iter()
            .zip(cluster.rngs_mut().iter_mut())
            .map(|(program, rng)| {
                Mutex::new(MachineSlot {
                    program,
                    rng: std::mem::replace(rng, SmallRng::seed_from_u64(0)),
                    inbox: Vec::new(),
                    halted: false,
                    stepping: false,
                    outcome: None,
                })
            })
            .collect();

        let tracing = ctx.sink.is_some();
        let mut pool_stats: Option<PoolStats> = None;

        // Serial and spawn-per-round wrap their stepping in `catch_unwind`
        // for the same reason the pool catches on its workers: a step panic
        // must flow through `DriveEnd::Panicked` so the RNG/program
        // restoration below runs before the payload is re-raised —
        // post-panic cluster state is identical in every mode.
        let end = match self.mode {
            ExecMode::Serial => {
                let slots = &slots;
                self.drive(cluster, slots, hook, &mut |_mid, _on| {}, &mut |round| {
                    std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                        for mid in 0..k {
                            step_slot(&slots[mid], mid, &ctx, round);
                        }
                    }))
                })
            }
            ExecMode::SpawnPerRound => {
                let threads = self.worker_threads().min(k).max(1);
                let chunk = k.div_ceil(threads);
                let ids: Vec<usize> = (0..k).collect();
                let slots = &slots;
                let ctx = &ctx;
                self.drive(cluster, slots, hook, &mut |_mid, _on| {}, &mut |round| {
                    std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                        std::thread::scope(|scope| {
                            for chunk_ids in ids.chunks(chunk) {
                                scope.spawn(move || {
                                    for &mid in chunk_ids {
                                        step_slot(&slots[mid], mid, ctx, round);
                                    }
                                });
                            }
                        });
                    }))
                })
            }
            ExecMode::Parallel => {
                let pool =
                    PoolCore::new(k, self.worker_threads().min(k).max(1)).with_stats(tracing);
                let sink = ctx.sink.clone();
                let slots_ref = &slots;
                let ctx = &ctx;
                let job = move |mid: usize, round: u64| step_slot(&slots_ref[mid], mid, ctx, round);
                let stats = &mut pool_stats;
                std::thread::scope(|scope| {
                    pool.spawn_workers(scope, &job);
                    // Publish each round's activity flags to the pool, so
                    // workers skip idle machines (halted, nothing in the
                    // inbox) without a mutex claim cycle.
                    let end = self.drive(
                        cluster,
                        slots_ref,
                        hook,
                        &mut |mid, on| pool.set_active(mid, on),
                        &mut |round| {
                            let result = pool.run_round(round);
                            if result.is_ok() && tracing {
                                // Drain this round's per-worker counters into
                                // the run totals and the event stream.
                                let round_stats = pool.take_round_stats();
                                if let Some(sink) = &sink {
                                    for (worker, s) in round_stats.iter().enumerate() {
                                        sink.record(&TraceEvent::WorkerRound {
                                            round,
                                            worker,
                                            claimed: s.claimed as usize,
                                            stepped: s.stepped as usize,
                                            idle_skips: s.idle_skips as usize,
                                            wait_ns: s.wait_ns,
                                            busy_ns: s.busy_ns,
                                        });
                                    }
                                }
                                stats
                                    .get_or_insert_with(PoolStats::default)
                                    .add_round(&round_stats);
                            }
                            result
                        },
                    );
                    // Every exit path must release the workers, or the
                    // scope's implicit join would hang.
                    pool.shutdown();
                    end
                })
            }
        };

        // Replica shards live only as long as the run that placed them.
        if cluster.fault_plan().is_some() {
            cluster.release("replica");
        }

        // Hand the programs and the advanced RNG streams back. A panicking
        // step poisons its slot's mutex; ignore the poison here so the
        // *original* payload (not a `PoisonError`) reaches the caller.
        let mut programs = Vec::with_capacity(k);
        for (slot, rng) in slots.iter_mut().zip(cluster.rngs_mut().iter_mut()) {
            let slot = slot.get_mut().unwrap_or_else(|p| p.into_inner());
            std::mem::swap(rng, &mut slot.rng);
        }
        for slot in slots {
            let slot = slot.into_inner().unwrap_or_else(|p| p.into_inner());
            programs.push(slot.program);
        }

        match end {
            DriveEnd::Done(rounds) => Ok(ExecOutcome {
                programs,
                rounds,
                wall: start.elapsed(),
                pool: pool_stats,
            }),
            DriveEnd::Failed(e) => Err(e),
            DriveEnd::Panicked(payload) => std::panic::resume_unwind(payload),
        }
    }

    /// The mode-independent round loop: activation flags, the step barrier
    /// (`step_all`), machine-order fold-back, and the exchange — with the
    /// outbox/inbox buffers reused across rounds.
    fn drive<P: MachineProgram>(
        &self,
        cluster: &mut Cluster,
        slots: &[Mutex<MachineSlot<P>>],
        mut hook: Option<RoundHook<'_, P>>,
        mark_active: &mut dyn FnMut(MachineId, bool),
        step_all: &mut dyn FnMut(u64) -> Result<(), PanicPayload>,
    ) -> DriveEnd {
        let k = slots.len();
        let prefix: Arc<str> = Arc::from(self.label.as_str());
        let sink = cluster.trace_sink();
        let mut outgoing: Vec<Vec<(MachineId, P::Message)>> = (0..k).map(|_| Vec::new()).collect();
        let mut inboxes: Vec<Vec<(MachineId, P::Message)>> = Vec::new();
        let mut round: u64 = 0;
        // Fault tolerance engages only when a plan is attached; a plain run
        // takes none of the branches below and stays bit-identical.
        let mut recovery: Option<RecoveryState<P>> = cluster
            .fault_plan()
            .is_some()
            .then(|| RecoveryState::new(cluster, &self.label));

        loop {
            // Coordinator hook first: admissions/retirements land before
            // activation flags, the forced checkpoint, and any stepping,
            // so every mode sees the identical post-hook state.
            let mut hook_pending = false;
            let mut hook_dirty = false;
            if let Some(h) = hook.as_mut() {
                let view = WaveRound {
                    slots,
                    round,
                    dirty: Cell::new(false),
                };
                match h(cluster, &view) {
                    Ok(pending) => {
                        hook_pending = pending;
                        hook_dirty = view.dirty.get();
                    }
                    Err(e) => return DriveEnd::Failed(e),
                }
            }
            let mut stepping_count = 0usize;
            for (mid, slot) in slots.iter().enumerate() {
                let mut s = slot.lock().unwrap();
                s.stepping = !s.halted || !s.inbox.is_empty();
                mark_active(mid, s.stepping);
                stepping_count += s.stepping as usize;
            }
            if stepping_count == 0 {
                break;
            }
            if round >= self.max_rounds {
                return DriveEnd::Failed(ExecError::RoundLimit {
                    limit: self.max_rounds,
                });
            }
            if let Some(rec) = &mut recovery {
                // Checkpoint *before* stepping: a snapshot of the state the
                // round starts from, so a crash at any later round replays
                // forward from here. A hook-dirtied round forces one — the
                // hook's mutations happen outside `step`, so a replay from
                // any earlier checkpoint could not reproduce them.
                if hook_dirty || round.is_multiple_of(rec.policy.cadence.max(1)) {
                    if let Err(e) = rec.checkpoint(cluster, slots, round) {
                        return DriveEnd::Failed(e);
                    }
                }
            }
            if let Some(sink) = &sink {
                sink.record(&TraceEvent::StepSchedule {
                    round,
                    stepping: stepping_count,
                    machines: k,
                });
            }

            if let Err(payload) = step_all(round) {
                return DriveEnd::Panicked(payload);
            }

            // Fold results back in machine order (deterministic regardless
            // of which thread ran which machine).
            let mut any_messages = false;
            let mut all_halted = true;
            for (mid, slot) in slots.iter().enumerate() {
                let mut s = slot.lock().unwrap();
                if let Some(step) = s.outcome.take() {
                    s.halted = step.halt;
                    any_messages |= !step.outbox.is_empty();
                    if step.work > 0 {
                        cluster.charge_work(mid, step.work);
                    }
                    outgoing[mid] = step.outbox;
                } else {
                    outgoing[mid].clear();
                }
                all_halted &= s.halted;
            }

            if !any_messages && all_halted && !hook_pending {
                // Everyone is done and nothing is in flight: no final
                // exchange, the round was pure local wind-down. With work
                // still queued behind a hook, fall through instead — the
                // (empty) exchange keeps the round clock monotone and the
                // next iteration's hook admits from the queue.
                break;
            }
            // With a plan attached, peek the faults the armed exchange is
            // about to fire and capture the mail they would destroy, then
            // arm: crashes and drops may hit only algorithm exchanges.
            let capture = match &recovery {
                Some(_) => {
                    let imminent = cluster.imminent_armed_faults();
                    let cap =
                        (!imminent.is_empty()).then(|| capture_for_faults(&outgoing, &imminent));
                    cluster.arm_faults(true);
                    cap
                }
                None => None,
            };
            let exchanged = cluster.exchange_into(
                RoundLabel::with_seq(&prefix, round),
                &mut outgoing,
                &mut inboxes,
            );
            if recovery.is_some() {
                cluster.arm_faults(false);
            }
            if let Err(v) = exchanged {
                return DriveEnd::Failed(v.into());
            }
            if let Some(rec) = &mut recovery {
                let disruptive: Vec<FiredFault> = cluster
                    .take_fired_faults()
                    .into_iter()
                    .filter(|f| f.fault.needs_arming())
                    .collect();
                if !disruptive.is_empty() {
                    let capture =
                        capture.expect("armed faults were peeked before the exchange fired them");
                    if let Err(e) =
                        rec.recover(cluster, slots, capture, &disruptive, round, &mut inboxes)
                    {
                        return DriveEnd::Failed(e);
                    }
                }
                rec.log_inboxes(&inboxes);
            }
            round += 1;
            for (mid, slot) in slots.iter().enumerate() {
                let mut s = slot.lock().unwrap();
                std::mem::swap(&mut s.inbox, &mut inboxes[mid]);
            }
        }

        DriveEnd::Done(round)
    }
}

/// Steps one machine: builds its context, runs the program, records the
/// outcome and the deterministic work charge (inbox + outbox words + any
/// explicitly charged computation). The slot lock is uncontended by
/// construction — each machine index is handed to exactly one thread.
fn step_slot<P: MachineProgram>(
    slot: &Mutex<MachineSlot<P>>,
    mid: MachineId,
    ctx: &StepCtx,
    round: u64,
) {
    let mut slot = match slot.lock() {
        Ok(s) => s,
        Err(poisoned) => poisoned.into_inner(),
    };
    let slot = &mut *slot;
    if !slot.stepping {
        slot.outcome = None;
        return;
    }
    let inbox = std::mem::take(&mut slot.inbox);
    let inbox_words: usize = inbox
        .iter()
        .map(|(_, m)| mpc_runtime::Payload::words(m))
        .sum();
    let mctx = MachineCtx::new(
        mid,
        ctx.machines,
        ctx.large,
        ctx.caps[mid],
        round,
        &mut slot.rng,
        ctx.sink.as_deref(),
    );
    let outcome = slot.program.step(&mctx, inbox);
    let extra = mctx.charged();
    let (outbox, halt) = match outcome {
        StepOutcome::Send(outbox) => (outbox, false),
        StepOutcome::Halt => (Vec::new(), true),
    };
    let outbox_words: usize = outbox
        .iter()
        .map(|(_, m)| mpc_runtime::Payload::words(m))
        .sum();
    slot.outcome = Some(StepSlot {
        outbox,
        halt,
        work: inbox_words as u64 + outbox_words as u64 + extra,
    });
}

/// One small machine's checkpoint: everything replay needs to reconstruct
/// the machine at the *top* of driver round `round` (before stepping).
struct Checkpoint<P: MachineProgram> {
    program: P,
    rng: SmallRng,
    halted: bool,
    inbox: Vec<(MachineId, P::Message)>,
    round: u64,
}

/// A crashed machine's state replayed forward to just *after* stepping the
/// disrupted round.
struct Replayed<P: MachineProgram> {
    program: P,
    rng: SmallRng,
    halted: bool,
    outbox: Vec<(MachineId, P::Message)>,
    replayed: u64,
}

/// Pre-exchange capture of the mail an imminent armed fault would destroy.
struct FaultCapture<M> {
    /// Full inbox each imminent crash victim would have received, in
    /// delivery order (ascending source, then send order).
    mail_to: BTreeMap<MachineId, Vec<(MachineId, M)>>,
    /// Round outbox of each imminent crash/drop victim.
    outbox_of: BTreeMap<MachineId, Vec<(MachineId, M)>>,
}

/// Clones exactly the mail the `imminent` faults would lose out of the
/// round's outboxes, before [`Cluster::exchange_into`] consumes them.
fn capture_for_faults<M: Clone>(
    outgoing: &[Vec<(MachineId, M)>],
    imminent: &[Fault],
) -> FaultCapture<M> {
    let mut mail_to: BTreeMap<MachineId, Vec<(MachineId, M)>> = BTreeMap::new();
    let mut outbox_of: BTreeMap<MachineId, Vec<(MachineId, M)>> = BTreeMap::new();
    for f in imminent {
        match f {
            Fault::Crash { machine, .. } => {
                mail_to.entry(*machine).or_default();
                outbox_of
                    .entry(*machine)
                    .or_insert_with(|| outgoing[*machine].clone());
            }
            Fault::DropExchange { machine, .. } => {
                outbox_of
                    .entry(*machine)
                    .or_insert_with(|| outgoing[*machine].clone());
            }
            _ => {}
        }
    }
    // Outboxes are walked source-major, so each victim's captured mail is
    // already in the exchange's delivery order.
    for (src, msgs) in outgoing.iter().enumerate() {
        for (dst, msg) in msgs {
            if let Some(mail) = mail_to.get_mut(dst) {
                mail.push((src, msg.clone()));
            }
        }
    }
    FaultCapture { mail_to, outbox_of }
}

/// Stable merge of recovery deliveries into a round inbox by ascending
/// source id. The two lists never share a source *for the same
/// destination* (a crashed destination's main inbox is empty; a healthy
/// destination only receives recovery mail from disrupted sources, whose
/// main-exchange messages were filtered), so the merge reconstructs
/// exactly the fault-free delivery order.
fn merge_by_src<M>(main: &mut Vec<(MachineId, M)>, extra: Vec<(MachineId, M)>) {
    if extra.is_empty() {
        return;
    }
    if main.is_empty() {
        *main = extra;
        return;
    }
    let old = std::mem::take(main);
    main.reserve(old.len() + extra.len());
    let mut a = old.into_iter().peekable();
    let mut b = extra.into_iter().peekable();
    loop {
        let take_a = match (a.peek(), b.peek()) {
            (Some((sa, _)), Some((sb, _))) => sa <= sb,
            (Some(_), None) => true,
            (None, Some(_)) => false,
            (None, None) => break,
        };
        match take_a {
            true => main.push(a.next().expect("peeked")),
            false => main.push(b.next().expect("peeked")),
        }
    }
}

/// The driver-side half of fault tolerance (DESIGN.md §2.7, §2.9):
/// replicated checkpoints of every small machine's shard, a durable-host
/// checkpoint of the large machine (coordinator failover), an inbox log
/// for replay, and the recovery protocol that reknits a disrupted round.
/// Created only when a [`FaultPlan`](mpc_runtime::FaultPlan) is attached —
/// fault-free runs never construct one.
struct RecoveryState<P: MachineProgram> {
    policy: RecoveryPolicy,
    small_ids: Vec<MachineId>,
    caps: Vec<usize>,
    large: Option<MachineId>,
    machines: usize,
    /// Latest checkpoint per machine (`None` for programs without snapshot
    /// support). Small machines additionally ship replica chunks to ring
    /// successors; the large machine's checkpoint stays on the durable
    /// host, with its staging copy charged to the large machine's own
    /// resident memory.
    checkpoints: Vec<Option<Checkpoint<P>>>,
    /// `inbox_log[m][i]`: machine `m`'s committed inbox for driver round
    /// `checkpoint.round + 1 + i` — the message durability that lets replay
    /// re-feed a crashed machine without re-running its peers.
    inbox_log: Vec<Vec<Vec<(MachineId, P::Message)>>>,
    ckpt_prefix: Arc<str>,
    rec_prefix: Arc<str>,
    ckpt_seq: u64,
    rec_seq: u64,
    /// Reusable outbox buffers for the replication exchange.
    ckpt_out: Vec<Vec<(MachineId, ReplicaChunk)>>,
    ckpt_in: Vec<Vec<(MachineId, ReplicaChunk)>>,
}

impl<P: MachineProgram> RecoveryState<P> {
    fn new(cluster: &Cluster, label: &str) -> Self {
        let k = cluster.machines();
        RecoveryState {
            policy: cluster
                .fault_plan()
                .expect("recovery requires an attached plan")
                .policy()
                .clone(),
            small_ids: cluster.small_ids(),
            caps: (0..k).map(|m| cluster.capacity(m)).collect(),
            large: cluster.large(),
            machines: k,
            checkpoints: (0..k).map(|_| None).collect(),
            inbox_log: (0..k).map(|_| Vec::new()).collect(),
            ckpt_prefix: Arc::from(format!("{label}.ckpt").as_str()),
            rec_prefix: Arc::from(format!("{label}.recover").as_str()),
            ckpt_seq: 0,
            rec_seq: 0,
            ckpt_out: (0..k).map(|_| Vec::new()).collect(),
            ckpt_in: Vec::new(),
        }
    }

    /// Snapshots every machine at the top of `round`. Small shards ship to
    /// their ring-successor replica owners through one disarmed,
    /// capacity-checked exchange — replication is real traffic, charged
    /// like any algorithm round, and the resident copies are charged to
    /// their owners' memory until the run ends. The large machine's
    /// O(n^{1+f})-word shard fits on no small peer; it checkpoints to the
    /// durable host instead (the same fiction §2.7 grants the network),
    /// with the staging copy charged against the large machine's own
    /// capacity so the redundancy is still paid for in the model.
    fn checkpoint(
        &mut self,
        cluster: &mut Cluster,
        slots: &[Mutex<MachineSlot<P>>],
        round: u64,
    ) -> Result<(), ExecError> {
        let n = self.small_ids.len();
        let replicas = self.policy.replicas.min(n.saturating_sub(1));
        let mut owned = vec![0usize; self.machines];
        for idx in 0..n {
            let m = self.small_ids[idx];
            let (snapshot, words) = {
                let s = slots[m].lock().unwrap_or_else(|p| p.into_inner());
                let words = s.program.state_words();
                let ck = s.program.snapshot().map(|program| Checkpoint {
                    program,
                    rng: s.rng.clone(),
                    halted: s.halted,
                    inbox: s.inbox.clone(),
                    round,
                });
                (ck, words)
            };
            let have = snapshot.is_some();
            self.checkpoints[m] = snapshot;
            self.inbox_log[m].clear();
            if have {
                for r in 1..=replicas {
                    let owner = self.small_ids[(idx + r) % n];
                    self.ckpt_out[m].push((owner, ReplicaChunk(words)));
                    owned[owner] += words;
                }
            }
        }
        if let Some(large) = self.large {
            let (snapshot, words) = {
                let s = slots[large].lock().unwrap_or_else(|p| p.into_inner());
                let words = s.program.state_words();
                let ck = s.program.snapshot().map(|program| Checkpoint {
                    program,
                    rng: s.rng.clone(),
                    halted: s.halted,
                    inbox: s.inbox.clone(),
                    round,
                });
                (ck, words)
            };
            let have = snapshot.is_some();
            self.checkpoints[large] = snapshot;
            self.inbox_log[large].clear();
            if have {
                owned[large] += words;
            }
        }
        cluster
            .exchange_into(
                RoundLabel::with_seq(&self.ckpt_prefix, self.ckpt_seq),
                &mut self.ckpt_out,
                &mut self.ckpt_in,
            )
            .map_err(ExecError::Model)?;
        self.ckpt_seq += 1;
        cluster
            .account_all("replica", &owned)
            .map_err(ExecError::Model)?;
        Ok(())
    }

    /// Records the committed inboxes of round `checkpoint.round + 1 + len`
    /// for every machine, large included — coordinator replay re-feeds the
    /// same durable mail as any small machine's.
    fn log_inboxes(&mut self, inboxes: &[Vec<(MachineId, P::Message)>]) {
        for (log, inbox) in self.inbox_log.iter_mut().zip(inboxes) {
            log.push(inbox.clone());
        }
    }

    /// Rebuilds crashed machine `m` from its replica checkpoint and replays
    /// it forward through driver round `upto`, re-feeding the logged
    /// inboxes. Returns the replayed state plus the total work words the
    /// replay performed (charged to the recovery exchange's makespan).
    fn replay(&self, m: MachineId, upto: u64) -> Result<(Replayed<P>, u64), ExecError> {
        let n = self.small_ids.len();
        // The peer-replica requirement applies to small machines only: the
        // large machine replays from its durable-host checkpoint and never
        // needed a peer in the first place.
        if Some(m) != self.large && self.policy.replicas.min(n.saturating_sub(1)) == 0 {
            return Err(ExecError::Unrecoverable {
                machine: m,
                round: upto,
                reason: "no replica peer (replicas = 0 or a lone small machine)".to_string(),
            });
        }
        let ck = self
            .checkpoints
            .get(m)
            .and_then(Option::as_ref)
            .ok_or_else(|| ExecError::Unrecoverable {
                machine: m,
                round: upto,
                reason: "no checkpoint snapshot (program opts out of recovery)".to_string(),
            })?;
        let mut program = ck
            .program
            .snapshot()
            .ok_or_else(|| ExecError::Unrecoverable {
                machine: m,
                round: upto,
                reason: "checkpoint cannot be re-instantiated".to_string(),
            })?;
        let mut rng = ck.rng.clone();
        let mut halted = ck.halted;
        let mut outbox: Vec<(MachineId, P::Message)> = Vec::new();
        let mut replayed = 0u64;
        let mut work = 0u64;
        for j in ck.round..=upto {
            let inbox: Vec<(MachineId, P::Message)> = if j == ck.round {
                ck.inbox.clone()
            } else {
                let i = (j - ck.round - 1) as usize;
                self.inbox_log[m]
                    .get(i)
                    .cloned()
                    .ok_or_else(|| ExecError::Unrecoverable {
                        machine: m,
                        round: upto,
                        reason: format!("replay log has no inbox for round {j}"),
                    })?
            };
            outbox.clear();
            if !halted || !inbox.is_empty() {
                let inbox_words: usize = inbox
                    .iter()
                    .map(|(_, msg)| mpc_runtime::Payload::words(msg))
                    .sum();
                let mctx = MachineCtx::new(
                    m,
                    self.machines,
                    self.large,
                    self.caps[m],
                    j,
                    &mut rng,
                    None,
                );
                let outcome = program.step(&mctx, inbox);
                let extra = mctx.charged();
                let (ob, halt) = match outcome {
                    StepOutcome::Send(ob) => (ob, false),
                    StepOutcome::Halt => (Vec::new(), true),
                };
                let outbox_words: usize = ob
                    .iter()
                    .map(|(_, msg)| mpc_runtime::Payload::words(msg))
                    .sum();
                work += inbox_words as u64 + outbox_words as u64 + extra;
                outbox = ob;
                halted = halt;
                replayed += 1;
            }
        }
        Ok((
            Replayed {
                program,
                rng,
                halted,
                outbox,
                replayed,
            },
            work,
        ))
    }

    /// The recovery protocol for one disrupted algorithm exchange:
    /// quarantine and replay every crash victim, then re-send exactly the
    /// destroyed mail through an armed recovery exchange (retried with
    /// backoff if the chaos plan disrupts the recovery itself), and merge
    /// the deliveries into the round's inboxes so downstream rounds are
    /// bit-identical to a fault-free run.
    fn recover(
        &mut self,
        cluster: &mut Cluster,
        slots: &[Mutex<MachineSlot<P>>],
        capture: FaultCapture<P::Message>,
        fired: &[FiredFault],
        round: u64,
        inboxes: &mut [Vec<(MachineId, P::Message)>],
    ) -> Result<(), ExecError> {
        let sink = cluster.trace_sink();
        let crashes: BTreeSet<MachineId> = fired
            .iter()
            .filter_map(|f| match f.fault {
                Fault::Crash { machine, .. } => Some(machine),
                _ => None,
            })
            .collect();
        let drops: BTreeSet<MachineId> = fired
            .iter()
            .filter_map(|f| match f.fault {
                Fault::DropExchange { machine, .. } => Some(machine),
                _ => None,
            })
            .collect();

        // Every crash victim — the large machine included, since its shard
        // checkpoints to the durable host — is quarantined and then
        // replayed below.
        for &m in &crashes {
            if let Some(sink) = &sink {
                sink.record(&TraceEvent::MachineQuarantined {
                    round: cluster.rounds(),
                    machine: m,
                });
            }
        }

        // Replay every crash victim from its replica checkpoint; the
        // replayed compute lands in the recovery exchange's makespan.
        let mut restored: BTreeMap<MachineId, Replayed<P>> = BTreeMap::new();
        for &m in &crashes {
            let (rp, work) = self.replay(m, round)?;
            if work > 0 {
                cluster.charge_work(m, work);
            }
            restored.insert(m, rp);
        }

        // The recovery exchange re-sends exactly the destroyed mail: each
        // disrupted sender's round outbox to *healthy* recipients, plus
        // each crash victim's full lost inbox (crashed recipients get
        // their disrupted-sender mail through that second path — exactly
        // one path carries every lost message). Rebuilt wholesale per
        // attempt: a disrupted attempt's deliveries are discarded.
        let mut rec_in: Vec<Vec<(MachineId, P::Message)>> = Vec::new();
        let mut attempt = 0usize;
        let committed_attempt = loop {
            attempt += 1;
            if attempt > self.policy.max_retries {
                let machine = crashes.iter().next().copied().unwrap_or(0);
                return Err(ExecError::Unrecoverable {
                    machine,
                    round,
                    reason: format!(
                        "recovery retries exhausted after {} attempts",
                        self.policy.max_retries
                    ),
                });
            }
            if attempt > 1 {
                cluster.add_pending_delay(self.policy.backoff_seconds * (attempt - 1) as f64);
            }
            for &m in restored.keys() {
                cluster.restore_machine(m);
            }
            let mut rec_out: Vec<Vec<(MachineId, P::Message)>> =
                (0..self.machines).map(|_| Vec::new()).collect();
            for &d in crashes.iter().chain(drops.iter()) {
                let outbox = capture
                    .outbox_of
                    .get(&d)
                    .expect("every fired crash/drop was captured pre-exchange");
                for (dst, msg) in outbox {
                    if !crashes.contains(dst) {
                        rec_out[d].push((*dst, msg.clone()));
                    }
                }
            }
            for &m in &crashes {
                if let Some(mail) = capture.mail_to.get(&m) {
                    for (src, msg) in mail {
                        rec_out[*src].push((m, msg.clone()));
                    }
                }
            }
            // Armed: the plan may disrupt the recovery itself — that is
            // what the retry loop and backoff are for.
            cluster.arm_faults(true);
            let res = cluster.exchange_into(
                RoundLabel::with_seq(&self.rec_prefix, self.rec_seq),
                &mut rec_out,
                &mut rec_in,
            );
            cluster.arm_faults(false);
            self.rec_seq += 1;
            res.map_err(ExecError::Model)?;
            let again = cluster.take_fired_faults();
            let mut disrupted = false;
            for ff in &again {
                match ff.fault {
                    Fault::Crash { machine: n, .. } => {
                        disrupted = true;
                        if let Some(sink) = &sink {
                            sink.record(&TraceEvent::MachineQuarantined {
                                round: cluster.rounds(),
                                machine: n,
                            });
                        }
                        // A machine crashing *during* recovery loses its
                        // post-round state again but none of its committed
                        // round-`round` traffic: replay only, no resends.
                        let (rp, work) = self.replay(n, round)?;
                        if work > 0 {
                            cluster.charge_work(n, work);
                        }
                        restored.insert(n, rp);
                    }
                    Fault::DropExchange { .. } => disrupted = true,
                    _ => {}
                }
            }
            if !disrupted {
                break attempt;
            }
        };

        // Commit: merge the recovery deliveries into the round's inboxes
        // (reconstructing the fault-free delivery order) and install each
        // recovered machine's replayed program, RNG position, and halt
        // flag.
        for (main, extra) in inboxes.iter_mut().zip(rec_in.drain(..)) {
            merge_by_src(main, extra);
        }
        for (m, rp) in restored {
            if let Some(captured) = capture.outbox_of.get(&m) {
                debug_assert_eq!(
                    rp.outbox.len(),
                    captured.len(),
                    "deterministic replay must regenerate the captured outbox"
                );
            }
            let mut s = slots[m].lock().unwrap_or_else(|p| p.into_inner());
            s.program = rp.program;
            s.rng = rp.rng;
            s.halted = rp.halted;
            if let Some(sink) = &sink {
                sink.record(&TraceEvent::RecoveryRound {
                    round: cluster.rounds(),
                    machine: m,
                    replayed: rp.replayed,
                    attempt: committed_attempt,
                });
            }
        }
        Ok(())
    }
}
