//! The [`MachineProgram`] abstraction: an algorithm as per-machine state.
//!
//! The legacy call-style API (`heterogeneous_mst(&mut cluster, ...)`) is a
//! loop that *owns* the cluster: it computes every machine's "free local
//! computation" inline, serially, so wall-clock scales with cluster size.
//! A [`MachineProgram`] inverts that: the algorithm is **data** — one state
//! machine per machine — and the [`Executor`](crate::Executor) drives all
//! of them, concurrently if asked, one synchronous round at a time.
//!
//! Semantics (Pregel-style, adapted to the paper's model):
//!
//! * every round, each *active* machine is stepped once with the messages
//!   addressed to it last round (deterministic order: ascending source id,
//!   then send order — exactly [`Cluster::exchange`](mpc_runtime::Cluster::exchange));
//! * a machine votes to halt by returning [`StepOutcome::Halt`]; a halted
//!   machine is skipped until a message arrives, which reactivates it;
//! * the program ends when every machine has halted and no messages are in
//!   flight.

use mpc_runtime::telemetry::{TraceEvent, TraceSink};
use mpc_runtime::{MachineId, Payload};
use rand::rngs::SmallRng;
use std::cell::{Cell, RefCell, RefMut};

/// Per-round, per-machine execution context handed to
/// [`MachineProgram::step`].
///
/// Everything a machine may legally see: its own id and capacity, the
/// cluster shape, the synchronized round number, and its *private* RNG
/// stream. There is deliberately no access to other machines' state — all
/// cross-machine information flows through messages.
pub struct MachineCtx<'a> {
    /// This machine's id.
    pub mid: MachineId,
    /// Total number of machines in the cluster.
    pub machines: usize,
    /// Id of the large machine, if the topology has one.
    pub large: Option<MachineId>,
    /// This machine's memory/communication capacity in words.
    pub capacity: usize,
    /// Program-local round index (0 on the first step), identical on every
    /// machine — usable as a global phase clock.
    pub round: u64,
    rng: RefCell<&'a mut SmallRng>,
    extra_work: Cell<u64>,
    /// Telemetry sink, present only when the driving cluster has one
    /// attached — lets scheduler layers (and programs, via
    /// [`trace`](MachineCtx::trace)) emit events from inside a step.
    sink: Option<&'a dyn TraceSink>,
}

impl<'a> MachineCtx<'a> {
    pub(crate) fn new(
        mid: MachineId,
        machines: usize,
        large: Option<MachineId>,
        capacity: usize,
        round: u64,
        rng: &'a mut SmallRng,
        sink: Option<&'a dyn TraceSink>,
    ) -> Self {
        MachineCtx {
            mid,
            machines,
            large,
            capacity,
            round,
            rng: RefCell::new(rng),
            extra_work: Cell::new(0),
            sink,
        }
    }

    /// Whether a telemetry sink is listening. Guard any event construction
    /// that allocates on this, or use [`trace`](MachineCtx::trace), which
    /// only builds the event when someone is listening.
    pub fn tracing(&self) -> bool {
        self.sink.is_some()
    }

    /// Records a telemetry event; the closure runs only when a sink is
    /// attached, so a disabled run never pays for event construction.
    pub fn trace(&self, event: impl FnOnce() -> TraceEvent) {
        if let Some(sink) = self.sink {
            sink.record(&event());
        }
    }

    /// The raw sink handle, for schedulers building sub-contexts.
    pub(crate) fn sink(&self) -> Option<&'a dyn TraceSink> {
        self.sink
    }

    /// Whether this machine plays the large-machine role.
    pub fn is_large(&self) -> bool {
        self.large == Some(self.mid)
    }

    /// Ids of all non-large machines, ascending.
    ///
    /// Allocates; per-round code should prefer
    /// [`small_ids_iter`](MachineCtx::small_ids_iter).
    pub fn small_ids(&self) -> Vec<MachineId> {
        self.small_ids_iter().collect()
    }

    /// Iterator over all non-large machine ids, ascending — the
    /// allocation-free counterpart of [`small_ids`](MachineCtx::small_ids).
    pub fn small_ids_iter(&self) -> impl Iterator<Item = MachineId> + '_ {
        let large = self.large;
        (0..self.machines).filter(move |&i| Some(i) != large)
    }

    /// This machine's private RNG (the same per-machine stream
    /// [`Cluster::rng`](mpc_runtime::Cluster::rng) exposes, so a ported
    /// program draws identical values to its legacy implementation).
    pub fn rng(&self) -> RefMut<'_, &'a mut SmallRng> {
        self.rng.borrow_mut()
    }

    /// Reports `words` of local computation beyond the message volume the
    /// driver already charges; flows into the round's simulated makespan
    /// via [`Cluster::charge_work`](mpc_runtime::Cluster::charge_work).
    pub fn charge(&self, words: u64) {
        self.extra_work
            .set(self.extra_work.get().saturating_add(words));
    }

    pub(crate) fn charged(&self) -> u64 {
        self.extra_work.get()
    }
}

/// What a machine decided at the end of one step.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum StepOutcome<M> {
    /// Stay active and send these `(destination, payload)` messages (an
    /// empty vector = stay active, send nothing).
    Send(Vec<(MachineId, M)>),
    /// Vote to halt. A halted machine sends nothing and is not stepped
    /// again unless a message reactivates it.
    Halt,
}

impl<M> StepOutcome<M> {
    /// Stay active without sending anything.
    pub fn idle() -> Self {
        StepOutcome::Send(Vec::new())
    }
}

/// An algorithm expressed as a per-machine state machine.
///
/// One value of the implementing type exists *per machine*; the
/// [`Executor`](crate::Executor) steps all of them in lockstep rounds and
/// routes their messages through the cluster's capacity-checked
/// [`exchange`](mpc_runtime::Cluster::exchange). Implementations must not
/// share mutable state between instances (the driver may step them on
/// different threads); all coordination happens through messages.
pub trait MachineProgram: Send {
    /// The message type this program exchanges.
    type Message: Payload + Send;

    /// Executes one synchronous round on this machine: consume the inbox,
    /// update local state, decide what to send (or halt).
    fn step(
        &mut self,
        ctx: &MachineCtx<'_>,
        inbox: Vec<(MachineId, Self::Message)>,
    ) -> StepOutcome<Self::Message>;

    /// A deep copy of this machine's current state, used by the recovery
    /// layer to checkpoint small-machine shards (DESIGN.md §2.7), or
    /// `None` if the program cannot be checkpointed — a machine whose
    /// program returns `None` is unrecoverable if it crashes. The default
    /// opts out; `Clone` programs implement this as `Some(self.clone())`.
    fn snapshot(&self) -> Option<Self>
    where
        Self: Sized,
    {
        None
    }

    /// Declared resident shard-state words copied to each replica owner at
    /// a checkpoint — charged to the cost model as replication traffic and
    /// to the owners as resident replica memory. The default (one word) is
    /// a conservative placeholder for programs that do not size their
    /// state.
    fn state_words(&self) -> usize {
        1
    }
}
