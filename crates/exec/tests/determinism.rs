//! The engine's core guarantee: parallel execution is **bit-identical** to
//! serial execution — same results, same round logs (labels, word counts,
//! work charges, makespans), same per-machine RNG streams — for every
//! ported program, across seeds and topologies.

use mpc_core::common;
use mpc_core::ported::connectivity::{sketch_friendly_config, ConnectivityConfig};
use mpc_exec::{adapters, ExecMode};
use mpc_graph::generators;
use mpc_runtime::{Cluster, ClusterConfig, Enforcement, Topology};
use rand::RngCore;

const SEEDS: [u64; 3] = [3, 17, 9001];

/// The two cluster shapes every determinism test runs on.
fn conn_topologies(n: usize, m: usize, seed: u64) -> Vec<Cluster> {
    vec![
        // Default heterogeneous topology with a sketch-sized polylog budget.
        Cluster::new(sketch_friendly_config(n, m.max(1), seed)),
        // Coarser small machines; record violations instead of failing so
        // the comparison also covers the violation log.
        Cluster::new(
            ClusterConfig::new(n, m.max(1))
                .topology(Topology::Heterogeneous {
                    gamma: 0.5,
                    large_exponent: 1.0,
                })
                .polylog_exponent(2.6)
                .enforcement(Enforcement::Record)
                .seed(seed),
        ),
    ]
}

fn mst_topologies(n: usize, m: usize, seed: u64) -> Vec<Cluster> {
    vec![
        Cluster::new(ClusterConfig::new(n, m.max(1)).seed(seed)),
        Cluster::new(
            ClusterConfig::new(n, m.max(1))
                .topology(Topology::Custom {
                    capacities: [vec![500_000], vec![20_000; 9]].concat(),
                    large: Some(0),
                })
                .seed(seed),
        ),
    ]
}

/// Asserts full observable equality of two clusters after identical runs.
fn assert_clusters_identical(a: &mut Cluster, b: &mut Cluster, what: &str) {
    assert_eq!(a.rounds(), b.rounds(), "{what}: round counts differ");
    assert_eq!(a.round_log(), b.round_log(), "{what}: round logs differ");
    assert_eq!(
        a.violations(),
        b.violations(),
        "{what}: violation logs differ"
    );
    let eps = 1e-12;
    assert!(
        (a.critical_path_seconds() - b.critical_path_seconds()).abs() < eps,
        "{what}: critical paths differ"
    );
    // The RNG streams must be in the same position on every machine: the
    // next draw of each must agree.
    for mid in 0..a.machines() {
        assert_eq!(
            a.rng(mid).next_u64(),
            b.rng(mid).next_u64(),
            "{what}: RNG stream of machine {mid} diverged"
        );
    }
}

#[test]
fn connectivity_parallel_matches_serial() {
    for &seed in &SEEDS {
        let g = generators::gnm(96, 220, seed);
        let config = ConnectivityConfig::for_n(g.n());
        for (ti, (mut serial, mut parallel)) in conn_topologies(g.n(), g.m(), seed)
            .into_iter()
            .zip(conn_topologies(g.n(), g.m(), seed))
            .enumerate()
        {
            let input_s = common::distribute_edges(&serial, &g);
            let input_p = common::distribute_edges(&parallel, &g);
            let r_serial = adapters::heterogeneous_connectivity(
                &mut serial,
                g.n(),
                &input_s,
                &config,
                ExecMode::Serial,
            )
            .unwrap();
            let r_parallel = adapters::heterogeneous_connectivity(
                &mut parallel,
                g.n(),
                &input_p,
                &config,
                ExecMode::Parallel,
            )
            .unwrap();
            let what = format!("connectivity seed {seed} topology {ti}");
            assert_eq!(r_serial, r_parallel, "{what}: results differ");
            assert_clusters_identical(&mut serial, &mut parallel, &what);
        }
    }
}

#[test]
fn boruvka_parallel_matches_serial() {
    for &seed in &SEEDS {
        let g = generators::gnm(120, 700, seed).with_random_weights(1 << 16, seed);
        for (ti, (mut serial, mut parallel)) in mst_topologies(g.n(), g.m(), seed)
            .into_iter()
            .zip(mst_topologies(g.n(), g.m(), seed))
            .enumerate()
        {
            let input_s = common::distribute_edges(&serial, &g);
            let input_p = common::distribute_edges(&parallel, &g);
            let f_serial = adapters::boruvka_msf(&mut serial, &input_s, ExecMode::Serial).unwrap();
            let f_parallel =
                adapters::boruvka_msf(&mut parallel, &input_p, ExecMode::Parallel).unwrap();
            let what = format!("boruvka seed {seed} topology {ti}");
            assert_eq!(f_serial.keys(), f_parallel.keys(), "{what}: forests differ");
            assert_eq!(
                f_serial.total_weight, f_parallel.total_weight,
                "{what}: weights differ"
            );
            assert_clusters_identical(&mut serial, &mut parallel, &what);
        }
    }
}

#[test]
fn parallel_thread_count_does_not_change_results() {
    // 1, 2, and many worker threads must all match the serial schedule.
    use mpc_exec::{ConnectivityProgram, Executor};
    let seed = 42;
    let g = generators::gnm(80, 200, seed);
    let config = ConnectivityConfig::for_n(g.n());
    let mut reference: Option<(Vec<mpc_runtime::RoundRecord>, _)> = None;
    for threads in [1usize, 2, 8] {
        let mut cluster = Cluster::new(sketch_friendly_config(g.n(), g.m(), seed));
        let edges = common::distribute_edges(&cluster, &g);
        let programs = ConnectivityProgram::for_cluster(&cluster, g.n(), &edges, &config);
        let outcome = Executor::parallel("conn")
            .threads(threads)
            .run(&mut cluster, programs)
            .unwrap();
        let large = cluster.large().unwrap();
        let result = outcome.programs[large].result.clone().unwrap();
        let log = cluster.round_log().to_vec();
        match &reference {
            None => reference = Some((log, result)),
            Some((ref_log, ref_result)) => {
                assert_eq!(&log, ref_log, "threads={threads}: round log diverged");
                assert_eq!(&result, ref_result, "threads={threads}: result diverged");
            }
        }
    }
}
