//! Fault tolerance end to end: a deterministic fault plan crashing,
//! dropping, delaying, or slowing machines mid-run must leave every result
//! bit-identical to the fault-free execution, replication must be charged
//! as real traffic and resident memory, and unrecoverable situations must
//! surface as typed errors — never as silent corruption.

use mpc_core::common;
use mpc_exec::{registry, AlgoInput, ExecError, ExecMode, Executor, MachineProgram, StepOutcome};
use mpc_graph::generators;
use mpc_runtime::fault::{Fault, FaultPlan, RecoveryPolicy};
use mpc_runtime::telemetry::{RingSink, TraceEvent};
use mpc_runtime::{Cluster, ClusterConfig, MachineId, ModelViolation, Topology};
use rand::RngCore;
use std::sync::Arc;

/// Runs one registry algorithm with an optional fault plan and returns the
/// result digest plus each machine's post-run RNG draw (the RNG-position
/// fingerprint recovery must restore exactly).
fn run_registry(
    name: &str,
    seed: u64,
    plan: Option<FaultPlan>,
    mode: ExecMode,
) -> (u128, Vec<u64>, Cluster) {
    run_registry_sized(name, seed, plan, mode, 220, 2600)
}

/// [`run_registry`] with a caller-chosen graph size, for sweeps that cover
/// every registry name and need a smaller instance per run.
fn run_registry_sized(
    name: &str,
    seed: u64,
    plan: Option<FaultPlan>,
    mode: ExecMode,
    n: usize,
    m: usize,
) -> (u128, Vec<u64>, Cluster) {
    let g = generators::gnm(n, m, seed).with_random_weights(1 << 16, seed);
    let polylog = registry::get(name).expect("registered").polylog_exponent;
    let mut c = Cluster::new(
        ClusterConfig::new(g.n(), g.m())
            .seed(seed)
            .polylog_exponent(polylog),
    );
    let edges = common::distribute_edges(&c, &g);
    c.set_fault_plan(plan);
    let input = AlgoInput::new(g.n(), &edges);
    let out = registry::run(name, &mut c, &input, mode).expect("registry run");
    let digest = out.digest();
    let draws: Vec<u64> = c.rngs_mut().iter_mut().map(RngCore::next_u64).collect();
    (digest, draws, c)
}

#[test]
fn mid_run_crash_of_any_small_machine_is_bit_identical_to_fault_free() {
    let (clean_digest, clean_draws, clean) = run_registry("mst", 11, None, ExecMode::Serial);
    let total = clean.rounds();
    let victims = clean.small_ids();
    for &victim in &victims {
        let plan = FaultPlan::new().with_fault(Fault::Crash {
            machine: victim,
            round: (total / 2).max(1),
        });
        let (digest, draws, faulted) = run_registry("mst", 11, Some(plan), ExecMode::Serial);
        assert_eq!(
            digest, clean_digest,
            "crashing machine {victim} changed the MST result"
        );
        assert_eq!(
            draws, clean_draws,
            "crashing machine {victim} left an RNG stream at the wrong position"
        );
        assert!(
            faulted.rounds() > total,
            "recovery must have added checkpoint/recovery exchanges"
        );
    }
}

#[test]
fn large_machine_crash_recovers_every_registry_algorithm() {
    for name in registry::CANONICAL_NAMES {
        let (clean_digest, clean_draws, clean) =
            run_registry_sized(name, 13, None, ExecMode::Serial, 128, 768);
        let large = clean.large().expect("topology has a large machine");
        let plan = FaultPlan::new().with_fault(Fault::Crash {
            machine: large,
            round: (clean.rounds() / 2).max(1),
        });
        let clean_labels: Vec<String> = clean
            .round_log()
            .iter()
            .map(|r| r.label.to_string())
            .collect();
        for mode in [ExecMode::Serial, ExecMode::Parallel] {
            let (digest, draws, faulted) =
                run_registry_sized(name, 13, Some(plan.clone()), mode, 128, 768);
            assert_eq!(
                digest, clean_digest,
                "{name}: large-machine crash changed the result under {mode:?}"
            );
            assert_eq!(
                draws, clean_draws,
                "{name}: RNG positions diverged under {mode:?}"
            );
            // The algorithm's round sequence survives intact; only
            // checkpoint/recovery infrastructure rounds are added.
            let algo_labels: Vec<String> = faulted
                .round_log()
                .iter()
                .map(|r| r.label.to_string())
                .filter(|l| !l.contains(".ckpt.") && !l.contains(".recover."))
                .collect();
            assert_eq!(algo_labels, clean_labels, "{name}: round log diverged");
            assert!(faulted.rounds() > clean.rounds());
        }
    }
}

#[test]
fn crash_recovery_is_mode_independent() {
    let (clean_digest, clean_draws, clean) = run_registry("mis", 5, None, ExecMode::Serial);
    let plan = FaultPlan::seeded_single_crash(5, &clean.small_ids(), clean.rounds());
    for mode in [
        ExecMode::Serial,
        ExecMode::SpawnPerRound,
        ExecMode::Parallel,
    ] {
        let (digest, draws, _) = run_registry("mis", 5, Some(plan.clone()), mode);
        assert_eq!(digest, clean_digest, "{mode:?} diverged under recovery");
        assert_eq!(draws, clean_draws, "{mode:?} RNG positions diverged");
    }
}

#[test]
fn transient_drop_delay_and_slowdown_recover_bit_identical() {
    let (clean_digest, clean_draws, clean) =
        run_registry("connectivity", 3, None, ExecMode::Serial);
    let mid = (clean.rounds() / 2).max(1);
    let victim = clean.small_ids()[0];
    let plan = FaultPlan::new()
        .with_fault(Fault::DropExchange {
            machine: victim,
            round: mid,
        })
        .with_fault(Fault::DelayRound {
            round: mid,
            seconds: 4.0,
        })
        .with_fault(Fault::Slowdown {
            machine: victim,
            round: mid,
            factor: 0.25,
        });
    let (digest, draws, faulted) = run_registry("connectivity", 3, Some(plan), ExecMode::Serial);
    assert_eq!(digest, clean_digest);
    assert_eq!(draws, clean_draws);
    // A drop is transient: nobody is quarantined afterwards.
    for m in 0..faulted.machines() {
        assert!(!faulted.cost_model().is_quarantined(m));
    }
}

#[test]
fn fault_free_run_without_a_plan_has_zero_overhead() {
    let (_, _, c) = run_registry("mst", 7, None, ExecMode::Serial);
    assert!(
        c.round_log().iter().all(|r| {
            let label = r.label.to_string();
            !label.contains(".ckpt.") && !label.contains(".recover.")
        }),
        "no plan attached must mean no recovery infrastructure rounds"
    );
}

#[test]
fn an_attached_plan_with_unfired_faults_changes_no_result() {
    let (clean_digest, clean_draws, _) = run_registry("coloring", 9, None, ExecMode::Serial);
    // Scheduled far beyond the run: the crash never fires, but checkpoints
    // still happen — results and RNG positions must not move.
    let plan = FaultPlan::new().with_fault(Fault::Crash {
        machine: 1,
        round: 1_000_000,
    });
    let (digest, draws, c) = run_registry("coloring", 9, Some(plan), ExecMode::Serial);
    assert_eq!(digest, clean_digest);
    assert_eq!(draws, clean_draws);
    let ckpt_rounds: Vec<_> = c
        .round_log()
        .iter()
        .filter(|r| r.label.to_string().contains(".ckpt."))
        .collect();
    assert!(
        !ckpt_rounds.is_empty(),
        "an attached plan must produce replication exchanges"
    );
    assert!(
        ckpt_rounds.iter().all(|r| r.total_words > 0),
        "replication traffic must be charged words"
    );
}

// --- Direct-executor coverage with a program whose state size we control ---

/// A ring-counting program: each machine draws from its RNG every step,
/// mixes the draw and the inbox into `sum`, and passes `sum` to its ring
/// successor for `rounds` driver rounds. Exercises state, RNG position,
/// and message flow under recovery.
#[derive(Clone, Debug)]
struct RingSum {
    rounds: u64,
    sum: u64,
    state_words: usize,
}

impl RingSum {
    fn fleet(machines: usize, rounds: u64, state_words: usize) -> Vec<RingSum> {
        (0..machines)
            .map(|_| RingSum {
                rounds,
                sum: 0,
                state_words,
            })
            .collect()
    }
}

impl MachineProgram for RingSum {
    type Message = u64;

    fn step(
        &mut self,
        ctx: &mpc_exec::MachineCtx<'_>,
        inbox: Vec<(MachineId, u64)>,
    ) -> StepOutcome<u64> {
        let draw = ctx.rng().next_u64() >> 32;
        self.sum = self
            .sum
            .wrapping_add(draw)
            .wrapping_add(inbox.iter().map(|(_, w)| *w).sum::<u64>());
        if ctx.round >= self.rounds {
            return StepOutcome::Halt;
        }
        let next = (ctx.mid + 1) % ctx.machines;
        StepOutcome::Send(vec![(next, self.sum)])
    }

    fn snapshot(&self) -> Option<Self> {
        Some(self.clone())
    }

    fn state_words(&self) -> usize {
        self.state_words
    }
}

fn ring_cluster(caps: Vec<usize>, large: Option<MachineId>) -> Cluster {
    Cluster::new(
        ClusterConfig::new(64, 64)
            .topology(Topology::Custom {
                capacities: caps,
                large,
            })
            .seed(42),
    )
}

/// Runs a RingSum fleet and returns the final sums plus post-run RNG draws.
fn run_ring(cluster: &mut Cluster, rounds: u64, state_words: usize) -> (Vec<u64>, Vec<u64>) {
    let k = cluster.machines();
    let out = Executor::serial("ring")
        .run(cluster, RingSum::fleet(k, rounds, state_words))
        .expect("ring run");
    let sums = out.programs.iter().map(|p| p.sum).collect();
    let draws = cluster
        .rngs_mut()
        .iter_mut()
        .map(RngCore::next_u64)
        .collect();
    (sums, draws)
}

#[test]
fn replica_state_within_capacity_is_accounted_and_released() {
    let mut c = ring_cluster(vec![4000, 200, 200, 200], Some(0));
    c.set_fault_plan(Some(FaultPlan::new()));
    let (_, _) = run_ring(&mut c, 6, 50);
    // Each small machine held one 50-word peer replica during the run; the
    // slot is released when the run ends but stays in the peak.
    assert!(c.peak_resident()[1] >= 50);
    assert!(c.account("probe", 1, 200).is_ok(), "replica slot released");
}

#[test]
fn excess_redundancy_trips_memory_overflow() {
    let mut c = ring_cluster(vec![4000, 200, 200, 200], Some(0));
    c.set_fault_plan(Some(FaultPlan::new().with_policy(RecoveryPolicy {
        replicas: 2,
        ..RecoveryPolicy::default()
    })));
    // Each small machine already holds 150 resident words of its own; two
    // peer replicas of 60 words each fit down the wire (120 ≤ 200) but
    // push the resident total to 270 > 200.
    for m in 1..4 {
        c.account("app", m, 150).expect("within capacity");
    }
    let err = Executor::serial("ring")
        .run(&mut c, RingSum::fleet(4, 6, 60))
        .expect_err("replication must overflow the budget");
    match err {
        ExecError::Model(ModelViolation::MemoryOverflow { slot, .. }) => {
            assert_eq!(slot, "replica");
        }
        other => panic!("expected a replica memory overflow, got {other}"),
    }
}

#[test]
fn oversized_replica_chunks_trip_the_wire_capacity() {
    let mut c = ring_cluster(vec![4000, 200, 200, 200], Some(0));
    c.set_fault_plan(Some(FaultPlan::new().with_policy(RecoveryPolicy {
        replicas: 2,
        ..RecoveryPolicy::default()
    })));
    // Two 150-word chunks = 300 words sent in the replication exchange,
    // over the 200-word cap: replication is real, capacity-checked
    // traffic, not free bookkeeping.
    let err = Executor::serial("ring")
        .run(&mut c, RingSum::fleet(4, 6, 150))
        .expect_err("replication traffic must respect wire capacity");
    match err {
        ExecError::Model(ModelViolation::SendOverflow { .. }) => {}
        other => panic!("expected a send overflow, got {other}"),
    }
}

#[test]
fn crash_of_the_large_machine_recovers_from_the_durable_host_checkpoint() {
    let (clean_sums, clean_draws) = {
        let mut c = ring_cluster(vec![4000, 200, 200, 200], Some(0));
        run_ring(&mut c, 6, 2)
    };
    let mut c = ring_cluster(vec![4000, 200, 200, 200], Some(0));
    c.set_fault_plan(Some(FaultPlan::new().with_fault(Fault::Crash {
        machine: 0,
        round: 2,
    })));
    let (sums, draws) = run_ring(&mut c, 6, 2);
    assert_eq!(sums, clean_sums, "coordinator failover must be transparent");
    assert_eq!(draws, clean_draws);
    // The durable-host staging copy is charged to the large machine's own
    // resident memory at checkpoint time (2 state words here).
    assert!(c.peak_resident()[0] >= 2);
}

#[test]
fn large_machine_recovers_even_with_zero_peer_replicas() {
    // replicas = 0 leaves small machines with no recovery path, but the
    // large machine's checkpoint lives on the durable host, not a peer.
    let (clean_sums, clean_draws) = {
        let mut c = ring_cluster(vec![4000, 200, 200, 200], Some(0));
        run_ring(&mut c, 6, 2)
    };
    let mut c = ring_cluster(vec![4000, 200, 200, 200], Some(0));
    c.set_fault_plan(Some(
        FaultPlan::new()
            .with_fault(Fault::Crash {
                machine: 0,
                round: 2,
            })
            .with_policy(RecoveryPolicy {
                replicas: 0,
                ..RecoveryPolicy::default()
            }),
    ));
    let (sums, draws) = run_ring(&mut c, 6, 2);
    assert_eq!(sums, clean_sums);
    assert_eq!(draws, clean_draws);
}

#[test]
fn a_lone_small_machine_has_no_replica_peer() {
    let mut c = ring_cluster(vec![4000, 200], Some(0));
    c.set_fault_plan(Some(FaultPlan::new().with_fault(Fault::Crash {
        machine: 1,
        round: 2,
    })));
    let err = Executor::serial("ring")
        .run(&mut c, RingSum::fleet(2, 6, 2))
        .expect_err("no peer small machine to hold the replica");
    assert!(
        matches!(err, ExecError::Unrecoverable { machine: 1, .. }),
        "got {err}"
    );
}

#[test]
fn recovery_retries_with_backoff_when_the_recovery_exchange_is_disrupted() {
    let (clean_sums, clean_draws) = {
        let mut c = ring_cluster(vec![4000, 200, 200, 200], Some(0));
        run_ring(&mut c, 8, 2)
    };
    // Checkpoint cadence 100: one checkpoint exchange (cluster round 1),
    // main exchanges at cluster rounds 2.. — the crash fires at round 4,
    // the first recovery attempt (round 5) is wiped by the drop, the
    // retry (round 6) commits.
    let policy = RecoveryPolicy {
        cadence: 100,
        backoff_seconds: 2.5,
        ..RecoveryPolicy::default()
    };
    let plan = FaultPlan::new()
        .with_fault(Fault::Crash {
            machine: 2,
            round: 4,
        })
        .with_fault(Fault::DropExchange {
            machine: 1,
            round: 5,
        })
        .with_policy(policy);
    let mut c = ring_cluster(vec![4000, 200, 200, 200], Some(0));
    c.set_fault_plan(Some(plan));
    let ring = Arc::new(RingSink::unbounded());
    c.set_trace_sink(Some(ring.clone()));
    let (sums, draws) = run_ring(&mut c, 8, 2);
    assert_eq!(sums, clean_sums);
    assert_eq!(draws, clean_draws);
    let recover_rounds: Vec<_> = c
        .round_log()
        .iter()
        .filter(|r| r.label.to_string().contains(".recover."))
        .collect();
    assert_eq!(recover_rounds.len(), 2, "one wiped attempt + one commit");
    assert!(
        recover_rounds[1].makespan >= 2.5,
        "the retry must carry the backoff delay, got {}",
        recover_rounds[1].makespan
    );
    let attempts: Vec<usize> = ring
        .events()
        .iter()
        .filter_map(|e| match e {
            TraceEvent::RecoveryRound { attempt, .. } => Some(*attempt),
            _ => None,
        })
        .collect();
    assert_eq!(attempts, vec![2], "the commit happened on attempt 2");
}

#[test]
fn exhausted_retries_surface_as_unrecoverable() {
    let policy = RecoveryPolicy {
        cadence: 100,
        max_retries: 2,
        ..RecoveryPolicy::default()
    };
    // The crash fires at round 4; drops wipe recovery attempts at rounds
    // 5 and 6, exhausting max_retries = 2.
    let plan = FaultPlan::new()
        .with_fault(Fault::Crash {
            machine: 2,
            round: 4,
        })
        .with_fault(Fault::DropExchange {
            machine: 1,
            round: 5,
        })
        .with_fault(Fault::DropExchange {
            machine: 3,
            round: 6,
        })
        .with_policy(policy);
    let mut c = ring_cluster(vec![4000, 200, 200, 200], Some(0));
    c.set_fault_plan(Some(plan));
    let err = Executor::serial("ring")
        .run(&mut c, RingSum::fleet(4, 8, 2))
        .expect_err("two wiped attempts must exhaust max_retries = 2");
    match err {
        ExecError::Unrecoverable { reason, .. } => {
            assert!(reason.contains("retries exhausted"), "reason: {reason}");
        }
        other => panic!("expected retries-exhausted, got {other}"),
    }
}

#[test]
fn a_crash_during_recovery_is_replayed_on_the_retry() {
    let (clean_sums, clean_draws) = {
        let mut c = ring_cluster(vec![4000, 200, 200, 200], Some(0));
        run_ring(&mut c, 8, 2)
    };
    // Machine 2 crashes in the main exchange (round 4); machine 3 crashes
    // *during* the first recovery exchange (round 5). The retry replays
    // both and commits.
    let plan = FaultPlan::new()
        .with_fault(Fault::Crash {
            machine: 2,
            round: 4,
        })
        .with_fault(Fault::Crash {
            machine: 3,
            round: 5,
        })
        .with_policy(RecoveryPolicy {
            cadence: 100,
            ..RecoveryPolicy::default()
        });
    let mut c = ring_cluster(vec![4000, 200, 200, 200], Some(0));
    c.set_fault_plan(Some(plan));
    let (sums, draws) = run_ring(&mut c, 8, 2);
    assert_eq!(sums, clean_sums, "double crash must still recover exactly");
    assert_eq!(draws, clean_draws);
}

#[test]
fn run_report_breaks_out_recovery_overhead() {
    let g = generators::gnm(220, 2600, 13).with_random_weights(1 << 16, 13);
    let polylog = registry::get("mst").expect("registered").polylog_exponent;
    let build = || {
        Cluster::new(
            ClusterConfig::new(g.n(), g.m())
                .seed(13)
                .polylog_exponent(polylog),
        )
    };
    let mut clean = build();
    let edges = common::distribute_edges(&clean, &g);
    let input = AlgoInput::new(g.n(), &edges);
    let (_, clean_report) =
        registry::run_with_report("mst", &mut clean, &input, ExecMode::Serial).expect("clean");
    assert!(clean_report.recovery.is_empty());
    assert_eq!(clean_report.recovery.overhead_ratio(1.0), 0.0);

    let mut faulted = build();
    let edges = common::distribute_edges(&faulted, &g);
    let input = AlgoInput::new(g.n(), &edges);
    faulted.set_fault_plan(Some(FaultPlan::seeded_single_crash(
        13,
        &faulted.small_ids(),
        clean.rounds(),
    )));
    let (_, report) =
        registry::run_with_report("mst", &mut faulted, &input, ExecMode::Serial).expect("faulted");
    let r = &report.recovery;
    assert_eq!(r.faults_injected, 1);
    assert_eq!(r.machines_quarantined, 1);
    assert_eq!(r.recovery_rounds, 1);
    assert!(r.replay_rounds >= 1);
    assert!(r.checkpoint_rounds >= 1);
    assert!(r.checkpoint_makespan > 0.0);
    assert!(r.recovery_makespan > 0.0);
    let ratio = r.overhead_ratio(report.critical_path.total_seconds);
    assert!(ratio > 0.0 && ratio < 1.0, "overhead ratio {ratio}");
    let text = report.render();
    assert!(text.contains("recovery:"), "render: {text}");
}
