//! The service contract (DESIGN.md §2.8): a mixed wave of *different*
//! registry programs completes in one engine run with every job's result
//! bit-identical to a solo run under the job's seed; a queue longer than
//! the share limit drains strictly FIFO via admission-on-retirement; the
//! whole schedule — results, admission rounds, round log, RNG stream
//! positions — is identical between serial and pooled execution at any
//! thread count; and a seeded mid-wave crash recovers every tenant.

use mpc_exec::{registry, ExecMode, JobRecord, JobSpec, JobStatus, Service};
use mpc_graph::{generators, Graph};
use mpc_runtime::fault::FaultPlan;
use mpc_runtime::{Cluster, ClusterConfig};
use rand::RngCore;
use std::sync::Arc;

/// One cluster shape for every run in this file: capacities (and so the
/// programs' batch sizes) must match between the service cluster and the
/// per-job solo clusters; only the seed may differ.
fn config(g: &Graph, seed: u64) -> ClusterConfig {
    ClusterConfig::new(g.n(), g.m().max(1))
        .seed(seed)
        .polylog_exponent(2.6)
}

/// Runs `spec` alone on a fresh cluster seeded with the job's seed — the
/// oracle the service must be bit-identical to.
fn solo_digest(g: &Graph, spec: &JobSpec, mode: ExecMode) -> u128 {
    let mut cluster = Cluster::new(config(g, spec.seed));
    registry::run_job(spec, &mut cluster, mode)
        .expect("solo run")
        .digest()
}

/// Draws one value from every machine's RNG — equal vectors mean equal
/// stream positions.
fn rng_positions(cluster: &mut Cluster) -> Vec<u64> {
    (0..cluster.machines())
        .map(|mid| cluster.rng(mid).next_u64())
        .collect()
}

/// The comparable core of a record (drops nothing — JobRecord has no
/// non-deterministic fields, this just gives us Eq).
fn record_key(r: &JobRecord) -> (u64, String, usize, u64, u64, u64, bool) {
    (
        r.job,
        r.name.clone(),
        r.shares,
        r.admitted_round,
        r.completed_round,
        r.rounds,
        r.failed,
    )
}

fn weighted_graph() -> Graph {
    generators::gnm(96, 360, 7).with_random_weights(1 << 10, 7)
}

/// spanner-weighted (a multi-share multiplexed lane), matching, and mincut
/// — three different programs — sharing one engine run.
fn mixed_specs(g: &Arc<Graph>) -> Vec<JobSpec> {
    vec![
        JobSpec::new("spanner-weighted", Arc::clone(g)).seed(21),
        JobSpec::new("matching", Arc::clone(g)).seed(22),
        JobSpec::new("mincut", Arc::clone(g)).seed(23),
    ]
}

// ------------------------------------------------------- mixed wave --

#[test]
fn mixed_wave_results_are_bit_identical_to_solo_runs() {
    let g = Arc::new(weighted_graph());
    for mode in [ExecMode::Serial, ExecMode::Parallel] {
        let mut svc = Service::new(config(&g, 99));
        let handles: Vec<_> = mixed_specs(&g)
            .into_iter()
            .map(|spec| svc.submit(spec).expect("known name"))
            .collect();
        let run = svc.run(mode).expect("service run");

        // One engine run, all three programs admitted into it up front.
        assert_eq!(run.records.len(), 3);
        assert!(run.records.iter().all(|r| r.admitted_round == 0));
        assert!(run.records.iter().all(|r| !r.failed));

        for (handle, spec) in handles.iter().zip(mixed_specs(&g)) {
            assert_eq!(handle.status(), JobStatus::Completed);
            let out = handle
                .take_result()
                .expect("finished")
                .expect("no job error");
            assert_eq!(
                out.digest(),
                solo_digest(&g, &spec, mode),
                "job {} ({}) diverged from its solo run in {mode:?}",
                handle.id(),
                handle.name()
            );
        }
    }
}

#[test]
fn every_registry_algorithm_runs_as_a_service_job() {
    // All 12 registered names in one submission wave — multi-output apsp
    // included — each bit-identical to its solo twin. mst-approx and
    // mincut-approx run their sequential single-program forms inside a
    // wave, so the solo oracle uses `sequential_instances` for them.
    let g = Arc::new(weighted_graph());
    let mut svc = Service::new(config(&g, 5));
    let mut specs = Vec::new();
    for (i, name) in registry::names().into_iter().enumerate() {
        let mut spec = JobSpec::new(name, Arc::clone(&g)).seed(100 + i as u64);
        if matches!(name, "mst-approx" | "mincut-approx") {
            let sequential = spec.params.clone().sequential_instances();
            spec = spec.params(sequential);
        }
        specs.push(spec);
    }
    let handles: Vec<_> = specs
        .iter()
        .map(|s| svc.submit(s.clone()).expect("known name"))
        .collect();
    let run = svc.run(ExecMode::Parallel).expect("service run");
    assert_eq!(run.records.len(), registry::names().len());
    for (handle, spec) in handles.iter().zip(&specs) {
        let out = handle
            .take_result()
            .expect("finished")
            .expect("no job error");
        assert_eq!(
            out.digest(),
            solo_digest(&g, spec, ExecMode::Serial),
            "{} diverged from its solo run",
            spec.name
        );
    }
}

// -------------------------------------------- admission under load --

#[test]
fn queued_jobs_drain_via_admission_on_retirement() {
    // Six single-share jobs on a three-share limit: exactly three admitted
    // at round 0, the rest strictly FIFO as retirement frees shares.
    let g = Arc::new(generators::gnm(72, 240, 3));
    let names = [
        "spanner",
        "mis",
        "coloring",
        "connectivity",
        "matching",
        "mincut",
    ];
    let mut svc = Service::new(config(&g, 17)).capacity_shares(3);
    for (i, name) in names.iter().enumerate() {
        svc.submit(JobSpec::new(*name, Arc::clone(&g)).seed(200 + i as u64))
            .expect("known name");
    }
    assert_eq!(svc.queued(), 6);
    let run = svc.run(ExecMode::Parallel).expect("service run");
    assert_eq!(svc.queued(), 0, "the run drains the queue");
    assert_eq!(run.records.len(), 6);
    assert!(run.records.iter().all(|r| !r.failed));

    let admitted: Vec<u64> = run.records.iter().map(|r| r.admitted_round).collect();
    assert_eq!(
        admitted.iter().filter(|&&r| r == 0).count(),
        3,
        "exactly the first three jobs fit at round 0: {admitted:?}"
    );
    // FIFO: admission rounds are non-decreasing in submission order, and
    // each latecomer enters no earlier than the first retirement.
    assert!(admitted.windows(2).all(|w| w[0] <= w[1]), "{admitted:?}");
    let first_retirement = run.records.iter().map(|r| r.completed_round).min().unwrap();
    for r in &run.records[3..] {
        assert!(
            r.admitted_round >= first_retirement,
            "job {} admitted at {} before any shares were freed (first \
             retirement at {first_retirement})",
            r.job,
            r.admitted_round
        );
    }
}

#[test]
fn oversized_job_is_admitted_alone_instead_of_deadlocking() {
    // spanner-weighted on this graph occupies one share per weight class —
    // more than the limit of 2 — so it must run alone, after the two
    // single-share jobs ahead of it retire.
    let g = Arc::new(weighted_graph());
    let classes = {
        let c = Cluster::new(config(&g, 0));
        let edges = mpc_core::common::distribute_edges(&c, &g);
        mpc_core::spanner::weight_class_shards(&edges).shards.len()
    };
    assert!(classes > 2, "graph must span more than 2 weight classes");

    let mut svc = Service::new(config(&g, 31)).capacity_shares(2);
    svc.submit(JobSpec::new("mis", Arc::clone(&g)).seed(1))
        .unwrap();
    svc.submit(JobSpec::new("coloring", Arc::clone(&g)).seed(2))
        .unwrap();
    let wide = svc
        .submit(JobSpec::new("spanner-weighted", Arc::clone(&g)).seed(3))
        .unwrap();
    let run = svc.run(ExecMode::Serial).expect("service run");
    assert_eq!(run.records.len(), 3);
    assert!(run.records.iter().all(|r| !r.failed));
    let wide_rec = run.records.iter().find(|r| r.job == wide.id()).unwrap();
    assert_eq!(wide_rec.shares, classes);
    assert!(
        wide_rec.admitted_round > 0,
        "the oversized job waits for the narrow jobs to finish"
    );
}

// ------------------------------------------------ mode independence --

/// Submits the 6-job over-subscribed workload and runs it on `cluster`.
fn contended_run(
    g: &Arc<Graph>,
    cluster: &mut Cluster,
    mode: ExecMode,
    threads: usize,
) -> (Vec<(u64, String, usize, u64, u64, u64, bool)>, Vec<u128>) {
    let names = [
        "spanner",
        "mis",
        "coloring",
        "connectivity",
        "matching",
        "mincut",
    ];
    let mut svc = Service::new(config(g, 17))
        .capacity_shares(3)
        .threads(threads);
    let handles: Vec<_> = names
        .iter()
        .enumerate()
        .map(|(i, name)| {
            svc.submit(JobSpec::new(*name, Arc::clone(g)).seed(300 + i as u64))
                .expect("known name")
        })
        .collect();
    let run = svc.run_on(cluster, mode).expect("service run");
    let digests = handles
        .iter()
        .map(|h| {
            h.take_result()
                .expect("finished")
                .expect("no job error")
                .digest()
        })
        .collect();
    (run.records.iter().map(record_key).collect(), digests)
}

#[test]
fn serial_and_pool_schedules_are_bit_identical_at_any_thread_count() {
    let g = Arc::new(generators::gnm(72, 240, 3));
    let mut serial_cluster = Cluster::new(config(&g, 17));
    let (serial_records, serial_digests) =
        contended_run(&g, &mut serial_cluster, ExecMode::Serial, 0);
    let serial_log = serial_cluster.round_log().to_vec();
    let serial_rng = rng_positions(&mut serial_cluster);

    for threads in [1usize, 3, 16] {
        let mut cluster = Cluster::new(config(&g, 17));
        let (records, digests) = contended_run(&g, &mut cluster, ExecMode::Parallel, threads);
        assert_eq!(
            records, serial_records,
            "admission schedule diverged at {threads} threads"
        );
        assert_eq!(
            digests, serial_digests,
            "job results diverged at {threads} threads"
        );
        assert_eq!(
            cluster.round_log(),
            &serial_log[..],
            "round log diverged at {threads} threads"
        );
        assert_eq!(
            rng_positions(&mut cluster),
            serial_rng,
            "RNG stream positions diverged at {threads} threads"
        );
    }
}

// --------------------------------------------------------- chaos leg --

#[test]
fn seeded_crash_mid_wave_recovers_every_job() {
    let g = Arc::new(weighted_graph());

    let run_with = |plan: Option<FaultPlan>| {
        let mut cluster = Cluster::new(config(&g, 99));
        cluster.set_fault_plan(plan);
        let mut svc = Service::new(config(&g, 99));
        let handles: Vec<_> = mixed_specs(&g)
            .into_iter()
            .map(|spec| svc.submit(spec).expect("known name"))
            .collect();
        svc.run_on(&mut cluster, ExecMode::Parallel).expect("run");
        let digests: Vec<u128> = handles
            .iter()
            .map(|h| {
                h.take_result()
                    .expect("finished")
                    .expect("no job error")
                    .digest()
            })
            .collect();
        (digests, cluster)
    };

    let (clean_digests, clean_cluster) = run_with(None);
    let clean_rounds = clean_cluster.rounds();
    let plan = FaultPlan::seeded_single_crash(99, &clean_cluster.small_ids(), clean_rounds);
    let (digests, faulted_cluster) = run_with(Some(plan));
    assert_eq!(
        digests, clean_digests,
        "a mid-wave crash changed some tenant's result"
    );
    assert!(
        faulted_cluster.rounds() > clean_rounds,
        "recovery must add checkpoint/replay exchanges"
    );
}

// ---------------------------------------------------------- edges --

#[test]
fn unknown_names_are_rejected_at_submit() {
    let g = Arc::new(generators::gnm(16, 30, 1));
    let mut svc = Service::new(config(&g, 1));
    assert!(svc.submit(JobSpec::new("simplex", g)).is_err());
    assert_eq!(svc.queued(), 0);
}

#[test]
fn empty_weighted_spanner_completes_without_entering_the_wave() {
    let g = Arc::new(Graph::new(8, Vec::new()));
    let mut svc = Service::new(config(&g, 2));
    let lone = svc
        .submit(JobSpec::new("spanner-weighted", Arc::clone(&g)).seed(4))
        .unwrap();
    let busy = svc
        .submit(JobSpec::new("connectivity", Arc::clone(&g)).seed(5))
        .unwrap();
    let run = svc.run(ExecMode::Serial).expect("service run");
    assert_eq!(run.records.len(), 2);
    let rec = run.records.iter().find(|r| r.job == lone.id()).unwrap();
    assert_eq!(rec.rounds, 0, "degenerate job completes at admission");
    let out = lone.take_result().unwrap().unwrap();
    assert_eq!(out.into_spanner().unwrap().spanner.m(), 0);
    assert!(busy.take_result().unwrap().is_ok());
}
