//! The service contract (DESIGN.md §2.8): a mixed wave of *different*
//! registry programs completes in one engine run with every job's result
//! bit-identical to a solo run under the job's seed; a queue longer than
//! the share limit drains strictly FIFO via admission-on-retirement; the
//! whole schedule — results, admission rounds, round log, RNG stream
//! positions — is identical between serial and pooled execution at any
//! thread count; and a seeded mid-wave crash recovers every tenant.

use mpc_exec::{
    registry, ExecError, ExecMode, JobRecord, JobRetryPolicy, JobSpec, JobStatus, Service,
};
use mpc_graph::{generators, Graph};
use mpc_runtime::fault::FaultPlan;
use mpc_runtime::{Cluster, ClusterConfig};
use rand::RngCore;
use std::sync::Arc;

/// One cluster shape for every run in this file: capacities (and so the
/// programs' batch sizes) must match between the service cluster and the
/// per-job solo clusters; only the seed may differ.
fn config(g: &Graph, seed: u64) -> ClusterConfig {
    ClusterConfig::new(g.n(), g.m().max(1))
        .seed(seed)
        .polylog_exponent(2.6)
}

/// Runs `spec` alone on a fresh cluster seeded with the job's seed — the
/// oracle the service must be bit-identical to.
fn solo_digest(g: &Graph, spec: &JobSpec, mode: ExecMode) -> u128 {
    let mut cluster = Cluster::new(config(g, spec.seed));
    registry::run_job(spec, &mut cluster, mode)
        .expect("solo run")
        .digest()
}

/// Draws one value from every machine's RNG — equal vectors mean equal
/// stream positions.
fn rng_positions(cluster: &mut Cluster) -> Vec<u64> {
    (0..cluster.machines())
        .map(|mid| cluster.rng(mid).next_u64())
        .collect()
}

/// The comparable core of a record (drops nothing — JobRecord has no
/// non-deterministic fields, this just gives us Eq).
#[allow(clippy::type_complexity)]
fn record_key(r: &JobRecord) -> (u64, String, usize, u64, u64, u64, bool, u32) {
    (
        r.job,
        r.name.clone(),
        r.shares,
        r.admitted_round,
        r.completed_round,
        r.rounds,
        r.failed,
        r.attempts,
    )
}

fn weighted_graph() -> Graph {
    generators::gnm(96, 360, 7).with_random_weights(1 << 10, 7)
}

/// spanner-weighted (a multi-share multiplexed lane), matching, and mincut
/// — three different programs — sharing one engine run.
fn mixed_specs(g: &Arc<Graph>) -> Vec<JobSpec> {
    vec![
        JobSpec::new("spanner-weighted", Arc::clone(g)).seed(21),
        JobSpec::new("matching", Arc::clone(g)).seed(22),
        JobSpec::new("mincut", Arc::clone(g)).seed(23),
    ]
}

// ------------------------------------------------------- mixed wave --

#[test]
fn mixed_wave_results_are_bit_identical_to_solo_runs() {
    let g = Arc::new(weighted_graph());
    for mode in [ExecMode::Serial, ExecMode::Parallel] {
        let mut svc = Service::new(config(&g, 99));
        let handles: Vec<_> = mixed_specs(&g)
            .into_iter()
            .map(|spec| svc.submit(spec).expect("known name"))
            .collect();
        let run = svc.run(mode).expect("service run");

        // One engine run, all three programs admitted into it up front.
        assert_eq!(run.records.len(), 3);
        assert!(run.records.iter().all(|r| r.admitted_round == 0));
        assert!(run.records.iter().all(|r| !r.failed));

        for (handle, spec) in handles.iter().zip(mixed_specs(&g)) {
            assert_eq!(handle.status(), JobStatus::Completed);
            let out = handle
                .take_result()
                .expect("finished")
                .expect("no job error");
            assert_eq!(
                out.digest(),
                solo_digest(&g, &spec, mode),
                "job {} ({}) diverged from its solo run in {mode:?}",
                handle.id(),
                handle.name()
            );
        }
    }
}

#[test]
fn every_registry_algorithm_runs_as_a_service_job() {
    // All 12 registered names in one submission wave — multi-output apsp
    // included — each bit-identical to its solo twin. mst-approx and
    // mincut-approx run their sequential single-program forms inside a
    // wave, so the solo oracle uses `sequential_instances` for them.
    let g = Arc::new(weighted_graph());
    let mut svc = Service::new(config(&g, 5));
    let mut specs = Vec::new();
    for (i, name) in registry::names().into_iter().enumerate() {
        let mut spec = JobSpec::new(name, Arc::clone(&g)).seed(100 + i as u64);
        if matches!(name, "mst-approx" | "mincut-approx") {
            let sequential = spec.params.clone().sequential_instances();
            spec = spec.params(sequential);
        }
        specs.push(spec);
    }
    let handles: Vec<_> = specs
        .iter()
        .map(|s| svc.submit(s.clone()).expect("known name"))
        .collect();
    let run = svc.run(ExecMode::Parallel).expect("service run");
    assert_eq!(run.records.len(), registry::names().len());
    for (handle, spec) in handles.iter().zip(&specs) {
        let out = handle
            .take_result()
            .expect("finished")
            .expect("no job error");
        assert_eq!(
            out.digest(),
            solo_digest(&g, spec, ExecMode::Serial),
            "{} diverged from its solo run",
            spec.name
        );
    }
}

// -------------------------------------------- admission under load --

#[test]
fn queued_jobs_drain_via_admission_on_retirement() {
    // Six single-share jobs on a three-share limit: exactly three admitted
    // at round 0, the rest strictly FIFO as retirement frees shares.
    let g = Arc::new(generators::gnm(72, 240, 3));
    let names = [
        "spanner",
        "mis",
        "coloring",
        "connectivity",
        "matching",
        "mincut",
    ];
    let mut svc = Service::new(config(&g, 17)).capacity_shares(3);
    for (i, name) in names.iter().enumerate() {
        svc.submit(JobSpec::new(*name, Arc::clone(&g)).seed(200 + i as u64))
            .expect("known name");
    }
    assert_eq!(svc.queued(), 6);
    let run = svc.run(ExecMode::Parallel).expect("service run");
    assert_eq!(svc.queued(), 0, "the run drains the queue");
    assert_eq!(run.records.len(), 6);
    assert!(run.records.iter().all(|r| !r.failed));

    let admitted: Vec<u64> = run.records.iter().map(|r| r.admitted_round).collect();
    assert_eq!(
        admitted.iter().filter(|&&r| r == 0).count(),
        3,
        "exactly the first three jobs fit at round 0: {admitted:?}"
    );
    // FIFO: admission rounds are non-decreasing in submission order, and
    // each latecomer enters no earlier than the first retirement.
    assert!(admitted.windows(2).all(|w| w[0] <= w[1]), "{admitted:?}");
    let first_retirement = run.records.iter().map(|r| r.completed_round).min().unwrap();
    for r in &run.records[3..] {
        assert!(
            r.admitted_round >= first_retirement,
            "job {} admitted at {} before any shares were freed (first \
             retirement at {first_retirement})",
            r.job,
            r.admitted_round
        );
    }
}

#[test]
fn oversized_job_is_admitted_alone_instead_of_deadlocking() {
    // spanner-weighted on this graph occupies one share per weight class —
    // more than the limit of 2 — so it must run alone, after the two
    // single-share jobs ahead of it retire.
    let g = Arc::new(weighted_graph());
    let classes = {
        let c = Cluster::new(config(&g, 0));
        let edges = mpc_core::common::distribute_edges(&c, &g);
        mpc_core::spanner::weight_class_shards(&edges).shards.len()
    };
    assert!(classes > 2, "graph must span more than 2 weight classes");

    let mut svc = Service::new(config(&g, 31)).capacity_shares(2);
    svc.submit(JobSpec::new("mis", Arc::clone(&g)).seed(1))
        .unwrap();
    svc.submit(JobSpec::new("coloring", Arc::clone(&g)).seed(2))
        .unwrap();
    let wide = svc
        .submit(JobSpec::new("spanner-weighted", Arc::clone(&g)).seed(3))
        .unwrap();
    let run = svc.run(ExecMode::Serial).expect("service run");
    assert_eq!(run.records.len(), 3);
    assert!(run.records.iter().all(|r| !r.failed));
    let wide_rec = run.records.iter().find(|r| r.job == wide.id()).unwrap();
    assert_eq!(wide_rec.shares, classes);
    assert!(
        wide_rec.admitted_round > 0,
        "the oversized job waits for the narrow jobs to finish"
    );
}

// ------------------------------------------------ mode independence --

/// Submits the 6-job over-subscribed workload and runs it on `cluster`.
#[allow(clippy::type_complexity)]
fn contended_run(
    g: &Arc<Graph>,
    cluster: &mut Cluster,
    mode: ExecMode,
    threads: usize,
) -> (
    Vec<(u64, String, usize, u64, u64, u64, bool, u32)>,
    Vec<u128>,
) {
    let names = [
        "spanner",
        "mis",
        "coloring",
        "connectivity",
        "matching",
        "mincut",
    ];
    let mut svc = Service::new(config(g, 17))
        .capacity_shares(3)
        .threads(threads);
    let handles: Vec<_> = names
        .iter()
        .enumerate()
        .map(|(i, name)| {
            svc.submit(JobSpec::new(*name, Arc::clone(g)).seed(300 + i as u64))
                .expect("known name")
        })
        .collect();
    let run = svc.run_on(cluster, mode).expect("service run");
    let digests = handles
        .iter()
        .map(|h| {
            h.take_result()
                .expect("finished")
                .expect("no job error")
                .digest()
        })
        .collect();
    (run.records.iter().map(record_key).collect(), digests)
}

#[test]
fn serial_and_pool_schedules_are_bit_identical_at_any_thread_count() {
    let g = Arc::new(generators::gnm(72, 240, 3));
    let mut serial_cluster = Cluster::new(config(&g, 17));
    let (serial_records, serial_digests) =
        contended_run(&g, &mut serial_cluster, ExecMode::Serial, 0);
    let serial_log = serial_cluster.round_log().to_vec();
    let serial_rng = rng_positions(&mut serial_cluster);

    for threads in [1usize, 3, 16] {
        let mut cluster = Cluster::new(config(&g, 17));
        let (records, digests) = contended_run(&g, &mut cluster, ExecMode::Parallel, threads);
        assert_eq!(
            records, serial_records,
            "admission schedule diverged at {threads} threads"
        );
        assert_eq!(
            digests, serial_digests,
            "job results diverged at {threads} threads"
        );
        assert_eq!(
            cluster.round_log(),
            &serial_log[..],
            "round log diverged at {threads} threads"
        );
        assert_eq!(
            rng_positions(&mut cluster),
            serial_rng,
            "RNG stream positions diverged at {threads} threads"
        );
    }
}

// --------------------------------------------------------- chaos leg --

#[test]
fn seeded_crash_mid_wave_recovers_every_job() {
    let g = Arc::new(weighted_graph());

    let run_with = |plan: Option<FaultPlan>| {
        let mut cluster = Cluster::new(config(&g, 99));
        cluster.set_fault_plan(plan);
        let mut svc = Service::new(config(&g, 99));
        let handles: Vec<_> = mixed_specs(&g)
            .into_iter()
            .map(|spec| svc.submit(spec).expect("known name"))
            .collect();
        svc.run_on(&mut cluster, ExecMode::Parallel).expect("run");
        let digests: Vec<u128> = handles
            .iter()
            .map(|h| {
                h.take_result()
                    .expect("finished")
                    .expect("no job error")
                    .digest()
            })
            .collect();
        (digests, cluster)
    };

    let (clean_digests, clean_cluster) = run_with(None);
    let clean_rounds = clean_cluster.rounds();
    let plan = FaultPlan::seeded_single_crash(99, &clean_cluster.small_ids(), clean_rounds);
    let (digests, faulted_cluster) = run_with(Some(plan));
    assert_eq!(
        digests, clean_digests,
        "a mid-wave crash changed some tenant's result"
    );
    assert!(
        faulted_cluster.rounds() > clean_rounds,
        "recovery must add checkpoint/replay exchanges"
    );
}

// ----------------------------------------------- fault isolation --

/// The six-tenant acceptance wave: one job forced past retry exhaustion
/// with `max_attempts: 0` must leave the other five tenants' digests,
/// round log, and RNG stream positions bit-identical to a five-tenant
/// wave that never contained it — fail-fast has zero wire impact.
#[test]
fn failed_tenant_leaves_survivors_bit_identical_to_a_wave_without_it() {
    let g = Arc::new(weighted_graph());
    let names = [
        "spanner-weighted",
        "matching",
        "mincut",
        "mis",
        "coloring",
        "connectivity",
    ];
    let victim = "mincut";

    let run_wave = |with_victim: bool| {
        let mut cluster = Cluster::new(config(&g, 41));
        let mut svc = Service::new(config(&g, 41)).capacity_shares(3);
        let mut handles = Vec::new();
        for (i, name) in names.iter().enumerate() {
            if !with_victim && *name == victim {
                continue;
            }
            let mut spec = JobSpec::new(*name, Arc::clone(&g)).seed(500 + i as u64);
            if *name == victim {
                spec = spec.retry(JobRetryPolicy {
                    max_attempts: 0,
                    backoff_rounds: 0,
                });
            }
            handles.push(svc.submit(spec).expect("known name"));
        }
        let run = svc.run_on(&mut cluster, ExecMode::Parallel).expect("run");
        (run, handles, cluster)
    };

    let (six, six_handles, mut six_cluster) = run_wave(true);
    let (five, five_handles, mut five_cluster) = run_wave(false);

    // The victim failed fast with the typed error, consuming 0 attempts.
    let vh = six_handles.iter().find(|h| h.name() == victim).unwrap();
    assert_eq!(
        vh.status(),
        JobStatus::Failed {
            error: ExecError::Algorithm {
                message: "retry policy allows zero admission attempts".into()
            }
        }
    );
    let vrec = six.records.iter().find(|r| r.name == victim).unwrap();
    assert!(vrec.failed);
    assert_eq!(vrec.attempts, 0);
    assert_eq!(vrec.rounds, 0, "a zero-budget job never holds shares");

    // Survivors: identical schedules (ids shift, everything else equal)...
    let survivors = |run: &mpc_exec::ServiceRun| {
        run.records
            .iter()
            .filter(|r| r.name != victim)
            .map(|r| {
                (
                    r.name.clone(),
                    r.shares,
                    r.admitted_round,
                    r.completed_round,
                    r.rounds,
                    r.failed,
                    r.attempts,
                )
            })
            .collect::<Vec<_>>()
    };
    assert_eq!(survivors(&six), survivors(&five));
    assert_eq!(six.rounds, five.rounds);

    // ...identical results...
    let digest_of = |handles: &[mpc_exec::JobHandle], name: &str| {
        handles
            .iter()
            .find(|h| h.name() == name)
            .unwrap()
            .take_result()
            .expect("finished")
            .expect("no job error")
            .digest()
    };
    for name in names.iter().filter(|n| **n != victim) {
        assert_eq!(
            digest_of(&six_handles, name),
            digest_of(&five_handles, name),
            "{name} diverged from the five-tenant wave"
        );
    }

    // ...and an identical wire history: round log and RNG positions.
    assert_eq!(six_cluster.round_log(), five_cluster.round_log());
    assert_eq!(
        rng_positions(&mut six_cluster),
        rng_positions(&mut five_cluster)
    );
}

/// `max_attempts: 0` fails fast at the queue front without blocking the
/// job behind it: the successor admits the same round.
#[test]
fn zero_attempt_policy_fails_fast_and_frees_the_queue() {
    let g = Arc::new(generators::gnm(72, 240, 3));
    let mut svc = Service::new(config(&g, 7)).capacity_shares(1);
    let dead = svc
        .submit(
            JobSpec::new("mis", Arc::clone(&g))
                .seed(1)
                .retry(JobRetryPolicy {
                    max_attempts: 0,
                    backoff_rounds: 0,
                }),
        )
        .unwrap();
    let live = svc
        .submit(JobSpec::new("coloring", Arc::clone(&g)).seed(2))
        .unwrap();
    let run = svc.run(ExecMode::Serial).expect("run");
    assert!(matches!(dead.status(), JobStatus::Failed { .. }));
    assert_eq!(live.status(), JobStatus::Completed);
    let dead_rec = run.records.iter().find(|r| r.job == dead.id()).unwrap();
    let live_rec = run.records.iter().find(|r| r.job == live.id()).unwrap();
    assert_eq!(dead_rec.attempts, 0);
    assert_eq!(
        live_rec.admitted_round, dead_rec.completed_round,
        "the successor admits in the round the zero-budget job failed"
    );
}

/// Two deadline-bounded jobs expiring in the same round are both pulled
/// in that round, and an innocent tenant sharing the wave still completes
/// bit-identically to its solo run.
#[test]
fn two_jobs_failing_in_the_same_round_spare_the_survivor() {
    let g = Arc::new(weighted_graph());
    let mut svc = Service::new(config(&g, 53));
    let doomed_a = svc
        .submit(
            JobSpec::new("mincut", Arc::clone(&g))
                .seed(61)
                .round_deadline(2),
        )
        .unwrap();
    let doomed_b = svc
        .submit(
            JobSpec::new("matching", Arc::clone(&g))
                .seed(62)
                .round_deadline(2),
        )
        .unwrap();
    let spec = JobSpec::new("mis", Arc::clone(&g)).seed(63);
    let lucky = svc.submit(spec.clone()).unwrap();

    let run = svc.run(ExecMode::Parallel).expect("run");
    assert_eq!(doomed_a.status(), JobStatus::DeadlineExceeded);
    assert_eq!(doomed_b.status(), JobStatus::DeadlineExceeded);
    let rec_a = run.records.iter().find(|r| r.job == doomed_a.id()).unwrap();
    let rec_b = run.records.iter().find(|r| r.job == doomed_b.id()).unwrap();
    assert!(rec_a.failed && rec_b.failed);
    assert_eq!(rec_a.completed_round, rec_b.completed_round);
    assert_eq!(rec_a.rounds, 2, "pulled exactly at the deadline");
    // The stored error is the typed per-job round limit.
    assert_eq!(
        doomed_a.take_result().unwrap().unwrap_err(),
        ExecError::RoundLimit { limit: 2 }
    );
    assert_eq!(
        lucky.take_result().unwrap().unwrap().digest(),
        solo_digest(&g, &spec, ExecMode::Serial),
        "the surviving tenant diverged from its solo run"
    );
}

/// An oversized (runs-alone) job cancelled by its deadline refunds its
/// shares in the cancellation round: the queued job behind it admits the
/// same round.
#[test]
fn oversized_job_failure_refunds_shares_and_admits_the_next_job() {
    let g = Arc::new(weighted_graph());
    let classes = {
        let c = Cluster::new(config(&g, 0));
        let edges = mpc_core::common::distribute_edges(&c, &g);
        mpc_core::spanner::weight_class_shards(&edges).shards.len()
    };
    assert!(classes > 2, "graph must span more than 2 weight classes");

    let mut svc = Service::new(config(&g, 67)).capacity_shares(2);
    let wide = svc
        .submit(
            JobSpec::new("spanner-weighted", Arc::clone(&g))
                .seed(71)
                .round_deadline(2),
        )
        .unwrap();
    let next = svc
        .submit(JobSpec::new("mis", Arc::clone(&g)).seed(72))
        .unwrap();

    let run = svc.run(ExecMode::Serial).expect("run");
    assert_eq!(wide.status(), JobStatus::DeadlineExceeded);
    assert_eq!(next.status(), JobStatus::Completed);
    let wide_rec = run.records.iter().find(|r| r.job == wide.id()).unwrap();
    let next_rec = run.records.iter().find(|r| r.job == next.id()).unwrap();
    assert_eq!(wide_rec.shares, classes, "the wide job held every share");
    assert_eq!(
        next_rec.admitted_round, wide_rec.completed_round,
        "the refunded shares admit the queued job in the cancellation round"
    );
}

/// Retry exhaustion through the quarantine path proper: with no replica
/// peers a small-machine crash is job-fatal (`Unrecoverable`), the
/// marginal tenant is quarantined and resubmitted, and — the crash fault
/// having fired — the retry completes with the clean run's digest. A
/// *second* crash, of the large machine, lands during the retry wave and
/// is recovered transparently from the durable-host checkpoint
/// (DESIGN.md §2.9): it costs replay rounds, not an attempt.
#[test]
fn crash_during_job_retry_recovers_through_the_durable_host() {
    use mpc_runtime::fault::{Fault, FaultPlan, RecoveryPolicy};

    let g = Arc::new(weighted_graph());
    let spec = || {
        JobSpec::new("mincut", Arc::clone(&g))
            .seed(81)
            .retry(JobRetryPolicy {
                max_attempts: 2,
                backoff_rounds: 1,
            })
    };

    // Clean oracle.
    let clean_digest = {
        let mut cluster = Cluster::new(config(&g, 83));
        let mut svc = Service::new(config(&g, 83));
        let h = svc.submit(spec()).unwrap();
        svc.run_on(&mut cluster, ExecMode::Parallel).expect("run");
        h.take_result().unwrap().unwrap().digest()
    };

    let mut cluster = Cluster::new(config(&g, 83));
    let small = cluster.small_ids()[0];
    let large = cluster
        .large()
        .expect("service cluster has a large machine");
    let plan = FaultPlan::new()
        .with_policy(RecoveryPolicy {
            replicas: 0, // no peers: a small-machine crash is job-fatal
            ..RecoveryPolicy::default()
        })
        .with_fault(Fault::Crash {
            machine: small,
            round: 2,
        })
        .with_fault(Fault::Crash {
            machine: large,
            round: 6, // mid-retry: the resubmitted job is back on the wire
        });
    cluster.set_fault_plan(Some(plan));

    let mut svc = Service::new(config(&g, 83));
    let h = svc.submit(spec()).unwrap();
    let run = svc.run_on(&mut cluster, ExecMode::Parallel).expect("run");

    assert_eq!(h.status(), JobStatus::Completed);
    assert_eq!(
        h.take_result().unwrap().unwrap().digest(),
        clean_digest,
        "the retried job diverged from the clean run"
    );
    let rec = &run.records[0];
    assert_eq!(
        rec.attempts, 2,
        "the small-machine crash consumed one attempt; the large-machine \
         crash must not have consumed another"
    );
}

/// A seeded mid-wave crash of the **large machine** (the coordinator)
/// recovers every tenant bit-identically, serial and pooled at thread
/// counts {1, 3, 16} — the durable-host checkpoint works inside mixed
/// waves too.
#[test]
fn large_machine_crash_mid_wave_recovers_at_any_thread_count() {
    use mpc_runtime::fault::{Fault, FaultPlan};

    let g = Arc::new(weighted_graph());
    let run_with = |plan: Option<FaultPlan>, mode: ExecMode, threads: usize| {
        let mut cluster = Cluster::new(config(&g, 99));
        cluster.set_fault_plan(plan);
        let mut svc = Service::new(config(&g, 99)).threads(threads);
        let handles: Vec<_> = mixed_specs(&g)
            .into_iter()
            .map(|spec| svc.submit(spec).expect("known name"))
            .collect();
        svc.run_on(&mut cluster, mode).expect("run");
        let digests: Vec<u128> = handles
            .iter()
            .map(|h| h.take_result().unwrap().unwrap().digest())
            .collect();
        (digests, cluster)
    };

    let (clean_digests, clean_cluster) = run_with(None, ExecMode::Serial, 0);
    let large = clean_cluster.large().expect("large machine");
    let mid = (clean_cluster.rounds() / 2).max(1);
    let plan = || {
        Some(FaultPlan::new().with_fault(Fault::Crash {
            machine: large,
            round: mid,
        }))
    };

    let (serial_digests, serial_cluster) = run_with(plan(), ExecMode::Serial, 0);
    assert_eq!(
        serial_digests, clean_digests,
        "a coordinator crash changed some tenant's result"
    );
    assert!(
        serial_cluster.rounds() > clean_cluster.rounds(),
        "recovery must add checkpoint/replay exchanges"
    );
    for threads in [1usize, 3, 16] {
        let (digests, cluster) = run_with(plan(), ExecMode::Parallel, threads);
        assert_eq!(
            digests, clean_digests,
            "coordinator-crash recovery diverged at {threads} threads"
        );
        assert_eq!(
            cluster.round_log(),
            serial_cluster.round_log(),
            "faulted round log diverged at {threads} threads"
        );
    }
}

// ---------------------------------------------------------- edges --

#[test]
fn unknown_names_are_rejected_at_submit() {
    let g = Arc::new(generators::gnm(16, 30, 1));
    let mut svc = Service::new(config(&g, 1));
    assert!(svc.submit(JobSpec::new("simplex", g)).is_err());
    assert_eq!(svc.queued(), 0);
}

#[test]
fn empty_weighted_spanner_completes_without_entering_the_wave() {
    let g = Arc::new(Graph::new(8, Vec::new()));
    let mut svc = Service::new(config(&g, 2));
    let lone = svc
        .submit(JobSpec::new("spanner-weighted", Arc::clone(&g)).seed(4))
        .unwrap();
    let busy = svc
        .submit(JobSpec::new("connectivity", Arc::clone(&g)).seed(5))
        .unwrap();
    let run = svc.run(ExecMode::Serial).expect("service run");
    assert_eq!(run.records.len(), 2);
    let rec = run.records.iter().find(|r| r.job == lone.id()).unwrap();
    assert_eq!(rec.rounds, 0, "degenerate job completes at admission");
    let out = lone.take_result().unwrap().unwrap();
    assert_eq!(out.into_spanner().unwrap().spanner.m(), 0);
    assert!(busy.take_result().unwrap().is_ok());
}
