//! The registry contract: every engine-ported flagship algorithm is
//! **bit-identical** to its legacy call-style twin — same results, same
//! statistics, same per-machine RNG stream positions — and the engine
//! itself is schedule-independent: serial and pooled execution at any
//! thread count produce identical results, round logs (labels, traffic,
//! makespans), and round counts.
//!
//! Legacy round counts differ from engine round counts by design (the
//! engine trades the legacy primitives' fused collector waves for explicit
//! per-phase exchanges); what must *not* differ is everything the paper's
//! theorems speak about: outputs, trajectories (MST contraction traces,
//! peeling iteration counts), and randomness consumption.

use mpc_core::common;
use mpc_exec::{registry, AlgoInput, ExecMode};
use mpc_graph::{generators, Edge, Graph};
use mpc_runtime::{Cluster, ClusterConfig, Topology};
use rand::RngCore;

/// Draws one value from every machine's RNG — equal vectors mean equal
/// stream positions (SmallRng has no public position accessor).
fn rng_positions(cluster: &mut Cluster) -> Vec<u64> {
    (0..cluster.machines())
        .map(|mid| cluster.rng(mid).next_u64())
        .collect()
}

fn cluster_for(g: &Graph, seed: u64) -> Cluster {
    Cluster::new(ClusterConfig::new(g.n(), g.m().max(1)).seed(seed))
}

/// A denser topology that forces MST contraction waves before KKT.
fn dense_cluster_for(g: &Graph, seed: u64) -> Cluster {
    Cluster::new(
        ClusterConfig::new(g.n(), g.m().max(1))
            .topology(Topology::Heterogeneous {
                gamma: 0.5,
                large_exponent: 1.0,
            })
            .seed(seed),
    )
}

// ---------------------------------------------------------------- MST --

fn mst_graph(seed: u64) -> Graph {
    generators::gnm(200, 2400, seed).with_random_weights(1 << 20, seed)
}

#[test]
fn mst_program_is_bit_identical_to_legacy() {
    for seed in [3u64, 11] {
        for dense in [false, true] {
            let g = if dense {
                generators::gnm(256, 8000, seed).with_random_weights(1 << 20, seed)
            } else {
                mst_graph(seed)
            };
            let make = |s| {
                if dense {
                    dense_cluster_for(&g, s)
                } else {
                    cluster_for(&g, s)
                }
            };

            let mut legacy_cluster = make(seed);
            let legacy_input = common::distribute_edges(&legacy_cluster, &g);
            let legacy =
                mpc_core::mst::heterogeneous_mst(&mut legacy_cluster, g.n(), legacy_input).unwrap();
            let legacy_rng = rng_positions(&mut legacy_cluster);

            for mode in [ExecMode::Serial, ExecMode::Parallel] {
                let mut engine_cluster = make(seed);
                let engine_input = common::distribute_edges(&engine_cluster, &g);
                let engine = registry::run(
                    "mst",
                    &mut engine_cluster,
                    &AlgoInput::new(g.n(), &engine_input),
                    mode,
                )
                .unwrap()
                .into_mst()
                .unwrap();
                let engine_rng = rng_positions(&mut engine_cluster);

                assert_eq!(
                    engine.forest, legacy.forest,
                    "seed {seed} dense {dense} {mode:?}: forests differ"
                );
                assert_eq!(
                    engine.stats.boruvka_steps, legacy.stats.boruvka_steps,
                    "seed {seed} dense {dense} {mode:?}: wave counts differ"
                );
                assert_eq!(
                    engine.stats.contraction_trace, legacy.stats.contraction_trace,
                    "seed {seed} dense {dense} {mode:?}: contraction traces differ"
                );
                assert_eq!(
                    engine.stats.finished_by_direct_gather, legacy.stats.finished_by_direct_gather,
                    "seed {seed} dense {dense} {mode:?}: finish paths differ"
                );
                assert_eq!(
                    engine.stats.kkt_rep_used, legacy.stats.kkt_rep_used,
                    "seed {seed} dense {dense} {mode:?}: KKT repetitions differ"
                );
                assert_eq!(
                    engine.stats.f_light_edges, legacy.stats.f_light_edges,
                    "seed {seed} dense {dense} {mode:?}: F-light counts differ"
                );
                assert_eq!(
                    engine_rng, legacy_rng,
                    "seed {seed} dense {dense} {mode:?}: RNG positions differ"
                );
                assert!(mpc_core::mst::is_minimum_spanning_forest(
                    &g,
                    &engine.forest
                ));
            }
        }
    }
}

// ----------------------------------------------------------- matching --

#[test]
fn matching_program_is_bit_identical_to_legacy() {
    for (g, seed) in [
        (generators::gnm(120, 700, 4), 4u64),
        (generators::chung_lu(300, 1800, 2.3, 5), 5u64),
        (generators::star(200), 2u64),
    ] {
        let mut legacy_cluster = cluster_for(&g, seed);
        let legacy_input = common::distribute_edges(&legacy_cluster, &g);
        let legacy =
            mpc_core::matching::heterogeneous_matching(&mut legacy_cluster, g.n(), &legacy_input)
                .unwrap();
        let legacy_rng = rng_positions(&mut legacy_cluster);

        for mode in [ExecMode::Serial, ExecMode::Parallel] {
            let mut engine_cluster = cluster_for(&g, seed);
            let engine_input = common::distribute_edges(&engine_cluster, &g);
            let engine = registry::run(
                "matching",
                &mut engine_cluster,
                &AlgoInput::new(g.n(), &engine_input),
                mode,
            )
            .unwrap()
            .into_matching()
            .unwrap();
            let engine_rng = rng_positions(&mut engine_cluster);

            assert_eq!(
                engine.matching.edges, legacy.matching.edges,
                "seed {seed} {mode:?}: matchings differ"
            );
            assert_eq!(
                (
                    engine.stats.phase1_iterations,
                    engine.stats.m1,
                    engine.stats.m2,
                    engine.stats.m3,
                    engine.stats.high_vertices,
                    engine.stats.residual_edges,
                ),
                (
                    legacy.stats.phase1_iterations,
                    legacy.stats.m1,
                    legacy.stats.m2,
                    legacy.stats.m3,
                    legacy.stats.high_vertices,
                    legacy.stats.residual_edges,
                ),
                "seed {seed} {mode:?}: stats differ"
            );
            assert_eq!(
                engine_rng, legacy_rng,
                "seed {seed} {mode:?}: RNG positions differ"
            );
            assert!(mpc_graph::matching::is_maximal_matching(
                &g,
                &engine.matching
            ));
        }
    }
}

// ------------------------------------------------------------ spanner --

fn sorted_edges(g: &Graph) -> Vec<Edge> {
    let mut v: Vec<Edge> = g.edges().to_vec();
    v.sort_by_key(Edge::weight_key);
    v
}

#[test]
fn spanner_program_is_bit_identical_to_legacy() {
    for (k, seed) in [(2usize, 1u64), (3, 7)] {
        let g = generators::gnm(150, 1600, seed);
        let make = |s| {
            Cluster::new(
                ClusterConfig::new(g.n(), g.m())
                    .seed(s)
                    .polylog_exponent(1.6),
            )
        };

        let mut legacy_cluster = make(seed);
        let legacy_input = common::distribute_edges(&legacy_cluster, &g);
        let legacy =
            mpc_core::spanner::heterogeneous_spanner(&mut legacy_cluster, g.n(), &legacy_input, k)
                .unwrap();
        let legacy_rng = rng_positions(&mut legacy_cluster);

        for mode in [ExecMode::Serial, ExecMode::Parallel] {
            let mut engine_cluster = make(seed);
            let engine_input = common::distribute_edges(&engine_cluster, &g);
            let engine = registry::run(
                "spanner",
                &mut engine_cluster,
                &AlgoInput::new(g.n(), &engine_input).spanner_k(k),
                mode,
            )
            .unwrap()
            .into_spanner()
            .unwrap();
            let engine_rng = rng_positions(&mut engine_cluster);

            assert_eq!(
                sorted_edges(&engine.spanner),
                sorted_edges(&legacy.spanner),
                "k {k} seed {seed} {mode:?}: spanner edges differ"
            );
            assert_eq!(
                (
                    engine.stats.levels,
                    engine.stats.full_levels.clone(),
                    engine.stats.star_edges,
                    engine.stats.phase1_edges,
                    engine.stats.removal_edges,
                    engine.stats.level_edge_counts.clone(),
                ),
                (
                    legacy.stats.levels,
                    legacy.stats.full_levels.clone(),
                    legacy.stats.star_edges,
                    legacy.stats.phase1_edges,
                    legacy.stats.removal_edges,
                    legacy.stats.level_edge_counts.clone(),
                ),
                "k {k} seed {seed} {mode:?}: stats differ"
            );
            assert_eq!(
                engine_rng, legacy_rng,
                "k {k} seed {seed} {mode:?}: RNG positions differ"
            );
            let rep = mpc_graph::verify_spanner(&g, &engine.spanner, None, 0);
            assert!(rep.within((6 * k - 1) as f64));
        }
    }
}

/// The registry default is the *batched* weighted spanner (all weight
/// classes interleaved by the multi-program scheduler); it must still be
/// bit-identical to the legacy sequential class loop — including RNG
/// stream positions, because the scheduler consumes each machine's stream
/// in class order, exactly as the loop did.
#[test]
fn weighted_spanner_matches_legacy() {
    let g = generators::gnm(100, 800, 6).with_random_weights(64, 6);
    let k = 2;
    let make = || {
        Cluster::new(
            ClusterConfig::new(g.n(), g.m())
                .seed(6)
                .polylog_exponent(1.6),
        )
    };
    let mut legacy_cluster = make();
    let legacy_input = common::distribute_edges(&legacy_cluster, &g);
    let legacy = mpc_core::spanner::heterogeneous_spanner_weighted(
        &mut legacy_cluster,
        g.n(),
        &legacy_input,
        k,
    )
    .unwrap();
    let legacy_rng = rng_positions(&mut legacy_cluster);

    let mut engine_cluster = make();
    let engine_input = common::distribute_edges(&engine_cluster, &g);
    let engine = registry::run(
        "spanner-weighted",
        &mut engine_cluster,
        &AlgoInput::new(g.n(), &engine_input).spanner_k(k),
        ExecMode::Parallel,
    )
    .unwrap()
    .into_spanner()
    .unwrap();
    let engine_rng = rng_positions(&mut engine_cluster);

    assert_eq!(sorted_edges(&engine.spanner), sorted_edges(&legacy.spanner));
    assert_eq!(engine.stats.weight_classes, legacy.stats.weight_classes);
    assert_eq!(engine_rng, legacy_rng);
}

// ---------------------------------------------------------------- MIS --

#[test]
fn mis_program_is_bit_identical_to_legacy() {
    for (g, seed) in [
        (generators::gnm(120, 900, 4), 4u64),
        (generators::gnm(256, 8000, 3), 3u64),
        (generators::star(300), 1u64),
    ] {
        let make = |s| {
            Cluster::new(
                ClusterConfig::new(g.n(), g.m().max(1))
                    .seed(s)
                    .polylog_exponent(1.6),
            )
        };
        let mut legacy_cluster = make(seed);
        let legacy_input = common::distribute_edges(&legacy_cluster, &g);
        let legacy =
            mpc_core::ported::heterogeneous_mis(&mut legacy_cluster, g.n(), &legacy_input).unwrap();
        let legacy_rng = rng_positions(&mut legacy_cluster);

        for mode in [ExecMode::Serial, ExecMode::Parallel] {
            let mut engine_cluster = make(seed);
            let engine_input = common::distribute_edges(&engine_cluster, &g);
            let engine = registry::run(
                "mis",
                &mut engine_cluster,
                &AlgoInput::new(g.n(), &engine_input),
                mode,
            )
            .unwrap()
            .into_mis()
            .unwrap();
            let engine_rng = rng_positions(&mut engine_cluster);

            assert_eq!(engine, legacy, "seed {seed} {mode:?}: MIS results differ");
            assert_eq!(
                engine_rng, legacy_rng,
                "seed {seed} {mode:?}: RNG positions differ"
            );
            assert!(mpc_graph::mis::is_maximal_independent_set(&g, &engine.mis));
        }
    }
}

// ----------------------------------------------------------- coloring --

#[test]
fn coloring_program_is_bit_identical_to_legacy() {
    for (g, seed) in [
        (generators::gnm(100, 900, 2), 2u64),
        (generators::gnm(128, 4000, 7), 7u64),
        (generators::star(64), 3u64),
    ] {
        let make = |s| {
            Cluster::new(
                ClusterConfig::new(g.n(), g.m().max(1))
                    .seed(s)
                    .polylog_exponent(2.0),
            )
        };
        let mut legacy_cluster = make(seed);
        let legacy_input = common::distribute_edges(&legacy_cluster, &g);
        let legacy =
            mpc_core::ported::heterogeneous_coloring(&mut legacy_cluster, g.n(), &legacy_input)
                .unwrap();
        let legacy_rng = rng_positions(&mut legacy_cluster);

        for mode in [ExecMode::Serial, ExecMode::Parallel] {
            let mut engine_cluster = make(seed);
            let engine_input = common::distribute_edges(&engine_cluster, &g);
            let engine = registry::run(
                "coloring",
                &mut engine_cluster,
                &AlgoInput::new(g.n(), &engine_input),
                mode,
            )
            .unwrap()
            .into_coloring()
            .unwrap();
            let engine_rng = rng_positions(&mut engine_cluster);

            assert_eq!(
                engine, legacy,
                "seed {seed} {mode:?}: coloring results differ"
            );
            assert_eq!(
                engine_rng, legacy_rng,
                "seed {seed} {mode:?}: RNG positions differ"
            );
            assert!(mpc_graph::coloring::is_proper_coloring(&g, &engine.colors));
        }
    }
}

// ----------------------------------------------------------- min cuts --

#[test]
fn mincut_program_is_bit_identical_to_legacy() {
    for (bridge, seed) in [(2usize, 1u64), (4, 3)] {
        let g = generators::planted_cut(24, 0.7, bridge, seed);
        let trials = 8;

        let mut legacy_cluster = cluster_for(&g, seed);
        let legacy_input = common::distribute_edges(&legacy_cluster, &g);
        let legacy = mpc_core::ported::heterogeneous_min_cut(
            &mut legacy_cluster,
            g.n(),
            &legacy_input,
            trials,
        )
        .unwrap();
        let legacy_rng = rng_positions(&mut legacy_cluster);
        let want = mpc_graph::mincut::min_cut(&g).unwrap().weight;
        assert_eq!(legacy.value, want, "legacy must find the planted cut");

        for mode in [ExecMode::Serial, ExecMode::Parallel] {
            let mut engine_cluster = cluster_for(&g, seed);
            let engine_input = common::distribute_edges(&engine_cluster, &g);
            let engine = registry::run(
                "mincut",
                &mut engine_cluster,
                &AlgoInput::new(g.n(), &engine_input).mincut_trials(trials),
                mode,
            )
            .unwrap()
            .into_mincut()
            .unwrap();
            let engine_rng = rng_positions(&mut engine_cluster);

            assert_eq!(
                engine, legacy,
                "bridge {bridge} seed {seed} {mode:?}: min-cut results differ"
            );
            assert_eq!(
                engine_rng, legacy_rng,
                "bridge {bridge} seed {seed} {mode:?}: RNG positions differ"
            );
        }
    }
}

#[test]
fn mincut_approx_program_is_bit_identical_to_legacy() {
    for (g, eps, seed) in [
        (
            generators::planted_cut(20, 0.8, 4, 1).with_random_weights(8, 1),
            0.3f64,
            1u64,
        ),
        (generators::gnm(48, 700, 3), 0.3, 3),
    ] {
        let make = |s| {
            Cluster::new(
                ClusterConfig::new(g.n(), g.m())
                    .seed(s)
                    .polylog_exponent(1.6),
            )
        };
        let mut legacy_cluster = make(seed);
        let legacy_input = common::distribute_edges(&legacy_cluster, &g);
        let legacy =
            mpc_core::ported::approximate_min_cut(&mut legacy_cluster, g.n(), &legacy_input, eps)
                .unwrap();
        let legacy_rng = rng_positions(&mut legacy_cluster);

        for mode in [ExecMode::Serial, ExecMode::Parallel] {
            let mut engine_cluster = make(seed);
            let engine_input = common::distribute_edges(&engine_cluster, &g);
            // The sequential oracle mode: its RNG consumption mirrors the
            // legacy loop draw for draw (the batched default samples every
            // guess up front, so its stream positions only match legacy
            // when no early exit fires — batched-vs-sequential equality is
            // asserted in crates/exec/tests/multiplex.rs).
            let engine = registry::run(
                "mincut-approx",
                &mut engine_cluster,
                &AlgoInput::new(g.n(), &engine_input)
                    .epsilon(eps)
                    .sequential_instances(),
                mode,
            )
            .unwrap()
            .into_mincut_approx()
            .unwrap();
            let engine_rng = rng_positions(&mut engine_cluster);

            // `parallel_rounds` counts rounds and so is engine-geometry by
            // design (see the module header); everything the theorem
            // speaks about must match bit-for-bit.
            assert_eq!(
                (engine.estimate, engine.lambda_guess, engine.skeleton_edges),
                (legacy.estimate, legacy.lambda_guess, legacy.skeleton_edges),
                "seed {seed} {mode:?}: approx min-cut results differ"
            );
            assert_eq!(
                engine_rng, legacy_rng,
                "seed {seed} {mode:?}: RNG positions differ"
            );
        }
    }
}

// --------------------------------------------------------- mst-approx --

/// The registry default is the *batched* estimator (all threshold waves
/// interleaved by the multi-program scheduler, sketch seeds pre-drawn in
/// the legacy threshold order); it must still be bit-identical to the
/// legacy sequential loop — including RNG stream positions.
#[test]
fn mst_approx_program_is_bit_identical_to_legacy() {
    for (eps, seed) in [(0.25f64, 2u64), (0.5, 3)] {
        let g = generators::gnm(80, 400, seed).with_random_weights(32, seed);
        let make = |s| {
            Cluster::new(
                ClusterConfig::new(g.n(), g.m())
                    .seed(s)
                    .polylog_exponent(2.6),
            )
        };
        let mut legacy_cluster = make(seed);
        let legacy_input = common::distribute_edges(&legacy_cluster, &g);
        let legacy = mpc_core::ported::approximate_mst_weight(
            &mut legacy_cluster,
            g.n(),
            &legacy_input,
            eps,
        )
        .unwrap();
        let legacy_rng = rng_positions(&mut legacy_cluster);

        for mode in [ExecMode::Serial, ExecMode::Parallel] {
            let mut engine_cluster = make(seed);
            let engine_input = common::distribute_edges(&engine_cluster, &g);
            let engine = registry::run(
                "mst-approx",
                &mut engine_cluster,
                &AlgoInput::new(g.n(), &engine_input).epsilon(eps),
                mode,
            )
            .unwrap()
            .into_mst_approx()
            .unwrap();
            let engine_rng = rng_positions(&mut engine_cluster);

            assert_eq!(
                (
                    engine.estimate,
                    engine.thresholds.clone(),
                    engine.component_counts.clone()
                ),
                (
                    legacy.estimate,
                    legacy.thresholds.clone(),
                    legacy.component_counts.clone()
                ),
                "eps {eps} seed {seed} {mode:?}: MST estimates differ"
            );
            assert_eq!(
                engine_rng, legacy_rng,
                "eps {eps} seed {seed} {mode:?}: RNG positions differ"
            );
        }
    }
}

// ------------------------------------------------- min-cut edge cases --

/// Empty, disconnected, and single-edge graphs through *both* paths: the
/// legacy loop and the engine program must agree (and be right).
#[test]
fn mincut_edge_cases_agree_across_paths() {
    let two_cliques = {
        let mut edges: Vec<Edge> = generators::complete(5).edges().to_vec();
        for e in generators::complete(5).edges() {
            edges.push(Edge::new(e.u + 5, e.v + 5, e.w));
        }
        Graph::new(10, edges)
    };
    let cases: Vec<(&str, Graph, u128)> = vec![
        ("empty", Graph::empty(8), 0),
        ("disconnected", two_cliques, 0),
        (
            "single-edge",
            Graph::new(2, vec![Edge::unweighted(0, 1)]),
            1,
        ),
    ];
    for (name, g, want) in cases {
        let make = || Cluster::new(ClusterConfig::new(g.n(), g.m().max(1)).seed(9));
        let mut legacy_cluster = make();
        let legacy_input = common::distribute_edges(&legacy_cluster, &g);
        let legacy =
            mpc_core::ported::heterogeneous_min_cut(&mut legacy_cluster, g.n(), &legacy_input, 4)
                .unwrap();
        assert_eq!(legacy.value, want, "{name}: legacy value");

        let mut engine_cluster = make();
        let engine_input = common::distribute_edges(&engine_cluster, &g);
        let engine = registry::run(
            "mincut",
            &mut engine_cluster,
            &AlgoInput::new(g.n(), &engine_input).mincut_trials(4),
            ExecMode::Parallel,
        )
        .unwrap()
        .into_mincut()
        .unwrap();
        assert_eq!(engine, legacy, "{name}: engine diverged from legacy");
    }

    // The approximate path on a disconnected input: estimate 0, again on
    // both paths.
    let forest = generators::random_forest(40, 2, 2);
    let make = || {
        Cluster::new(
            ClusterConfig::new(forest.n(), forest.m())
                .seed(2)
                .polylog_exponent(1.6),
        )
    };
    let mut legacy_cluster = make();
    let legacy_input = common::distribute_edges(&legacy_cluster, &forest);
    let legacy =
        mpc_core::ported::approximate_min_cut(&mut legacy_cluster, forest.n(), &legacy_input, 0.4)
            .unwrap();
    assert_eq!(legacy.estimate, 0.0);
    let mut engine_cluster = make();
    let engine_input = common::distribute_edges(&engine_cluster, &forest);
    let engine = registry::run(
        "mincut-approx",
        &mut engine_cluster,
        &AlgoInput::new(forest.n(), &engine_input).epsilon(0.4),
        ExecMode::Parallel,
    )
    .unwrap()
    .into_mincut_approx()
    .unwrap();
    assert_eq!(engine.estimate, 0.0);
}

// --------------------------------------- schedule independence (pool) --

/// Engine runs must be bit-identical across Serial / Parallel at worker
/// counts {1, 3, 16}: result digests, round counts, full round logs
/// (labels, traffic, work, makespans), and RNG positions. Thread counts
/// live on the [`Executor`], so this drives the programs directly, the way
/// the adapters do.
#[test]
fn engine_algorithms_are_schedule_independent_at_threads_1_3_16() {
    use mpc_exec::{
        ColoringProgram, Driven, Executor, MatchingProgram, MinCutApproxProgram, MinCutProgram,
        MisProgram, MstApproxProgram, MstProgram, SpannerProgram,
    };

    let g = generators::gnm(140, 1100, 9).with_random_weights(1 << 16, 9);
    for name in [
        "mst",
        "matching",
        "spanner",
        "mst-approx",
        "mincut",
        "mincut-approx",
        "mis",
        "coloring",
    ] {
        let polylog = registry::get(name).unwrap().polylog_exponent;
        let run = |mode: ExecMode, threads: usize| {
            let mut cluster = Cluster::new(
                ClusterConfig::new(g.n(), g.m())
                    .seed(9)
                    .polylog_exponent(polylog),
            );
            let edges = common::distribute_edges(&cluster, &g);
            let large = cluster.large().unwrap();
            let exec = Executor::new(name, mode).threads(threads);
            let digest: u64 = match name {
                "mst" => {
                    let programs: Vec<_> = MstProgram::for_cluster(&cluster, g.n(), &edges)
                        .into_iter()
                        .map(Driven)
                        .collect();
                    let mut out = exec.run(&mut cluster, programs).unwrap();
                    let r = out.programs[large].0.result.take().unwrap().unwrap();
                    r.forest.len() as u64 * 31 + r.forest.total_weight as u64
                }
                "matching" => {
                    let programs: Vec<_> = MatchingProgram::for_cluster(&cluster, g.n(), &edges)
                        .into_iter()
                        .map(Driven)
                        .collect();
                    let mut out = exec.run(&mut cluster, programs).unwrap();
                    let r = out.programs[large].0.result.take().unwrap().unwrap();
                    r.matching.len() as u64
                }
                "spanner" => {
                    let programs: Vec<_> = SpannerProgram::for_cluster(&cluster, g.n(), &edges, 3)
                        .into_iter()
                        .map(Driven)
                        .collect();
                    let mut out = exec.run(&mut cluster, programs).unwrap();
                    let r = out.programs[large].0.result.take().unwrap();
                    r.spanner.m() as u64
                }
                "mst-approx" => {
                    let programs: Vec<_> =
                        MstApproxProgram::for_cluster(&cluster, g.n(), &edges, 0.5)
                            .into_iter()
                            .map(Driven)
                            .collect();
                    let mut out = exec.run(&mut cluster, programs).unwrap();
                    let r = out.programs[large].0.result.take().unwrap();
                    r.estimate.to_bits() ^ r.component_counts.len() as u64
                }
                "mincut" => {
                    let programs: Vec<_> = MinCutProgram::for_cluster(&cluster, g.n(), &edges, 4)
                        .into_iter()
                        .map(Driven)
                        .collect();
                    let mut out = exec.run(&mut cluster, programs).unwrap();
                    let r = out.programs[large].0.result.take().unwrap();
                    r.value as u64 * 31 + r.trial_sizes.len() as u64
                }
                "mincut-approx" => {
                    let programs: Vec<_> =
                        MinCutApproxProgram::for_cluster(&cluster, g.n(), &edges, 0.3)
                            .into_iter()
                            .map(Driven)
                            .collect();
                    let mut out = exec.run(&mut cluster, programs).unwrap();
                    let r = out.programs[large].0.result.take().unwrap();
                    r.estimate.to_bits() ^ r.lambda_guess
                }
                "mis" => {
                    let programs: Vec<_> = MisProgram::for_cluster(&cluster, g.n(), &edges)
                        .into_iter()
                        .map(Driven)
                        .collect();
                    let mut out = exec.run(&mut cluster, programs).unwrap();
                    let r = out.programs[large].0.result.take().unwrap();
                    r.mis
                        .iter()
                        .fold(0u64, |a, &v| a.wrapping_mul(0x100_0000_01b3) ^ v as u64)
                }
                "coloring" => {
                    let programs: Vec<_> = ColoringProgram::for_cluster(&cluster, g.n(), &edges)
                        .into_iter()
                        .map(Driven)
                        .collect();
                    let mut out = exec.run(&mut cluster, programs).unwrap();
                    let r = out.programs[large].0.result.take().unwrap();
                    r.colors
                        .iter()
                        .fold(0u64, |a, &c| a.wrapping_mul(0x100_0000_01b3) ^ c as u64)
                }
                other => unreachable!("no schedule-independence driver for '{other}'"),
            };
            let log = cluster.round_log().to_vec();
            let rng = rng_positions(&mut cluster);
            (digest, cluster.rounds(), log, rng)
        };
        let reference = run(ExecMode::Serial, 1);
        for threads in [1usize, 3, 16] {
            let got = run(ExecMode::Parallel, threads);
            assert_eq!(
                got, reference,
                "{name}: parallel (threads={threads}) diverged from serial"
            );
        }
    }
}
