//! The persistent pool's contract: pooled execution is **bit-identical**
//! to the serial reference — results, round log (labels, word counts,
//! makespans), RNG stream positions — at every thread count, and a
//! panicking program propagates instead of deadlocking the barrier.

use mpc_core::common;
use mpc_core::ported::connectivity::{sketch_friendly_config, ConnectivityConfig};
use mpc_exec::{ConnectivityProgram, ExecMode, Executor, MachineCtx, MachineProgram, StepOutcome};
use mpc_graph::generators;
use mpc_runtime::{Cluster, MachineId};
use rand::RngCore;

/// One full connectivity run; returns (components, round log, RNG draws).
fn run_connectivity(
    mode: ExecMode,
    threads: usize,
    seed: u64,
) -> (
    mpc_graph::traversal::Components,
    Vec<mpc_runtime::RoundRecord>,
    Vec<u64>,
) {
    let g = generators::gnm(90, 260, seed);
    let config = ConnectivityConfig::for_n(g.n());
    let mut cluster = Cluster::new(sketch_friendly_config(g.n(), g.m(), seed));
    let edges = common::distribute_edges(&cluster, &g);
    let programs = ConnectivityProgram::for_cluster(&cluster, g.n(), &edges, &config);
    let outcome = Executor::new("conn", mode)
        .threads(threads)
        .run(&mut cluster, programs)
        .unwrap();
    let large = cluster.large().unwrap();
    let result = outcome.programs[large].result.clone().unwrap();
    let log = cluster.round_log().to_vec();
    let draws = (0..cluster.machines())
        .map(|mid| cluster.rng(mid).next_u64())
        .collect();
    (result, log, draws)
}

#[test]
fn pooled_is_bit_identical_to_serial_across_thread_counts() {
    for seed in [5u64, 77] {
        let (r_ref, log_ref, rng_ref) = run_connectivity(ExecMode::Serial, 1, seed);
        assert!(
            log_ref.iter().all(|rec| rec.makespan.is_finite()),
            "reference log must carry makespans"
        );
        for threads in [1usize, 3, 16] {
            let (r, log, rng) = run_connectivity(ExecMode::Parallel, threads, seed);
            assert_eq!(r, r_ref, "threads={threads} seed={seed}: results differ");
            // Full log equality covers labels, traffic, work, AND makespans.
            assert_eq!(
                log, log_ref,
                "threads={threads} seed={seed}: round logs differ"
            );
            assert_eq!(
                rng, rng_ref,
                "threads={threads} seed={seed}: RNG positions differ"
            );
        }
        // The spawn-per-round baseline must agree too (the hotpath bench
        // relies on the three modes being interchangeable).
        let (r, log, rng) = run_connectivity(ExecMode::SpawnPerRound, 3, seed);
        assert_eq!((r, log, rng), (r_ref, log_ref, rng_ref), "seed={seed}");
    }
}

/// A program whose designated machine panics at round 1.
#[derive(Debug)]
struct PanicsAtRound1 {
    bomb: bool,
}

impl MachineProgram for PanicsAtRound1 {
    type Message = u64;

    fn step(&mut self, ctx: &MachineCtx<'_>, _inbox: Vec<(MachineId, u64)>) -> StepOutcome<u64> {
        if ctx.round >= 1 {
            if self.bomb {
                panic!("bomb machine detonated");
            }
            return StepOutcome::Halt;
        }
        // Keep everyone active into round 1 with a ring message.
        StepOutcome::Send(vec![((ctx.mid + 1) % ctx.machines, ctx.round)])
    }
}

#[test]
fn panicking_step_propagates_instead_of_deadlocking() {
    for mode in [
        ExecMode::Parallel,
        ExecMode::Serial,
        ExecMode::SpawnPerRound,
    ] {
        let mut cluster = Cluster::new(mpc_runtime::ClusterConfig::new(64, 256).topology(
            mpc_runtime::Topology::Custom {
                capacities: vec![1000; 9],
                large: Some(0),
            },
        ));
        let programs: Vec<PanicsAtRound1> = (0..cluster.machines())
            .map(|mid| PanicsAtRound1 { bomb: mid == 4 })
            .collect();
        let err = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            Executor::new("bomb", mode)
                .threads(3)
                .run(&mut cluster, programs)
        }))
        .expect_err("the step panic must propagate to the caller");
        // The per-machine RNG streams were restored before the re-raise —
        // a leaked placeholder would leave every machine on the same
        // seed-0 stream.
        assert_ne!(
            cluster.rng(1).next_u64(),
            cluster.rng(2).next_u64(),
            "mode {mode:?}: cluster RNGs were not restored after the panic"
        );
        let msg = err
            .downcast_ref::<&str>()
            .copied()
            .map(str::to_string)
            .or_else(|| err.downcast_ref::<String>().cloned())
            .unwrap_or_default();
        if mode == ExecMode::SpawnPerRound {
            // The legacy baseline re-raises via the scope join, which
            // replaces the payload ("a scoped thread panicked"); only the
            // pool preserves the program's own payload.
            continue;
        }
        assert!(
            msg.contains("detonated"),
            "mode {mode:?}: expected the program's payload, got {msg:?}"
        );
    }
}
