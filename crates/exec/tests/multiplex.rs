//! The multi-program scheduler contract: for the three sequentialized-
//! parallel workloads (`spanner-weighted`, `mst-approx`, `mincut-approx`),
//! the batched (interleaved-instance) runs are
//!
//! * **bit-identical per instance** to the PR 4 sequential compositions —
//!   same results and statistics, and for the workloads without an early
//!   exit (`mst-approx`, `spanner-weighted`) the same per-machine RNG
//!   stream positions;
//! * **schedule-independent** — serial and pooled execution at worker
//!   counts {1, 3, 16} produce identical results, round counts, round
//!   logs (labels, traffic, work, makespans), and RNG positions;
//! * an order of magnitude cheaper in rounds: one wave for all instances
//!   instead of one wave per instance.

use mpc_core::common;
use mpc_exec::{adapters, registry, AlgoInput, ExecMode};
use mpc_graph::{generators, Edge, Graph};
use mpc_runtime::{Cluster, ClusterConfig, Enforcement, Topology};
use rand::RngCore;

/// Draws one value from every machine's RNG — equal vectors mean equal
/// stream positions.
fn rng_positions(cluster: &mut Cluster) -> Vec<u64> {
    (0..cluster.machines())
        .map(|mid| cluster.rng(mid).next_u64())
        .collect()
}

fn cluster_for(g: &Graph, seed: u64, polylog: f64) -> Cluster {
    Cluster::new(
        ClusterConfig::new(g.n(), g.m().max(1))
            .seed(seed)
            .polylog_exponent(polylog),
    )
}

// ------------------------------------------- batched == sequential --

#[test]
fn batched_mst_approx_matches_sequential_bit_for_bit() {
    for (eps, seed) in [(0.25f64, 2u64), (0.5, 3)] {
        let g = generators::gnm(80, 400, seed).with_random_weights(32, seed);

        let mut seq_cluster = cluster_for(&g, seed, 2.6);
        let seq_input = common::distribute_edges(&seq_cluster, &g);
        let seq = registry::run(
            "mst-approx",
            &mut seq_cluster,
            &AlgoInput::new(g.n(), &seq_input)
                .epsilon(eps)
                .sequential_instances(),
            ExecMode::Serial,
        )
        .unwrap()
        .into_mst_approx()
        .unwrap();
        let seq_rounds = seq_cluster.rounds();
        let seq_rng = rng_positions(&mut seq_cluster);

        let mut bat_cluster = cluster_for(&g, seed, 2.6);
        let bat_input = common::distribute_edges(&bat_cluster, &g);
        let bat = registry::run(
            "mst-approx",
            &mut bat_cluster,
            &AlgoInput::new(g.n(), &bat_input).epsilon(eps),
            ExecMode::Parallel,
        )
        .unwrap()
        .into_mst_approx()
        .unwrap();
        let bat_rounds = bat_cluster.rounds();
        let bat_rng = rng_positions(&mut bat_cluster);

        assert_eq!(
            (bat.estimate, &bat.thresholds, &bat.component_counts),
            (seq.estimate, &seq.thresholds, &seq.component_counts),
            "eps {eps} seed {seed}: batched estimator diverged from sequential"
        );
        assert_eq!(
            bat_rng, seq_rng,
            "eps {eps} seed {seed}: RNG stream positions diverged"
        );
        // The collapse: one 2-round wave for ~Θ(log_{1+ε} W) thresholds.
        assert!(
            bat_rounds * 5 <= seq_rounds,
            "eps {eps} seed {seed}: expected ≥5× round collapse, got {bat_rounds} vs {seq_rounds}"
        );
    }
}

#[test]
fn batched_weighted_spanner_matches_sequential_bit_for_bit() {
    let g = generators::gnm(100, 800, 6).with_random_weights(64, 6);
    let k = 2;

    let mut seq_cluster = cluster_for(&g, 6, 1.6);
    let seq_input = common::distribute_edges(&seq_cluster, &g);
    let seq = registry::run(
        "spanner-weighted",
        &mut seq_cluster,
        &AlgoInput::new(g.n(), &seq_input)
            .spanner_k(k)
            .sequential_instances(),
        ExecMode::Serial,
    )
    .unwrap()
    .into_spanner()
    .unwrap();
    let seq_rounds = seq_cluster.rounds();
    let seq_rng = rng_positions(&mut seq_cluster);

    let mut bat_cluster = cluster_for(&g, 6, 1.6);
    let bat_input = common::distribute_edges(&bat_cluster, &g);
    let bat = registry::run(
        "spanner-weighted",
        &mut bat_cluster,
        &AlgoInput::new(g.n(), &bat_input).spanner_k(k),
        ExecMode::Parallel,
    )
    .unwrap()
    .into_spanner()
    .unwrap();
    let bat_rounds = bat_cluster.rounds();
    let bat_rng = rng_positions(&mut bat_cluster);

    let sorted = |graph: &Graph| {
        let mut v: Vec<Edge> = graph.edges().to_vec();
        v.sort_by_key(Edge::weight_key);
        v
    };
    assert_eq!(sorted(&bat.spanner), sorted(&seq.spanner));
    assert_eq!(bat.stats.weight_classes, seq.stats.weight_classes);
    assert_eq!(bat.stats.star_edges, seq.stats.star_edges);
    assert_eq!(bat.stats.phase1_edges, seq.stats.phase1_edges);
    assert_eq!(bat.stats.removal_edges, seq.stats.removal_edges);
    assert_eq!(bat_rng, seq_rng, "RNG stream positions diverged");
    assert!(
        bat_rounds * 5 <= seq_rounds,
        "expected ≥5× round collapse, got {bat_rounds} vs {seq_rounds}"
    );
}

#[test]
fn batched_mincut_approx_matches_sequential_results() {
    // Per-instance skeletons are bit-identical (the batched run samples the
    // guesses in the legacy order), so the chosen estimate must match; RNG
    // positions legitimately differ when the sequential early exit skipped
    // later guesses, so they are not compared here.
    for (g, eps, seed) in [
        (
            generators::planted_cut(20, 0.8, 4, 1).with_random_weights(8, 1),
            0.3f64,
            1u64,
        ),
        (generators::gnm(48, 700, 3), 0.3, 3),
    ] {
        let mut seq_cluster = cluster_for(&g, seed, 1.6);
        let seq_input = common::distribute_edges(&seq_cluster, &g);
        let seq = registry::run(
            "mincut-approx",
            &mut seq_cluster,
            &AlgoInput::new(g.n(), &seq_input)
                .epsilon(eps)
                .sequential_instances(),
            ExecMode::Serial,
        )
        .unwrap()
        .into_mincut_approx()
        .unwrap();
        let seq_rounds = seq_cluster.rounds();

        let mut bat_cluster = cluster_for(&g, seed, 1.6);
        let bat_input = common::distribute_edges(&bat_cluster, &g);
        let bat = registry::run(
            "mincut-approx",
            &mut bat_cluster,
            &AlgoInput::new(g.n(), &bat_input).epsilon(eps),
            ExecMode::Parallel,
        )
        .unwrap()
        .into_mincut_approx()
        .unwrap();
        let bat_rounds = bat_cluster.rounds();

        assert_eq!(
            (bat.estimate, bat.lambda_guess, bat.skeleton_edges),
            (seq.estimate, seq.lambda_guess, seq.skeleton_edges),
            "seed {seed}: batched min cut diverged from sequential"
        );
        assert!(
            bat_rounds * 5 <= seq_rounds,
            "seed {seed}: expected ≥5× round collapse, got {bat_rounds} vs {seq_rounds}"
        );
    }
}

// --------------------------------------- early exit / retirement --

/// A starved large machine forces the budget abort mid-grid: the batched
/// run must retire every finer guess (their skeletons never ship) and land
/// on the same whole-graph fallback as the sequential composition, in
/// O(1) combined rounds.
#[test]
fn budget_abort_retires_finer_guesses_and_matches_sequential_fallback() {
    let g = generators::gnm(40, 400, 11).with_random_weights(1 << 10, 11);
    // Record mode: the tiny large machine is the *point* (its skeleton
    // budget trips), and the fallback gather legitimately exceeds it.
    let make = || {
        Cluster::new(
            ClusterConfig::new(g.n(), g.m())
                .seed(11)
                .enforcement(Enforcement::Record)
                .topology(Topology::Custom {
                    capacities: vec![600, 4000, 4000, 4000, 4000],
                    large: Some(0),
                }),
        )
    };

    let mut seq_cluster = make();
    let seq_input = common::distribute_edges(&seq_cluster, &g);
    let seq = adapters::approximate_min_cut_sequential(
        &mut seq_cluster,
        g.n(),
        &seq_input,
        0.3,
        ExecMode::Serial,
    )
    .unwrap();
    let seq_rounds = seq_cluster.rounds();

    let mut bat_cluster = make();
    let bat_input = common::distribute_edges(&bat_cluster, &g);
    let bat =
        adapters::approximate_min_cut(&mut bat_cluster, g.n(), &bat_input, 0.3, ExecMode::Serial)
            .unwrap();
    let bat_rounds = bat_cluster.rounds();

    // Both paths must have aborted to the fallback (λ̂ = 1 marker) with the
    // same estimate over the same gathered graph.
    assert_eq!(bat.lambda_guess, 1, "expected the fallback path");
    assert_eq!(
        (bat.estimate, bat.lambda_guess, bat.skeleton_edges),
        (seq.estimate, seq.lambda_guess, seq.skeleton_edges),
    );
    // Batched: 3 rounds of guess waves + the 1-round fallback gather. The
    // ship round may only carry the guesses at or before the abort —
    // retired guesses contribute nothing (the denser skeletons all sit
    // behind the abort, so the combined ship volume stays near the solo
    // budget instead of the full grid's sum).
    assert!(
        bat_rounds <= 5,
        "batched run should stay O(1) rounds, took {bat_rounds}"
    );
    // (No ≥5× assertion here: with the abort tripping at the very first
    // over-budget guess, the sequential run is short too — the collapse is
    // asserted on the uncontrived workloads above.)
    assert!(seq_rounds >= bat_rounds);
    // On this input the very first guess already overflows the budget, so
    // *every* guess is retired before shipping: the batched log holds just
    // the count report and the fallback gather — no ship round exists, and
    // the retired guesses' skeletons (the dense end of the grid) moved
    // zero words.
    assert_eq!(
        bat_cluster.round_log().len(),
        2,
        "retired guesses leaked a ship round into the log"
    );
}

// --------------------------------- schedule independence (pool) --

/// Batched runs must be bit-identical across Serial / Parallel at worker
/// counts {1, 3, 16}: results, round counts, full round logs (labels,
/// traffic, work, makespans), and RNG positions.
#[test]
fn batched_workloads_are_schedule_independent_at_threads_1_3_16() {
    let g = generators::gnm(140, 1100, 9).with_random_weights(1 << 16, 9);
    for name in ["spanner-weighted", "mst-approx", "mincut-approx"] {
        let polylog = registry::get(name).unwrap().polylog_exponent;
        let run = |mode: ExecMode, threads: usize| {
            let mut cluster = cluster_for(&g, 9, polylog);
            let edges = common::distribute_edges(&cluster, &g);
            let digest: u64 = match name {
                "spanner-weighted" => {
                    let r = adapters::heterogeneous_spanner_weighted_opts(
                        &mut cluster,
                        g.n(),
                        &edges,
                        3,
                        mode,
                        threads,
                    )
                    .unwrap();
                    r.spanner.m() as u64
                }
                "mst-approx" => {
                    let r = adapters::approximate_mst_weight_opts(
                        &mut cluster,
                        g.n(),
                        &edges,
                        0.5,
                        mode,
                        threads,
                    )
                    .unwrap();
                    r.estimate.to_bits() ^ r.component_counts.len() as u64
                }
                "mincut-approx" => {
                    let r = adapters::approximate_min_cut_opts(
                        &mut cluster,
                        g.n(),
                        &edges,
                        0.3,
                        mode,
                        threads,
                    )
                    .unwrap();
                    r.estimate.to_bits() ^ r.lambda_guess
                }
                other => unreachable!("no driver for '{other}'"),
            };
            let log = cluster.round_log().to_vec();
            let rng = rng_positions(&mut cluster);
            (digest, cluster.rounds(), log, rng)
        };
        let reference = run(ExecMode::Serial, 1);
        for threads in [1usize, 3, 16] {
            let got = run(ExecMode::Parallel, threads);
            assert_eq!(
                got, reference,
                "{name}: parallel (threads={threads}) diverged from serial"
            );
        }
    }
}
