//! The telemetry contract, end to end through the engine:
//!
//! * attaching a recording sink never perturbs execution — serial and
//!   pooled runs (worker counts 1/3/16) stay bit-identical (results,
//!   round logs, RNG positions) *with telemetry on*;
//! * the event stream reconciles **exactly** with the cluster's round
//!   log — same totals, same makespans, nothing invented or dropped;
//! * the Perfetto exporter emits valid JSON for the hardest case: a
//!   batched multiplex run under the pool with a retired instance.

use mpc_core::common;
use mpc_core::ported::connectivity::{sketch_friendly_config, ConnectivityConfig};
use mpc_exec::{adapters, ConnectivityProgram, ExecMode, Executor};
use mpc_graph::generators;
use mpc_runtime::telemetry::{parse_json, perfetto_export};
use mpc_runtime::{Cluster, ClusterConfig, Enforcement, RingSink, Topology, TraceEvent};
use rand::RngCore;
use std::sync::Arc;

fn rng_positions(cluster: &mut Cluster) -> Vec<u64> {
    (0..cluster.machines())
        .map(|mid| cluster.rng(mid).next_u64())
        .collect()
}

// ------------------------------------ recording does not perturb --

/// Serial vs pool at worker counts {1, 3, 16}, all with a live recording
/// sink: results, round logs, and RNG stream positions must match, and
/// every schedule must record the same machine-level event stream (worker
/// events differ by schedule, so they are compared after filtering).
#[test]
fn recording_sink_keeps_serial_and_pool_bit_identical() {
    let seed = 42;
    let g = generators::gnm(96, 260, seed);
    let config = ConnectivityConfig::for_n(g.n());
    let run = |mode: ExecMode, threads: usize| {
        let mut cluster = Cluster::new(sketch_friendly_config(g.n(), g.m(), seed));
        let ring = Arc::new(RingSink::unbounded());
        cluster.set_trace_sink(Some(ring.clone()));
        let edges = common::distribute_edges(&cluster, &g);
        let programs = ConnectivityProgram::for_cluster(&cluster, g.n(), &edges, &config);
        let outcome = Executor::new("conn", mode)
            .threads(threads)
            .run(&mut cluster, programs)
            .unwrap();
        let large = cluster.large().unwrap();
        let result = outcome.programs[large].result.clone().unwrap();
        // Worker events are schedule-dependent by design (they describe the
        // host pool, not the simulated cluster) — drop them before the
        // cross-schedule comparison.
        let machine_events: Vec<TraceEvent> = ring
            .take()
            .into_iter()
            .filter(|e| !matches!(e, TraceEvent::WorkerRound { .. }))
            .collect();
        (
            result,
            cluster.round_log().to_vec(),
            rng_positions(&mut cluster),
            machine_events,
        )
    };
    let reference = run(ExecMode::Serial, 1);
    assert!(
        !reference.3.is_empty(),
        "serial run recorded no machine events"
    );
    for threads in [1usize, 3, 16] {
        let got = run(ExecMode::Parallel, threads);
        assert_eq!(
            got.0, reference.0,
            "threads={threads}: result diverged under telemetry"
        );
        assert_eq!(
            got.1, reference.1,
            "threads={threads}: round log diverged under telemetry"
        );
        assert_eq!(
            got.2, reference.2,
            "threads={threads}: RNG positions diverged under telemetry"
        );
        assert_eq!(
            got.3, reference.3,
            "threads={threads}: machine-level event stream diverged"
        );
    }
}

// ----------------------------------- events reconcile with the log --

/// Every `RoundEnd` must restate its `RoundRecord` exactly, and the
/// `MachineRound` events between a begin/end pair must sum to the
/// record's totals — the trace is the log, just wider.
#[test]
fn ring_events_reconcile_exactly_with_round_records() {
    let seed = 7;
    let g = generators::gnm(120, 700, seed).with_random_weights(1 << 16, seed);
    let mut cluster = Cluster::new(ClusterConfig::new(g.n(), g.m()).seed(seed));
    let ring = Arc::new(RingSink::unbounded());
    cluster.set_trace_sink(Some(ring.clone()));
    let edges = common::distribute_edges(&cluster, &g);
    adapters::boruvka_msf(&mut cluster, &edges, ExecMode::Parallel).unwrap();

    let events = ring.take();
    let log = cluster.round_log();
    let begins = events
        .iter()
        .filter(|e| matches!(e, TraceEvent::RoundBegin { .. }))
        .count();
    assert_eq!(begins as u64, cluster.rounds(), "one RoundBegin per round");

    // Walk the stream: accumulate MachineRound totals until the RoundEnd,
    // then reconcile against the next record in log order.
    let mut record_idx = 0usize;
    let (mut sent_sum, mut work_sum, mut max_sent, mut max_recv) = (0usize, 0u64, 0usize, 0usize);
    for event in &events {
        match event {
            TraceEvent::RoundBegin { label, .. } => {
                assert_eq!(
                    label.as_str(),
                    log[record_idx].label.to_string(),
                    "round {record_idx}: label mismatch"
                );
                (sent_sum, work_sum, max_sent, max_recv) = (0, 0, 0, 0);
            }
            TraceEvent::MachineRound {
                sent_words,
                recv_words,
                work,
                ..
            } => {
                sent_sum += sent_words;
                work_sum += work;
                max_sent = max_sent.max(*sent_words);
                max_recv = max_recv.max(*recv_words);
            }
            TraceEvent::RoundEnd {
                total_words,
                messages,
                makespan,
                ..
            } => {
                let record = &log[record_idx];
                assert_eq!(*total_words, record.total_words, "round {record_idx}");
                assert_eq!(*messages, record.messages, "round {record_idx}");
                assert_eq!(*makespan, record.makespan, "round {record_idx}");
                assert_eq!(
                    sent_sum, record.total_words,
                    "round {record_idx}: machine sent sums != record total"
                );
                assert_eq!(
                    work_sum, record.total_work,
                    "round {record_idx}: machine work sums != record total"
                );
                assert_eq!(max_sent, record.max_sent, "round {record_idx}");
                assert_eq!(max_recv, record.max_recv, "round {record_idx}");
                record_idx += 1;
            }
            _ => {}
        }
    }
    assert_eq!(record_idx, log.len(), "every record was reconciled");
}

// ------------------------------------------- perfetto round-trip --

/// The exporter's hardest input: a batched multiplex run (mincut-approx's
/// λ̂-guess grid) under the pool, on a starved large machine so guesses
/// retire mid-run. The export must be valid JSON with both process groups
/// (simulated machines + host workers) and the retirement instants.
#[test]
fn perfetto_export_round_trips_a_batched_run_with_retirement() {
    let g = generators::gnm(40, 400, 11).with_random_weights(1 << 10, 11);
    let mut cluster = Cluster::new(
        ClusterConfig::new(g.n(), g.m())
            .seed(11)
            .enforcement(Enforcement::Record)
            .topology(Topology::Custom {
                capacities: vec![600, 4000, 4000, 4000, 4000],
                large: Some(0),
            }),
    );
    let ring = Arc::new(RingSink::unbounded());
    cluster.set_trace_sink(Some(ring.clone()));
    let edges = common::distribute_edges(&cluster, &g);
    let out = adapters::approximate_min_cut(&mut cluster, g.n(), &edges, 0.3, ExecMode::Parallel)
        .unwrap();
    assert_eq!(out.lambda_guess, 1, "expected the budget-abort fallback");

    let events = ring.take();
    let retired = events
        .iter()
        .filter(|e| matches!(e, TraceEvent::InstanceRetired { .. }))
        .count();
    assert!(retired > 0, "the starved run must retire instances");
    assert!(
        events
            .iter()
            .any(|e| matches!(e, TraceEvent::MuxRound { .. })),
        "multiplex rounds must be attributed"
    );
    assert!(
        events
            .iter()
            .any(|e| matches!(e, TraceEvent::WorkerRound { .. })),
        "pooled run must carry worker events"
    );

    let trace = perfetto_export(&events);
    let value = parse_json(&trace).expect("perfetto export is valid JSON");
    let trace_events = value
        .get("traceEvents")
        .and_then(|v| v.as_arr())
        .expect("traceEvents array");
    let pid_of = |e: &mpc_runtime::telemetry::JsonValue| {
        e.get("pid").and_then(|p| p.as_f64()).unwrap_or(-1.0)
    };
    assert!(
        trace_events.iter().any(|e| pid_of(e) == 1.0),
        "machine track group missing"
    );
    assert!(
        trace_events.iter().any(|e| pid_of(e) == 2.0),
        "worker track group missing"
    );
    let retire_instants = trace_events
        .iter()
        .filter(|e| {
            e.get("name")
                .and_then(|n| n.as_str())
                .is_some_and(|n| n.starts_with("retire instance"))
                && e.get("ph").and_then(|p| p.as_str()) == Some("i")
        })
        .count();
    assert_eq!(
        retire_instants, retired,
        "every retirement must appear as an instant"
    );
}
