//! Engine-ported programs must reproduce the legacy call-style results:
//! same components, same forest, on the same cluster seed.

use mpc_core::ported::connectivity::{sketch_friendly_config, ConnectivityConfig};
use mpc_core::{common, mst};
use mpc_exec::{adapters, ExecMode};
use mpc_graph::{generators, traversal::connected_components, Edge};
use mpc_runtime::{Cluster, ClusterConfig};

#[test]
fn connectivity_program_equals_legacy_exactly() {
    for seed in [1u64, 5, 11] {
        let g = generators::gnm(96, 240, seed);
        let config = ConnectivityConfig::for_n(g.n());

        let mut legacy_cluster = Cluster::new(sketch_friendly_config(g.n(), g.m(), seed));
        let legacy_input = common::distribute_edges(&legacy_cluster, &g);
        let legacy = mpc_core::ported::heterogeneous_connectivity(
            &mut legacy_cluster,
            g.n(),
            &legacy_input,
            &config,
        )
        .unwrap();

        let mut engine_cluster = Cluster::new(sketch_friendly_config(g.n(), g.m(), seed));
        let engine_input = common::distribute_edges(&engine_cluster, &g);
        let engine = adapters::heterogeneous_connectivity(
            &mut engine_cluster,
            g.n(),
            &engine_input,
            &config,
            ExecMode::Parallel,
        )
        .unwrap();

        // Exact equality: the program draws the same seed from the same
        // RNG stream and sums the same linear sketches.
        assert_eq!(engine, legacy, "seed {seed}");
        // And both match the sequential reference.
        assert_eq!(engine, connected_components(&g), "seed {seed}");
    }
}

#[test]
fn boruvka_program_matches_legacy_mst() {
    for seed in [2u64, 7, 13] {
        // Unique weights => the MSF is unique => edge sets must agree.
        let base = generators::gnm(100, 420, seed);
        let edges: Vec<Edge> = base
            .edges()
            .iter()
            .enumerate()
            .map(|(i, e)| Edge::new(e.u, e.v, 1_000 + i as u64))
            .collect();
        let g = mpc_graph::Graph::new(100, edges);

        let mut legacy_cluster = Cluster::new(ClusterConfig::new(g.n(), g.m().max(1)).seed(seed));
        let legacy_input = common::distribute_edges(&legacy_cluster, &g);
        let legacy = mst::heterogeneous_mst(&mut legacy_cluster, g.n(), legacy_input)
            .unwrap()
            .forest;

        let mut engine_cluster = Cluster::new(ClusterConfig::new(g.n(), g.m().max(1)).seed(seed));
        let engine_input = common::distribute_edges(&engine_cluster, &g);
        let engine =
            adapters::boruvka_msf(&mut engine_cluster, &engine_input, ExecMode::Parallel).unwrap();

        assert_eq!(engine.keys(), legacy.keys(), "seed {seed}");
        assert_eq!(engine.total_weight, legacy.total_weight, "seed {seed}");
        assert!(mst::is_minimum_spanning_forest(&g, &engine), "seed {seed}");
    }
}

#[test]
fn boruvka_handles_disconnected_and_tiny_inputs() {
    // Disconnected forest input.
    let g = generators::random_forest(80, 5, 3).with_random_weights(500, 3);
    let mut cluster = Cluster::new(ClusterConfig::new(g.n(), g.m().max(1)).seed(9));
    let input = common::distribute_edges(&cluster, &g);
    let forest = adapters::boruvka_msf(&mut cluster, &input, ExecMode::Parallel).unwrap();
    assert!(mst::is_minimum_spanning_forest(&g, &forest));

    // Empty graph: engine must terminate with an empty forest.
    let empty = mpc_graph::Graph::empty(10);
    let mut cluster = Cluster::new(ClusterConfig::new(10, 1).seed(1));
    let input = common::distribute_edges(&cluster, &empty);
    let forest = adapters::boruvka_msf(&mut cluster, &input, ExecMode::Serial).unwrap();
    assert!(forest.is_empty());
}
