//! Labels and the marker/decoder pair (`M_flow` / `D_flow` in the paper §3).

use crate::centroid::CentroidDecomposition;
use mpc_graph::{traversal, DisjointSets, Edge, Graph, VertexId, WeightKey};
use mpc_runtime::Payload;
use std::error::Error;
use std::fmt;

/// The neutral "empty path" key (smaller than every real edge key).
const ZERO_KEY: WeightKey = WeightKey { w: 0, u: 0, v: 0 };

/// One `(centroid, max-edge-to-centroid)` ancestry entry. 3 words.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct LabelEntry {
    /// The centroid ancestor.
    pub centroid: VertexId,
    /// Max edge key on the path from the labeled vertex to `centroid`
    /// (the zero key when the labeled vertex *is* the centroid).
    pub max_to_centroid: WeightKey,
}

impl Payload for LabelEntry {
    fn words(&self) -> usize {
        3
    }
}

/// A vertex label of the max-edge labeling scheme.
///
/// `O(log n)` words = `O(log² n)` bits, matching the flow labels of \[42\]
/// that the paper's MST algorithm ships to the small machines.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Label {
    /// Identifier of the vertex's tree (smallest vertex id in it), so the
    /// decoder can answer connectivity too.
    pub tree: VertexId,
    /// Centroid ancestry entries, topmost centroid first.
    pub entries: Vec<LabelEntry>,
}

impl Payload for Label {
    fn words(&self) -> usize {
        1 + self.entries.iter().map(Payload::words).sum::<usize>()
    }
}

/// The input to [`MaxEdgeLabeling::build`] was not a forest.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct NotAForestError {
    /// An edge that closes a cycle.
    pub witness: Edge,
}

impl fmt::Display for NotAForestError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "input graph is not a forest: edge {:?} closes a cycle",
            self.witness
        )
    }
}

impl Error for NotAForestError {}

/// The complete labeling of a forest: the output of the marker algorithm.
#[derive(Clone, Debug)]
pub struct MaxEdgeLabeling {
    labels: Vec<Label>,
}

impl MaxEdgeLabeling {
    /// Runs the marker algorithm on `forest` (`O(n log n)`).
    ///
    /// # Errors
    ///
    /// Returns [`NotAForestError`] if the graph contains a cycle.
    pub fn build(forest: &Graph) -> Result<Self, NotAForestError> {
        // Validate forestness.
        let mut dsu = DisjointSets::new(forest.n());
        for e in forest.edges() {
            if !dsu.union(e.u, e.v) {
                return Err(NotAForestError { witness: *e });
            }
        }
        let comps = traversal::components_from_dsu(&mut dsu);
        let cd = CentroidDecomposition::new(forest);
        let adj = forest.adjacency();
        let n = forest.n();

        // For each vertex, entries (centroid, max-to-centroid). Fill by
        // traversing from every centroid over its piece. Rebuilding piece
        // membership from ancestries: v belongs to centroid c's piece at
        // level d iff ancestry(v)[d] == c. We instead do one BFS per
        // centroid over vertices whose ancestry has the matching prefix
        // length — equivalent and simple: walk from c, allowing only
        // vertices whose ancestry length > d (not yet removed at level d).
        let mut labels: Vec<Label> = (0..n as VertexId)
            .map(|v| Label {
                tree: comps.label[v as usize],
                entries: Vec::new(),
            })
            .collect();
        // depth_of[v] = index at which v itself was removed (= len-1 when
        // ancestry ends with v; ancestry always ends with the centroid that
        // removed v... only if v IS that centroid). Removal level of v:
        let removal_level = |v: VertexId| -> usize { cd.ancestry(v).len() - 1 };
        // Collect centroids by (level, id): centroid c at level d governs
        // the piece of vertices v with ancestry(v)[d] == c.
        for v in 0..n as VertexId {
            let anc = cd.ancestry(v);
            debug_assert_eq!(anc[removal_level(v)], *anc.last().unwrap());
            labels[v as usize].entries = anc
                .iter()
                .map(|&c| LabelEntry {
                    centroid: c,
                    max_to_centroid: ZERO_KEY,
                })
                .collect();
        }
        // BFS from each centroid c at its level d, visiting only vertices
        // with removal level > d (still present), recording max edge keys.
        let mut max_key = vec![ZERO_KEY; n];
        let mut queue = std::collections::VecDeque::new();
        let mut seen = vec![false; n];
        for c in 0..n as VertexId {
            // c is a centroid exactly of the piece at its own removal level.
            let d = removal_level(c);
            queue.clear();
            queue.push_back(c);
            max_key[c as usize] = ZERO_KEY;
            seen[c as usize] = true;
            let mut touched = vec![c];
            while let Some(x) = queue.pop_front() {
                let mx = max_key[x as usize];
                if x != c {
                    labels[x as usize].entries[d].max_to_centroid = mx;
                    debug_assert_eq!(labels[x as usize].entries[d].centroid, c);
                }
                for &(y, w) in adj.neighbors(x) {
                    if !seen[y as usize] && removal_level(y) > d {
                        seen[y as usize] = true;
                        touched.push(y);
                        max_key[y as usize] = mx.max(Edge::new(x, y, w).weight_key());
                        queue.push_back(y);
                    }
                }
            }
            for t in touched {
                seen[t as usize] = false;
            }
        }
        Ok(MaxEdgeLabeling { labels })
    }

    /// The labels, indexed by vertex id.
    pub fn labels(&self) -> &[Label] {
        &self.labels
    }

    /// The label of vertex `v`.
    pub fn label(&self, v: VertexId) -> &Label {
        &self.labels[v as usize]
    }

    /// The decoder `D_flow`: the heaviest edge key on the `u–v` path in the
    /// forest, or `None` if `u` and `v` lie in different trees.
    ///
    /// Works from the two labels alone — this is what the small machines
    /// evaluate locally after the large machine disseminates labels (§3).
    pub fn decode(a: &Label, b: &Label) -> Option<WeightKey> {
        if a.tree != b.tree {
            return None;
        }
        // Deepest common ancestry entry (ancestries agree on a prefix).
        let mut deepest: Option<(WeightKey, WeightKey)> = None;
        for (ea, eb) in a.entries.iter().zip(&b.entries) {
            if ea.centroid == eb.centroid {
                deepest = Some((ea.max_to_centroid, eb.max_to_centroid));
            } else {
                break;
            }
        }
        let (ma, mb) = deepest.expect("same tree implies a common top centroid");
        Some(ma.max(mb))
    }

    /// Classifies an edge as F-light (§3): `e` is F-light iff its endpoints
    /// are disconnected in the forest or `e`'s key is strictly smaller than
    /// the heaviest key on their forest path.
    pub fn is_f_light(a: &Label, b: &Label, e: &Edge) -> bool {
        match Self::decode(a, b) {
            None => true,
            Some(max_on_path) => e.weight_key() < max_on_path,
        }
    }

    /// Maximum label size in words (the paper's `O(log² n)` bits).
    pub fn max_label_words(&self) -> usize {
        self.labels.iter().map(Payload::words).max().unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpc_graph::generators;

    #[test]
    fn rejects_cycles() {
        let g = generators::cycle(5, 0);
        assert!(MaxEdgeLabeling::build(&g).is_err());
    }

    #[test]
    fn path_queries() {
        // 0 -5- 1 -9- 2 -3- 3
        let f = Graph::new(
            4,
            [Edge::new(0, 1, 5), Edge::new(1, 2, 9), Edge::new(2, 3, 3)],
        );
        let lab = MaxEdgeLabeling::build(&f).unwrap();
        let l = lab.labels();
        assert_eq!(MaxEdgeLabeling::decode(&l[0], &l[3]).unwrap().w, 9);
        assert_eq!(MaxEdgeLabeling::decode(&l[0], &l[1]).unwrap().w, 5);
        assert_eq!(MaxEdgeLabeling::decode(&l[2], &l[3]).unwrap().w, 3);
        assert_eq!(MaxEdgeLabeling::decode(&l[1], &l[1]), Some(super::ZERO_KEY));
    }

    #[test]
    fn disconnected_is_none_and_f_light() {
        let f = Graph::new(3, [Edge::new(0, 1, 5)]);
        let lab = MaxEdgeLabeling::build(&f).unwrap();
        let l = lab.labels();
        assert!(MaxEdgeLabeling::decode(&l[0], &l[2]).is_none());
        assert!(MaxEdgeLabeling::is_f_light(
            &l[0],
            &l[2],
            &Edge::new(0, 2, 1_000)
        ));
    }

    #[test]
    fn f_light_matches_reference_on_random_forests() {
        use mpc_graph::mst::is_f_light as reference_f_light;
        for seed in 0..10 {
            let f = generators::random_forest(80, 3, seed).with_random_weights(500, seed);
            let lab = MaxEdgeLabeling::build(&f).unwrap();
            let l = lab.labels();
            // Query random candidate edges.
            for i in 0..200u32 {
                let u = (i * 7 + seed as u32) % 80;
                let v = (i * 13 + 3) % 80;
                if u == v {
                    continue;
                }
                let e = Edge::new(u, v, (i as u64 % 500) + 1);
                assert_eq!(
                    MaxEdgeLabeling::is_f_light(&l[u as usize], &l[v as usize], &e),
                    reference_f_light(&f, &e),
                    "seed {seed}, edge {e:?}"
                );
            }
        }
    }

    #[test]
    fn label_size_is_logarithmic() {
        let f = generators::path(1 << 10);
        let lab = MaxEdgeLabeling::build(&f).unwrap();
        // <= 1 + 3 * (log2(n)+1) words.
        assert!(
            lab.max_label_words() <= 1 + 3 * 11,
            "got {}",
            lab.max_label_words()
        );
    }
}
