//! Iterative centroid decomposition of a forest.

use mpc_graph::{Graph, VertexId};

/// The centroid decomposition of a forest.
///
/// For every vertex, `ancestry(v)` lists its centroid ancestors from the
/// component's top centroid down to `v`'s own removal level. The depth is at
/// most `⌈log₂ n⌉ + 1` because each level at least halves the piece size.
#[derive(Clone, Debug)]
pub struct CentroidDecomposition {
    /// `ancestors[v]` = centroid ancestry of `v`, topmost first
    /// (the last entry is the centroid whose removal eliminated `v`,
    /// which is `v` itself exactly when `v` was picked as a centroid).
    ancestors: Vec<Vec<VertexId>>,
    max_depth: usize,
}

impl CentroidDecomposition {
    /// Decomposes `forest`. Runs in `O(n log n)` time, fully iteratively
    /// (no recursion — path-shaped trees would overflow the stack).
    ///
    /// # Panics
    ///
    /// Panics if `forest` contains a cycle (checked cheaply via `m < n`
    /// per component invariants — callers wanting a checked build use
    /// [`MaxEdgeLabeling::build`](crate::MaxEdgeLabeling::build)).
    pub fn new(forest: &Graph) -> Self {
        let n = forest.n();
        let adj = forest.adjacency();
        let mut removed = vec![false; n];
        let mut ancestors: Vec<Vec<VertexId>> = vec![Vec::new(); n];
        let mut visited = vec![false; n];
        let mut max_depth = 0usize;

        // Work stack of pieces, each identified by one member vertex.
        let mut pieces: Vec<VertexId> = Vec::new();
        for v in 0..n as VertexId {
            if !visited[v as usize] {
                // Mark the whole component visited; queue it as one piece.
                let mut stack = vec![v];
                visited[v as usize] = true;
                while let Some(x) = stack.pop() {
                    for &(y, _) in adj.neighbors(x) {
                        if !visited[y as usize] {
                            visited[y as usize] = true;
                            stack.push(y);
                        }
                    }
                }
                pieces.push(v);
            }
        }

        let mut members: Vec<VertexId> = Vec::new();
        let mut order: Vec<VertexId> = Vec::new();
        let mut parent: Vec<VertexId> = vec![0; n];
        let mut size: Vec<u32> = vec![0; n];
        while let Some(start) = pieces.pop() {
            // Collect the piece via DFS over unremoved vertices, recording a
            // DFS order for the iterative size computation.
            members.clear();
            order.clear();
            let mut stack = vec![start];
            parent[start as usize] = start;
            // Reuse `size` as a visited marker by setting it nonzero on push.
            size[start as usize] = 1;
            while let Some(x) = stack.pop() {
                members.push(x);
                order.push(x);
                for &(y, _) in adj.neighbors(x) {
                    if !removed[y as usize] && y != parent[x as usize] && size[y as usize] == 0 {
                        size[y as usize] = 1;
                        parent[y as usize] = x;
                        stack.push(y);
                    }
                }
            }
            let piece_len = members.len() as u32;
            // Subtree sizes in reverse DFS order.
            for &x in order.iter().rev() {
                if x != start {
                    let p = parent[x as usize];
                    size[p as usize] += size[x as usize];
                }
            }
            // Centroid: minimize the largest side after removal.
            let mut centroid = start;
            let mut best = u32::MAX;
            for &x in &members {
                let mut largest = piece_len - size[x as usize];
                for &(y, _) in adj.neighbors(x) {
                    if !removed[y as usize] && parent[y as usize] == x && y != start {
                        largest = largest.max(size[y as usize]);
                    }
                }
                if largest < best {
                    best = largest;
                    centroid = x;
                }
            }
            // Record the centroid in every member's ancestry; reset size.
            for &x in &members {
                ancestors[x as usize].push(centroid);
                max_depth = max_depth.max(ancestors[x as usize].len());
                size[x as usize] = 0;
            }
            removed[centroid as usize] = true;
            // Queue the remaining sub-pieces (one per unremoved neighbor).
            for &(y, _) in adj.neighbors(centroid) {
                if !removed[y as usize] {
                    pieces.push(y);
                }
            }
        }
        CentroidDecomposition {
            ancestors,
            max_depth,
        }
    }

    /// The centroid ancestry of `v`, topmost centroid first.
    pub fn ancestry(&self, v: VertexId) -> &[VertexId] {
        &self.ancestors[v as usize]
    }

    /// The deepest ancestry length over all vertices.
    pub fn max_depth(&self) -> usize {
        self.max_depth
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpc_graph::generators;

    #[test]
    fn depth_is_logarithmic_on_paths() {
        let g = generators::path(1024);
        let cd = CentroidDecomposition::new(&g);
        assert!(
            cd.max_depth() <= 11,
            "depth {} > log2(1024)+1",
            cd.max_depth()
        );
    }

    #[test]
    fn depth_is_logarithmic_on_random_trees() {
        for seed in 0..5 {
            let g = generators::random_tree(500, seed);
            let cd = CentroidDecomposition::new(&g);
            assert!(
                cd.max_depth() <= 10,
                "seed {seed}: depth {}",
                cd.max_depth()
            );
        }
    }

    #[test]
    fn ancestries_share_prefixes_within_component() {
        let g = generators::random_tree(64, 3);
        let cd = CentroidDecomposition::new(&g);
        // Every vertex's topmost centroid is the same in one tree.
        let top = cd.ancestry(0)[0];
        for v in 0..64 {
            assert_eq!(cd.ancestry(v)[0], top);
        }
    }

    #[test]
    fn forest_components_are_independent() {
        let g = generators::random_forest(40, 4, 1);
        let cd = CentroidDecomposition::new(&g);
        for v in 0..40 {
            assert!(!cd.ancestry(v).is_empty());
        }
    }

    #[test]
    fn isolated_vertex_is_its_own_centroid() {
        let g = Graph::empty(3);
        let cd = CentroidDecomposition::new(&g);
        for v in 0..3 {
            assert_eq!(cd.ancestry(v), &[v]);
        }
    }

    #[test]
    fn star_centroid_is_center() {
        let g = generators::star(50);
        let cd = CentroidDecomposition::new(&g);
        assert_eq!(cd.ancestry(1)[0], 0);
        assert_eq!(cd.max_depth(), 2);
    }
}
