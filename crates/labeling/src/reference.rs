//! Slow exact oracle for max-edge-on-path queries (test validation).

use mpc_graph::{Edge, Graph, VertexId, WeightKey};

/// Exact max edge key on the `u–v` path of `forest`, or `None` if
/// disconnected. `O(n)` per query (BFS) — oracle only.
pub fn max_edge_on_path(forest: &Graph, u: VertexId, v: VertexId) -> Option<WeightKey> {
    if u == v {
        return Some(WeightKey { w: 0, u: 0, v: 0 });
    }
    let adj = forest.adjacency();
    let n = forest.n();
    let mut seen = vec![false; n];
    let mut stack = vec![(u, WeightKey { w: 0, u: 0, v: 0 })];
    seen[u as usize] = true;
    while let Some((x, mx)) = stack.pop() {
        if x == v {
            return Some(mx);
        }
        for &(y, w) in adj.neighbors(x) {
            if !seen[y as usize] {
                seen[y as usize] = true;
                stack.push((y, mx.max(Edge::new(x, y, w).weight_key())));
            }
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn oracle_on_tiny_path() {
        let f = Graph::new(3, [Edge::new(0, 1, 2), Edge::new(1, 2, 7)]);
        assert_eq!(max_edge_on_path(&f, 0, 2).unwrap().w, 7);
        assert_eq!(max_edge_on_path(&f, 0, 0).unwrap().w, 0);
    }
}
