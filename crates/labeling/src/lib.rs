//! Max-edge-on-path labeling scheme for forests.
//!
//! The MST algorithm of the heterogeneous-MPC paper (§3) identifies
//! *F-light* edges with the **flow labeling scheme** of Katz, Katz, Korman &
//! Peleg \[42\]: a marker algorithm `M_flow` labels the vertices of a forest
//! `F` with `O(log² n)`-bit labels, and a decoder `D_flow(L(u), L(v))`
//! returns the weight of the heaviest edge on the `u–v` path in `F`.
//!
//! This crate implements the same interface via **centroid decomposition**
//! (substitution recorded in DESIGN.md §4): each vertex stores, for every
//! centroid ancestor `c` of its component (`≤ ⌈log₂ n⌉ + 1` of them), the
//! pair `(c, max-edge-on-path(v → c))`. For any two vertices in the same
//! tree, their deepest common centroid ancestor lies *on* their tree path,
//! so the decoder is a prefix scan plus one `max` — identical asymptotic
//! label size (`O(log n)` words = `O(log² n)` bits) and query semantics as
//! \[42\].
//!
//! # Example
//!
//! ```
//! use mpc_graph::{generators, Graph, Edge};
//! use mpc_labeling::MaxEdgeLabeling;
//!
//! // A path 0 -5- 1 -9- 2 plus an isolated vertex 3.
//! let f = Graph::new(4, [Edge::new(0, 1, 5), Edge::new(1, 2, 9)]);
//! let labeling = MaxEdgeLabeling::build(&f).unwrap();
//! let l = labeling.labels();
//! // Heaviest edge on the 0–2 path weighs 9:
//! assert_eq!(MaxEdgeLabeling::decode(&l[0], &l[2]).unwrap().w, 9);
//! // 0 and 3 are not connected:
//! assert!(MaxEdgeLabeling::decode(&l[0], &l[3]).is_none());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod centroid;
mod label;
pub mod reference;

pub use centroid::CentroidDecomposition;
pub use label::{Label, LabelEntry, MaxEdgeLabeling, NotAForestError};
