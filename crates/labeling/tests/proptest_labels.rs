//! Property tests: the labeling decoder agrees with the exact oracle on
//! arbitrary random forests, for all vertex pairs.

use mpc_graph::{generators, Graph, VertexId};
use mpc_labeling::{reference, MaxEdgeLabeling};
use proptest::prelude::*;

fn arbitrary_forest() -> impl Strategy<Value = Graph> {
    (2usize..120, 1usize..6, any::<u64>(), 1u64..1000).prop_map(|(n, trees, seed, wmax)| {
        let trees = trees.min(n);
        generators::random_forest(n, trees, seed).with_random_weights(wmax, seed)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn decoder_matches_oracle(f in arbitrary_forest()) {
        let lab = MaxEdgeLabeling::build(&f).unwrap();
        let l = lab.labels();
        let n = f.n() as VertexId;
        for u in 0..n {
            for v in (u + 1)..n {
                let got = MaxEdgeLabeling::decode(&l[u as usize], &l[v as usize]);
                let want = reference::max_edge_on_path(&f, u, v);
                prop_assert_eq!(got, want, "pair ({}, {})", u, v);
            }
        }
    }

    #[test]
    fn label_sizes_are_logarithmic(f in arbitrary_forest()) {
        let lab = MaxEdgeLabeling::build(&f).unwrap();
        let n = f.n() as f64;
        let bound = 1 + 3 * ((n.log2().ceil() as usize) + 1);
        prop_assert!(lab.max_label_words() <= bound,
            "labels {} words > bound {}", lab.max_label_words(), bound);
    }
}
