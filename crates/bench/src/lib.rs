//! Benchmark harness: regenerates the paper's evaluation artifacts.
//!
//! The paper's artifacts are **Table 1** (round complexities of nine graph
//! problems across three memory regimes) and **Figure 1** (original vs.
//! modified Baswana–Sen behaviour); every theorem additionally gets a
//! scaling experiment so the *shape* of each claimed bound is measured.
//! The experiment index lives in `DESIGN.md §3`; results are recorded in
//! `EXPERIMENTS.md`.
//!
//! Run everything:
//!
//! ```text
//! cargo run -p mpc-bench --release --bin experiments            # all
//! cargo run -p mpc-bench --release --bin experiments -- table1  # one
//! cargo bench --workspace                                       # Criterion timings
//! ```

#![forbid(unsafe_code)]

pub mod experiments;
pub mod hotpath;
pub mod table;

pub use table::Table;

/// All experiment names, in presentation order.
pub const EXPERIMENTS: &[&str] = &[
    "table1",
    "mst_scaling",
    "mst_superlinear",
    "spanner",
    "baswana_ablation",
    "figure1",
    "matching",
    "matching_filtering",
    "apsp",
    "connectivity",
    "mst_approx",
    "mincut",
    "mis",
    "coloring",
    "two_vs_one",
    "exec",
    "hotpath",
    "service",
    "registry",
    "budgets",
    "chaos",
    "chaos-service",
];

/// Runs one experiment by name, printing its tables to stdout.
///
/// # Panics
///
/// Panics on unknown experiment names (callers validate against
/// [`EXPERIMENTS`]).
pub fn run_experiment(name: &str) {
    run_experiment_opts(name, false);
}

/// [`run_experiment`] with options: `quick` shrinks the sweeps of the
/// experiments that support it (currently `hotpath`) for CI smoke runs.
///
/// # Panics
///
/// See [`run_experiment`].
pub fn run_experiment_opts(name: &str, quick: bool) {
    match name {
        "table1" => experiments::table1(),
        "mst_scaling" => experiments::mst_scaling(),
        "mst_superlinear" => experiments::mst_superlinear(),
        "spanner" => experiments::spanner(),
        "baswana_ablation" => experiments::baswana_ablation(),
        "figure1" => experiments::figure1(),
        "matching" => experiments::matching(),
        "matching_filtering" => experiments::matching_filtering(),
        "apsp" => experiments::apsp(),
        "connectivity" => experiments::connectivity(),
        "mst_approx" => experiments::mst_approx(),
        "mincut" => experiments::mincut(),
        "mis" => experiments::mis(),
        "coloring" => experiments::coloring(),
        "two_vs_one" => experiments::two_vs_one(),
        "exec" => experiments::exec_engine(),
        "hotpath" => hotpath::run(quick),
        "service" => experiments::service(),
        "registry" => experiments::registry_smoke(),
        "budgets" => experiments::budgets(),
        "chaos" => experiments::chaos(),
        "chaos-service" => experiments::chaos_service(),
        other => panic!("unknown experiment '{other}'; see --list"),
    }
}
