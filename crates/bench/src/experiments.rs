//! The experiment implementations (index: DESIGN.md §3).
//!
//! Every experiment prints markdown tables whose rows feed EXPERIMENTS.md.
//! Independent repetitions run on crossbeam scoped threads — the
//! simulator is deterministic per seed, so parallelism never changes
//! results, only wall-clock.

use crate::Table;
use mpc_baselines::near_linear::near_linear_config;
use mpc_baselines::sublinear::{
    distribute_all, sublinear_coloring, sublinear_config, sublinear_matching, sublinear_mis,
    sublinear_mst, two_vs_one_cycle_baseline,
};
use mpc_core::ported::connectivity::sketch_friendly_config;
use mpc_core::spanner::baswana_sen;
use mpc_core::{common, matching, mst, ported, spanner};
use mpc_graph::{generators, Graph};
use mpc_runtime::{Cluster, ClusterConfig, Topology};

fn het_cluster(g: &Graph, seed: u64) -> Cluster {
    Cluster::new(ClusterConfig::new(g.n(), g.m().max(1)).seed(seed))
}

/// Runs a registry algorithm on its preferred heterogeneous engine cluster
/// (the algorithm's declared polylog headroom), returning the output and
/// the measured engine rounds — the standard way every experiment invokes
/// the ported algorithms since the registry became the sole
/// consumer-facing entry point.
fn run_registry(
    name: &str,
    g: &Graph,
    seed: u64,
    tweak: impl for<'a> FnOnce(mpc_exec::AlgoInput<'a>) -> mpc_exec::AlgoInput<'a>,
) -> (mpc_exec::AlgoOutput, u64) {
    let polylog = mpc_exec::registry::get(name)
        .expect("registered algorithm")
        .polylog_exponent;
    let mut c = Cluster::new(
        ClusterConfig::new(g.n(), g.m().max(1))
            .seed(seed)
            .polylog_exponent(polylog),
    );
    let input = common::distribute_edges(&c, g);
    let algo_input = tweak(mpc_exec::AlgoInput::new(g.n(), &input));
    let out = mpc_exec::registry::run(name, &mut c, &algo_input, mpc_exec::ExecMode::Parallel)
        .expect("registry run");
    (out, c.rounds())
}

fn run_het_mst(g: &Graph, seed: u64) -> (mst::MstResult, u64) {
    let (out, rounds) = run_registry("mst", g, seed, |i| i);
    (out.into_mst().expect("mst output"), rounds)
}

fn run_sub_mst(g: &Graph, seed: u64) -> (usize, u64) {
    let mut cluster = Cluster::new(sublinear_config(g.n(), g.m(), seed));
    let input = distribute_all(&cluster, g);
    let r = sublinear_mst(&mut cluster, g.n(), &input).expect("sub mst");
    (r.phases, cluster.rounds())
}

/// E1: Table 1 — measured rounds per problem per regime on a common
/// workload (`n = 512`, `m/n = 16`, random weights). Cells marked `lit.`
/// quote the literature bound where the regime's best algorithm is outside
/// this reproduction's scope (see DESIGN.md §4).
pub fn table1() {
    println!("\n## E1 — Table 1 (measured rounds; n=512, m/n=16)\n");
    let n = 512;
    let g = generators::gnm(n, n * 16, 42).with_random_weights(1 << 18, 42);
    let gu = generators::gnm(n, n * 16, 42); // unweighted view
    let mut t = Table::new(&[
        "problem",
        "sublinear (measured)",
        "heterogeneous (measured)",
        "near-linear (measured)",
        "paper het. bound",
    ]);

    // Connectivity.
    let (_, het) = run_registry("connectivity", &gu, 1, |i| i);
    let sub = {
        let mut c = Cluster::new(sublinear_config(n, g.m(), 1));
        let input = distribute_all(&c, &g);
        sublinear_mst(&mut c, n, &input).unwrap();
        c.rounds()
    };
    let nl = {
        // Near-linear capacities derived from the sketch-friendly polylog
        // budget (capacities must be computed *after* setting the budget).
        let base = sketch_friendly_config(n, g.m(), 1);
        let cap = base.capacity_for_exponent(1.0);
        let machines = (g.m() / n).max(2) + 1;
        let mut c = Cluster::new(base.topology(Topology::Custom {
            capacities: vec![cap; machines],
            large: Some(0),
        }));
        let input = common::distribute_edges(&c, &gu);
        mpc_exec::registry::run(
            "connectivity",
            &mut c,
            &mpc_exec::AlgoInput::new(n, &input),
            mpc_exec::ExecMode::Parallel,
        )
        .unwrap();
        c.rounds()
    };
    t.row(&[
        "connectivity".into(),
        format!("{sub}"),
        format!("{het}"),
        format!("{nl}"),
        "O(1)".into(),
    ]);

    // MST.
    let (_, het) = run_het_mst(&g, 2);
    let (_, sub) = run_sub_mst(&g, 2);
    let nl = {
        let mut c = Cluster::new(near_linear_config(n, g.m(), 2));
        let input = common::distribute_edges(&c, &g);
        mpc_exec::registry::run(
            "mst",
            &mut c,
            &mpc_exec::AlgoInput::new(n, &input),
            mpc_exec::ExecMode::Parallel,
        )
        .unwrap();
        c.rounds()
    };
    t.row(&[
        "MST".into(),
        format!("{sub}"),
        format!("{het}"),
        format!("{nl}"),
        "O(log log(m/n))".into(),
    ]);

    // (1+eps)-approx MST — every threshold wave interleaved through the
    // multi-program scheduler, so the measured rounds *are* the parallel
    // figure.
    let (_, het) = run_registry("mst-approx", &g, 3, |i| i.epsilon(0.5));
    t.row(&[
        "(1+eps)-approx MST".into(),
        "lit. O(log n)".into(),
        format!("{het} (batched)"),
        format!("{het}"),
        "O(1)".into(),
    ]);

    // Spanner.
    let (_, het) = run_registry("spanner", &gu, 4, |i| i.spanner_k(3));
    t.row(&[
        "O(k)-spanner".into(),
        "lit. O(log k)".into(),
        format!("{het}"),
        format!("{het} (same impl.)"),
        "O(1)".into(),
    ]);

    // Exact unweighted min cut.
    let pc = generators::planted_cut(n / 2, 0.05, 4, 5);
    let (_, het) = run_registry("mincut", &pc, 5, |i| i.mincut_trials(4));
    t.row(&[
        "exact unweighted min cut".into(),
        "lit. O(polylog n)".into(),
        format!("{het} (4 trials)"),
        format!("{het}"),
        "O(1)".into(),
    ]);

    // Approx weighted min cut — all λ̂ guesses interleaved, measured
    // rounds are the parallel figure.
    let (_, het) = run_registry("mincut-approx", &pc, 6, |i| i.epsilon(0.3));
    t.row(&[
        "(1±eps) weighted min cut".into(),
        "lit. O(log n loglog n)".into(),
        format!("{het} (batched)"),
        format!("{het}"),
        "O(1)".into(),
    ]);

    // Coloring.
    let (_, het) = run_registry("coloring", &gu, 7, |i| i);
    let sub = {
        let mut c = Cluster::new(sublinear_config(n, g.m(), 7));
        let input = distribute_all(&c, &gu);
        sublinear_coloring(&mut c, n, &input, gu.max_degree()).unwrap();
        c.rounds()
    };
    t.row(&[
        "(Δ+1) coloring".into(),
        format!("{sub}"),
        format!("{het}"),
        format!("{het} (same impl.)"),
        "O(1)".into(),
    ]);

    // MIS.
    let (_, het) = run_registry("mis", &gu, 8, |i| i);
    let sub = {
        let mut c = Cluster::new(sublinear_config(n, g.m(), 8));
        let input = distribute_all(&c, &gu);
        sublinear_mis(&mut c, n, &input).unwrap();
        c.rounds()
    };
    t.row(&[
        "maximal independent set".into(),
        format!("{sub}"),
        format!("{het}"),
        format!("{het} (same impl.)"),
        "O(log log Δ)".into(),
    ]);

    // Maximal matching.
    let (_, het) = run_registry("matching", &gu, 9, |i| i);
    let sub = {
        let mut c = Cluster::new(sublinear_config(n, g.m(), 9));
        let input = distribute_all(&c, &gu);
        sublinear_matching(&mut c, &input).unwrap();
        c.rounds()
    };
    t.row(&[
        "maximal matching".into(),
        format!("{sub}"),
        format!("{het}"),
        format!("{het} (same impl.)"),
        "O(sqrt(log(m/n) loglog(m/n)))".into(),
    ]);

    t.print();
}

/// E2: MST rounds vs. density and vs. n (§3's `O(log log(m/n))` shape).
pub fn mst_scaling() {
    println!("\n## E2 — MST scaling (Theorem: O(log log(m/n)) rounds)\n");
    println!("### density sweep at n = 1024 (tight budget exposes the schedule)\n");
    let mut t = Table::new(&[
        "m/n",
        "het rounds",
        "Boruvka steps",
        "sublinear rounds",
        "sublinear phases",
    ]);
    let n = 1024;
    for &density in &[4usize, 8, 16, 32, 64, 128] {
        let g = generators::gnm(n, n * density, 7).with_random_weights(1 << 20, 7);
        // Tight collection budget: the doubly-exponential schedule shows.
        let mut c = Cluster::new(ClusterConfig::new(g.n(), g.m()).seed(7).mem_constant(3.0));
        let input = common::distribute_edges(&c, &g);
        let r = mst::heterogeneous_mst(&mut c, g.n(), input).unwrap();
        assert!(mst::is_minimum_spanning_forest(&g, &r.forest));
        let (phases, sub_rounds) = run_sub_mst(&g, 7);
        t.rowd(&[
            density.to_string(),
            c.rounds().to_string(),
            r.stats.boruvka_steps.to_string(),
            sub_rounds.to_string(),
            phases.to_string(),
        ]);
    }
    t.print();

    println!("\n### n sweep at m/n = 16 (het flat, sublinear grows)\n");
    let mut t = Table::new(&["n", "het rounds", "sublinear rounds"]);
    for &exp in &[8usize, 9, 10, 11] {
        let n = 1 << exp;
        let g = generators::gnm(n, n * 16, 3).with_random_weights(1 << 20, 3);
        let (_, het) = run_het_mst(&g, 3);
        let (_, sub) = run_sub_mst(&g, 3);
        t.rowd(&[n.to_string(), het.to_string(), sub.to_string()]);
    }
    t.print();
}

/// E3: the generalized Theorem 3.1 — a superlinear large machine shrinks
/// the Borůvka schedule.
pub fn mst_superlinear() {
    println!("\n## E3 — MST with a superlinear large machine (Theorem 3.1)\n");
    let n = 512;
    let g = generators::gnm(n, n * 64, 5).with_random_weights(1 << 20, 5);
    let mut t = Table::new(&["f (memory n^(1+f))", "rounds", "Boruvka steps"]);
    for &f in &[0.0f64, 0.1, 0.2, 0.4, 0.7] {
        let mut c = Cluster::new(
            ClusterConfig::new(g.n(), g.m())
                .topology(Topology::Heterogeneous {
                    gamma: 0.5,
                    large_exponent: 1.0 + f,
                })
                .mem_constant(4.0)
                .seed(5),
        );
        let input = common::distribute_edges(&c, &g);
        let r = mst::heterogeneous_mst(&mut c, g.n(), input).unwrap();
        assert!(mst::is_minimum_spanning_forest(&g, &r.forest));
        t.rowd(&[
            format!("{f:.1}"),
            c.rounds().to_string(),
            r.stats.boruvka_steps.to_string(),
        ]);
    }
    t.print();
}

/// E4: spanner size/stretch/rounds vs. k and vs. n (Theorem 4.1).
pub fn spanner() {
    println!("\n## E4 — spanner (Theorem 4.1: O(1) rounds, size O(n^(1+1/k)), stretch ≤ 6k−1)\n");
    println!("### k sweep at n = 512, m/n = 16\n");
    let n = 512;
    let g = generators::gnm(n, n * 16, 9);
    let mut t = Table::new(&[
        "k",
        "rounds",
        "|H|",
        "|H| / n^(1+1/k)",
        "stretch bound",
        "measured stretch",
    ]);
    for &k in &[2usize, 3, 4, 6] {
        let mut c = Cluster::new(
            ClusterConfig::new(g.n(), g.m())
                .seed(9)
                .polylog_exponent(1.6),
        );
        let input = common::distribute_edges(&c, &g);
        let r = spanner::heterogeneous_spanner(&mut c, g.n(), &input, k).unwrap();
        let rep = mpc_graph::verify_spanner(&g, &r.spanner, Some(16), 1);
        let norm = r.spanner.m() as f64 / (n as f64).powf(1.0 + 1.0 / k as f64);
        t.rowd(&[
            k.to_string(),
            c.rounds().to_string(),
            r.spanner.m().to_string(),
            format!("{norm:.2}"),
            (6 * k - 1).to_string(),
            format!("{:.2}", rep.max_stretch),
        ]);
    }
    t.print();

    println!("\n### n sweep at k = 3 (rounds stay flat)\n");
    let mut t = Table::new(&["n", "rounds", "|H|/n^(4/3)"]);
    for &exp in &[8usize, 9, 10] {
        let n = 1 << exp;
        let g = generators::gnm(n, n * 12, 4);
        let mut c = Cluster::new(
            ClusterConfig::new(g.n(), g.m())
                .seed(4)
                .polylog_exponent(1.6),
        );
        let input = common::distribute_edges(&c, &g);
        let r = spanner::heterogeneous_spanner(&mut c, g.n(), &input, 3).unwrap();
        let norm = r.spanner.m() as f64 / (n as f64).powf(4.0 / 3.0);
        t.rowd(&[n.to_string(), c.rounds().to_string(), format!("{norm:.2}")]);
    }
    t.print();
}

/// E5: Lemma 4.3 ablation — modified Baswana–Sen size scales like `1/p`.
pub fn baswana_ablation() {
    println!("\n## E5 — modified Baswana–Sen size vs p (Lemma 4.3: O(k·n^(1+1/k)/p))\n");
    let g = generators::gnm(400, 8000, 11);
    let k = 3;
    let norm = (k as f64) * (g.n() as f64).powf(1.0 + 1.0 / k as f64);
    let mut t = Table::new(&["p", "size (avg of 5 seeds)", "size·p / (k·n^(1+1/k))"]);
    for &p in &[1.0f64, 0.6, 0.3, 0.15, 0.08] {
        let avg: f64 = (0..5)
            .map(|s| baswana_sen::modified_baswana_sen(&g, k, p, 100 + s).0.m() as f64)
            .sum::<f64>()
            / 5.0;
        t.rowd(&[
            format!("{p:.2}"),
            format!("{avg:.0}"),
            format!("{:.3}", avg * p / norm),
        ]);
    }
    t.print();
    println!("\n(The last column being ~flat is the 1/p law of Lemma 4.3.)");
}

/// E6: Figure 1 — per-level behaviour of original vs. modified BS.
pub fn figure1() {
    println!("\n## E6 — Figure 1: original vs modified Baswana–Sen, per level\n");
    let g = generators::gnm(400, 6000, 13);
    let k = 4;
    let (h_orig, p_orig) = baswana_sen::baswana_sen(&g, k, 21);
    let (h_mod, p_mod) = baswana_sen::modified_baswana_sen(&g, k, 0.2, 21);
    let mut t = Table::new(&[
        "level",
        "orig retained",
        "orig reclustered",
        "orig removed",
        "mod retained",
        "mod reclustered",
        "mod removed",
    ]);
    for i in 0..k {
        let a = &p_orig.stats[i];
        let b = &p_mod.stats[i];
        t.rowd(&[
            (i + 1).to_string(),
            a.retained.to_string(),
            a.reclustered.to_string(),
            a.removed.to_string(),
            b.retained.to_string(),
            b.reclustered.to_string(),
            b.removed.to_string(),
        ]);
    }
    t.print();
    println!(
        "\nspanner sizes: original {} edges, modified (p=0.2) {} edges",
        h_orig.m(),
        h_mod.m()
    );
    println!("(modified re-clusters fewer and removes more — Figure 1's panels b/c)");
}

/// E7: matching rounds track the average degree `d`, not n (Theorem 5.1).
pub fn matching() {
    println!("\n## E7 — maximal matching (Theorem 5.1: rounds depend on d = 2m/n)\n");
    println!("### d sweep at n = 1024\n");
    let n = 1024;
    let mut t = Table::new(&[
        "m/n",
        "het rounds",
        "p1 iters",
        "high-deg vertices",
        "sublinear rounds",
    ]);
    for &density in &[2usize, 4, 8, 16, 32] {
        let g = generators::gnm(n, n * density, 15);
        let mut c = het_cluster(&g, 15);
        let input = common::distribute_edges(&c, &g);
        let r = matching::heterogeneous_matching(&mut c, n, &input).unwrap();
        let mut cs = Cluster::new(sublinear_config(g.n(), g.m(), 15));
        let input = distribute_all(&cs, &g);
        sublinear_matching(&mut cs, &input).unwrap();
        t.rowd(&[
            density.to_string(),
            c.rounds().to_string(),
            r.stats.phase1_iterations.to_string(),
            r.stats.high_vertices.to_string(),
            cs.rounds().to_string(),
        ]);
    }
    t.print();

    println!("\n### skewed graphs: fixed avg degree, hubs grow with n\n");
    let mut t = Table::new(&["n", "Δ", "het rounds", "sublinear rounds"]);
    for &exp in &[8usize, 9, 10] {
        let n = 1 << exp;
        let g = generators::chung_lu(n, n * 3, 2.2, exp as u64);
        let mut c = het_cluster(&g, 17);
        let input = common::distribute_edges(&c, &g);
        matching::heterogeneous_matching(&mut c, n, &input).unwrap();
        let mut cs = Cluster::new(sublinear_config(g.n(), g.m(), 17));
        let input = distribute_all(&cs, &g);
        sublinear_matching(&mut cs, &input).unwrap();
        t.rowd(&[
            n.to_string(),
            g.max_degree().to_string(),
            c.rounds().to_string(),
            cs.rounds().to_string(),
        ]);
    }
    t.print();
}

/// E8: filtering matching rounds ~ 1/f (Theorem 5.5).
pub fn matching_filtering() {
    println!("\n## E8 — filtering matching (Theorem 5.5: O(1/f) rounds)\n");
    let n = 512;
    let g = generators::gnm(n, n * 48, 19);
    let mut t = Table::new(&["f", "levels", "rounds"]);
    for &f in &[0.1f64, 0.15, 0.25, 0.4, 0.7] {
        let mut c = Cluster::new(
            ClusterConfig::new(g.n(), g.m())
                .topology(Topology::Heterogeneous {
                    gamma: 0.66,
                    large_exponent: 1.0 + f,
                })
                .seed(19),
        );
        let input = common::distribute_edges(&c, &g);
        let (m, stats) = matching::filtering::filtering_matching(&mut c, n, &input, f).unwrap();
        assert!(mpc_graph::matching::is_maximal_matching(&g, &m));
        t.rowd(&[
            format!("{f:.2}"),
            stats.levels.to_string(),
            c.rounds().to_string(),
        ]);
    }
    t.print();
}

/// E9: APSP oracle stretch (Corollary 4.2).
pub fn apsp() {
    println!("\n## E9 — APSP oracle (Corollary 4.2: O(log n)-approx in O(1) rounds)\n");
    let mut t = Table::new(&["n", "build rounds", "stretch bound", "measured stretch"]);
    for &n in &[128usize, 256, 384] {
        let g = generators::gnm(n, n * 6, 23);
        let (oracle, rounds) = spanner::apsp::oracle_for_graph(&g, 23).unwrap();
        let measured = spanner::apsp::measured_stretch(&g, &oracle, 16);
        t.rowd(&[
            n.to_string(),
            rounds.to_string(),
            oracle.stretch_bound.to_string(),
            format!("{measured:.2}"),
        ]);
    }
    t.print();
}

/// E10a: connectivity rounds are flat in n (Theorem C.1).
pub fn connectivity() {
    println!("\n## E10a — connectivity (Theorem C.1: O(1) rounds)\n");
    let mut t = Table::new(&["n", "m", "rounds", "components correct"]);
    for &exp in &[7usize, 8, 9] {
        let n = 1 << exp;
        let g = generators::gnm(n, n * 3, 29);
        let (out, rounds) = run_registry("connectivity", &g, 29, |i| i);
        let got = out.into_components().expect("components output");
        let ok = got == mpc_graph::traversal::connected_components(&g);
        t.rowd(&[
            n.to_string(),
            g.m().to_string(),
            rounds.to_string(),
            ok.to_string(),
        ]);
    }
    t.print();
}

/// E10b: (1+ε)-MST estimate error (Theorem C.2).
pub fn mst_approx() {
    println!("\n## E10b — (1+eps)-approx MST weight (Theorem C.2)\n");
    let g = generators::gnm(96, 500, 31).with_random_weights(64, 31);
    let exact = mpc_graph::mst::kruskal(&g).total_weight as f64;
    let mut t = Table::new(&["eps", "estimate", "exact", "ratio", "rounds (batched)"]);
    for &eps in &[1.0f64, 0.5, 0.25] {
        let (out, rounds) = run_registry("mst-approx", &g, 31, |i| i.epsilon(eps));
        let r = out.into_mst_approx().expect("estimator output");
        t.rowd(&[
            format!("{eps:.2}"),
            format!("{:.0}", r.estimate),
            format!("{exact:.0}"),
            format!("{:.3}", r.estimate / exact),
            rounds.to_string(),
        ]);
    }
    t.print();
}

/// E10c: min cuts — exact success and approximation error.
pub fn mincut() {
    println!("\n## E10c — min cut (Theorems C.3/C.4)\n");
    println!("### exact unweighted (8 trials per instance)\n");
    let mut t = Table::new(&["planted bridge", "found", "exact", "rounds"]);
    for &bridge in &[2usize, 3, 5] {
        let g = generators::planted_cut(40, 0.5, bridge, 37);
        let (out, rounds) = run_registry("mincut", &g, 37, |i| i.mincut_trials(8));
        let r = out.into_mincut().expect("min-cut output");
        let exact = mpc_graph::mincut::min_cut(&g).unwrap().weight;
        t.rowd(&[
            bridge.to_string(),
            r.value.to_string(),
            exact.to_string(),
            rounds.to_string(),
        ]);
    }
    t.print();

    println!("\n### (1±eps) weighted approximation\n");
    let mut t = Table::new(&["eps", "estimate", "exact", "rounds (batched)"]);
    let g = generators::planted_cut(30, 0.6, 5, 41).with_random_weights(8, 41);
    let exact = mpc_graph::mincut::min_cut(&g).unwrap().weight as f64;
    for &eps in &[0.5f64, 0.3, 0.2] {
        let (out, rounds) = run_registry("mincut-approx", &g, 41, |i| i.epsilon(eps));
        let r = out.into_mincut_approx().expect("approx min-cut output");
        t.rowd(&[
            format!("{eps:.2}"),
            format!("{:.1}", r.estimate),
            format!("{exact:.0}"),
            rounds.to_string(),
        ]);
    }
    t.print();
}

/// E10d: MIS iterations grow ~log log Δ (Theorem C.6).
pub fn mis() {
    println!("\n## E10d — MIS (Theorem C.6: O(log log Δ) rounds)\n");
    let n = 512;
    let mut t = Table::new(&[
        "m/n",
        "Δ",
        "iterations",
        "rounds",
        "sublinear (Luby) rounds",
    ]);
    for &density in &[4usize, 16, 64] {
        let g = generators::gnm(n, n * density, 43);
        let (out, rounds) = run_registry("mis", &g, 43, |i| i);
        let r = out.into_mis().expect("MIS output");
        assert!(mpc_graph::mis::is_maximal_independent_set(&g, &r.mis));
        let mut cs = Cluster::new(sublinear_config(n, g.m(), 43));
        let input = distribute_all(&cs, &g);
        sublinear_mis(&mut cs, n, &input).unwrap();
        t.rowd(&[
            density.to_string(),
            g.max_degree().to_string(),
            r.iterations.to_string(),
            rounds.to_string(),
            cs.rounds().to_string(),
        ]);
    }
    t.print();
}

/// E10e: coloring conflict volume and rounds (Theorem C.7).
///
/// The conflict graph is sparse relative to `m` once `Δ ≫ log² n` (the
/// regime of Lemma C.8); the star row demonstrates it. At moderate Δ the
/// conflict graph is ≈ the input — still correct, just not sparsified.
pub fn coloring() {
    println!("\n## E10e — (Δ+1)-coloring (Theorem C.7: O(1) rounds)\n");
    let mut t = Table::new(&[
        "graph",
        "m",
        "Δ",
        "conflict edges",
        "conflicts/m",
        "restarts",
        "rounds",
    ]);
    // High-Δ instance: sparsification clearly visible.
    {
        let g = generators::star(4096);
        let (out, rounds) = run_registry("coloring", &g, 47, |i| i);
        let r = out.into_coloring().expect("coloring output");
        assert!(mpc_graph::coloring::is_proper_coloring(&g, &r.colors));
        t.rowd(&[
            "star(4096)".to_string(),
            g.m().to_string(),
            g.max_degree().to_string(),
            r.conflict_edges.to_string(),
            format!("{:.3}", r.conflict_edges as f64 / g.m() as f64),
            r.restarts.to_string(),
            rounds.to_string(),
        ]);
    }
    for &exp in &[8usize, 9, 10] {
        let n = 1 << exp;
        let g = generators::gnm(n, n * 12, 47);
        let (out, rounds) = run_registry("coloring", &g, 47, |i| i);
        let r = out.into_coloring().expect("coloring output");
        assert!(mpc_graph::coloring::is_proper_coloring(&g, &r.colors));
        t.rowd(&[
            format!("gnm({n})"),
            g.m().to_string(),
            g.max_degree().to_string(),
            r.conflict_edges.to_string(),
            format!("{:.3}", r.conflict_edges as f64 / g.m() as f64),
            r.restarts.to_string(),
            rounds.to_string(),
        ]);
    }
    t.print();
}

/// E11: the motivating 1-vs-2 cycles separation (§1).
pub fn two_vs_one() {
    println!("\n## E11 — 1-vs-2 cycles (§1: trivial with one large machine)\n");
    let mut t = Table::new(&["n", "het rounds", "sublinear rounds"]);
    for &exp in &[6usize, 7, 8, 9] {
        let n = 1 << exp;
        let (mut het, mut sub) = (0, 0);
        for which in 0..2 {
            let g = if which == 0 {
                generators::cycle(n, exp as u64)
            } else {
                generators::two_cycles(n, exp as u64)
            };
            let mut c = Cluster::new(sketch_friendly_config(n, n, 1));
            let input = common::distribute_edges(&c, &g);
            let one = ported::one_vs_two_cycles(&mut c, n, &input).unwrap();
            assert_eq!(one, which == 0);
            het = het.max(c.rounds());

            let gw = g.with_random_weights(1 << 10, 3);
            let mut c = Cluster::new(sublinear_config(n, n, 1));
            let input = distribute_all(&c, &gw);
            let one = two_vs_one_cycle_baseline(&mut c, n, &input).unwrap();
            assert_eq!(one, which == 0);
            sub = sub.max(c.rounds());
        }
        t.rowd(&[n.to_string(), het.to_string(), sub.to_string()]);
    }
    t.print();
}

/// E12: the execution engine — serial vs parallel wall-clock for the
/// `MachineProgram` ports, and the simulated per-round makespan under
/// uniform / capacity-proportional / straggler cost profiles.
///
/// Wall-clock compares *host* time of the two schedules (identical results,
/// asserted); makespans are the [`mpc_runtime::CostModel`]'s simulated
/// critical path — the quantity the round-counting model cannot see.
pub fn exec_engine() {
    use mpc_exec::ExecMode;
    use mpc_runtime::CostModel;

    println!("\n## E12 — execution engine (serial vs parallel; heterogeneous cost model)\n");
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    println!(
        "host cores: {cores} — parallel wall-clock can only beat serial with >1 core;\n\
         on a single core the comparison measures pure engine overhead (results are\n\
         bit-identical across schedules either way, see crates/exec/tests/determinism.rs)\n"
    );

    let topologies: Vec<(&str, f64)> = vec![("gamma=0.66", 0.66), ("gamma=0.50", 0.50)];
    let mut t = Table::new(&[
        "algorithm",
        "topology",
        "machines",
        "rounds",
        "serial wall",
        "parallel wall",
        "speedup",
        "uniform makespan",
        "prop-cap makespan",
        "straggler makespan",
    ]);

    // A cluster for the given profile; the cost model is orthogonal to
    // behavior, so every profile sees identical rounds and traffic.
    let cluster_for = |gamma: f64, n: usize, m: usize, seed: u64| {
        Cluster::new(
            sketch_friendly_config(n, m, seed).topology(Topology::Heterogeneous {
                gamma,
                large_exponent: 1.0,
            }),
        )
    };

    let n = 384;
    let g_conn = generators::gnm(n, n * 6, 7);
    let g_mst = generators::gnm(n, n * 6, 7).with_random_weights(1 << 16, 7);

    // One run of `algo` — through the Algorithm registry, like every other
    // consumer — on a fresh cluster; returns (wall, makespan, rounds,
    // machines, result digest). The digest — component count, forest
    // weight, or matching size — lets the mode comparison assert result
    // equality.
    let run_once = |algo: &str, gamma: f64, model: &str, mode: ExecMode| {
        let g = if algo == "connectivity" || algo == "matching" {
            &g_conn
        } else {
            &g_mst
        };
        let mut c = cluster_for(gamma, g.n(), g.m(), 7);
        let caps: Vec<usize> = (0..c.machines()).map(|m| c.capacity(m)).collect();
        let straggle_mid = c.small_ids()[0];
        c.set_cost_model(match model {
            "uniform" => CostModel::uniform(caps.len(), 1.0, 1.0, 0.0),
            "prop" => CostModel::proportional_to_capacity(&caps, 1.0),
            _ => CostModel::uniform(caps.len(), 1.0, 1.0, 0.0).with_straggler(straggle_mid, 0.1),
        });
        let input = common::distribute_edges(&c, g);
        let started = std::time::Instant::now();
        let out =
            mpc_exec::registry::run(algo, &mut c, &mpc_exec::AlgoInput::new(g.n(), &input), mode)
                .expect("registered algorithm run");
        let wall = started.elapsed();
        let digest = out.digest();
        (
            wall,
            c.critical_path_seconds(),
            c.rounds(),
            c.machines(),
            digest,
        )
    };

    for (name, gamma) in &topologies {
        for algo in ["connectivity", "boruvka-msf", "mst", "matching"] {
            // Both modes under the uniform profile for the wall-clock
            // comparison — with the result digests asserted equal.
            let (wall_s, span_uniform, rounds, machines, digest_s) =
                run_once(algo, *gamma, "uniform", ExecMode::Serial);
            let (wall_p, _, _, _, digest_p) = run_once(algo, *gamma, "uniform", ExecMode::Parallel);
            assert_eq!(
                digest_s, digest_p,
                "{algo} {name}: serial and parallel results diverged"
            );
            // The cost model is orthogonal to behavior, so the remaining
            // profiles need one (serial) run each, just for the makespan.
            let (_, span_prop, _, _, _) = run_once(algo, *gamma, "prop", ExecMode::Serial);
            let (_, span_straggler, _, _, _) =
                run_once(algo, *gamma, "straggler", ExecMode::Serial);
            let walls = [wall_s, wall_p];
            let spans = [span_uniform, span_prop, span_straggler];
            let speedup = walls[0].as_secs_f64() / walls[1].as_secs_f64().max(1e-9);
            t.row(&[
                algo.to_string(),
                name.to_string(),
                machines.to_string(),
                rounds.to_string(),
                format!("{:.2?}", walls[0]),
                format!("{:.2?}", walls[1]),
                format!("{speedup:.2}x"),
                format!("{:.0}", spans[0]),
                format!("{:.0}", spans[1]),
                format!("{:.0}", spans[2]),
            ]);
        }
    }
    t.print();
    println!("\nmakespans: simulated seconds along the critical path (unit-rate words);");
    println!("prop-cap = speeds/bandwidths proportional to machine capacity, latency 1s/round;");
    println!("straggler = one small machine at 10% speed — the schedule the model calls 'free'");
    println!("dominates exactly when that machine holds the bottleneck shard.");
}

/// E13: registry smoke — every registered algorithm runs under both
/// `ExecMode::Serial` and `ExecMode::Parallel` with identical results.
///
/// This is the CI gate the multi-layer port promises: a program that
/// drifts from its serial twin, or an algorithm that drops out of the
/// registry, fails this experiment (and with it the build).
pub fn registry_smoke() {
    use mpc_exec::{registry, AlgoInput, ExecMode};
    use mpc_runtime::{JsonlSink, TraceSink};
    use std::sync::Arc;

    println!("\n## E13 — registry smoke (every algorithm, serial vs parallel)\n");
    assert_eq!(
        registry::names(),
        registry::CANONICAL_NAMES.to_vec(),
        "registry names drifted from the canonical set"
    );
    if let Ok(threads) = std::env::var("MPC_POOL_THREADS") {
        println!("(pool worker threads pinned to {threads} via MPC_POOL_THREADS)\n");
    }
    // CI's trace-schema leg: `MPC_TRACE_JSONL=path` streams every telemetry
    // event from every run (both modes, all algorithms) into one JSONL file,
    // which the workflow then checks with `mpc-trace --validate`.
    let jsonl: Option<Arc<JsonlSink>> = std::env::var("MPC_TRACE_JSONL").ok().map(|path| {
        println!("(streaming telemetry events to {path} via MPC_TRACE_JSONL)\n");
        Arc::new(JsonlSink::create(&path).expect("create MPC_TRACE_JSONL file"))
    });

    let g = generators::gnm(128, 768, 5).with_random_weights(1 << 12, 5);
    let mut t = Table::new(&[
        "algorithm",
        "paper",
        "rounds",
        "digest",
        "serial == parallel",
    ]);
    for algo in registry::algorithms() {
        let run = |mode: ExecMode| {
            // Each algorithm declares the polylog capacity headroom its
            // traffic honestly needs, so new registrations are picked up
            // here without per-name edits.
            let mut c = Cluster::new(
                ClusterConfig::new(g.n(), g.m())
                    .seed(5)
                    .polylog_exponent(algo.polylog_exponent),
            );
            if let Some(sink) = &jsonl {
                c.set_trace_sink(Some(sink.clone() as Arc<dyn TraceSink>));
            }
            let input = common::distribute_edges(&c, &g);
            let out = registry::run(algo.name, &mut c, &AlgoInput::new(g.n(), &input), mode)
                .expect("registered algorithm run");
            (out.digest(), c.rounds())
        };
        let (d_serial, r_serial) = run(ExecMode::Serial);
        let (d_pool, r_pool) = run(ExecMode::Parallel);
        assert_eq!(
            (d_serial, r_serial),
            (d_pool, r_pool),
            "{}: serial and parallel runs diverged",
            algo.name
        );
        t.row(&[
            algo.name.to_string(),
            algo.paper.to_string(),
            r_serial.to_string(),
            d_serial.to_string(),
            "yes".to_string(),
        ]);
    }
    t.print();
}

/// Minimum round-collapse factor the multi-program scheduler must deliver
/// over the sequential composition on the budgets workload.
const BATCH_COLLAPSE_FACTOR: u64 = 5;

/// E14: registry round budgets — the CI gate asserting every registered
/// algorithm's round count stays in its theorem's class on the standard
/// budgets workload (`m = 6n`, weights `< 2¹²`): a fixed constant for the
/// `O(1)` results, an explicit `a·⌈log log n⌉ + b` cap for the
/// doubly-logarithmic ones (each algorithm declares its own cap, see
/// [`mpc_exec::Algorithm::round_budget`]). The formerly sequentialized
/// workloads (`spanner-weighted`, `mst-approx`, `mincut-approx`) now run
/// their paper-parallel instances interleaved through the multi-program
/// scheduler, so their caps are the theorems' *parallel* figures; the gate
/// additionally runs each of them in the sequential oracle mode and fails
/// unless batching collapses measured rounds by ≥[`BATCH_COLLAPSE_FACTOR`]×.
///
/// Every measured round count is also recorded into the committed
/// `BENCH_rounds.json`, so round-count drift *below* the caps is visible
/// in review, not just hard cap failures.
pub fn budgets() {
    use mpc_exec::{registry, AlgoInput, AlgoOutput, ExecMode};

    /// The `O(1)`-per-instance cap on the engine's parallel-round figure.
    const PARALLEL_CAP: u64 = 6;

    println!("\n## E14 — registry round budgets (per-theorem round-class caps)\n");
    let mut t = Table::new(&[
        "algorithm",
        "paper",
        "n",
        "rounds",
        "cap",
        "sequential rounds",
        "parallel rounds",
        "within budget",
    ]);
    let mut failures: Vec<String> = Vec::new();
    let mut telemetry: Vec<RoundsRow> = Vec::new();
    for &n in &[128usize, 512] {
        let g = generators::gnm(n, n * 6, 5).with_random_weights(1 << 12, 5);
        for algo in registry::algorithms() {
            let run = |sequential: bool| {
                let mut c = Cluster::new(
                    ClusterConfig::new(g.n(), g.m())
                        .seed(5)
                        .polylog_exponent(algo.polylog_exponent),
                );
                let input = common::distribute_edges(&c, &g);
                let mut algo_input = AlgoInput::new(g.n(), &input);
                if sequential {
                    algo_input = algo_input.sequential_instances();
                }
                let out = registry::run(algo.name, &mut c, &algo_input, ExecMode::Serial)
                    .expect("registered algorithm run");
                (out, c.rounds())
            };
            let (out, rounds) = run(false);
            let cap = (algo.round_budget)(g.n());
            let parallel = match &out {
                AlgoOutput::MstApprox(r) => Some(r.parallel_rounds),
                AlgoOutput::MinCutApprox(r) => Some(r.parallel_rounds),
                _ => None,
            };
            // The batched workloads are re-run in the sequential oracle
            // mode: the scheduler must collapse their measured rounds.
            let sequential = registry::BATCHED_NAMES
                .contains(&algo.name)
                .then(|| run(true).1);
            let collapsed = sequential.is_none_or(|s| rounds * BATCH_COLLAPSE_FACTOR <= s);
            let ok = rounds <= cap && parallel.is_none_or(|p| p <= PARALLEL_CAP) && collapsed;
            if !ok {
                failures.push(format!(
                    "{} at n={n}: {rounds} rounds (cap {cap}), parallel {parallel:?} \
                     (cap {PARALLEL_CAP}), sequential {sequential:?} \
                     (≥{BATCH_COLLAPSE_FACTOR}× collapse required)",
                    algo.name
                ));
            }
            telemetry.push(RoundsRow {
                name: algo.name,
                n,
                rounds,
                cap,
                sequential_rounds: sequential,
                parallel_rounds: parallel,
            });
            t.row(&[
                algo.name.to_string(),
                algo.paper.to_string(),
                n.to_string(),
                rounds.to_string(),
                cap.to_string(),
                sequential.map_or_else(|| "-".to_string(), |s| s.to_string()),
                parallel.map_or_else(|| "-".to_string(), |p| p.to_string()),
                if ok { "yes" } else { "NO" }.to_string(),
            ]);
        }
    }
    t.print();
    let path = write_rounds_json(&telemetry);
    println!("\n[budgets: wrote {}]", path.display());
    assert!(
        failures.is_empty(),
        "round-budget violations:\n  {}",
        failures.join("\n  ")
    );
    println!("(each cap is the theorem's round class on this workload; a violation fails CI.)");
}

/// One row of the committed round-count telemetry.
struct RoundsRow {
    name: &'static str,
    n: usize,
    rounds: u64,
    cap: u64,
    sequential_rounds: Option<u64>,
    parallel_rounds: Option<u64>,
}

/// Writes `BENCH_rounds.json` at the repo root: the measured rounds per
/// registry name on the budgets workload, committed so drift *below* the
/// caps shows up in review diffs (the hard gate only catches cap breaches).
fn write_rounds_json(rows: &[RoundsRow]) -> std::path::PathBuf {
    let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_rounds.json");
    let mut body = String::new();
    body.push_str("{\n");
    body.push_str("  \"bench\": \"registry_rounds\",\n");
    body.push_str("  \"workload\": \"gnm(m=6n, weights<2^12, seed 5), ExecMode::Serial\",\n");
    body.push_str("  \"rows\": [\n");
    for (i, r) in rows.iter().enumerate() {
        let seq = r
            .sequential_rounds
            .map_or_else(|| "null".to_string(), |s| s.to_string());
        let par = r
            .parallel_rounds
            .map_or_else(|| "null".to_string(), |p| p.to_string());
        body.push_str(&format!(
            "    {{\"name\": \"{}\", \"n\": {}, \"rounds\": {}, \"cap\": {}, \
             \"sequential_rounds\": {}, \"parallel_rounds\": {}}}{}\n",
            r.name,
            r.n,
            r.rounds,
            r.cap,
            seq,
            par,
            if i + 1 == rows.len() { "" } else { "," },
        ));
    }
    body.push_str("  ]\n}\n");
    std::fs::write(&path, body).expect("write BENCH_rounds.json");
    path
}

/// E15: chaos smoke — every registered algorithm survives a deterministic
/// mid-run crash of one small machine (victim chosen per-name by the
/// seeded fault matrix) with results **bit-identical** to the fault-free
/// run, under both `ExecMode::Serial` and `ExecMode::Parallel` (CI runs
/// the parallel leg at 2 and 16 pool threads via `MPC_POOL_THREADS`).
///
/// This is the recovery protocol's CI gate: a crash that changes a digest,
/// leaves a machine quarantined, or fails to recover fails the build.
pub fn chaos() {
    use mpc_exec::{registry, AlgoInput, ExecMode};
    use mpc_runtime::FaultPlan;

    println!("\n## E15 — chaos smoke (seeded single crash, recovery must be exact)\n");
    if let Ok(threads) = std::env::var("MPC_POOL_THREADS") {
        println!("(pool worker threads pinned to {threads} via MPC_POOL_THREADS)\n");
    }
    let g = generators::gnm(128, 768, 5).with_random_weights(1 << 12, 5);
    let mut t = Table::new(&[
        "algorithm",
        "victim",
        "crash round",
        "clean rounds",
        "faulted rounds",
        "recovered == clean",
    ]);
    for algo in registry::algorithms() {
        let run = |plan: Option<FaultPlan>, mode: ExecMode| {
            let mut c = Cluster::new(
                ClusterConfig::new(g.n(), g.m())
                    .seed(5)
                    .polylog_exponent(algo.polylog_exponent),
            );
            let input = common::distribute_edges(&c, &g);
            c.set_fault_plan(plan);
            let out = registry::run(algo.name, &mut c, &AlgoInput::new(g.n(), &input), mode)
                .expect("registered algorithm run under chaos");
            let smalls = c.small_ids();
            (out.digest(), c.rounds(), smalls)
        };
        let (clean_digest, clean_rounds, smalls) = run(None, ExecMode::Serial);
        // One crash per run; the victim varies per algorithm name so the
        // matrix covers different shards across the registry.
        let name_seed = algo
            .name
            .bytes()
            .fold(0u64, |acc, b| acc.wrapping_mul(131).wrapping_add(b as u64));
        let plan = FaultPlan::seeded_single_crash(name_seed, &smalls, clean_rounds);
        let (victim, crash_round) = match plan.faults()[0] {
            mpc_runtime::Fault::Crash { machine, round } => (machine, round),
            _ => unreachable!("seeded_single_crash schedules a crash"),
        };
        let mut faulted_rounds = 0;
        for mode in [ExecMode::Serial, ExecMode::Parallel] {
            let (digest, rounds, _) = run(Some(plan.clone()), mode);
            assert_eq!(
                digest, clean_digest,
                "{} under {mode:?}: crash of machine {victim} changed the result",
                algo.name
            );
            assert!(
                rounds > clean_rounds,
                "{} under {mode:?}: recovery must add checkpoint/recovery rounds",
                algo.name
            );
            faulted_rounds = rounds;
        }
        t.row(&[
            algo.name.to_string(),
            victim.to_string(),
            crash_round.to_string(),
            clean_rounds.to_string(),
            faulted_rounds.to_string(),
            "yes".to_string(),
        ]);
    }
    t.print();
    println!("\nchaos matrix: one seeded small-machine crash per algorithm, serial + pool legs;");
    println!("recovery replays from peer replicas and must reproduce the fault-free digest.");
}

/// The standard service workload: six mixed tenants drained FIFO through
/// one hooked engine run. `spanner-weighted` holds one share per weight
/// class, so on the 3-share cluster half the queue waits for
/// admission-on-retirement.
pub const SERVICE_JOBS: &[&str] = &[
    "spanner-weighted",
    "matching",
    "mincut",
    "mis",
    "coloring",
    "connectivity",
];

/// Capacity shares the service cluster holds open concurrently.
pub const SERVICE_SHARES: usize = 3;

/// The headroom exponent the shared service cluster must carry: the
/// largest any [`SERVICE_JOBS`] tenant declares — new workload entries are
/// picked up automatically.
pub fn service_polylog() -> f64 {
    SERVICE_JOBS
        .iter()
        .map(|name| {
            mpc_exec::registry::get(name)
                .expect("registered algorithm")
                .polylog_exponent
        })
        .fold(1.0_f64, f64::max)
}

/// One job's terminal outcome from a service drain: its final status and
/// the output digest (`None` when the job failed or was cancelled).
type JobOutcome = (mpc_exec::JobStatus, Option<u128>);

/// One timed service drain: submits [`SERVICE_JOBS`] (seeds `100 + i`),
/// runs the queue to completion under `mode` with an optional fault plan
/// attached to the shared cluster, and returns (wall ms, simulated
/// makespan, exchange rounds, machines, scheduling records, per-job
/// outcomes in submission order).
fn service_drain_with(
    g: &std::sync::Arc<Graph>,
    straggler: bool,
    plan: Option<mpc_runtime::FaultPlan>,
    mode: mpc_exec::ExecMode,
) -> (
    f64,
    f64,
    u64,
    usize,
    Vec<mpc_exec::JobRecord>,
    Vec<JobOutcome>,
) {
    use mpc_runtime::CostModel;

    let config = ClusterConfig::new(g.n(), g.m())
        .seed(5)
        .polylog_exponent(service_polylog());
    let mut service = mpc_exec::Service::new(config.clone()).capacity_shares(SERVICE_SHARES);
    let handles: Vec<_> = SERVICE_JOBS
        .iter()
        .enumerate()
        .map(|(i, name)| {
            service
                .submit(mpc_exec::JobSpec::new(*name, g.clone()).seed(100 + i as u64))
                .expect("canonical registry name")
        })
        .collect();
    let mut cluster = Cluster::new(config);
    let victim = cluster.small_ids()[0];
    let mut model = CostModel::uniform(cluster.machines(), 1.0, 1.0, 0.5);
    if straggler {
        model = model.with_straggler(victim, 0.1);
    }
    cluster.set_cost_model(model);
    cluster.set_fault_plan(plan);
    let started = std::time::Instant::now();
    let run = service.run_on(&mut cluster, mode).expect("service drain");
    let wall = started.elapsed().as_secs_f64() * 1e3;
    let outcomes: Vec<JobOutcome> = handles
        .iter()
        .map(|h| {
            let digest = h
                .take_result()
                .expect("job finished")
                .ok()
                .map(|out| out.digest());
            (h.status(), digest)
        })
        .collect();
    (
        wall,
        cluster.critical_path_seconds(),
        cluster.rounds(),
        cluster.machines(),
        run.records,
        outcomes,
    )
}

/// Fault-free [`service_drain_with`]: every tenant must complete, so the
/// outcomes collapse to plain digests.
fn service_drain(
    g: &std::sync::Arc<Graph>,
    straggler: bool,
    mode: mpc_exec::ExecMode,
) -> (f64, f64, u64, usize, Vec<mpc_exec::JobRecord>, Vec<u128>) {
    let (wall, makespan, rounds, machines, records, outcomes) =
        service_drain_with(g, straggler, None, mode);
    let digests = outcomes
        .into_iter()
        .map(|(status, digest)| {
            assert_eq!(status, mpc_exec::JobStatus::Completed, "fault-free drain");
            digest.expect("job succeeded")
        })
        .collect();
    (wall, makespan, rounds, machines, records, digests)
}

/// One appended row of `BENCH_exec.json`'s service section.
struct ServiceRow {
    workload: String,
    machines: usize,
    rounds: u64,
    serial_ms: f64,
    pool_ms: f64,
    jps_serial: f64,
    jps_pool: f64,
    makespan: f64,
}

/// Appends the service rows to the committed `BENCH_exec.json` (written
/// wholesale by the `hotpath` experiment — keep that ordering), replacing
/// any previously appended `service-*` rows. Every row carries the
/// `machines`/`serial_ms`/`pool_ms` fields the hotpath baseline parser
/// requires, so the shared file keeps parsing; the service rows themselves
/// are telemetry, never enforced (they match no hotpath case).
fn append_service_rows(rows: &[ServiceRow]) -> std::path::PathBuf {
    let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_exec.json");
    let fmt = |r: &ServiceRow, last: bool| {
        format!(
            "    {{\"workload\": \"{}\", \"machines\": {}, \"rounds\": {}, \
             \"serial_ms\": {:.3}, \"pool_ms\": {:.3}, \
             \"jobs_per_sec_serial\": {:.1}, \"jobs_per_sec_pool\": {:.1}, \
             \"sim_makespan_s\": {:.1}}}{}",
            r.workload,
            r.machines,
            r.rounds,
            r.serial_ms,
            r.pool_ms,
            r.jps_serial,
            r.jps_pool,
            r.makespan,
            if last { "" } else { "," },
        )
    };
    if let Ok(body) = std::fs::read_to_string(&path) {
        let mut lines: Vec<String> = body
            .lines()
            .filter(|l| !l.contains("\"workload\": \"service-"))
            .map(String::from)
            .collect();
        if let Some(close) = lines.iter().position(|l| l.trim() == "]") {
            // The last committed case loses its array-final position.
            if close > 0 && lines[close - 1].trim_end().ends_with('}') {
                let prev = lines[close - 1].trim_end().to_string();
                lines[close - 1] = format!("{prev},");
            }
            for (i, r) in rows.iter().enumerate() {
                lines.insert(close + i, fmt(r, i + 1 == rows.len()));
            }
            std::fs::write(&path, lines.join("\n") + "\n").expect("write BENCH_exec.json");
            return path;
        }
    }
    // No committed hotpath baseline: write a standalone document.
    let mut body = String::from("{\n  \"bench\": \"exec_service\",\n  \"cases\": [\n");
    for (i, r) in rows.iter().enumerate() {
        body.push_str(&fmt(r, i + 1 == rows.len()));
        body.push('\n');
    }
    body.push_str("  ]\n}\n");
    std::fs::write(&path, body).expect("write BENCH_exec.json");
    path
}

/// E16: the job-queue service (DESIGN.md §2.8) — six mixed tenants
/// submitted to one [`mpc_exec::Service`] with three capacity shares, so
/// half the queue waits for admission-on-retirement. Times the drain
/// serial vs pool (schedules, results, and round counts asserted
/// identical), reports serving throughput in jobs/sec, and the simulated
/// makespan under uniform vs straggler cost profiles (asserted not to
/// change the schedule). Rows are appended to the committed
/// `BENCH_exec.json`.
pub fn service() {
    use mpc_exec::ExecMode;

    println!("\n## E16 — job-queue service (mixed tenants, admission on retirement)\n");
    if let Ok(threads) = std::env::var("MPC_POOL_THREADS") {
        println!("(pool worker threads pinned to {threads} via MPC_POOL_THREADS)\n");
    }
    let n = 256;
    let g = std::sync::Arc::new(generators::gnm(n, n * 6, 5).with_random_weights(1 << 12, 5));
    let reps = 3;
    let key = |rs: &[mpc_exec::JobRecord]| {
        rs.iter()
            .map(|r| (r.job, r.shares, r.admitted_round, r.completed_round))
            .collect::<Vec<_>>()
    };

    // Best-of-`reps` drain under one (profile, mode), asserting the
    // schedule and results never move between repetitions.
    let best = |straggler: bool, mode: ExecMode| {
        let (mut wall, makespan, rounds, machines, records, digests) =
            service_drain(&g, straggler, mode);
        for _ in 1..reps {
            let (w, _, r, _, recs, digs) = service_drain(&g, straggler, mode);
            assert_eq!(
                (r, key(&recs), &digs),
                (rounds, key(&records), &digests),
                "nondeterministic service drain"
            );
            wall = wall.min(w);
        }
        (wall, makespan, rounds, machines, records, digests)
    };

    let mut t = Table::new(&[
        "cost profile",
        "machines",
        "rounds",
        "serial ms",
        "pool ms",
        "jobs/s serial",
        "jobs/s pool",
        "sim makespan",
    ]);
    let mut rows: Vec<ServiceRow> = Vec::new();
    let mut schedule: Option<(Vec<(u64, usize, u64, u64)>, Vec<u128>)> = None;
    let mut uniform_records: Vec<mpc_exec::JobRecord> = Vec::new();
    let mut uniform_rounds = 0u64;
    for straggler in [false, true] {
        let (serial_ms, makespan, rounds, machines, records, digests) =
            best(straggler, ExecMode::Serial);
        let (pool_ms, _, pool_rounds, _, pool_records, pool_digests) =
            best(straggler, ExecMode::Parallel);
        assert_eq!(
            (pool_rounds, key(&pool_records), &pool_digests),
            (rounds, key(&records), &digests),
            "service: pool drain diverged from serial"
        );
        // The cost model is observational — switching profiles must not
        // move a single admission or digest.
        let this = (key(&records), digests.clone());
        match &schedule {
            None => schedule = Some(this),
            Some(s) => assert_eq!(s, &this, "cost profile changed the schedule"),
        }
        if !straggler {
            uniform_records = records.clone();
            uniform_rounds = rounds;
        }
        let profile = if straggler { "straggler" } else { "uniform" };
        let jobs = SERVICE_JOBS.len() as f64;
        let (jps_serial, jps_pool) = (
            jobs / (serial_ms / 1e3).max(1e-9),
            jobs / (pool_ms / 1e3).max(1e-9),
        );
        t.row(&[
            profile.to_string(),
            machines.to_string(),
            rounds.to_string(),
            format!("{serial_ms:.2}"),
            format!("{pool_ms:.2}"),
            format!("{jps_serial:.1}"),
            format!("{jps_pool:.1}"),
            format!("{makespan:.1}s"),
        ]);
        rows.push(ServiceRow {
            workload: format!(
                "service-{profile}(jobs={},shares={SERVICE_SHARES},n={n})",
                SERVICE_JOBS.len()
            ),
            machines,
            rounds,
            serial_ms,
            pool_ms,
            jps_serial,
            jps_pool,
            makespan,
        });
    }

    // Faulted leg: one seeded mid-drain crash with zero peer replicas is
    // job-fatal, so the service quarantines exactly one tenant and replays
    // the survivors (DESIGN.md §2.9). Throughput counts served jobs only.
    {
        use mpc_runtime::{Fault, FaultPlan, RecoveryPolicy};
        let smalls = Cluster::new(
            ClusterConfig::new(g.n(), g.m())
                .seed(5)
                .polylog_exponent(service_polylog()),
        )
        .small_ids();
        let plan = FaultPlan::new()
            .with_policy(RecoveryPolicy {
                replicas: 0,
                ..RecoveryPolicy::default()
            })
            .with_fault(Fault::Crash {
                machine: smalls[0],
                round: uniform_rounds / 2,
            });
        let best = |mode: ExecMode| {
            let (mut wall, makespan, rounds, machines, records, outcomes) =
                service_drain_with(&g, false, Some(plan.clone()), mode);
            for _ in 1..reps {
                let (w, _, r, _, recs, outs) =
                    service_drain_with(&g, false, Some(plan.clone()), mode);
                assert_eq!(
                    (r, key(&recs), &outs),
                    (rounds, key(&records), &outcomes),
                    "nondeterministic faulted service drain"
                );
                wall = wall.min(w);
            }
            (wall, makespan, rounds, machines, records, outcomes)
        };
        let (serial_ms, makespan, rounds, machines, records, outcomes) = best(ExecMode::Serial);
        let (pool_ms, _, pool_rounds, _, pool_records, pool_outcomes) = best(ExecMode::Parallel);
        assert_eq!(
            (pool_rounds, key(&pool_records), &pool_outcomes),
            (rounds, key(&records), &outcomes),
            "faulted service: pool drain diverged from serial"
        );
        let served = outcomes
            .iter()
            .filter(|(s, _)| *s == mpc_exec::JobStatus::Completed)
            .count();
        assert_eq!(served, SERVICE_JOBS.len() - 1, "exactly one tenant lost");
        // Survivors must be bit-identical to the fault-free drain.
        if let Some((_, clean_digests)) = &schedule {
            for (i, (status, digest)) in outcomes.iter().enumerate() {
                if *status == mpc_exec::JobStatus::Completed {
                    assert_eq!(
                        *digest,
                        Some(clean_digests[i]),
                        "surviving tenant {} diverged from the fault-free drain",
                        SERVICE_JOBS[i]
                    );
                }
            }
        }
        let (jps_serial, jps_pool) = (
            served as f64 / (serial_ms / 1e3).max(1e-9),
            served as f64 / (pool_ms / 1e3).max(1e-9),
        );
        t.row(&[
            "faulted (1 lost)".to_string(),
            machines.to_string(),
            rounds.to_string(),
            format!("{serial_ms:.2}"),
            format!("{pool_ms:.2}"),
            format!("{jps_serial:.1}"),
            format!("{jps_pool:.1}"),
            format!("{makespan:.1}s"),
        ]);
        rows.push(ServiceRow {
            workload: format!(
                "service-faulted-uniform(jobs={},shares={SERVICE_SHARES},n={n})",
                SERVICE_JOBS.len()
            ),
            machines,
            rounds,
            serial_ms,
            pool_ms,
            jps_serial,
            jps_pool,
            makespan,
        });
    }
    t.print();

    println!("\n### schedule (identical across modes, profiles, and repetitions)\n");
    let mut t = Table::new(&[
        "job",
        "name",
        "shares",
        "admitted round",
        "completed round",
        "rounds held",
    ]);
    for r in &uniform_records {
        t.rowd(&[
            r.job.to_string(),
            r.name.clone(),
            r.shares.to_string(),
            r.admitted_round.to_string(),
            r.completed_round.to_string(),
            r.rounds.to_string(),
        ]);
    }
    t.print();

    let path = append_service_rows(&rows);
    println!(
        "\n[service: appended {} rows to {}]",
        rows.len(),
        path.display()
    );
}

/// E17: service chaos — the six-tenant mixed queue (E16's workload) under
/// seeded faults, exercising both recovery tiers of DESIGN.md §2.9:
///
/// * **recoverable** — a seeded small-machine crash under the default
///   replica policy replays from peer checkpoints inside the wave; every
///   tenant completes and all six digests match the fault-free drain;
/// * **job-fatal** — the same crash with zero peer replicas cannot be
///   replayed, so the service quarantines exactly one tenant, fails it
///   with a typed error, and restarts the wave for the survivors, whose
///   digests must still match the fault-free drain bit-for-bit.
///
/// Both legs run under `ExecMode::Serial` and `ExecMode::Parallel` and
/// must agree exactly (CI pins the pool leg to 2 and 16 worker threads
/// via `MPC_POOL_THREADS`).
pub fn chaos_service() {
    use mpc_exec::{ExecMode, JobStatus};
    use mpc_runtime::{Fault, FaultPlan, RecoveryPolicy};

    println!("\n## E17 — service chaos (per-job quarantine, survivors must be exact)\n");
    if let Ok(threads) = std::env::var("MPC_POOL_THREADS") {
        println!("(pool worker threads pinned to {threads} via MPC_POOL_THREADS)\n");
    }
    let g = std::sync::Arc::new(generators::gnm(128, 768, 5).with_random_weights(1 << 12, 5));
    let (_, _, clean_rounds, _, _, clean) = service_drain_with(&g, false, None, ExecMode::Serial);
    let smalls = Cluster::new(
        ClusterConfig::new(g.n(), g.m())
            .seed(5)
            .polylog_exponent(service_polylog()),
    )
    .small_ids();
    let crash = Fault::Crash {
        machine: FaultPlan::seeded_single_crash(17, &smalls, clean_rounds)
            .faults()
            .iter()
            .find_map(|f| match f {
                Fault::Crash { machine, .. } => Some(*machine),
                _ => None,
            })
            .expect("seeded_single_crash schedules a crash"),
        round: clean_rounds / 2,
    };
    let legs: [(&str, FaultPlan, usize); 2] = [
        ("recoverable", FaultPlan::new().with_fault(crash.clone()), 0),
        (
            "job-fatal",
            FaultPlan::new()
                .with_policy(RecoveryPolicy {
                    replicas: 0,
                    ..RecoveryPolicy::default()
                })
                .with_fault(crash.clone()),
            1,
        ),
    ];

    let mut t = Table::new(&[
        "leg",
        "crash",
        "clean rounds",
        "faulted rounds",
        "tenants lost",
        "survivors exact",
    ]);
    for (leg, plan, expect_lost) in legs {
        let mut faulted_rounds = 0;
        let mut lost: Vec<String> = Vec::new();
        for mode in [ExecMode::Serial, ExecMode::Parallel] {
            let (_, _, rounds, _, _, outcomes) =
                service_drain_with(&g, false, Some(plan.clone()), mode);
            lost = outcomes
                .iter()
                .enumerate()
                .filter(|(_, (s, _))| *s != JobStatus::Completed)
                .map(|(i, _)| SERVICE_JOBS[i].to_string())
                .collect();
            assert_eq!(
                lost.len(),
                expect_lost,
                "{leg} under {mode:?}: wrong number of tenants lost"
            );
            for (i, (status, digest)) in outcomes.iter().enumerate() {
                if *status == JobStatus::Completed {
                    assert_eq!(
                        (status, *digest),
                        (&clean[i].0, clean[i].1),
                        "{leg} under {mode:?}: surviving tenant {} diverged \
                         from the fault-free drain",
                        SERVICE_JOBS[i]
                    );
                }
            }
            assert!(
                rounds > clean_rounds,
                "{leg} under {mode:?}: recovery must add checkpoint/replay rounds"
            );
            faulted_rounds = rounds;
        }
        t.row(&[
            leg.to_string(),
            crash.detail(),
            clean_rounds.to_string(),
            faulted_rounds.to_string(),
            if lost.is_empty() {
                "none".to_string()
            } else {
                lost.join(", ")
            },
            "yes".to_string(),
        ]);
    }
    t.print();
    println!("\nservice chaos: one seeded crash per leg, serial + pool; recoverable crashes");
    println!("replay in-wave, fatal ones quarantine one tenant and replay the survivors.");
}
