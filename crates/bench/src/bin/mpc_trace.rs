//! CLI: run any registry algorithm with telemetry attached and print the
//! straggler/imbalance report; optionally export a Perfetto trace.
//!
//! ```text
//! cargo run -p mpc-bench --release --bin mpc-trace -- --list
//! cargo run -p mpc-bench --release --bin mpc-trace -- mst --profile straggler
//! cargo run -p mpc-bench --release --bin mpc-trace -- all --profile proportional --n 256
//! cargo run -p mpc-bench --release --bin mpc-trace -- connectivity --trace out.json
//! #   out.json loads in ui.perfetto.dev / chrome://tracing
//! cargo run -p mpc-bench --release --bin mpc-trace -- mst --jsonl out.jsonl
//! cargo run -p mpc-bench --release --bin mpc-trace -- --validate out.jsonl
//! ```

use mpc_core::common;
use mpc_exec::{registry, AlgoInput, ExecMode};
use mpc_graph::generators;
use mpc_runtime::telemetry::{perfetto_export, validate_jsonl};
use mpc_runtime::{Cluster, ClusterConfig, CostModel, FaultPlan, JsonlSink, TraceSink};
use std::sync::Arc;

const USAGE: &str =
    "usage: mpc-trace [NAME|all|service] [--profile uniform|straggler|proportional] \
                     [--n N] [--mode serial|pool] [--faults SEED] [--trace out.json] \
                     [--jsonl out.jsonl] [--validate file.jsonl] [--list]";

struct Opts {
    service: bool,
    names: Vec<&'static str>,
    profile: String,
    n: usize,
    mode: ExecMode,
    faults: Option<u64>,
    trace: Option<String>,
    jsonl: Option<String>,
}

fn fail(message: &str) -> ! {
    eprintln!("{message}");
    eprintln!("{USAGE}");
    std::process::exit(2);
}

fn parse_args() -> Opts {
    let mut args = std::env::args().skip(1);
    let mut name: Option<String> = None;
    let mut profile = "straggler".to_string();
    let mut n = 256usize;
    let mut mode = ExecMode::Parallel;
    let mut faults = None;
    let mut trace = None;
    let mut jsonl = None;
    while let Some(arg) = args.next() {
        let mut value = |flag: &str| {
            args.next()
                .unwrap_or_else(|| fail(&format!("{flag} needs a value")))
        };
        match arg.as_str() {
            "--list" => {
                for name in registry::names() {
                    println!("{name}");
                }
                std::process::exit(0);
            }
            "--validate" => {
                let path = value("--validate");
                let body = std::fs::read_to_string(&path)
                    .unwrap_or_else(|e| fail(&format!("cannot read {path}: {e}")));
                match validate_jsonl(&body) {
                    Ok(count) => {
                        println!("{path}: {count} events, all schema-valid");
                        std::process::exit(0);
                    }
                    Err(e) => {
                        eprintln!("{path}: {e}");
                        std::process::exit(1);
                    }
                }
            }
            "--profile" => profile = value("--profile"),
            "--n" => {
                n = value("--n")
                    .parse()
                    .unwrap_or_else(|e| fail(&format!("--n: {e}")));
            }
            "--mode" => {
                mode = match value("--mode").as_str() {
                    "serial" => ExecMode::Serial,
                    "pool" => ExecMode::Parallel,
                    other => fail(&format!("unknown mode '{other}' (serial|pool)")),
                };
            }
            "--faults" => {
                faults = Some(
                    value("--faults")
                        .parse()
                        .unwrap_or_else(|e| fail(&format!("--faults: {e}"))),
                );
            }
            "--trace" => trace = Some(value("--trace")),
            "--jsonl" => jsonl = Some(value("--jsonl")),
            other if !other.starts_with('-') && name.is_none() => name = Some(arg),
            other => fail(&format!("unknown argument '{other}'")),
        }
    }
    if !matches!(profile.as_str(), "uniform" | "straggler" | "proportional") {
        fail(&format!("unknown profile '{profile}'"));
    }
    let service = name.as_deref() == Some("service");
    let names = match name.as_deref() {
        Some("service") => Vec::new(),
        None | Some("all") => registry::names(),
        Some(one) => match registry::get(one) {
            Some(algo) => vec![algo.name],
            None => fail(&format!(
                "unknown target '{one}'; registered: {} (or 'service')",
                registry::names().join(", ")
            )),
        },
    };
    if trace.is_some() && names.len() > 1 {
        fail("--trace needs a single algorithm NAME (tracks would overlap across runs)");
    }
    Opts {
        service,
        names,
        profile,
        n,
        mode,
        faults,
        trace,
        jsonl,
    }
}

fn cost_profile(profile: &str, cluster: &Cluster) -> CostModel {
    let caps: Vec<usize> = (0..cluster.machines())
        .map(|m| cluster.capacity(m))
        .collect();
    match profile {
        "uniform" => CostModel::uniform(caps.len(), 1.0, 1.0, 0.0),
        "proportional" => CostModel::proportional_to_capacity(&caps, 1.0),
        // One small machine at 10% speed and bandwidth — the schedule the
        // model calls "free" shows up as its bottleneck rounds.
        _ => CostModel::uniform(caps.len(), 1.0, 1.0, 0.0)
            .with_straggler(cluster.small_ids()[0], 0.1),
    }
}

/// The `service` target: drains the standard six-tenant mixed queue
/// ([`mpc_bench::experiments::SERVICE_JOBS`]) through one hooked engine
/// run and prints the straggler report plus a per-job quarantine/retry
/// breakdown. With `--faults SEED` a seeded small-machine crash is
/// injected under a **zero-replica** recovery policy, making it job-fatal:
/// the service must quarantine the culprit tenant, re-admit it on its
/// two-admission retry budget, and keep every surviving tenant
/// bit-identical to the fault-free drain — any divergence exits 1.
fn run_service(opts: &Opts, g: &Arc<mpc_graph::Graph>, jsonl_sink: Option<Arc<JsonlSink>>) {
    use mpc_bench::experiments::{service_polylog, SERVICE_JOBS, SERVICE_SHARES};
    use mpc_exec::{JobRetryPolicy, JobSpec, JobStatus, RunReport, Service};
    use mpc_runtime::{FanoutSink, RecoveryPolicy, RingSink};

    let config = || {
        ClusterConfig::new(g.n(), g.m())
            .seed(5)
            .polylog_exponent(service_polylog())
    };
    let drain = |plan: Option<FaultPlan>, sink: Option<Arc<dyn TraceSink>>| {
        let mut service = Service::new(config()).capacity_shares(SERVICE_SHARES);
        let handles: Vec<_> = SERVICE_JOBS
            .iter()
            .enumerate()
            .map(|(i, name)| {
                service
                    .submit(JobSpec::new(*name, g.clone()).seed(100 + i as u64).retry(
                        JobRetryPolicy {
                            max_attempts: 2,
                            backoff_rounds: 1,
                        },
                    ))
                    .expect("canonical registry name")
            })
            .collect();
        let mut cluster = Cluster::new(config());
        cluster.set_cost_model(cost_profile(&opts.profile, &cluster));
        cluster.set_fault_plan(plan);
        cluster.set_trace_sink(sink);
        let run = service
            .run_on(&mut cluster, opts.mode)
            .unwrap_or_else(|e| fail(&format!("service drain: {e}")));
        let outcomes: Vec<(JobStatus, Option<u128>)> = handles
            .iter()
            .map(|h| {
                let digest = h
                    .take_result()
                    .expect("job finished")
                    .ok()
                    .map(|out| out.digest());
                (h.status(), digest)
            })
            .collect();
        (cluster, run, outcomes)
    };

    // Fault-free preflight learns the round count (to scope the seeded
    // crash) and the per-tenant digests recovery must reproduce.
    let (pre, _, clean) = drain(None, None);
    let plan = opts.faults.map(|seed| {
        FaultPlan::seeded_single_crash(seed, &pre.small_ids(), pre.rounds()).with_policy(
            RecoveryPolicy {
                replicas: 0,
                ..RecoveryPolicy::default()
            },
        )
    });
    if let Some(plan) = &plan {
        for f in plan.faults() {
            println!(
                "\nservice: injecting {} ({}) with zero peer replicas — job-fatal",
                f.kind(),
                f.detail()
            );
        }
    }
    let ring = Arc::new(RingSink::unbounded());
    let sink: Arc<dyn TraceSink> = match &jsonl_sink {
        Some(j) => Arc::new(FanoutSink::new(vec![
            j.clone() as Arc<dyn TraceSink>,
            ring.clone(),
        ])),
        None => ring.clone(),
    };
    let (cluster, run, outcomes) = drain(plan.clone(), Some(sink));
    let report = RunReport::from_events("service", ring.take(), cluster.cost_model());
    println!("\n{}", report.render());

    println!("### per-job breakdown\n");
    println!("job  name              attempts  status             admitted  completed");
    for (r, (status, _)) in run.records.iter().zip(&outcomes) {
        println!(
            "{:>3}  {:<16}  {:>8}  {:<17}  {:>8}  {:>9}",
            r.job,
            r.name,
            r.attempts,
            format!("{status:?}"),
            r.admitted_round,
            r.completed_round
        );
    }

    let mut diverged = false;
    for (i, (status, digest)) in outcomes.iter().enumerate() {
        if *status == JobStatus::Completed && *digest != clean[i].1 {
            eprintln!(
                "service: surviving tenant {} DIVERGED from the fault-free drain",
                SERVICE_JOBS[i]
            );
            diverged = true;
        }
    }
    if diverged {
        std::process::exit(1);
    }
    if plan.is_some() {
        println!("\nall surviving tenants are bit-identical to the fault-free drain");
    }
    if let Some(path) = &opts.trace {
        std::fs::write(path, perfetto_export(&report.events))
            .unwrap_or_else(|e| fail(&format!("cannot write {path}: {e}")));
        println!(
            "perfetto trace ({} events) written to {path}",
            report.events.len()
        );
    }
}

fn main() {
    let opts = parse_args();
    let g = Arc::new(generators::gnm(opts.n, opts.n * 6, 5).with_random_weights(1 << 12, 5));
    let jsonl_sink = opts.jsonl.as_ref().map(|path| {
        Arc::new(
            JsonlSink::create(path).unwrap_or_else(|e| fail(&format!("cannot create {path}: {e}"))),
        )
    });
    println!(
        "# mpc-trace — profile {}, n = {}, m = {}, mode {:?}",
        opts.profile,
        g.n(),
        g.m(),
        opts.mode
    );
    if opts.service {
        run_service(&opts, &g, jsonl_sink.clone());
    }
    for name in &opts.names {
        let algo = registry::get(name).expect("validated above");
        let config = || {
            ClusterConfig::new(g.n(), g.m())
                .seed(5)
                .polylog_exponent(algo.polylog_exponent)
        };
        let mut cluster = Cluster::new(config());
        cluster.set_cost_model(cost_profile(&opts.profile, &cluster));
        // --faults: a fault-free preflight learns the round count (to place
        // the seeded crash mid-run) and the digest the recovery must
        // reproduce; the traced run below then carries the plan.
        let clean = opts.faults.map(|seed| {
            let mut pre = Cluster::new(config());
            let input = common::distribute_edges(&pre, &g);
            let out = registry::run(
                name,
                &mut pre,
                &AlgoInput::new(g.n(), &input),
                ExecMode::Serial,
            )
            .unwrap_or_else(|e| fail(&format!("{name} (fault-free preflight): {e}")));
            let plan = FaultPlan::seeded_single_crash(seed, &pre.small_ids(), pre.rounds());
            (out.digest(), plan)
        });
        if let Some((_, plan)) = &clean {
            for f in plan.faults() {
                println!("\n{name}: injecting {} ({})", f.kind(), f.detail());
            }
            cluster.set_fault_plan(Some(plan.clone()));
        }
        if let Some(sink) = &jsonl_sink {
            cluster.set_trace_sink(Some(sink.clone() as Arc<dyn TraceSink>));
        }
        let input = common::distribute_edges(&cluster, &g);
        let (out, report) = registry::run_with_report(
            name,
            &mut cluster,
            &AlgoInput::new(g.n(), &input),
            opts.mode,
        )
        .unwrap_or_else(|e| fail(&format!("{name}: {e}")));
        println!("\n{}", report.render());
        if let Some((clean_digest, _)) = &clean {
            if out.digest() == *clean_digest {
                println!("recovered result is bit-identical to the fault-free run");
            } else {
                eprintln!("{name}: recovered digest DIVERGED from the fault-free run");
                std::process::exit(1);
            }
        }
        if let Some(path) = &opts.trace {
            std::fs::write(path, perfetto_export(&report.events))
                .unwrap_or_else(|e| fail(&format!("cannot write {path}: {e}")));
            println!(
                "perfetto trace ({} events) written to {path}",
                report.events.len()
            );
        }
    }
    if let Some(sink) = &jsonl_sink {
        sink.flush();
        println!(
            "\njsonl event log written to {}",
            opts.jsonl.as_deref().unwrap()
        );
    }
}
