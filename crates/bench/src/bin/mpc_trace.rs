//! CLI: run any registry algorithm with telemetry attached and print the
//! straggler/imbalance report; optionally export a Perfetto trace.
//!
//! ```text
//! cargo run -p mpc-bench --release --bin mpc-trace -- --list
//! cargo run -p mpc-bench --release --bin mpc-trace -- mst --profile straggler
//! cargo run -p mpc-bench --release --bin mpc-trace -- all --profile proportional --n 256
//! cargo run -p mpc-bench --release --bin mpc-trace -- connectivity --trace out.json
//! #   out.json loads in ui.perfetto.dev / chrome://tracing
//! cargo run -p mpc-bench --release --bin mpc-trace -- mst --jsonl out.jsonl
//! cargo run -p mpc-bench --release --bin mpc-trace -- --validate out.jsonl
//! ```

use mpc_core::common;
use mpc_exec::{registry, AlgoInput, ExecMode};
use mpc_graph::generators;
use mpc_runtime::telemetry::{perfetto_export, validate_jsonl};
use mpc_runtime::{Cluster, ClusterConfig, CostModel, FaultPlan, JsonlSink, TraceSink};
use std::sync::Arc;

const USAGE: &str = "usage: mpc-trace [NAME|all] [--profile uniform|straggler|proportional] \
                     [--n N] [--mode serial|pool] [--faults SEED] [--trace out.json] \
                     [--jsonl out.jsonl] [--validate file.jsonl] [--list]";

struct Opts {
    names: Vec<&'static str>,
    profile: String,
    n: usize,
    mode: ExecMode,
    faults: Option<u64>,
    trace: Option<String>,
    jsonl: Option<String>,
}

fn fail(message: &str) -> ! {
    eprintln!("{message}");
    eprintln!("{USAGE}");
    std::process::exit(2);
}

fn parse_args() -> Opts {
    let mut args = std::env::args().skip(1);
    let mut name: Option<String> = None;
    let mut profile = "straggler".to_string();
    let mut n = 256usize;
    let mut mode = ExecMode::Parallel;
    let mut faults = None;
    let mut trace = None;
    let mut jsonl = None;
    while let Some(arg) = args.next() {
        let mut value = |flag: &str| {
            args.next()
                .unwrap_or_else(|| fail(&format!("{flag} needs a value")))
        };
        match arg.as_str() {
            "--list" => {
                for name in registry::names() {
                    println!("{name}");
                }
                std::process::exit(0);
            }
            "--validate" => {
                let path = value("--validate");
                let body = std::fs::read_to_string(&path)
                    .unwrap_or_else(|e| fail(&format!("cannot read {path}: {e}")));
                match validate_jsonl(&body) {
                    Ok(count) => {
                        println!("{path}: {count} events, all schema-valid");
                        std::process::exit(0);
                    }
                    Err(e) => {
                        eprintln!("{path}: {e}");
                        std::process::exit(1);
                    }
                }
            }
            "--profile" => profile = value("--profile"),
            "--n" => {
                n = value("--n")
                    .parse()
                    .unwrap_or_else(|e| fail(&format!("--n: {e}")));
            }
            "--mode" => {
                mode = match value("--mode").as_str() {
                    "serial" => ExecMode::Serial,
                    "pool" => ExecMode::Parallel,
                    other => fail(&format!("unknown mode '{other}' (serial|pool)")),
                };
            }
            "--faults" => {
                faults = Some(
                    value("--faults")
                        .parse()
                        .unwrap_or_else(|e| fail(&format!("--faults: {e}"))),
                );
            }
            "--trace" => trace = Some(value("--trace")),
            "--jsonl" => jsonl = Some(value("--jsonl")),
            other if !other.starts_with('-') && name.is_none() => name = Some(arg),
            other => fail(&format!("unknown argument '{other}'")),
        }
    }
    if !matches!(profile.as_str(), "uniform" | "straggler" | "proportional") {
        fail(&format!("unknown profile '{profile}'"));
    }
    let names = match name.as_deref() {
        None | Some("all") => registry::names(),
        Some(one) => match registry::get(one) {
            Some(algo) => vec![algo.name],
            None => fail(&format!(
                "unknown algorithm '{one}'; registered: {}",
                registry::names().join(", ")
            )),
        },
    };
    if trace.is_some() && names.len() > 1 {
        fail("--trace needs a single algorithm NAME (tracks would overlap across runs)");
    }
    Opts {
        names,
        profile,
        n,
        mode,
        faults,
        trace,
        jsonl,
    }
}

fn cost_profile(profile: &str, cluster: &Cluster) -> CostModel {
    let caps: Vec<usize> = (0..cluster.machines())
        .map(|m| cluster.capacity(m))
        .collect();
    match profile {
        "uniform" => CostModel::uniform(caps.len(), 1.0, 1.0, 0.0),
        "proportional" => CostModel::proportional_to_capacity(&caps, 1.0),
        // One small machine at 10% speed and bandwidth — the schedule the
        // model calls "free" shows up as its bottleneck rounds.
        _ => CostModel::uniform(caps.len(), 1.0, 1.0, 0.0)
            .with_straggler(cluster.small_ids()[0], 0.1),
    }
}

fn main() {
    let opts = parse_args();
    let g = generators::gnm(opts.n, opts.n * 6, 5).with_random_weights(1 << 12, 5);
    let jsonl_sink = opts.jsonl.as_ref().map(|path| {
        Arc::new(
            JsonlSink::create(path).unwrap_or_else(|e| fail(&format!("cannot create {path}: {e}"))),
        )
    });
    println!(
        "# mpc-trace — profile {}, n = {}, m = {}, mode {:?}",
        opts.profile,
        g.n(),
        g.m(),
        opts.mode
    );
    for name in &opts.names {
        let algo = registry::get(name).expect("validated above");
        let config = || {
            ClusterConfig::new(g.n(), g.m())
                .seed(5)
                .polylog_exponent(algo.polylog_exponent)
        };
        let mut cluster = Cluster::new(config());
        cluster.set_cost_model(cost_profile(&opts.profile, &cluster));
        // --faults: a fault-free preflight learns the round count (to place
        // the seeded crash mid-run) and the digest the recovery must
        // reproduce; the traced run below then carries the plan.
        let clean = opts.faults.map(|seed| {
            let mut pre = Cluster::new(config());
            let input = common::distribute_edges(&pre, &g);
            let out = registry::run(
                name,
                &mut pre,
                &AlgoInput::new(g.n(), &input),
                ExecMode::Serial,
            )
            .unwrap_or_else(|e| fail(&format!("{name} (fault-free preflight): {e}")));
            let plan = FaultPlan::seeded_single_crash(seed, &pre.small_ids(), pre.rounds());
            (out.digest(), plan)
        });
        if let Some((_, plan)) = &clean {
            for f in plan.faults() {
                println!("\n{name}: injecting {} ({})", f.kind(), f.detail());
            }
            cluster.set_fault_plan(Some(plan.clone()));
        }
        if let Some(sink) = &jsonl_sink {
            cluster.set_trace_sink(Some(sink.clone() as Arc<dyn TraceSink>));
        }
        let input = common::distribute_edges(&cluster, &g);
        let (out, report) = registry::run_with_report(
            name,
            &mut cluster,
            &AlgoInput::new(g.n(), &input),
            opts.mode,
        )
        .unwrap_or_else(|e| fail(&format!("{name}: {e}")));
        println!("\n{}", report.render());
        if let Some((clean_digest, _)) = &clean {
            if out.digest() == *clean_digest {
                println!("recovered result is bit-identical to the fault-free run");
            } else {
                eprintln!("{name}: recovered digest DIVERGED from the fault-free run");
                std::process::exit(1);
            }
        }
        if let Some(path) = &opts.trace {
            std::fs::write(path, perfetto_export(&report.events))
                .unwrap_or_else(|e| fail(&format!("cannot write {path}: {e}")));
            println!(
                "perfetto trace ({} events) written to {path}",
                report.events.len()
            );
        }
    }
    if let Some(sink) = &jsonl_sink {
        sink.flush();
        println!(
            "\njsonl event log written to {}",
            opts.jsonl.as_deref().unwrap()
        );
    }
}
