//! CLI: regenerate the paper's tables and figures.
//!
//! ```text
//! cargo run -p mpc-bench --release --bin experiments             # everything
//! cargo run -p mpc-bench --release --bin experiments -- table1  # one experiment
//! cargo run -p mpc-bench --release --bin experiments -- --list  # names
//! cargo run -p mpc-bench --release --bin experiments -- hotpath --quick
//! #                       ^ CI smoke: shrunken sweep, still writes BENCH_exec.json
//! ```

fn main() {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--list") {
        for name in mpc_bench::EXPERIMENTS {
            println!("{name}");
        }
        return;
    }
    let quick = args.iter().any(|a| a == "--quick");
    args.retain(|a| a != "--quick");
    let selected: Vec<&str> = if args.is_empty() {
        mpc_bench::EXPERIMENTS.to_vec()
    } else {
        args.iter().map(String::as_str).collect()
    };
    for name in &selected {
        if !mpc_bench::EXPERIMENTS.contains(name) {
            eprintln!("unknown experiment '{name}'; use --list");
            std::process::exit(2);
        }
    }
    println!("# het-mpc experiment suite");
    println!("# (markdown tables; see EXPERIMENTS.md for the paper-vs-measured record)");
    let started = std::time::Instant::now();
    for name in selected {
        let t0 = std::time::Instant::now();
        mpc_bench::run_experiment_opts(name, quick);
        eprintln!("[{name} done in {:.1?}]", t0.elapsed());
    }
    eprintln!("[suite done in {:.1?}]", started.elapsed());
}
