//! Minimal aligned-table printer (markdown-compatible output, so rows can
//! be pasted into EXPERIMENTS.md verbatim).

/// A simple text table.
#[derive(Debug, Default)]
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    pub fn new(header: &[&str]) -> Self {
        Table {
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (stringified cells).
    pub fn row(&mut self, cells: &[String]) {
        assert_eq!(cells.len(), self.header.len(), "row arity mismatch");
        self.rows.push(cells.to_vec());
    }

    /// Convenience: appends a row of displayable items.
    pub fn rowd<D: std::fmt::Display>(&mut self, cells: &[D]) {
        self.row(&cells.iter().map(|c| c.to_string()).collect::<Vec<_>>());
    }

    /// Prints the table as markdown with aligned columns.
    pub fn print(&self) {
        let mut widths: Vec<usize> = self.header.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                widths[i] = widths[i].max(c.len());
            }
        }
        let line = |cells: &[String]| {
            let padded: Vec<String> = cells
                .iter()
                .enumerate()
                .map(|(i, c)| format!("{:>width$}", c, width = widths[i]))
                .collect();
            println!("| {} |", padded.join(" | "));
        };
        line(&self.header);
        let sep: Vec<String> = widths.iter().map(|w| "-".repeat(*w)).collect();
        println!("|-{}-|", sep.join("-|-"));
        for row in &self.rows {
            line(row);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_markdown() {
        let mut t = Table::new(&["a", "bbb"]);
        t.rowd(&[1, 22]);
        t.print(); // visual; just ensure no panic and arity checks hold
    }

    #[test]
    #[should_panic]
    fn arity_mismatch_panics() {
        let mut t = Table::new(&["a"]);
        t.rowd(&[1, 2]);
    }
}
