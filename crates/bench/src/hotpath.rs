//! The `hotpath` experiment: what the engine's per-round host overhead
//! costs, and what the persistent pool buys back.
//!
//! Two per-round costs dominate the engine's host wall-clock at high round
//! counts: (1) `ExecMode::SpawnPerRound` pays an OS thread spawn + join per
//! worker **every round**, and (2) its static chunking serializes every
//! machine that shares a chunk with the large machine — deliberately the
//! heaviest per-round workload in the paper's heterogeneous regime (the
//! straggler effect heterogeneous-cluster work treats as the dominant
//! cost). The pooled `ExecMode::Parallel` spawns once per run and claims
//! machines dynamically, so neither cost scales with the round count.
//!
//! The workload is a message ring ([`RippleProgram`]) with a skewed
//! per-machine compute profile (machine 0 does `K/4`× the work of a small
//! machine), swept over K ∈ {8, 64, 256} machines — plus one end-to-end
//! connectivity run on a larger graph for realism. Results are printed as
//! a markdown table and written machine-readably to `BENCH_exec.json` at
//! the repo root, starting the perf trajectory the ROADMAP asks for.
//!
//! All three schedules are asserted bit-identical (checksums and round
//! counts) before any result is reported.

use crate::Table;
use mpc_core::common;
use mpc_core::ported::connectivity::{sketch_friendly_config, ConnectivityConfig};
use mpc_exec::pool::PoolStats;
use mpc_exec::{ConnectivityProgram, ExecMode, Executor, MachineCtx, MachineProgram, StepOutcome};
use mpc_graph::generators;
use mpc_runtime::{Cluster, ClusterConfig, FaultPlan, MachineId, RingSink, Topology};
use std::sync::Arc;
use std::time::Duration;

/// A ring program stressing the round loop: every machine forwards one
/// word to its successor each round and burns a deterministic amount of
/// local compute, skewed so machine 0 (the large machine) is the
/// straggler. No RNG, so any cross-schedule divergence shows up in the
/// checksum immediately.
pub struct RippleProgram {
    rounds: u64,
    work_iters: u64,
    /// Deterministic digest of everything this machine computed/received.
    pub checksum: u64,
}

impl RippleProgram {
    /// Burns `iters` multiply-rotate steps; returns the mixed accumulator.
    fn busywork(seed: u64, iters: u64) -> u64 {
        let mut acc = seed | 1;
        for i in 0..iters {
            acc = acc.wrapping_mul(0x9E37_79B9_7F4A_7C15).rotate_left(17) ^ i;
        }
        acc
    }
}

impl MachineProgram for RippleProgram {
    type Message = u64;

    fn step(&mut self, ctx: &MachineCtx<'_>, inbox: Vec<(MachineId, u64)>) -> StepOutcome<u64> {
        for (_, m) in &inbox {
            self.checksum ^= m;
        }
        let acc = Self::busywork(self.checksum, self.work_iters);
        self.checksum ^= acc;
        // Report the compute to the cost model so simulated makespans see
        // the same skew the host does.
        ctx.charge(self.work_iters);
        if ctx.round + 1 >= self.rounds {
            return StepOutcome::Halt;
        }
        StepOutcome::Send(vec![((ctx.mid + 1) % ctx.machines, acc)])
    }
}

/// A cluster with `k` small machines plus one large machine (id 0).
pub fn ripple_cluster(k: usize) -> Cluster {
    Cluster::new(ClusterConfig::new(1024, 4096).topology(Topology::Custom {
        capacities: vec![4096; k + 1],
        large: Some(0),
    }))
}

/// One [`RippleProgram`] per machine: small machines do `small_work`
/// iterations per round, the large machine `small_work · k/4` (the
/// straggler skew).
pub fn ripple_programs(cluster: &Cluster, rounds: u64, small_work: u64) -> Vec<RippleProgram> {
    let k = cluster.machines();
    let skew = (k as u64 / 4).max(2);
    (0..k)
        .map(|mid| RippleProgram {
            rounds,
            work_iters: if Some(mid) == cluster.large() {
                small_work * skew
            } else {
                small_work
            },
            checksum: mid as u64,
        })
        .collect()
}

/// The two representative registry rows that also report the simulated
/// cost of fault tolerance (seeded single crash + recovery): one
/// contraction-style pipeline (`mst`, few heavy rounds) and one
/// many-round local algorithm (`mis`) — the two regimes where checkpoint
/// cadence bites differently.
const RECOVERY_ROWS: &[&str] = &["mst", "mis"];

/// Worker threads for both parallel schedules: pinned (rather than
/// host-derived) so the comparison measures the *schedulers* — the same
/// worker count either spawned per round or parked on the pool's barrier —
/// independent of the benchmarking host's core count.
const WORKERS: usize = 8;

/// One timed ripple run; returns (wall, checksum, rounds).
fn time_ripple(mode: ExecMode, k: usize, rounds: u64, small_work: u64) -> (Duration, u64, u64) {
    let mut cluster = ripple_cluster(k);
    let programs = ripple_programs(&cluster, rounds, small_work);
    let out = Executor::new("ripple", mode)
        .threads(WORKERS)
        .run(&mut cluster, programs)
        .expect("ripple run");
    let checksum = out
        .programs
        .iter()
        .fold(0u64, |acc, p| acc ^ p.checksum.rotate_left(11));
    (out.wall, checksum, out.rounds)
}

/// One timed connectivity run on `g`; returns (wall, component count,
/// rounds). Wall time covers program construction + run + extraction —
/// the same basis as [`time_registry`], so the end-to-end rows of the
/// table are comparable (the ripple rows measure `out.wall`, the bare
/// round loop, and are only compared among themselves).
fn time_connectivity(mode: ExecMode, g: &mpc_graph::Graph, seed: u64) -> (Duration, u64, u64) {
    let mut cluster = Cluster::new(sketch_friendly_config(g.n(), g.m(), seed));
    let edges = common::distribute_edges(&cluster, g);
    let started = std::time::Instant::now();
    let programs = ConnectivityProgram::for_cluster(
        &cluster,
        g.n(),
        &edges,
        &ConnectivityConfig::for_n(g.n()),
    );
    let out = Executor::new("conn", mode)
        .threads(WORKERS)
        .run(&mut cluster, programs)
        .expect("connectivity run");
    let large = cluster.large().expect("heterogeneous topology");
    let comps = out.programs[large].result.as_ref().expect("components");
    (started.elapsed(), comps.count as u64, out.rounds)
}

/// One timed registry run (MST / matching end-to-end programs); returns
/// (wall, digest, rounds). Routed through `registry::run` like every other
/// consumer of the ported algorithms.
fn time_registry(
    name: &str,
    mode: ExecMode,
    g: &mpc_graph::Graph,
    seed: u64,
) -> (Duration, u64, u64) {
    let polylog = mpc_exec::registry::get(name)
        .expect("registered algorithm")
        .polylog_exponent;
    let mut cluster = Cluster::new(
        ClusterConfig::new(g.n(), g.m())
            .seed(seed)
            .polylog_exponent(polylog),
    );
    let edges = common::distribute_edges(&cluster, g);
    let started = std::time::Instant::now();
    let out = mpc_exec::registry::run(
        name,
        &mut cluster,
        &mpc_exec::AlgoInput::new(g.n(), &edges),
        mode,
    )
    .expect("registry run");
    let wall = started.elapsed();
    (wall, out.digest() as u64, cluster.rounds())
}

/// Attaches a small bounded ring sink (the driver instruments the pool iff
/// the cluster is tracing; the events themselves are discarded) so a run
/// yields [`PoolStats`]. The *timed* runs above stay sink-free — telemetry
/// must never pollute the clocks the regression guard gates on.
fn observe(cluster: &mut Cluster) {
    cluster.set_trace_sink(Some(Arc::new(RingSink::with_capacity(16))));
}

/// `(barrier-wait ms, worker busy-time imbalance)` columns from one
/// instrumented pool run's stats.
fn stats_columns(stats: Option<PoolStats>) -> (f64, f64) {
    stats.map_or((0.0, 0.0), |s| {
        (s.total_wait_seconds() * 1e3, s.imbalance())
    })
}

/// One instrumented (untimed) pooled ripple run for the barrier/imbalance
/// columns.
fn instrument_ripple(k: usize, rounds: u64, small_work: u64) -> (f64, f64) {
    let mut cluster = ripple_cluster(k);
    observe(&mut cluster);
    let programs = ripple_programs(&cluster, rounds, small_work);
    let out = Executor::new("ripple", ExecMode::Parallel)
        .threads(WORKERS)
        .run(&mut cluster, programs)
        .expect("ripple run");
    stats_columns(out.pool)
}

/// One instrumented (untimed) pooled connectivity run.
fn instrument_connectivity(g: &mpc_graph::Graph, seed: u64) -> (f64, f64) {
    let mut cluster = Cluster::new(sketch_friendly_config(g.n(), g.m(), seed));
    observe(&mut cluster);
    let edges = common::distribute_edges(&cluster, g);
    let programs = ConnectivityProgram::for_cluster(
        &cluster,
        g.n(),
        &edges,
        &ConnectivityConfig::for_n(g.n()),
    );
    let out = Executor::new("conn", ExecMode::Parallel)
        .threads(WORKERS)
        .run(&mut cluster, programs)
        .expect("connectivity run");
    stats_columns(out.pool)
}

/// One instrumented (untimed) pooled registry run, via `run_with_report`
/// (whose report reconstructs the pool stats from worker events).
fn instrument_registry(name: &str, g: &mpc_graph::Graph, seed: u64) -> (f64, f64) {
    let polylog = mpc_exec::registry::get(name)
        .expect("registered algorithm")
        .polylog_exponent;
    let mut cluster = Cluster::new(
        ClusterConfig::new(g.n(), g.m())
            .seed(seed)
            .polylog_exponent(polylog),
    );
    let edges = common::distribute_edges(&cluster, g);
    let (_, report) = mpc_exec::registry::run_with_report(
        name,
        &mut cluster,
        &mpc_exec::AlgoInput::new(g.n(), &edges),
        ExecMode::Parallel,
    )
    .expect("registry run");
    stats_columns(report.pool)
}

/// One faulted serial registry run: a seeded single crash under the
/// default [`mpc_runtime::fault::RecoveryPolicy`] (k = 1 replica,
/// checkpoint every round), reported through `run_with_report`. Returns
/// the share of the *simulated* makespan spent on checkpoint + recovery
/// rounds — the price of fault tolerance in model time, not host time.
/// Asserts the recovered digest matches the fault-free run first, so the
/// ratio is only ever reported for an exact recovery.
fn recovery_overhead(name: &str, g: &mpc_graph::Graph, seed: u64) -> f64 {
    let polylog = mpc_exec::registry::get(name)
        .expect("registered algorithm")
        .polylog_exponent;
    let build = || {
        Cluster::new(
            ClusterConfig::new(g.n(), g.m())
                .seed(seed)
                .polylog_exponent(polylog),
        )
    };
    // Fault-free preflight: learn the round count, the small-machine ids,
    // and the digest the recovery must reproduce.
    let mut clean = build();
    let edges = common::distribute_edges(&clean, g);
    let out = mpc_exec::registry::run(
        name,
        &mut clean,
        &mpc_exec::AlgoInput::new(g.n(), &edges),
        ExecMode::Serial,
    )
    .expect("fault-free preflight");
    let clean_digest = out.digest();
    let smalls: Vec<MachineId> = (0..clean.machines())
        .filter(|&m| Some(m) != clean.large())
        .collect();
    let plan = FaultPlan::seeded_single_crash(seed, &smalls, clean.rounds());

    let mut cluster = build();
    let edges = common::distribute_edges(&cluster, g);
    cluster.set_fault_plan(Some(plan));
    let (out, report) = mpc_exec::registry::run_with_report(
        name,
        &mut cluster,
        &mpc_exec::AlgoInput::new(g.n(), &edges),
        ExecMode::Serial,
    )
    .expect("faulted run");
    assert_eq!(
        out.digest(),
        clean_digest,
        "{name}: recovery diverged from the fault-free run"
    );
    report
        .recovery
        .overhead_ratio(report.critical_path.total_seconds)
}

/// Best-of-`reps` wall time for `run`, asserting the digest never moves.
fn best_of<F: FnMut() -> (Duration, u64, u64)>(reps: usize, mut run: F) -> (f64, u64, u64) {
    let (mut best, digest, rounds) = run();
    for _ in 1..reps {
        let (wall, d, r) = run();
        assert_eq!((d, r), (digest, rounds), "nondeterministic timing run");
        best = best.min(wall);
    }
    (best.as_secs_f64() * 1e3, digest, rounds)
}

struct Case {
    workload: String,
    machines: usize,
    rounds: u64,
    serial_ms: f64,
    spawn_ms: f64,
    pool_ms: f64,
    /// Total pool barrier-wait (ms) from one extra instrumented run —
    /// never from the timed runs.
    barrier_ms: f64,
    /// Max-over-mean worker busy-time ratio from the same instrumented run.
    imbalance: f64,
    /// Simulated-time share spent on checkpoint + recovery rounds under a
    /// seeded single crash, from one extra faulted run — only computed for
    /// the representative registry rows ([`RECOVERY_ROWS`]).
    recovery_ratio: Option<f64>,
}

impl Case {
    fn speedup(&self) -> f64 {
        self.spawn_ms / self.pool_ms.max(1e-9)
    }
}

/// Runs the experiment; `quick` shrinks the sweep for CI smoke runs.
pub fn run(quick: bool) {
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    println!("\n## hotpath — per-round engine overhead: spawn-per-round vs persistent pool\n");
    println!(
        "host cores: {cores}; both parallel schedules run {WORKERS} workers (pinned, so\n\
         the comparison measures the schedulers, not the host); wall times are\n\
         best-of-N host milliseconds; all three schedules are asserted\n\
         bit-identical before results are reported.\n"
    );

    // Quick mode takes best-of-10 on the millisecond-scale cases: the
    // regression guard gates on ratios against the committed baseline, and
    // fewer reps are too noisy to gate on. The one ~half-second case
    // (connectivity) stays at best-of-3 to keep the CI smoke fast.
    let (ks, rounds, small_work, reps): (&[usize], u64, u64, usize) = if quick {
        (&[8, 64], 50, 600, 10)
    } else {
        (&[8, 64, 256], 250, 1500, 3)
    };
    let conn_reps = 3.min(reps);

    let mut cases: Vec<Case> = Vec::new();
    for &k in ks {
        // `best_of` asserts within-mode stability; the digests it returns
        // gate all three schedules against each other before the case is
        // recorded.
        let (serial_ms, d_serial, r_serial) = best_of(reps, || {
            time_ripple(ExecMode::Serial, k, rounds, small_work)
        });
        let (spawn_ms, d_spawn, r_spawn) = best_of(reps, || {
            time_ripple(ExecMode::SpawnPerRound, k, rounds, small_work)
        });
        let (pool_ms, d_pool, r_pool) = best_of(reps, || {
            time_ripple(ExecMode::Parallel, k, rounds, small_work)
        });
        assert_eq!(
            (d_serial, r_serial),
            (d_spawn, r_spawn),
            "K={k}: spawn-per-round diverged from serial"
        );
        assert_eq!(
            (d_serial, r_serial),
            (d_pool, r_pool),
            "K={k}: pool diverged from serial"
        );
        let (barrier_ms, imbalance) = instrument_ripple(k, rounds, small_work);
        cases.push(Case {
            workload: format!("ripple(r={rounds},w={small_work})"),
            machines: k + 1,
            rounds: r_serial,
            serial_ms,
            spawn_ms,
            pool_ms,
            barrier_ms,
            imbalance,
            recovery_ratio: None,
        });
    }

    // One end-to-end program on a larger graph: few rounds, heavy steps —
    // the regime where spawn overhead matters least (reported for honesty).
    let (n, density, seed) = if quick { (1200, 6, 7) } else { (4000, 6, 7) };
    let g = generators::gnm(n, n * density, seed);
    let (serial_ms, d_serial, r_serial) =
        best_of(conn_reps, || time_connectivity(ExecMode::Serial, &g, seed));
    let (spawn_ms, d_spawn, r_spawn) = best_of(conn_reps, || {
        time_connectivity(ExecMode::SpawnPerRound, &g, seed)
    });
    let (pool_ms, d_pool, r_pool) = best_of(conn_reps, || {
        time_connectivity(ExecMode::Parallel, &g, seed)
    });
    assert_eq!(
        (d_serial, r_serial),
        (d_spawn, r_spawn),
        "connectivity: spawn-per-round diverged from serial"
    );
    assert_eq!(
        (d_serial, r_serial),
        (d_pool, r_pool),
        "connectivity: pool diverged from serial"
    );
    let conn_machines = Cluster::new(sketch_friendly_config(g.n(), g.m(), seed)).machines();
    let (barrier_ms, imbalance) = instrument_connectivity(&g, seed);
    cases.push(Case {
        workload: format!("connectivity(n={n},m={})", g.m()),
        machines: conn_machines,
        rounds: r_serial,
        serial_ms,
        spawn_ms,
        pool_ms,
        barrier_ms,
        imbalance,
        recovery_ratio: None,
    });

    // The ported end-to-end programs, through the Algorithm registry: the
    // full MST pipeline (contraction waves + KKT), the three-phase
    // matching, the prefix-batched MIS, and the palette-sampling coloring
    // — many short rounds, the regime the pool is built for — plus the
    // three batched multi-program workloads (weight classes, threshold
    // waves, λ̂ guesses interleaved by the multiplexed scheduler: many
    // instances, very few combined rounds) on a smaller weighted graph.
    let g_mst = g.clone().with_random_weights(1 << 20, seed);
    let nb = if quick { 256 } else { 512 };
    let g_batch = generators::gnm(nb, nb * 5, seed).with_random_weights(1 << 6, seed);
    let batched = mpc_exec::registry::BATCHED_NAMES;
    let solo_cases = [
        ("mst", &g_mst),
        ("matching", &g),
        ("mis", &g),
        ("coloring", &g),
    ];
    for (algo, graph) in solo_cases
        .into_iter()
        .chain(batched.into_iter().map(|name| (name, &g_batch)))
    {
        // The batched rows are dominated by the large machine's local
        // verdicts (Stoer–Wagner / sketch-Borůvka per instance), so a few
        // reps suffice — the quantity of interest is the ratio's sign,
        // not its third digit.
        let reps = if batched.contains(&algo) {
            conn_reps
        } else {
            reps
        };
        let (serial_ms, d_serial, r_serial) =
            best_of(reps, || time_registry(algo, ExecMode::Serial, graph, seed));
        let (spawn_ms, d_spawn, r_spawn) = best_of(reps, || {
            time_registry(algo, ExecMode::SpawnPerRound, graph, seed)
        });
        let (pool_ms, d_pool, r_pool) = best_of(reps, || {
            time_registry(algo, ExecMode::Parallel, graph, seed)
        });
        assert_eq!(
            (d_serial, r_serial),
            (d_spawn, r_spawn),
            "{algo}: spawn-per-round diverged from serial"
        );
        assert_eq!(
            (d_serial, r_serial),
            (d_pool, r_pool),
            "{algo}: pool diverged from serial"
        );
        let polylog = mpc_exec::registry::get(algo)
            .expect("registered algorithm")
            .polylog_exponent;
        let machines = Cluster::new(
            ClusterConfig::new(graph.n(), graph.m())
                .seed(seed)
                .polylog_exponent(polylog),
        )
        .machines();
        let (barrier_ms, imbalance) = instrument_registry(algo, graph, seed);
        let recovery_ratio = RECOVERY_ROWS
            .contains(&algo)
            .then(|| recovery_overhead(algo, graph, seed));
        cases.push(Case {
            workload: format!("{algo}(n={},m={})", graph.n(), graph.m()),
            machines,
            rounds: r_serial,
            serial_ms,
            spawn_ms,
            pool_ms,
            barrier_ms,
            imbalance,
            recovery_ratio,
        });
    }

    let mut t = Table::new(&[
        "workload",
        "machines",
        "rounds",
        "serial ms",
        "spawn/round ms",
        "pool ms",
        "pool speedup vs spawn",
        "pool barrier ms",
        "pool imbalance",
        "recovery overhead",
    ]);
    for c in &cases {
        t.row(&[
            c.workload.clone(),
            c.machines.to_string(),
            c.rounds.to_string(),
            format!("{:.2}", c.serial_ms),
            format!("{:.2}", c.spawn_ms),
            format!("{:.2}", c.pool_ms),
            format!("{:.2}x", c.speedup()),
            format!("{:.2}", c.barrier_ms),
            format!("{:.2}x", c.imbalance),
            c.recovery_ratio
                .map_or("-".into(), |r| format!("{:.1}%", r * 100.0)),
        ]);
    }
    t.print();
    println!(
        "\nbarrier/imbalance columns come from one extra *instrumented* pool run per\n\
         case (telemetry attached); the timed columns above always run sink-free.\n\
         recovery overhead is the share of *simulated* makespan spent on checkpoint\n\
         and recovery rounds under one seeded small-machine crash (exactness\n\
         asserted), from one extra faulted serial run on the representative rows."
    );

    let path = bench_json_path();
    let pool_threads = pool_threads_setting();
    guard_against_baseline(&path, quick, pool_threads, &cases);
    write_json(&path, quick, cores, pool_threads, &cases);
    println!("\n[hotpath: wrote {}]", path.display());
}

/// The `MPC_POOL_THREADS` pin in effect, 0 when unset (host-derived). The
/// registry-driven rows run their executors at this worker count, so the
/// regression guard only compares baselines recorded under the same pin —
/// CI enforces on its `MPC_POOL_THREADS=2` leg and the committed baseline
/// is generated the same way.
fn pool_threads_setting() -> usize {
    std::env::var("MPC_POOL_THREADS")
        .ok()
        .and_then(|v| v.trim().parse().ok())
        .unwrap_or(0)
}

/// Allowed relative growth of a row's pool-vs-serial ratio before the
/// guard fails the run: 25%.
const GUARD_TOLERANCE: f64 = 0.25;

/// Rows whose serial wall time (committed or fresh) is below this are
/// reported but not enforced — at sub-5ms scale the ratio is dominated by
/// scheduler jitter, not by the engine.
const GUARD_MIN_SERIAL_MS: f64 = 5.0;

/// One committed row of `BENCH_exec.json`.
struct Baseline {
    workload: String,
    machines: usize,
    serial_ms: f64,
    pool_ms: f64,
}

/// Extracts `"key": value` from one JSON line (the file is written
/// line-per-case by [`write_json`], so no full JSON parser is needed —
/// the vendored offline deps include none).
fn parse_field(line: &str, key: &str) -> Option<String> {
    let pat = format!("\"{key}\": ");
    let start = line.find(&pat)? + pat.len();
    let rest = &line[start..];
    if let Some(stripped) = rest.strip_prefix('"') {
        return Some(stripped[..stripped.find('"')?].to_string());
    }
    let end = rest.find([',', '}']).unwrap_or(rest.len());
    Some(rest[..end].trim().to_string())
}

/// Reads the committed `BENCH_exec.json`: `(mode, pool_threads, rows)`.
/// `pool_threads` defaults to 0 (host-derived) for baselines written
/// before the field existed.
fn read_baseline(path: &std::path::Path) -> Option<(String, usize, Vec<Baseline>)> {
    let body = std::fs::read_to_string(path).ok()?;
    let mut mode = String::new();
    let mut pool_threads = 0usize;
    let mut rows = Vec::new();
    for line in body.lines() {
        if line.trim_start().starts_with("\"mode\"") {
            mode = parse_field(line, "mode")?;
        }
        if line.trim_start().starts_with("\"pool_threads\"") {
            pool_threads = parse_field(line, "pool_threads")?.parse().ok()?;
        }
        if line.contains("\"workload\"") {
            rows.push(Baseline {
                workload: parse_field(line, "workload")?,
                machines: parse_field(line, "machines")?.parse().ok()?,
                serial_ms: parse_field(line, "serial_ms")?.parse().ok()?,
                pool_ms: parse_field(line, "pool_ms")?.parse().ok()?,
            });
        }
    }
    Some((mode, pool_threads, rows))
}

/// The CI perf gate: diffs the fresh cases against the **committed**
/// `BENCH_exec.json` row by row (matched on workload + machine count) and
/// fails the run if any row's pool-vs-serial ratio regressed by more than
/// [`GUARD_TOLERANCE`], printing the full delta table either way. Rows
/// without a committed twin (new workloads), rows under
/// [`GUARD_MIN_SERIAL_MS`] (jitter-dominated), and runs whose mode
/// (`quick` vs `full`) differs from the committed baseline are reported
/// but never enforced — CI commits the quick baseline, full sweeps run
/// locally.
fn guard_against_baseline(
    path: &std::path::Path,
    quick: bool,
    pool_threads: usize,
    cases: &[Case],
) {
    println!("\n### pool-vs-serial regression guard (vs committed BENCH_exec.json)\n");
    let Some((mode, base_threads, baseline)) = read_baseline(path) else {
        println!("no committed baseline at {} — skipping", path.display());
        return;
    };
    let current_mode = if quick { "quick" } else { "full" };
    if mode != current_mode {
        println!(
            "committed baseline is `{mode}` mode, this run is `{current_mode}` — \
             rows are not comparable, skipping enforcement"
        );
        return;
    }
    if base_threads != pool_threads {
        println!(
            "committed baseline was recorded with MPC_POOL_THREADS={base_threads}, \
             this run uses {pool_threads} — pool ratios are not comparable, \
             skipping enforcement"
        );
        return;
    }
    let mut t = Table::new(&[
        "workload",
        "machines",
        "committed pool/serial",
        "new pool/serial",
        "delta",
        "verdict",
    ]);
    let mut failures: Vec<String> = Vec::new();
    for c in cases {
        let Some(b) = baseline
            .iter()
            .find(|b| b.workload == c.workload && b.machines == c.machines)
        else {
            t.row(&[
                c.workload.clone(),
                c.machines.to_string(),
                "-".into(),
                format!("{:.3}", c.pool_ms / c.serial_ms.max(1e-9)),
                "-".into(),
                "new row".into(),
            ]);
            continue;
        };
        let old_ratio = b.pool_ms / b.serial_ms.max(1e-9);
        let new_ratio = c.pool_ms / c.serial_ms.max(1e-9);
        let delta = new_ratio / old_ratio.max(1e-9) - 1.0;
        let enforced = b.serial_ms >= GUARD_MIN_SERIAL_MS && c.serial_ms >= GUARD_MIN_SERIAL_MS;
        let ok = !enforced || delta <= GUARD_TOLERANCE;
        if !ok {
            failures.push(format!(
                "{} (machines {}): pool/serial {:.3} -> {:.3} (+{:.0}% > {:.0}%)",
                c.workload,
                c.machines,
                old_ratio,
                new_ratio,
                delta * 100.0,
                GUARD_TOLERANCE * 100.0
            ));
        }
        t.row(&[
            c.workload.clone(),
            c.machines.to_string(),
            format!("{old_ratio:.3}"),
            format!("{new_ratio:.3}"),
            format!("{:+.1}%", delta * 100.0),
            if !enforced {
                "too small to enforce"
            } else if ok {
                "ok"
            } else {
                "REGRESSED"
            }
            .to_string(),
        ]);
    }
    t.print();
    assert!(
        failures.is_empty(),
        "pool-vs-serial regressions beyond {:.0}%:\n  {}",
        GUARD_TOLERANCE * 100.0,
        failures.join("\n  ")
    );
}

/// `BENCH_exec.json` lives at the repo root so the perf trajectory is one
/// flat file per subsystem.
fn bench_json_path() -> std::path::PathBuf {
    std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_exec.json")
}

fn write_json(
    path: &std::path::Path,
    quick: bool,
    cores: usize,
    pool_threads: usize,
    cases: &[Case],
) {
    let mut body = String::new();
    body.push_str("{\n");
    body.push_str("  \"bench\": \"exec_hotpath\",\n");
    body.push_str(&format!(
        "  \"mode\": \"{}\",\n",
        if quick { "quick" } else { "full" }
    ));
    body.push_str(&format!("  \"host_cores\": {cores},\n"));
    body.push_str(&format!("  \"pool_threads\": {pool_threads},\n"));
    body.push_str("  \"cases\": [\n");
    for (i, c) in cases.iter().enumerate() {
        let recovery = c
            .recovery_ratio
            .map_or(String::new(), |r| format!(", \"recovery_ratio\": {r:.4}"));
        body.push_str(&format!(
            "    {{\"workload\": \"{}\", \"machines\": {}, \"rounds\": {}, \
             \"serial_ms\": {:.3}, \"spawn_per_round_ms\": {:.3}, \"pool_ms\": {:.3}, \
             \"pool_speedup_vs_spawn\": {:.3}, \"pool_barrier_ms\": {:.3}, \
             \"pool_imbalance\": {:.3}{}}}{}\n",
            c.workload,
            c.machines,
            c.rounds,
            c.serial_ms,
            c.spawn_ms,
            c.pool_ms,
            c.speedup(),
            c.barrier_ms,
            c.imbalance,
            recovery,
            if i + 1 == cases.len() { "" } else { "," },
        ));
    }
    body.push_str("  ]\n}\n");
    std::fs::write(path, body).expect("write BENCH_exec.json");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn baseline_parser_round_trips_write_json() {
        let dir = std::env::temp_dir().join("hotpath_guard_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("BENCH_exec.json");
        let cases = vec![
            Case {
                workload: "ripple(r=50,w=600)".into(),
                machines: 9,
                rounds: 49,
                serial_ms: 1.5,
                spawn_ms: 3.0,
                pool_ms: 2.0,
                barrier_ms: 0.4,
                imbalance: 1.2,
                recovery_ratio: None,
            },
            Case {
                workload: "mst(n=1200,m=7200)".into(),
                machines: 42,
                rounds: 11,
                serial_ms: 10.0,
                spawn_ms: 12.0,
                pool_ms: 9.0,
                barrier_ms: 1.1,
                imbalance: 2.0,
                recovery_ratio: Some(0.05),
            },
        ];
        write_json(&path, true, 8, 2, &cases);
        let (mode, pool_threads, rows) = read_baseline(&path).expect("parse what we wrote");
        assert_eq!(mode, "quick");
        assert_eq!(pool_threads, 2);
        assert_eq!(rows.len(), 2);
        // The workload value itself contains commas — the parser must not
        // split on them.
        assert_eq!(rows[0].workload, "ripple(r=50,w=600)");
        assert_eq!(rows[0].machines, 9);
        assert!((rows[0].serial_ms - 1.5).abs() < 1e-9);
        assert!((rows[1].pool_ms - 9.0).abs() < 1e-9);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn ripple_is_deterministic_across_modes() {
        let (_, s, rs) = time_ripple(ExecMode::Serial, 6, 12, 50);
        let (_, p, rp) = time_ripple(ExecMode::Parallel, 6, 12, 50);
        let (_, c, rc) = time_ripple(ExecMode::SpawnPerRound, 6, 12, 50);
        assert_eq!((s, rs), (p, rp));
        assert_eq!((s, rs), (c, rc));
        // 12 program steps: sends at rounds 0..=10, halt at 11 — the final
        // wind-down round needs no exchange.
        assert_eq!(rs, 11);
    }
}
