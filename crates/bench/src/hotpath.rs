//! The `hotpath` experiment: what the engine's per-round host overhead
//! costs, and what the persistent pool buys back.
//!
//! Two per-round costs dominate the engine's host wall-clock at high round
//! counts: (1) `ExecMode::SpawnPerRound` pays an OS thread spawn + join per
//! worker **every round**, and (2) its static chunking serializes every
//! machine that shares a chunk with the large machine — deliberately the
//! heaviest per-round workload in the paper's heterogeneous regime (the
//! straggler effect heterogeneous-cluster work treats as the dominant
//! cost). The pooled `ExecMode::Parallel` spawns once per run and claims
//! machines dynamically, so neither cost scales with the round count.
//!
//! The workload is a message ring ([`RippleProgram`]) with a skewed
//! per-machine compute profile (machine 0 does `K/4`× the work of a small
//! machine), swept over K ∈ {8, 64, 256} machines — plus one end-to-end
//! connectivity run on a larger graph for realism. Results are printed as
//! a markdown table and written machine-readably to `BENCH_exec.json` at
//! the repo root, starting the perf trajectory the ROADMAP asks for.
//!
//! All three schedules are asserted bit-identical (checksums and round
//! counts) before any result is reported.

use crate::Table;
use mpc_core::common;
use mpc_core::ported::connectivity::{sketch_friendly_config, ConnectivityConfig};
use mpc_exec::{ConnectivityProgram, ExecMode, Executor, MachineCtx, MachineProgram, StepOutcome};
use mpc_graph::generators;
use mpc_runtime::{Cluster, ClusterConfig, MachineId, Topology};
use std::time::Duration;

/// A ring program stressing the round loop: every machine forwards one
/// word to its successor each round and burns a deterministic amount of
/// local compute, skewed so machine 0 (the large machine) is the
/// straggler. No RNG, so any cross-schedule divergence shows up in the
/// checksum immediately.
pub struct RippleProgram {
    rounds: u64,
    work_iters: u64,
    /// Deterministic digest of everything this machine computed/received.
    pub checksum: u64,
}

impl RippleProgram {
    /// Burns `iters` multiply-rotate steps; returns the mixed accumulator.
    fn busywork(seed: u64, iters: u64) -> u64 {
        let mut acc = seed | 1;
        for i in 0..iters {
            acc = acc.wrapping_mul(0x9E37_79B9_7F4A_7C15).rotate_left(17) ^ i;
        }
        acc
    }
}

impl MachineProgram for RippleProgram {
    type Message = u64;

    fn step(&mut self, ctx: &MachineCtx<'_>, inbox: Vec<(MachineId, u64)>) -> StepOutcome<u64> {
        for (_, m) in &inbox {
            self.checksum ^= m;
        }
        let acc = Self::busywork(self.checksum, self.work_iters);
        self.checksum ^= acc;
        // Report the compute to the cost model so simulated makespans see
        // the same skew the host does.
        ctx.charge(self.work_iters);
        if ctx.round + 1 >= self.rounds {
            return StepOutcome::Halt;
        }
        StepOutcome::Send(vec![((ctx.mid + 1) % ctx.machines, acc)])
    }
}

/// A cluster with `k` small machines plus one large machine (id 0).
pub fn ripple_cluster(k: usize) -> Cluster {
    Cluster::new(ClusterConfig::new(1024, 4096).topology(Topology::Custom {
        capacities: vec![4096; k + 1],
        large: Some(0),
    }))
}

/// One [`RippleProgram`] per machine: small machines do `small_work`
/// iterations per round, the large machine `small_work · k/4` (the
/// straggler skew).
pub fn ripple_programs(cluster: &Cluster, rounds: u64, small_work: u64) -> Vec<RippleProgram> {
    let k = cluster.machines();
    let skew = (k as u64 / 4).max(2);
    (0..k)
        .map(|mid| RippleProgram {
            rounds,
            work_iters: if Some(mid) == cluster.large() {
                small_work * skew
            } else {
                small_work
            },
            checksum: mid as u64,
        })
        .collect()
}

/// Worker threads for both parallel schedules: pinned (rather than
/// host-derived) so the comparison measures the *schedulers* — the same
/// worker count either spawned per round or parked on the pool's barrier —
/// independent of the benchmarking host's core count.
const WORKERS: usize = 8;

/// One timed ripple run; returns (wall, checksum, rounds).
fn time_ripple(mode: ExecMode, k: usize, rounds: u64, small_work: u64) -> (Duration, u64, u64) {
    let mut cluster = ripple_cluster(k);
    let programs = ripple_programs(&cluster, rounds, small_work);
    let out = Executor::new("ripple", mode)
        .threads(WORKERS)
        .run(&mut cluster, programs)
        .expect("ripple run");
    let checksum = out
        .programs
        .iter()
        .fold(0u64, |acc, p| acc ^ p.checksum.rotate_left(11));
    (out.wall, checksum, out.rounds)
}

/// One timed connectivity run on `g`; returns (wall, component count,
/// rounds). Wall time covers program construction + run + extraction —
/// the same basis as [`time_registry`], so the end-to-end rows of the
/// table are comparable (the ripple rows measure `out.wall`, the bare
/// round loop, and are only compared among themselves).
fn time_connectivity(mode: ExecMode, g: &mpc_graph::Graph, seed: u64) -> (Duration, u64, u64) {
    let mut cluster = Cluster::new(sketch_friendly_config(g.n(), g.m(), seed));
    let edges = common::distribute_edges(&cluster, g);
    let started = std::time::Instant::now();
    let programs = ConnectivityProgram::for_cluster(
        &cluster,
        g.n(),
        &edges,
        &ConnectivityConfig::for_n(g.n()),
    );
    let out = Executor::new("conn", mode)
        .threads(WORKERS)
        .run(&mut cluster, programs)
        .expect("connectivity run");
    let large = cluster.large().expect("heterogeneous topology");
    let comps = out.programs[large].result.as_ref().expect("components");
    (started.elapsed(), comps.count as u64, out.rounds)
}

/// One timed registry run (MST / matching end-to-end programs); returns
/// (wall, digest, rounds). Routed through `registry::run` like every other
/// consumer of the ported algorithms.
fn time_registry(
    name: &str,
    mode: ExecMode,
    g: &mpc_graph::Graph,
    seed: u64,
) -> (Duration, u64, u64) {
    let mut cluster = Cluster::new(ClusterConfig::new(g.n(), g.m()).seed(seed));
    let edges = common::distribute_edges(&cluster, g);
    let started = std::time::Instant::now();
    let out = mpc_exec::registry::run(
        name,
        &mut cluster,
        &mpc_exec::AlgoInput::new(g.n(), &edges),
        mode,
    )
    .expect("registry run");
    let wall = started.elapsed();
    (wall, out.digest() as u64, cluster.rounds())
}

/// Best-of-`reps` wall time for `run`, asserting the digest never moves.
fn best_of<F: FnMut() -> (Duration, u64, u64)>(reps: usize, mut run: F) -> (f64, u64, u64) {
    let (mut best, digest, rounds) = run();
    for _ in 1..reps {
        let (wall, d, r) = run();
        assert_eq!((d, r), (digest, rounds), "nondeterministic timing run");
        best = best.min(wall);
    }
    (best.as_secs_f64() * 1e3, digest, rounds)
}

struct Case {
    workload: String,
    machines: usize,
    rounds: u64,
    serial_ms: f64,
    spawn_ms: f64,
    pool_ms: f64,
}

impl Case {
    fn speedup(&self) -> f64 {
        self.spawn_ms / self.pool_ms.max(1e-9)
    }
}

/// Runs the experiment; `quick` shrinks the sweep for CI smoke runs.
pub fn run(quick: bool) {
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    println!("\n## hotpath — per-round engine overhead: spawn-per-round vs persistent pool\n");
    println!(
        "host cores: {cores}; both parallel schedules run {WORKERS} workers (pinned, so\n\
         the comparison measures the schedulers, not the host); wall times are\n\
         best-of-N host milliseconds; all three schedules are asserted\n\
         bit-identical before results are reported.\n"
    );

    let (ks, rounds, small_work, reps): (&[usize], u64, u64, usize) = if quick {
        (&[8, 64], 50, 600, 1)
    } else {
        (&[8, 64, 256], 250, 1500, 3)
    };

    let mut cases: Vec<Case> = Vec::new();
    for &k in ks {
        // `best_of` asserts within-mode stability; the digests it returns
        // gate all three schedules against each other before the case is
        // recorded.
        let (serial_ms, d_serial, r_serial) = best_of(reps, || {
            time_ripple(ExecMode::Serial, k, rounds, small_work)
        });
        let (spawn_ms, d_spawn, r_spawn) = best_of(reps, || {
            time_ripple(ExecMode::SpawnPerRound, k, rounds, small_work)
        });
        let (pool_ms, d_pool, r_pool) = best_of(reps, || {
            time_ripple(ExecMode::Parallel, k, rounds, small_work)
        });
        assert_eq!(
            (d_serial, r_serial),
            (d_spawn, r_spawn),
            "K={k}: spawn-per-round diverged from serial"
        );
        assert_eq!(
            (d_serial, r_serial),
            (d_pool, r_pool),
            "K={k}: pool diverged from serial"
        );
        cases.push(Case {
            workload: format!("ripple(r={rounds},w={small_work})"),
            machines: k + 1,
            rounds: r_serial,
            serial_ms,
            spawn_ms,
            pool_ms,
        });
    }

    // One end-to-end program on a larger graph: few rounds, heavy steps —
    // the regime where spawn overhead matters least (reported for honesty).
    let (n, density, seed) = if quick { (1200, 6, 7) } else { (4000, 6, 7) };
    let g = generators::gnm(n, n * density, seed);
    let (serial_ms, d_serial, r_serial) =
        best_of(reps, || time_connectivity(ExecMode::Serial, &g, seed));
    let (spawn_ms, d_spawn, r_spawn) = best_of(reps, || {
        time_connectivity(ExecMode::SpawnPerRound, &g, seed)
    });
    let (pool_ms, d_pool, r_pool) =
        best_of(reps, || time_connectivity(ExecMode::Parallel, &g, seed));
    assert_eq!(
        (d_serial, r_serial),
        (d_spawn, r_spawn),
        "connectivity: spawn-per-round diverged from serial"
    );
    assert_eq!(
        (d_serial, r_serial),
        (d_pool, r_pool),
        "connectivity: pool diverged from serial"
    );
    let conn_machines = Cluster::new(sketch_friendly_config(g.n(), g.m(), seed)).machines();
    cases.push(Case {
        workload: format!("connectivity(n={n},m={})", g.m()),
        machines: conn_machines,
        rounds: r_serial,
        serial_ms,
        spawn_ms,
        pool_ms,
    });

    // The newly ported end-to-end programs, through the Algorithm registry:
    // the full MST pipeline (contraction waves + KKT) and the three-phase
    // matching — many short rounds, the regime the pool is built for.
    let g_mst = g.clone().with_random_weights(1 << 20, seed);
    for (algo, graph) in [("mst", &g_mst), ("matching", &g)] {
        let (serial_ms, d_serial, r_serial) =
            best_of(reps, || time_registry(algo, ExecMode::Serial, graph, seed));
        let (spawn_ms, d_spawn, r_spawn) = best_of(reps, || {
            time_registry(algo, ExecMode::SpawnPerRound, graph, seed)
        });
        let (pool_ms, d_pool, r_pool) = best_of(reps, || {
            time_registry(algo, ExecMode::Parallel, graph, seed)
        });
        assert_eq!(
            (d_serial, r_serial),
            (d_spawn, r_spawn),
            "{algo}: spawn-per-round diverged from serial"
        );
        assert_eq!(
            (d_serial, r_serial),
            (d_pool, r_pool),
            "{algo}: pool diverged from serial"
        );
        let machines = Cluster::new(ClusterConfig::new(graph.n(), graph.m()).seed(seed)).machines();
        cases.push(Case {
            workload: format!("{algo}(n={n},m={})", graph.m()),
            machines,
            rounds: r_serial,
            serial_ms,
            spawn_ms,
            pool_ms,
        });
    }

    let mut t = Table::new(&[
        "workload",
        "machines",
        "rounds",
        "serial ms",
        "spawn/round ms",
        "pool ms",
        "pool speedup vs spawn",
    ]);
    for c in &cases {
        t.row(&[
            c.workload.clone(),
            c.machines.to_string(),
            c.rounds.to_string(),
            format!("{:.2}", c.serial_ms),
            format!("{:.2}", c.spawn_ms),
            format!("{:.2}", c.pool_ms),
            format!("{:.2}x", c.speedup()),
        ]);
    }
    t.print();

    let path = bench_json_path();
    write_json(&path, quick, cores, &cases);
    println!("\n[hotpath: wrote {}]", path.display());
}

/// `BENCH_exec.json` lives at the repo root so the perf trajectory is one
/// flat file per subsystem.
fn bench_json_path() -> std::path::PathBuf {
    std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_exec.json")
}

fn write_json(path: &std::path::Path, quick: bool, cores: usize, cases: &[Case]) {
    let mut body = String::new();
    body.push_str("{\n");
    body.push_str("  \"bench\": \"exec_hotpath\",\n");
    body.push_str(&format!(
        "  \"mode\": \"{}\",\n",
        if quick { "quick" } else { "full" }
    ));
    body.push_str(&format!("  \"host_cores\": {cores},\n"));
    body.push_str("  \"cases\": [\n");
    for (i, c) in cases.iter().enumerate() {
        body.push_str(&format!(
            "    {{\"workload\": \"{}\", \"machines\": {}, \"rounds\": {}, \
             \"serial_ms\": {:.3}, \"spawn_per_round_ms\": {:.3}, \"pool_ms\": {:.3}, \
             \"pool_speedup_vs_spawn\": {:.3}}}{}\n",
            c.workload,
            c.machines,
            c.rounds,
            c.serial_ms,
            c.spawn_ms,
            c.pool_ms,
            c.speedup(),
            if i + 1 == cases.len() { "" } else { "," },
        ));
    }
    body.push_str("  ]\n}\n");
    std::fs::write(path, body).expect("write BENCH_exec.json");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ripple_is_deterministic_across_modes() {
        let (_, s, rs) = time_ripple(ExecMode::Serial, 6, 12, 50);
        let (_, p, rp) = time_ripple(ExecMode::Parallel, 6, 12, 50);
        let (_, c, rc) = time_ripple(ExecMode::SpawnPerRound, 6, 12, 50);
        assert_eq!((s, rs), (p, rp));
        assert_eq!((s, rs), (c, rc));
        // 12 program steps: sends at rounds 0..=10, halt at 11 — the final
        // wind-down round needs no exchange.
        assert_eq!(rs, 11);
    }
}
