//! Criterion timing benches, one group per paper artifact.
//!
//! Round counts (the paper's metric) come from the `experiments` binary;
//! these benches measure the *simulator wall-clock* of the same runs, which
//! is what a developer iterating on the algorithms cares about.

use criterion::{criterion_group, criterion_main, Criterion};
use mpc_baselines::sublinear::{distribute_all, sublinear_config, sublinear_mst};
use mpc_core::ported::connectivity::{sketch_friendly_config, ConnectivityConfig};
use mpc_core::spanner::baswana_sen;
use mpc_core::{common, matching, mst, ported, spanner};
use mpc_graph::generators;
use mpc_runtime::{Cluster, ClusterConfig};
use std::hint::black_box;

/// Table 1 rows: heterogeneous algorithms on a shared small workload.
fn bench_table1(c: &mut Criterion) {
    let mut group = c.benchmark_group("table1");
    group.sample_size(10);

    let g = generators::gnm(256, 4096, 1).with_random_weights(1 << 16, 1);
    group.bench_function("het_mst_n256_m4096", |b| {
        b.iter(|| {
            let mut cluster = Cluster::new(ClusterConfig::new(g.n(), g.m()).seed(1));
            let input = common::distribute_edges(&cluster, &g);
            black_box(mst::heterogeneous_mst(&mut cluster, g.n(), input).unwrap());
        })
    });

    let gu = generators::gnm(256, 4096, 1);
    group.bench_function("het_spanner_k3_n256", |b| {
        b.iter(|| {
            let mut cluster = Cluster::new(
                ClusterConfig::new(gu.n(), gu.m())
                    .seed(1)
                    .polylog_exponent(1.6),
            );
            let input = common::distribute_edges(&cluster, &gu);
            black_box(spanner::heterogeneous_spanner(&mut cluster, gu.n(), &input, 3).unwrap());
        })
    });

    group.bench_function("het_matching_n256", |b| {
        b.iter(|| {
            let mut cluster = Cluster::new(ClusterConfig::new(gu.n(), gu.m()).seed(1));
            let input = common::distribute_edges(&cluster, &gu);
            black_box(matching::heterogeneous_matching(&mut cluster, gu.n(), &input).unwrap());
        })
    });

    let gc = generators::gnm(128, 384, 1);
    group.bench_function("het_connectivity_n128", |b| {
        b.iter(|| {
            let mut cluster = Cluster::new(sketch_friendly_config(gc.n(), gc.m(), 1));
            let input = common::distribute_edges(&cluster, &gc);
            black_box(
                ported::heterogeneous_connectivity(
                    &mut cluster,
                    gc.n(),
                    &input,
                    &ConnectivityConfig::for_n(gc.n()),
                )
                .unwrap(),
            );
        })
    });
    group.finish();
}

/// E2: the MST comparison that Table 1's MST row summarizes.
fn bench_mst_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig_mst_scaling");
    group.sample_size(10);
    for &density in &[8usize, 64] {
        let g = generators::gnm(512, 512 * density, 2).with_random_weights(1 << 18, 2);
        group.bench_function(format!("het_mst_density_{density}"), |b| {
            b.iter(|| {
                let mut cluster = Cluster::new(ClusterConfig::new(g.n(), g.m()).seed(2));
                let input = common::distribute_edges(&cluster, &g);
                black_box(mst::heterogeneous_mst(&mut cluster, g.n(), input).unwrap());
            })
        });
    }
    let g = generators::gnm(512, 512 * 8, 2).with_random_weights(1 << 18, 2);
    group.bench_function("sublinear_mst_density_8", |b| {
        b.iter(|| {
            let mut cluster = Cluster::new(sublinear_config(g.n(), g.m(), 2));
            let input = distribute_all(&cluster, &g);
            black_box(sublinear_mst(&mut cluster, g.n(), &input).unwrap());
        })
    });
    group.finish();
}

/// Figure 1 / Lemma 4.3: original vs modified Baswana–Sen (sequential).
fn bench_figure1(c: &mut Criterion) {
    let mut group = c.benchmark_group("figure1_baswana_sen");
    group.sample_size(20);
    let g = generators::gnm(400, 6000, 3);
    group.bench_function("original_k4", |b| {
        b.iter(|| black_box(baswana_sen::baswana_sen(&g, 4, 7)))
    });
    group.bench_function("modified_k4_p02", |b| {
        b.iter(|| black_box(baswana_sen::modified_baswana_sen(&g, 4, 0.2, 7)))
    });
    group.finish();
}

criterion_group!(benches, bench_table1, bench_mst_scaling, bench_figure1);
criterion_main!(benches);
