//! Criterion timings for the engine's round hot path: per-round thread
//! spawning vs the persistent pool, on the same skewed ring workload the
//! `hotpath` experiment sweeps (see `src/hotpath.rs` and `BENCH_exec.json`
//! for the full K sweep).

use criterion::{criterion_group, criterion_main, Criterion};
use mpc_bench::hotpath::{ripple_cluster, ripple_programs};
use mpc_exec::{ExecMode, Executor};
use std::hint::black_box;

fn bench_exec_modes(c: &mut Criterion) {
    let mut group = c.benchmark_group("exec_hotpath");
    group.sample_size(10);
    for (name, mode) in [
        ("ripple_k64_serial", ExecMode::Serial),
        ("ripple_k64_spawn_per_round", ExecMode::SpawnPerRound),
        ("ripple_k64_pool", ExecMode::Parallel),
    ] {
        group.bench_function(name, |b| {
            b.iter(|| {
                let mut cluster = ripple_cluster(64);
                let programs = ripple_programs(&cluster, 40, 800);
                black_box(
                    Executor::new("ripple", mode)
                        .run(&mut cluster, programs)
                        .unwrap(),
                );
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_exec_modes);
criterion_main!(benches);
