//! Criterion benches for the substrate kernels the algorithms lean on:
//! the distributed sort (Claim 1), the max-edge labeling (the F-light
//! filter of §3), and the AGM sketch machinery (Appendix C.1).

use criterion::{criterion_group, criterion_main, Criterion};
use mpc_graph::generators;
use mpc_labeling::MaxEdgeLabeling;
use mpc_runtime::{Cluster, ClusterConfig, ShardedVec, Topology};
use mpc_sketch::SketchFamily;
use std::hint::black_box;

fn bench_sort(c: &mut Criterion) {
    let mut group = c.benchmark_group("kernel_sample_sort");
    group.sample_size(20);
    group.bench_function("sort_10k_items_64_machines", |b| {
        b.iter(|| {
            let cfg = ClusterConfig::new(1024, 10_000).topology(Topology::Custom {
                capacities: vec![20_000; 65],
                large: Some(0),
            });
            let mut cluster = Cluster::new(cfg);
            let parts = cluster.small_ids();
            let items: Vec<u64> = (0..10_000u64).map(|i| i.wrapping_mul(0x9E3779B9)).collect();
            let sv = ShardedVec::scatter(&cluster, items, &parts);
            black_box(
                mpc_runtime::primitives::sample_sort(&mut cluster, "b", sv, &parts, |&x| x)
                    .unwrap(),
            );
        })
    });
    group.finish();
}

fn bench_labeling(c: &mut Criterion) {
    let mut group = c.benchmark_group("kernel_labeling");
    group.sample_size(20);
    let forest = generators::random_tree(4096, 5).with_random_weights(1 << 20, 5);
    group.bench_function("build_n4096", |b| {
        b.iter(|| black_box(MaxEdgeLabeling::build(&forest).unwrap()))
    });
    let labeling = MaxEdgeLabeling::build(&forest).unwrap();
    let labels = labeling.labels();
    group.bench_function("decode_1k_queries", |b| {
        b.iter(|| {
            let mut acc = 0u64;
            for i in 0..1000u32 {
                let u = (i * 7919) % 4096;
                let v = (i * 104729 + 13) % 4096;
                if let Some(k) = MaxEdgeLabeling::decode(&labels[u as usize], &labels[v as usize]) {
                    acc ^= k.w;
                }
            }
            black_box(acc)
        })
    });
    group.finish();
}

fn bench_sketch(c: &mut Criterion) {
    let mut group = c.benchmark_group("kernel_sketch");
    group.sample_size(20);
    let fam = SketchFamily::new(1024, 1, 9);
    group.bench_function("add_1k_edges", |b| {
        b.iter(|| {
            let mut s = fam.empty(0);
            for v in 1..1000u32 {
                fam.add_edge(&mut s, 0, v);
            }
            black_box(s)
        })
    });
    let mut merged = fam.empty(0);
    for v in 1..200u32 {
        fam.add_edge(&mut merged, 0, v);
    }
    group.bench_function("decode", |b| b.iter(|| black_box(fam.decode(&merged))));
    group.finish();
}

fn bench_reference(c: &mut Criterion) {
    let mut group = c.benchmark_group("kernel_reference");
    group.sample_size(20);
    let g = generators::gnm(2048, 32_768, 11).with_random_weights(1 << 20, 11);
    group.bench_function("kruskal_n2048_m32768", |b| {
        b.iter(|| black_box(mpc_graph::mst::kruskal(&g)))
    });
    group.finish();
}

fn bench_exec_engine(c: &mut Criterion) {
    use mpc_core::ported::connectivity::{sketch_friendly_config, ConnectivityConfig};
    use mpc_exec::{adapters, ExecMode};

    let mut group = c.benchmark_group("exec_engine");
    group.sample_size(10);
    let g = generators::gnm(256, 2048, 7);
    for (name, mode) in [
        ("serial", ExecMode::Serial),
        ("parallel", ExecMode::Parallel),
    ] {
        group.bench_function(format!("connectivity_n256_{name}"), |b| {
            b.iter(|| {
                let mut cluster = Cluster::new(sketch_friendly_config(g.n(), g.m(), 7));
                let input = mpc_core::common::distribute_edges(&cluster, &g);
                black_box(
                    adapters::heterogeneous_connectivity(
                        &mut cluster,
                        g.n(),
                        &input,
                        &ConnectivityConfig::for_n(g.n()),
                        mode,
                    )
                    .unwrap(),
                )
            })
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_sort,
    bench_labeling,
    bench_sketch,
    bench_reference,
    bench_exec_engine
);
criterion_main!(benches);
