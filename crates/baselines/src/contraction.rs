//! Distributed Borůvka contraction for the sublinear regime: hooking along
//! minimum outgoing edges + pointer jumping, with **no** large machine.
//!
//! Every component label lives on its hash-owner machine; each phase
//! 1. looks up endpoint labels and drops internal edges,
//! 2. aggregates the minimum outgoing edge per component,
//! 3. hooks each component to its neighbor across that edge (2-cycles are
//!    broken toward the smaller label, the classic trick),
//! 4. pointer-jumps the hooking forest to depth 1,
//! 5. relabels every vertex.
//!
//! Components at least halve per phase (each one hooks), so there are
//! `O(log n)` phases; pointer jumping adds `O(log n)` lookups inside a
//! phase in the worst case. This is the round growth the paper's
//! heterogeneous MST removes — exactly the comparison Table 1 makes.

use mpc_graph::{Edge, VertexId, WeightKey};
use mpc_runtime::primitives::{aggregate_by_key, lookup, owner_of, sum_to};
use mpc_runtime::{Cluster, ModelViolation, ShardedVec};

/// Outcome of a full contraction run.
#[derive(Debug)]
pub struct ContractionResult {
    /// Final `(vertex, component-label)` pairs at the labels' hash-owners.
    pub labels: ShardedVec<(VertexId, VertexId)>,
    /// Hooking edges — the minimum spanning forest, sharded.
    pub forest: ShardedVec<Edge>,
    /// Borůvka phases executed.
    pub phases: usize,
    /// Pointer-jumping lookups across all phases.
    pub jump_rounds: usize,
}

impl ContractionResult {
    /// Flattens the per-vertex labels into a dense vector (test helper;
    /// labels are canonicalized to the component's minimum vertex id by
    /// construction of min-hooking — they are *a* canonical id either way).
    pub fn label_vec(&self, n: usize) -> Vec<VertexId> {
        let mut out: Vec<VertexId> = (0..n as VertexId).collect();
        for (_mid, (v, l)) in self.labels.iter() {
            out[*v as usize] = *l;
        }
        out
    }
}

/// Runs Borůvka contraction to completion. See the module docs.
///
/// # Errors
///
/// Propagates capacity violations in strict mode.
pub fn boruvka_contraction(
    cluster: &mut Cluster,
    n: usize,
    edges: &ShardedVec<Edge>,
) -> Result<ContractionResult, ModelViolation> {
    let owners: Vec<usize> = {
        // In a sublinear cluster every machine is an owner; in mixed
        // clusters we exclude the large machine for fairness.
        match cluster.large() {
            Some(l) => (0..cluster.machines()).filter(|&m| m != l).collect(),
            None => (0..cluster.machines()).collect(),
        }
    };
    let participants: Vec<usize> = (0..cluster.machines()).collect();
    let coordinator = owners[0];
    let _ = n;

    // Initial labels: every endpoint labels itself (aggregation dedups).
    let mut label_items: ShardedVec<(VertexId, VertexId)> = ShardedVec::new(cluster);
    for mid in 0..edges.machines() {
        let shard = label_items.shard_mut(mid);
        for e in edges.shard(mid) {
            shard.push((e.u, e.u));
            shard.push((e.v, e.v));
        }
    }
    let mut labels = aggregate_by_key(cluster, "boruvka.init", &label_items, &owners, |a, _b| *a)?;

    let mut live: ShardedVec<Edge> = ShardedVec::from_shards(
        (0..edges.machines())
            .map(|mid| edges.shard(mid).to_vec())
            .collect(),
    );
    let mut forest: ShardedVec<Edge> = ShardedVec::new(cluster);
    let mut phases = 0usize;
    let mut jump_rounds = 0usize;
    let max_phases = 2 * ((edges.total_len().max(2) as f64).log2().ceil() as usize) + 4;

    loop {
        // 1. Endpoint labels; drop internal edges.
        let requests = endpoint_requests(cluster, &live);
        let got = lookup(cluster, "boruvka.labels", &labels, &requests, &owners)?;
        let mut outgoing = 0u64;
        let mut tagged: ShardedVec<(VertexId, (WeightKey, Edge, VertexId, VertexId))> =
            ShardedVec::new(cluster);
        for mid in 0..live.machines() {
            let lab: std::collections::HashMap<VertexId, VertexId> =
                got.shard(mid).iter().copied().collect();
            live.shard_mut(mid).retain(|e| lab[&e.u] != lab[&e.v]);
            let shard = tagged.shard_mut(mid);
            for e in live.shard(mid) {
                let (lu, lv) = (lab[&e.u], lab[&e.v]);
                outgoing += 1;
                shard.push((lu, (e.weight_key(), *e, lu, lv)));
                shard.push((lv, (e.weight_key(), *e, lu, lv)));
            }
        }
        let total = sum_to(
            cluster,
            "boruvka.outgoing",
            &participants,
            (0..cluster.machines())
                .map(|mid| tagged.shard(mid).len() as u64 / 2)
                .collect(),
            coordinator,
        )?;
        let _ = outgoing;
        if total == 0 || phases >= max_phases {
            break;
        }
        phases += 1;

        // 2. Minimum outgoing edge per component.
        let minima = aggregate_by_key(cluster, "boruvka.min", &tagged, &owners, |a, b| {
            if a.0 <= b.0 {
                *a
            } else {
                *b
            }
        })?;

        // 3. Hooking: parent[a] = the label across a's min edge; 2-cycles
        // resolve toward the smaller label, which also claims the edge.
        let mut parent: ShardedVec<(VertexId, VertexId)> = ShardedVec::new(cluster);
        let mut proposed: Vec<(VertexId, VertexId, Edge)> = Vec::new(); // (a, b, e)
        for mid in 0..minima.machines() {
            for (a, (_wk, e, lu, lv)) in minima.shard(mid) {
                let b = if a == lu { *lv } else { *lu };
                proposed.push((*a, b, *e));
            }
        }
        // Resolve 2-cycles: a↔b both hooking along the same min edge keeps
        // the smaller as root. Each owner can do this locally *if* it knows
        // b's proposal — one lookup of the proposal map.
        let proposal_store: ShardedVec<(VertexId, VertexId)> = {
            let mut sv: ShardedVec<(VertexId, VertexId)> = ShardedVec::new(cluster);
            for &(a, b, _) in &proposed {
                sv.shard_mut(owner_of(&a, &owners)).push((a, b));
            }
            for mid in 0..sv.machines() {
                sv.shard_mut(mid).sort_unstable();
                sv.shard_mut(mid).dedup();
            }
            sv
        };
        let mut prop_requests: ShardedVec<VertexId> = ShardedVec::new(cluster);
        for &(a, b, _) in &proposed {
            prop_requests.shard_mut(owner_of(&a, &owners)).push(b);
        }
        let partner = lookup(
            cluster,
            "boruvka.partner",
            &proposal_store,
            &prop_requests,
            &owners,
        )?;
        let mut partner_of: std::collections::HashMap<VertexId, VertexId> =
            std::collections::HashMap::new();
        for mid in 0..partner.machines() {
            partner_of.extend(partner.shard(mid).iter().copied());
        }
        for &(a, b, e) in &proposed {
            let two_cycle = partner_of.get(&b) == Some(&a);
            let owner_a = owner_of(&a, &owners);
            if two_cycle && a < b {
                parent.shard_mut(owner_a).push((a, a)); // a becomes the root
                forest.shard_mut(owner_a).push(e); // and claims the edge once
            } else {
                parent.shard_mut(owner_a).push((a, b));
                if !two_cycle {
                    forest.shard_mut(owner_a).push(e);
                }
            }
        }
        for mid in 0..parent.machines() {
            parent.shard_mut(mid).sort_unstable();
            parent.shard_mut(mid).dedup_by_key(|p| p.0);
        }

        // 4. Pointer jumping to depth 1.
        loop {
            jump_rounds += 1;
            let mut req: ShardedVec<VertexId> = ShardedVec::new(cluster);
            for mid in 0..parent.machines() {
                for (_, p) in parent.shard(mid) {
                    req.shard_mut(mid).push(*p);
                }
            }
            let grand = lookup(cluster, "boruvka.jump", &parent, &req, &owners)?;
            let mut changed_per_machine = vec![0u64; cluster.machines()];
            for mid in 0..parent.machines() {
                let gp: std::collections::HashMap<VertexId, VertexId> =
                    grand.shard(mid).iter().copied().collect();
                for (_, p) in parent.shard_mut(mid).iter_mut() {
                    if let Some(&g) = gp.get(p) {
                        if g != *p {
                            *p = g;
                            changed_per_machine[mid] += 1;
                        }
                    }
                }
            }
            let total_changed = sum_to(
                cluster,
                "boruvka.jump-check",
                &participants,
                changed_per_machine,
                coordinator,
            )?;
            if total_changed == 0 {
                break;
            }
        }

        // 5. Relabel every vertex: label(v) = parent(label(v)).
        let mut req: ShardedVec<VertexId> = ShardedVec::new(cluster);
        for mid in 0..labels.machines() {
            for (_, l) in labels.shard(mid) {
                req.shard_mut(mid).push(*l);
            }
        }
        let new_of = lookup(cluster, "boruvka.relabel", &parent, &req, &owners)?;
        for mid in 0..labels.machines() {
            let map: std::collections::HashMap<VertexId, VertexId> =
                new_of.shard(mid).iter().copied().collect();
            for (_, l) in labels.shard_mut(mid).iter_mut() {
                if let Some(&nl) = map.get(l) {
                    *l = nl;
                }
            }
        }
    }
    Ok(ContractionResult {
        labels,
        forest,
        phases,
        jump_rounds,
    })
}

fn endpoint_requests(cluster: &Cluster, edges: &ShardedVec<Edge>) -> ShardedVec<VertexId> {
    let mut req: ShardedVec<VertexId> = ShardedVec::new(cluster);
    for mid in 0..edges.machines() {
        let shard = req.shard_mut(mid);
        for e in edges.shard(mid) {
            shard.push(e.u);
            shard.push(e.v);
        }
        shard.sort_unstable();
        shard.dedup();
    }
    req
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpc_graph::distribution::{shard_edges, Layout};
    use mpc_graph::{generators, mst::kruskal, traversal::connected_components};
    use mpc_runtime::{ClusterConfig, Topology};

    fn sub_cluster(n: usize, m: usize, seed: u64) -> Cluster {
        Cluster::new(
            ClusterConfig::new(n, m)
                .topology(Topology::Sublinear { gamma: 0.66 })
                .seed(seed),
        )
    }

    fn distribute(cluster: &Cluster, g: &mpc_graph::Graph) -> ShardedVec<Edge> {
        let machines: Vec<usize> = (0..cluster.machines()).collect();
        let shards = shard_edges(g.edges(), machines.len(), Layout::RoundRobin);
        let mut sv = ShardedVec::new(cluster);
        for (i, s) in shards.into_iter().enumerate() {
            *sv.shard_mut(machines[i]) = s;
        }
        sv
    }

    #[test]
    fn forest_is_a_minimum_spanning_forest() {
        for seed in 0..3 {
            let g = generators::gnm(80, 400, seed).with_random_weights(1 << 20, seed);
            let mut cluster = sub_cluster(g.n(), g.m(), seed);
            let input = distribute(&cluster, &g);
            let r = boruvka_contraction(&mut cluster, g.n(), &input).unwrap();
            let edges: Vec<Edge> = r.forest.iter().map(|(_, e)| *e).collect();
            let forest = mpc_graph::mst::Forest::from_edges(edges);
            assert!(
                mpc_graph::is_spanning_forest(&g, &forest.edges),
                "seed {seed}: not a spanning forest"
            );
            assert_eq!(
                forest.total_weight,
                kruskal(&g).total_weight,
                "seed {seed}: not minimum"
            );
        }
    }

    #[test]
    fn labels_match_components() {
        let g = generators::random_forest(60, 4, 2);
        let mut cluster = sub_cluster(g.n(), g.m(), 2);
        let input = distribute(&cluster, &g);
        let r = boruvka_contraction(&mut cluster, g.n(), &input).unwrap();
        let labels = r.label_vec(g.n());
        let want = connected_components(&g);
        for u in 0..g.n() {
            for v in 0..g.n() {
                assert_eq!(
                    labels[u] == labels[v],
                    want.same(u as VertexId, v as VertexId),
                    "vertices {u},{v}"
                );
            }
        }
    }

    #[test]
    fn phase_count_grows_with_n() {
        let mut counts = Vec::new();
        for exp in [6usize, 8, 10] {
            let n = 1 << exp;
            let g = generators::cycle(n, 3).with_random_weights(1 << 16, 3);
            let mut cluster = sub_cluster(g.n(), g.m(), 3);
            let input = distribute(&cluster, &g);
            let r = boruvka_contraction(&mut cluster, g.n(), &input).unwrap();
            counts.push((r.phases, cluster.rounds()));
        }
        // Rounds must grow: this is the sublinear-regime cost the paper's
        // heterogeneous MST avoids.
        assert!(
            counts[2].1 > counts[0].1,
            "rounds should grow with n on cycles: {counts:?}"
        );
    }
}
