//! Baseline MPC algorithms for the Table-1 comparison.
//!
//! The paper contrasts its heterogeneous algorithms against the *sublinear*
//! regime (no large machine, `K = m/n^γ` machines of `Õ(n^γ)` words) and
//! the *near-linear* regime (`Õ(n)` words per machine). This crate provides
//! both columns:
//!
//! * [`contraction`] — the distributed Borůvka engine (hooking + pointer
//!   jumping) underlying the sublinear MST and connectivity baselines;
//!   round counts grow with `log n`, the growth the heterogeneous
//!   algorithms eliminate;
//! * [`sublinear`] — MST, connectivity, 1-vs-2-cycle detection, maximal
//!   matching (peeling), Luby MIS, and randomized (Δ+1)-coloring, all
//!   running without a large machine;
//! * [`near_linear`] — the near-linear column: the same heterogeneous
//!   algorithm implementations executed on a cluster whose *every* machine
//!   is near-linear (the regime where the paper's ports originated).
//!
//! Substitution note (DESIGN.md §4): the literature's best sublinear
//! algorithms (`O(log D + log log n)` connectivity \[11\],
//! `O(√log Δ·log log Δ + √log log n)` matching/MIS \[33\]) are replaced by
//! classic `O(log n)`-type algorithms. Table 1's contrast needs baselines
//! whose rounds *grow with n*; these provide that shape honestly, and the
//! gap they show against the heterogeneous algorithms is therefore an
//! upper bound on the regime's capability, not a straw man — EXPERIMENTS.md
//! reports the asymptotics of the best known algorithms alongside.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod contraction;
pub mod near_linear;
pub mod sublinear;

pub use contraction::{boruvka_contraction, ContractionResult};
pub use near_linear::near_linear_config;
pub use sublinear::{
    sublinear_coloring, sublinear_components, sublinear_matching, sublinear_mis, sublinear_mst,
    two_vs_one_cycle_baseline,
};
