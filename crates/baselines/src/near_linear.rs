//! The near-linear column of Table 1.
//!
//! In the near-linear regime *every* machine has `Õ(n)` words. The paper's
//! observation is that its ported algorithms (Appendix C) and the
//! heterogeneous MST/spanner/matching need only **one** such machine — so
//! running the very same implementations on an all-near-linear cluster
//! reproduces the near-linear column: rounds can only improve because the
//! non-large machines are bigger (e.g. the MST's collection budget makes
//! `k₀` huge, collapsing the Borůvka schedule to one step — the `O(1)` of
//! \[1\]'s column, by the substitution recorded in DESIGN.md §4).

use mpc_runtime::{ClusterConfig, Topology};

/// Cluster configuration for the near-linear regime on an `(n, m)` input:
/// machine 0 remains the coordinator ("large") but every machine gets
/// near-linear capacity, and the machine count is `max(2, m/n)`.
pub fn near_linear_config(n: usize, m: usize, seed: u64) -> ClusterConfig {
    let base = ClusterConfig::new(n, m).seed(seed);
    let cap = base.capacity_for_exponent(1.0);
    let machines = (m / n.max(1)).max(2) + 1;
    base.topology(Topology::Custom {
        capacities: vec![cap; machines],
        large: Some(0),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpc_core::{common, mst};
    use mpc_graph::generators;
    use mpc_runtime::Cluster;

    #[test]
    fn near_linear_mst_uses_fewer_rounds_than_heterogeneous() {
        let g = generators::gnm(256, 256 * 24, 3).with_random_weights(1 << 20, 3);

        let mut het = Cluster::new(ClusterConfig::new(g.n(), g.m()).seed(3));
        let input = common::distribute_edges(&het, &g);
        mst::heterogeneous_mst(&mut het, g.n(), input).unwrap();

        let mut nl = Cluster::new(near_linear_config(g.n(), g.m(), 3));
        let input = common::distribute_edges(&nl, &g);
        let r = mst::heterogeneous_mst(&mut nl, g.n(), input).unwrap();
        assert!(mst::is_minimum_spanning_forest(&g, &r.forest));
        assert!(
            nl.rounds() <= het.rounds(),
            "near-linear ({}) should not exceed heterogeneous ({})",
            nl.rounds(),
            het.rounds()
        );
    }

    #[test]
    fn near_linear_cluster_has_uniform_large_capacities() {
        let cfg = near_linear_config(1000, 16_000, 1);
        let (caps, large) = cfg.resolve();
        assert_eq!(large, Some(0));
        assert!(caps.iter().all(|&c| c == caps[0]));
        assert!(caps[0] >= 1000);
    }
}
