//! Sublinear-regime baselines (Table 1, left column): no large machine.

use crate::contraction::{boruvka_contraction, ContractionResult};
use mpc_graph::coloring::Color;
use mpc_graph::distribution::{shard_edges, Layout};
use mpc_graph::matching::Matching;
use mpc_graph::{Edge, Graph, VertexId};
use mpc_runtime::primitives::{aggregate_by_key, lookup, sum_to};
use mpc_runtime::{Cluster, ClusterConfig, ModelViolation, ShardedVec, Topology};
use rand::Rng;

/// A sublinear cluster configuration for an `(n, m)` input.
pub fn sublinear_config(n: usize, m: usize, seed: u64) -> ClusterConfig {
    ClusterConfig::new(n, m)
        .topology(Topology::Sublinear { gamma: 0.66 })
        .seed(seed)
}

/// Distributes edges across **all** machines of a (sublinear) cluster.
pub fn distribute_all(cluster: &Cluster, g: &Graph) -> ShardedVec<Edge> {
    let machines: Vec<usize> = (0..cluster.machines()).collect();
    let shards = shard_edges(g.edges(), machines.len(), Layout::RoundRobin);
    let mut sv = ShardedVec::new(cluster);
    for (i, s) in shards.into_iter().enumerate() {
        *sv.shard_mut(machines[i]) = s;
    }
    sv
}

/// Sublinear MST: distributed Borůvka (`O(log n)` phases, hooking +
/// pointer jumping). Returns the MSF edges.
///
/// # Errors
///
/// Propagates capacity violations in strict mode.
pub fn sublinear_mst(
    cluster: &mut Cluster,
    n: usize,
    edges: &ShardedVec<Edge>,
) -> Result<ContractionResult, ModelViolation> {
    boruvka_contraction(cluster, n, edges)
}

/// Sublinear connected components (labels at owners).
///
/// # Errors
///
/// Propagates capacity violations in strict mode.
pub fn sublinear_components(
    cluster: &mut Cluster,
    n: usize,
    edges: &ShardedVec<Edge>,
) -> Result<ContractionResult, ModelViolation> {
    boruvka_contraction(cluster, n, edges)
}

/// The 1-vs-2-cycle baseline: counts components the sublinear way and
/// reports `true` for a single cycle. Rounds grow with `log n` — the
/// contrast to [`mpc_core::ported::one_vs_two_cycles`]'s `O(1)`.
///
/// # Errors
///
/// Propagates capacity violations in strict mode.
pub fn two_vs_one_cycle_baseline(
    cluster: &mut Cluster,
    n: usize,
    edges: &ShardedVec<Edge>,
) -> Result<bool, ModelViolation> {
    let r = boruvka_contraction(cluster, n, edges)?;
    let mut distinct: Vec<VertexId> = r.labels.iter().map(|(_, (_v, l))| *l).collect();
    distinct.sort_unstable();
    distinct.dedup();
    Ok(distinct.len() == 1)
}

/// Sublinear maximal matching: the peeling matcher over the whole graph
/// (`O(log n)` iterations — contrast with the heterogeneous three-phase
/// algorithm whose rounds track the *average degree* only).
///
/// # Errors
///
/// Propagates capacity violations in strict mode.
pub fn sublinear_matching(
    cluster: &mut Cluster,
    edges: &ShardedVec<Edge>,
) -> Result<(Matching, usize), ModelViolation> {
    let empty: ShardedVec<(VertexId, u32)> = ShardedVec::new(cluster);
    let out = mpc_core::matching::peeling::peeling_matching(cluster, edges, &empty, "base.match")?;
    let matching = Matching {
        edges: out.matching.iter().map(|(_, e)| *e).collect(),
    };
    Ok((matching, out.iterations))
}

/// Sublinear MIS: Luby's algorithm — every live vertex draws a random
/// priority each round and joins iff it beats all live neighbors.
/// `O(log n)` iterations w.h.p.
///
/// # Errors
///
/// Propagates capacity violations in strict mode.
pub fn sublinear_mis(
    cluster: &mut Cluster,
    n: usize,
    edges: &ShardedVec<Edge>,
) -> Result<(Vec<VertexId>, usize), ModelViolation> {
    let owners: Vec<usize> = (0..cluster.machines())
        .filter(|&m| Some(m) != cluster.large())
        .collect();
    let participants: Vec<usize> = (0..cluster.machines()).collect();
    let coordinator = owners[0];
    let mut live: ShardedVec<Edge> = ShardedVec::from_shards(
        (0..edges.machines())
            .map(|mid| edges.shard(mid).to_vec())
            .collect(),
    );
    // Vertex state at owners: 0 = undecided, 1 = in MIS, 2 = dominated.
    let mut state: ShardedVec<(VertexId, u32)> = {
        let mut items: ShardedVec<(VertexId, u32)> = ShardedVec::new(cluster);
        for mid in 0..edges.machines() {
            for e in edges.shard(mid) {
                items.shard_mut(mid).push((e.u, 0));
                items.shard_mut(mid).push((e.v, 0));
            }
        }
        aggregate_by_key(cluster, "luby.init", &items, &owners, |a, _| *a)?
    };
    let mut iterations = 0usize;
    loop {
        let counts: Vec<u64> = (0..cluster.machines())
            .map(|mid| live.shard(mid).len() as u64)
            .collect();
        let total = sum_to(cluster, "luby.count", &participants, counts, coordinator)?;
        if total == 0 {
            break;
        }
        iterations += 1;
        // Priorities drawn at owners for undecided vertices.
        let mut prio: ShardedVec<(VertexId, u64)> = ShardedVec::new(cluster);
        for mid in 0..state.machines() {
            let mut draws: Vec<(VertexId, u64)> = Vec::new();
            for (v, s) in state.shard(mid) {
                if *s == 0 {
                    draws.push((*v, cluster.rng(mid).random()));
                }
            }
            prio.shard_mut(mid).extend(draws);
        }
        // Machines learn the priorities of their edges' endpoints; a vertex
        // survives iff its priority beats every live neighbor: compute the
        // min neighbor priority per vertex by aggregation.
        let requests = endpoints(cluster, &live);
        let got = lookup(cluster, "luby.prio", &prio, &requests, &owners)?;
        let mut nbr_min: ShardedVec<(VertexId, u64)> = ShardedVec::new(cluster);
        for mid in 0..live.machines() {
            let p: std::collections::HashMap<VertexId, u64> =
                got.shard(mid).iter().copied().collect();
            let shard = nbr_min.shard_mut(mid);
            for e in live.shard(mid) {
                if let (Some(&pu), Some(&pv)) = (p.get(&e.u), p.get(&e.v)) {
                    shard.push((e.u, pv));
                    shard.push((e.v, pu));
                }
            }
        }
        let nbr = aggregate_by_key(cluster, "luby.nbrmin", &nbr_min, &owners, |a, b| {
            (*a).min(*b)
        })?;
        // Owners decide: undecided vertex with prio < min neighbor joins.
        let mut joined: Vec<(VertexId, u32)> = Vec::new();
        for mid in 0..state.machines() {
            let my_prio: std::collections::HashMap<VertexId, u64> =
                prio.shard(mid).iter().copied().collect();
            let nb: std::collections::HashMap<VertexId, u64> =
                nbr.shard(mid).iter().copied().collect();
            for (v, s) in state.shard_mut(mid).iter_mut() {
                if *s != 0 {
                    continue;
                }
                let Some(&p) = my_prio.get(v) else { continue };
                match nb.get(v) {
                    None => {
                        // No live neighbor: join unconditionally.
                        *s = 1;
                        joined.push((*v, 1));
                    }
                    Some(&q) if p < q => {
                        *s = 1;
                        joined.push((*v, 1));
                    }
                    _ => {}
                }
            }
        }
        // Dominate neighbors of joiners and prune their edges: lookup the
        // joined set, mark, drop.
        let joined_store: ShardedVec<(VertexId, u32)> = {
            let mut sv: ShardedVec<(VertexId, u32)> = ShardedVec::new(cluster);
            for (v, f) in &joined {
                sv.shard_mut(mpc_runtime::primitives::owner_of(v, &owners))
                    .push((*v, *f));
            }
            for mid in 0..sv.machines() {
                sv.shard_mut(mid).sort_unstable();
                sv.shard_mut(mid).dedup();
            }
            sv
        };
        let requests = endpoints(cluster, &live);
        let j = lookup(cluster, "luby.joined", &joined_store, &requests, &owners)?;
        let mut dominated: ShardedVec<(VertexId, u32)> = ShardedVec::new(cluster);
        for mid in 0..live.machines() {
            let joined_set: std::collections::HashSet<VertexId> =
                j.shard(mid).iter().map(|(v, _)| *v).collect();
            let shard = dominated.shard_mut(mid);
            for e in live.shard(mid) {
                if joined_set.contains(&e.u) {
                    shard.push((e.v, 2));
                }
                if joined_set.contains(&e.v) {
                    shard.push((e.u, 2));
                }
            }
            live.shard_mut(mid)
                .retain(|e| !joined_set.contains(&e.u) && !joined_set.contains(&e.v));
        }
        let dom = aggregate_by_key(cluster, "luby.dom", &dominated, &owners, |a, _| *a)?;
        for mid in 0..state.machines() {
            let d: std::collections::HashSet<VertexId> =
                dom.shard(mid).iter().map(|(v, _)| *v).collect();
            for (v, s) in state.shard_mut(mid).iter_mut() {
                if *s == 0 && d.contains(v) {
                    *s = 2;
                }
            }
        }
        // Prune edges with dominated endpoints too.
        let requests = endpoints(cluster, &live);
        let st = lookup(cluster, "luby.state", &state, &requests, &owners)?;
        for mid in 0..live.machines() {
            let dead: std::collections::HashSet<VertexId> = st
                .shard(mid)
                .iter()
                .filter(|(_, s)| *s != 0)
                .map(|(v, _)| *v)
                .collect();
            live.shard_mut(mid)
                .retain(|e| !dead.contains(&e.u) && !dead.contains(&e.v));
        }
    }
    // Isolated vertices join by default; vertices still undecided when the
    // live set drained have only dominated (non-MIS) neighbors left — they
    // join too, which maximality requires, and they are mutually
    // non-adjacent (a live edge between two undecided vertices would have
    // kept the loop running).
    let mut in_mis: Vec<bool> = vec![true; n];
    for (_mid, (v, s)) in state.iter() {
        in_mis[*v as usize] = *s != 2;
    }
    let mis = (0..n as VertexId).filter(|&v| in_mis[v as usize]).collect();
    Ok((mis, iterations))
}

/// Sublinear (Δ+1)-coloring: iterated random color trials — every live
/// vertex picks a uniform color from its remaining palette; it keeps the
/// color if no neighbor picked the same one. `O(log n)` iterations w.h.p.
///
/// # Errors
///
/// Propagates capacity violations in strict mode.
pub fn sublinear_coloring(
    cluster: &mut Cluster,
    n: usize,
    edges: &ShardedVec<Edge>,
    delta: usize,
) -> Result<(Vec<Color>, usize), ModelViolation> {
    let owners: Vec<usize> = (0..cluster.machines())
        .filter(|&m| Some(m) != cluster.large())
        .collect();
    let participants: Vec<usize> = (0..cluster.machines()).collect();
    let coordinator = owners[0];
    let mut live: ShardedVec<Edge> = ShardedVec::from_shards(
        (0..edges.machines())
            .map(|mid| edges.shard(mid).to_vec())
            .collect(),
    );
    // Final colors, u32::MAX = undecided; owner-resident.
    let mut colors: ShardedVec<(VertexId, u32)> = {
        let mut items: ShardedVec<(VertexId, u32)> = ShardedVec::new(cluster);
        for mid in 0..edges.machines() {
            for e in edges.shard(mid) {
                items.shard_mut(mid).push((e.u, u32::MAX));
                items.shard_mut(mid).push((e.v, u32::MAX));
            }
        }
        aggregate_by_key(cluster, "rcolor.init", &items, &owners, |a, _| *a)?
    };
    let mut iterations = 0usize;
    loop {
        let counts: Vec<u64> = (0..cluster.machines())
            .map(|mid| live.shard(mid).len() as u64)
            .collect();
        let total = sum_to(cluster, "rcolor.count", &participants, counts, coordinator)?;
        if total == 0 {
            break;
        }
        iterations += 1;
        // Trial colors for undecided vertices.
        let mut trial: ShardedVec<(VertexId, u32)> = ShardedVec::new(cluster);
        for mid in 0..colors.machines() {
            let mut draws: Vec<(VertexId, u32)> = Vec::new();
            for (v, c) in colors.shard(mid) {
                if *c == u32::MAX {
                    draws.push((*v, cluster.rng(mid).random_range(0..=delta as u32)));
                }
            }
            trial.shard_mut(mid).extend(draws);
        }
        // Conflicts: neighbors that picked the same trial color, plus
        // already-fixed neighbor colors equal to the trial.
        let requests = endpoints(cluster, &live);
        let tr = lookup(cluster, "rcolor.trial", &trial, &requests, &owners)?;
        let fixed = lookup(cluster, "rcolor.fixed", &colors, &requests, &owners)?;
        let mut clashes: ShardedVec<(VertexId, u32)> = ShardedVec::new(cluster);
        for mid in 0..live.machines() {
            let t: std::collections::HashMap<VertexId, u32> =
                tr.shard(mid).iter().copied().collect();
            let f: std::collections::HashMap<VertexId, u32> =
                fixed.shard(mid).iter().copied().collect();
            let shard = clashes.shard_mut(mid);
            for e in live.shard(mid) {
                let (tu, tv) = (t.get(&e.u), t.get(&e.v));
                let (fu, fv) = (f.get(&e.u).copied(), f.get(&e.v).copied());
                if let (Some(&a), Some(&b)) = (tu, tv) {
                    if a == b {
                        shard.push((e.u, 1));
                        shard.push((e.v, 1));
                    }
                }
                if let (Some(&a), Some(b)) = (tu, fv) {
                    if b != u32::MAX && a == b {
                        shard.push((e.u, 1));
                    }
                }
                if let (Some(&a), Some(b)) = (tv, fu) {
                    if b != u32::MAX && a == b {
                        shard.push((e.v, 1));
                    }
                }
            }
        }
        let clash = aggregate_by_key(cluster, "rcolor.clash", &clashes, &owners, |a, _| *a)?;
        // Owners commit clash-free trials.
        for mid in 0..colors.machines() {
            let t: std::collections::HashMap<VertexId, u32> =
                trial.shard(mid).iter().copied().collect();
            let bad: std::collections::HashSet<VertexId> =
                clash.shard(mid).iter().map(|(v, _)| *v).collect();
            for (v, c) in colors.shard_mut(mid).iter_mut() {
                if *c == u32::MAX {
                    if let Some(&tc) = t.get(v) {
                        if !bad.contains(v) {
                            *c = tc;
                        }
                    }
                }
            }
        }
        // Prune edges whose endpoints are both colored.
        let requests = endpoints(cluster, &live);
        let st = lookup(cluster, "rcolor.state", &colors, &requests, &owners)?;
        for mid in 0..live.machines() {
            let f: std::collections::HashMap<VertexId, u32> =
                st.shard(mid).iter().copied().collect();
            live.shard_mut(mid)
                .retain(|e| f[&e.u] == u32::MAX || f[&e.v] == u32::MAX);
        }
    }
    let mut out: Vec<Color> = vec![0; n];
    for (_mid, (v, c)) in colors.iter() {
        out[*v as usize] = if *c == u32::MAX { 0 } else { *c };
    }
    Ok((out, iterations))
}

fn endpoints(cluster: &Cluster, edges: &ShardedVec<Edge>) -> ShardedVec<VertexId> {
    let mut req: ShardedVec<VertexId> = ShardedVec::new(cluster);
    for mid in 0..edges.machines() {
        let shard = req.shard_mut(mid);
        for e in edges.shard(mid) {
            shard.push(e.u);
            shard.push(e.v);
        }
        shard.sort_unstable();
        shard.dedup();
    }
    req
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpc_graph::coloring::is_proper_coloring;
    use mpc_graph::generators;
    use mpc_graph::matching::is_maximal_matching;
    use mpc_graph::mis::is_maximal_independent_set;

    #[test]
    fn matching_baseline_is_maximal() {
        let g = generators::gnm(100, 500, 1);
        let mut cluster = Cluster::new(sublinear_config(g.n(), g.m(), 1));
        let input = distribute_all(&cluster, &g);
        let (m, iters) = sublinear_matching(&mut cluster, &input).unwrap();
        assert!(is_maximal_matching(&g, &m));
        assert!(iters >= 1);
    }

    #[test]
    fn mis_baseline_is_maximal() {
        for seed in 0..3 {
            let g = generators::gnm(80, 400, seed);
            let mut cluster = Cluster::new(sublinear_config(g.n(), g.m(), seed));
            let input = distribute_all(&cluster, &g);
            let (mis, _) = sublinear_mis(&mut cluster, g.n(), &input).unwrap();
            assert!(is_maximal_independent_set(&g, &mis), "seed {seed}");
        }
    }

    #[test]
    fn coloring_baseline_is_proper() {
        let g = generators::gnm(80, 500, 2);
        let mut cluster = Cluster::new(sublinear_config(g.n(), g.m(), 2));
        let input = distribute_all(&cluster, &g);
        let delta = g.max_degree();
        let (colors, _) = sublinear_coloring(&mut cluster, g.n(), &input, delta).unwrap();
        assert!(is_proper_coloring(&g, &colors));
        assert!(colors.iter().all(|&c| (c as usize) <= delta));
    }

    #[test]
    fn cycle_detector_distinguishes() {
        let one = generators::cycle(64, 5).with_random_weights(100, 5);
        let mut c1 = Cluster::new(sublinear_config(64, 64, 5));
        let i1 = distribute_all(&c1, &one);
        assert!(two_vs_one_cycle_baseline(&mut c1, 64, &i1).unwrap());

        let two = generators::two_cycles(64, 5).with_random_weights(100, 5);
        let mut c2 = Cluster::new(sublinear_config(64, 64, 5));
        let i2 = distribute_all(&c2, &two);
        assert!(!two_vs_one_cycle_baseline(&mut c2, 64, &i2).unwrap());
    }
}
