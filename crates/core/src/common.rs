//! Shared helpers for the heterogeneous algorithms: input distribution,
//! directed copies, matched-status bookkeeping.

use mpc_graph::distribution::{shard_edges, Layout};
use mpc_graph::{Edge, Graph, VertexId};
use mpc_runtime::{Cluster, MachineId, ShardedVec};

/// Places the input edges on the small machines (round-robin), matching the
/// paper's §2 convention that the input starts on the small machines in
/// arbitrary order.
pub fn distribute_edges(cluster: &Cluster, g: &Graph) -> ShardedVec<Edge> {
    distribute_edges_with(cluster, g, Layout::RoundRobin)
}

/// [`distribute_edges`] with an explicit initial [`Layout`].
pub fn distribute_edges_with(cluster: &Cluster, g: &Graph, layout: Layout) -> ShardedVec<Edge> {
    let small = cluster.small_ids();
    let shards = shard_edges(g.edges(), small.len(), layout);
    let mut sv = ShardedVec::new(cluster);
    for (i, shard) in shards.into_iter().enumerate() {
        *sv.shard_mut(small[i]) = shard;
    }
    sv
}

/// The machines that act as hash-owners for keys: all small machines.
pub fn owners(cluster: &Cluster) -> Vec<MachineId> {
    cluster.small_ids()
}

/// Builds, per machine, the list of vertex ids whose values that machine
/// needs — the endpoints of its locally stored edges. This is the request
/// set of every dissemination (paper Claim 3: "each small machine is given
/// the labels of all vertices whose edges it stores").
pub fn endpoint_requests<T, F>(
    cluster: &Cluster,
    edges: &ShardedVec<T>,
    endpoints: F,
) -> ShardedVec<VertexId>
where
    F: Fn(&T) -> (VertexId, VertexId),
{
    let mut req: ShardedVec<VertexId> = ShardedVec::new(cluster);
    for mid in 0..edges.machines() {
        let shard = req.shard_mut(mid);
        for t in edges.shard(mid) {
            let (u, v) = endpoints(t);
            shard.push(u);
            shard.push(v);
        }
        shard.sort_unstable();
        shard.dedup();
    }
    req
}

/// Reconstructs a [`Graph`] from sharded edges (diagnostics/tests only —
/// a real machine could not do this).
pub fn collect_graph(n: usize, edges: &ShardedVec<Edge>) -> Graph {
    Graph::new(n, edges.iter().map(|(_, e)| *e))
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpc_graph::generators;
    use mpc_runtime::ClusterConfig;

    #[test]
    fn distribution_preserves_edges_and_avoids_large() {
        let g = generators::gnm(64, 256, 1);
        let cluster = Cluster::new(ClusterConfig::new(64, 256));
        let sv = distribute_edges(&cluster, &g);
        assert!(sv.shard(cluster.large().unwrap()).is_empty());
        assert_eq!(collect_graph(64, &sv), g);
    }

    #[test]
    fn endpoint_requests_are_deduped() {
        let g = generators::star(5);
        let cluster = Cluster::new(ClusterConfig::new(5, 4));
        let sv = distribute_edges(&cluster, &g);
        let req = endpoint_requests(&cluster, &sv, |e| (e.u, e.v));
        for mid in cluster.small_ids() {
            let r = req.shard(mid);
            let mut sorted = r.to_vec();
            sorted.sort();
            sorted.dedup();
            assert_eq!(r, &sorted[..], "machine {mid} requests not deduped/sorted");
        }
    }
}
