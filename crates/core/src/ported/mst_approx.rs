//! (1+ε)-approximate MST weight in `O(1)` rounds (Theorem C.2).
//!
//! The Chazelle–Rubinfeld–Trevisan / AGM estimator: for integer weights in
//! `[1, W]`,
//!
//! ```text
//! MSF(G) = n − W·c_W + Σ_{i=1}^{W−1} c_i
//! ```
//!
//! where `c_i` is the number of components of the subgraph with edges of
//! weight `≤ i` (and `c_W` the overall component count). Evaluating `c` at
//! geometrically spaced thresholds `τ_j = (1+ε)^j` over-counts each interval
//! by at most a `(1+ε)` factor, giving a `(1+ε)`-approximation from
//! `O(log_{1+ε} W)` connectivity instances — each the `O(1)`-round sketch
//! connectivity of Theorem C.1, run **in parallel** in the paper. This
//! legacy implementation runs them sequentially and reports both the sum
//! of rounds and the parallel figure (max over instances); it survives as
//! the equivalence oracle for the engine's batched path
//! (`mpc_exec::multiplex`), which interleaves all instances into one
//! engine run and achieves the parallel figure for real.

use super::connectivity::{components_below_threshold, ConnectivityConfig};
use crate::common;
use mpc_graph::Edge;
use mpc_runtime::{Cluster, ModelViolation, ShardedVec};

/// Result of the MST-weight estimator.
#[derive(Clone, Debug, PartialEq)]
pub struct MstApprox {
    /// The weight estimate.
    pub estimate: f64,
    /// Thresholds evaluated.
    pub thresholds: Vec<u64>,
    /// Component count at each threshold.
    pub component_counts: Vec<usize>,
    /// Rounds a parallel execution would need (max over instances).
    pub parallel_rounds: u64,
}

/// Geometric thresholds `1 = τ_0 < τ_1 < … ≥ W` on the `(1+ε)` grid —
/// shared by the legacy path and the engine program.
pub fn geometric_thresholds(w_max: u64, epsilon: f64) -> Vec<u64> {
    let mut thresholds: Vec<u64> = vec![1];
    loop {
        let last = *thresholds.last().unwrap();
        if last >= w_max {
            break;
        }
        let next = (((last as f64) * (1.0 + epsilon)).ceil() as u64).max(last + 1);
        thresholds.push(next.min(w_max));
    }
    thresholds
}

/// The estimator formula on the geometric grid: each interval
/// `[τ_j, τ_{j+1})` contributes `(τ_{j+1} − τ_j) · c_{τ_j}`, and the whole
/// estimate is `n − W·c_W + Σ intervals`. Shared by both paths.
pub fn estimate_from_counts(
    n: usize,
    w_max: u64,
    thresholds: &[u64],
    component_counts: &[usize],
) -> f64 {
    let c_last = *component_counts.last().expect("at least one threshold");
    let mut sum = 0f64;
    for j in 0..thresholds.len() {
        let lo = thresholds[j];
        let hi = if j + 1 < thresholds.len() {
            thresholds[j + 1]
        } else {
            w_max
        };
        if hi > lo {
            sum += (hi - lo) as f64 * component_counts[j] as f64;
        }
    }
    n as f64 - (w_max as f64) * c_last as f64 + sum
}

/// Estimates the MSF weight within `(1+ε)` w.h.p.
///
/// # Errors
///
/// Propagates capacity violations in strict mode.
pub fn approximate_mst_weight(
    cluster: &mut Cluster,
    n: usize,
    edges: &ShardedVec<Edge>,
    epsilon: f64,
) -> Result<MstApprox, ModelViolation> {
    assert!(epsilon > 0.0, "epsilon must be positive");
    let w_max = edges.iter().map(|(_, e)| e.w).max().unwrap_or(1).max(1);
    let thresholds = geometric_thresholds(w_max, epsilon);
    let config = ConnectivityConfig::for_n(n);
    let mut component_counts = Vec::with_capacity(thresholds.len());
    let mut parallel_rounds = 0u64;
    for &t in &thresholds {
        let before = cluster.rounds();
        let c = components_below_threshold(cluster, n, edges, t, &config)?;
        parallel_rounds = parallel_rounds.max(cluster.rounds() - before);
        component_counts.push(c);
    }
    let estimate = estimate_from_counts(n, w_max, &thresholds, &component_counts);
    Ok(MstApprox {
        estimate,
        thresholds,
        component_counts,
        parallel_rounds,
    })
}

/// Convenience wrapper used by tests and benches: builds a sketch-friendly
/// cluster, distributes `g`, estimates.
///
/// # Errors
///
/// Propagates capacity violations in strict mode.
pub fn estimate_for_graph(
    g: &mpc_graph::Graph,
    epsilon: f64,
    seed: u64,
) -> Result<(MstApprox, u64), ModelViolation> {
    let mut cluster = Cluster::new(super::connectivity::sketch_friendly_config(
        g.n(),
        g.m().max(1),
        seed,
    ));
    let input = common::distribute_edges(&cluster, g);
    let r = approximate_mst_weight(&mut cluster, g.n(), &input, epsilon)?;
    Ok((r, cluster.rounds()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpc_graph::{generators, mst::kruskal};

    #[test]
    fn estimate_is_close_to_exact_mst() {
        let g = generators::gnm(80, 400, 2).with_random_weights(32, 2);
        let exact = kruskal(&g).total_weight as f64;
        let (r, _) = estimate_for_graph(&g, 0.25, 2).unwrap();
        // Thresholded counts are exact (sketches are w.h.p. exact), so the
        // only error is the geometric grid: within (1+ε) above, never below
        // by more than the grid slack.
        assert!(
            r.estimate >= exact * 0.95 && r.estimate <= exact * 1.35,
            "estimate {} vs exact {exact}",
            r.estimate
        );
    }

    #[test]
    fn unweighted_graph_estimate_equals_spanning_forest_size() {
        let g = generators::gnm(60, 150, 3); // all weights 1
        let exact = kruskal(&g).total_weight as f64;
        let (r, _) = estimate_for_graph(&g, 0.5, 3).unwrap();
        assert!(
            (r.estimate - exact).abs() < 1e-9,
            "{} vs {exact}",
            r.estimate
        );
    }

    #[test]
    fn finer_epsilon_means_more_thresholds() {
        let g = generators::gnm(40, 120, 4).with_random_weights(64, 4);
        let (coarse, _) = estimate_for_graph(&g, 1.0, 4).unwrap();
        let (fine, _) = estimate_for_graph(&g, 0.1, 4).unwrap();
        assert!(fine.thresholds.len() > coarse.thresholds.len());
    }

    #[test]
    fn parallel_rounds_are_constant() {
        let g = generators::gnm(64, 200, 5).with_random_weights(16, 5);
        let (r, _) = estimate_for_graph(&g, 0.5, 5).unwrap();
        assert!(
            r.parallel_rounds <= 12,
            "parallel rounds {}",
            r.parallel_rounds
        );
    }
}
