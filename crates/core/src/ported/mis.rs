//! Maximal independent set in `O(log log Δ)` rounds (Theorem C.6, after
//! Ghaffari, Gouleakis, Konrad, Mitrović & Rubinfeld \[26\]).
//!
//! The large machine draws a uniform permutation `π` and disseminates
//! ranks. Iteration `i` processes the vertices with rank up to
//! `n/Δ^(αⁱ⁺¹)` (α = 3/4): the residual edges among this still-small prefix
//! number `Õ(n)` w.h.p., so the large machine can collect them and extend
//! the greedy-by-`π` MIS locally; newly dominated vertices are pruned on
//! the small machines before the next, geometrically larger prefix. After
//! `O(log log Δ)` iterations the whole residual graph fits and the run
//! finishes.
//!
//! Greedy-by-`π` is sequentially consistent across batches, so the output
//! equals the sequential greedy MIS under `π` — always a correct MIS, with
//! the round bound being the probabilistic part.

use crate::common;
use mpc_graph::{Edge, VertexId};
use mpc_runtime::primitives::{aggregate_by_key, gather_to, lookup, sum_to};
use mpc_runtime::{Cluster, ModelViolation, ShardedVec};
use rand::seq::SliceRandom;

/// Result of the MIS port.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct MisResult {
    /// The maximal independent set.
    pub mis: Vec<VertexId>,
    /// Prefix-processing iterations executed (the `O(log log Δ)` quantity).
    pub iterations: usize,
    /// Residual edge count before each iteration's gather.
    pub batch_edges: Vec<usize>,
}

/// Draws the uniform permutation `π` and its rank array — the algorithm's
/// single random draw, shared by the legacy path and the engine port so
/// both consume the large machine's RNG stream identically.
pub fn permutation_ranks(rng: &mut rand::rngs::SmallRng, n: usize) -> (Vec<VertexId>, Vec<u32>) {
    let mut perm: Vec<VertexId> = (0..n as VertexId).collect();
    perm.shuffle(rng);
    let mut rank: Vec<u32> = vec![0; n];
    for (r, &v) in perm.iter().enumerate() {
        rank[v as usize] = r as u32;
    }
    (perm, rank)
}

/// Prefix thresholds `t_i = n / Δ^(αⁱ)` (α = 3/4), capped at `n`.
pub fn prefix_thresholds(n: usize, delta: u32) -> Vec<u32> {
    let alpha = 0.75f64;
    let mut thresholds: Vec<u32> = Vec::new();
    let mut exp = 1.0f64;
    loop {
        let t = (n as f64 / (delta as f64).powf(exp)).ceil() as u32;
        thresholds.push(t.min(n as u32));
        if t as usize >= n {
            break;
        }
        exp *= alpha;
        if thresholds.len() > 64 {
            thresholds.push(n as u32);
            break;
        }
    }
    thresholds
}

/// The large machine's residual-edge budget: an eighth of its capacity.
pub fn mis_budget(large_capacity: usize) -> usize {
    large_capacity / 8
}

/// The undirected adjacency of an edge slice — both greedy sweeps walk it
/// the same way, so they must build it the same way.
fn adjacency(edges: &[Edge]) -> std::collections::HashMap<VertexId, Vec<VertexId>> {
    let mut adj: std::collections::HashMap<VertexId, Vec<VertexId>> =
        std::collections::HashMap::new();
    for e in edges {
        adj.entry(e.u).or_default().push(e.v);
        adj.entry(e.v).or_default().push(e.u);
    }
    adj
}

/// Extends the greedy-by-`π` MIS over the prefix of ranks `< t`, given the
/// batch of surviving conflicts among the prefix. Returns the vertices that
/// joined. Shared by the legacy loop body and the engine program.
pub fn greedy_extend_prefix(
    perm: &[VertexId],
    rank: &[u32],
    t: u32,
    decided_upto: u32,
    dominated_flag: &[bool],
    in_mis: &mut [bool],
    batch: &[Edge],
) -> Vec<VertexId> {
    let adj = adjacency(batch);
    let mut newly: Vec<VertexId> = Vec::new();
    for &v in perm {
        if rank[v as usize] >= t {
            break;
        }
        if rank[v as usize] < decided_upto {
            continue; // decided in an earlier batch
        }
        if dominated_flag[v as usize] {
            continue; // covered by an earlier batch's choice
        }
        // v joins iff no already-chosen neighbor (batch edges cover all
        // surviving conflicts among the prefix).
        let blocked = adj
            .get(&v)
            .is_some_and(|ns| ns.iter().any(|&u| in_mis[u as usize]));
        if !blocked {
            in_mis[v as usize] = true;
            newly.push(v);
        }
    }
    newly
}

/// The final sweep: the greedy over all still-undecided, non-dominated
/// vertices, with `rest` being the surviving live edges. Sequentially
/// consistent with the batched greedy. Shared by both paths.
pub fn final_sweep(
    perm: &[VertexId],
    rank: &[u32],
    decided_upto: u32,
    dominated_flag: &[bool],
    in_mis: &mut [bool],
    rest: &[Edge],
) {
    let adj = adjacency(rest);
    for &v in perm {
        if in_mis[v as usize] || dominated_flag[v as usize] || rank[v as usize] < decided_upto {
            continue;
        }
        let blocked = adj
            .get(&v)
            .is_some_and(|ns| ns.iter().any(|&u| in_mis[u as usize]));
        if !blocked {
            in_mis[v as usize] = true;
        }
    }
}

/// Runs the ported MIS algorithm.
///
/// # Errors
///
/// Propagates capacity violations in strict mode.
pub fn heterogeneous_mis(
    cluster: &mut Cluster,
    n: usize,
    edges: &ShardedVec<Edge>,
) -> Result<MisResult, ModelViolation> {
    let large = cluster.large().expect("MIS requires a large machine");
    let owners = common::owners(cluster);
    let participants: Vec<usize> = (0..cluster.machines()).collect();

    // Permutation ranks, drawn by the large machine and disseminated.
    let (perm, rank) = permutation_ranks(cluster.rng(large), n);
    let rank_pairs: Vec<(VertexId, u32)> =
        (0..n as VertexId).map(|v| (v, rank[v as usize])).collect();
    let requests = common::endpoint_requests(cluster, edges, |e| (e.u, e.v));
    let ranks_delivered = mpc_runtime::primitives::disseminate(
        cluster,
        "mis.ranks",
        &rank_pairs,
        large,
        &requests,
        &owners,
    )?;

    // Live edges, each machine knowing its endpoints' ranks.
    let mut live: ShardedVec<Edge> = ShardedVec::new(cluster);
    let mut local_rank: Vec<std::collections::HashMap<VertexId, u32>> = (0..cluster.machines())
        .map(|_| std::collections::HashMap::new())
        .collect();
    for mid in 0..edges.machines() {
        local_rank[mid] = ranks_delivered.shard(mid).iter().copied().collect();
        *live.shard_mut(mid) = edges.shard(mid).to_vec();
    }

    let delta = {
        // Max degree via aggregation (needed for the prefix schedule).
        let mut deg_items: ShardedVec<(VertexId, u32)> = ShardedVec::new(cluster);
        for mid in 0..edges.machines() {
            let shard = deg_items.shard_mut(mid);
            for e in edges.shard(mid) {
                shard.push((e.u, 1));
                shard.push((e.v, 1));
            }
        }
        let agg = aggregate_by_key(cluster, "mis.deg", &deg_items, &owners, |a, b| a + b)?;
        let pairs = gather_to(cluster, "mis.deg-up", &agg, large)?;
        pairs.iter().map(|&(_, d)| d).max().unwrap_or(1).max(2)
    };

    // Prefix thresholds: t_i = n / Δ^(α^i), α = 3/4, until the prefix is V.
    let thresholds = prefix_thresholds(n, delta);

    let mut in_mis: Vec<bool> = vec![false; n];
    let mut dominated_flag: Vec<bool> = vec![false; n];
    let mut decided_upto = 0u32; // ranks below this are fully decided
    let mut iterations = 0usize;
    let mut batch_edges = Vec::new();
    let budget = mis_budget(cluster.capacity(large));

    for &t in &thresholds {
        if decided_upto >= n as u32 {
            break;
        }
        iterations += 1;
        // Ship the residual edges with both endpoints in the prefix.
        let mut batch: ShardedVec<Edge> = ShardedVec::new(cluster);
        for mid in 0..live.machines() {
            let shard = batch.shard_mut(mid);
            for e in live.shard(mid) {
                if local_rank[mid][&e.u] < t && local_rank[mid][&e.v] < t {
                    shard.push(*e);
                }
            }
        }
        let counts: Vec<u64> = (0..cluster.machines())
            .map(|mid| batch.shard(mid).len() as u64)
            .collect();
        let total = sum_to(cluster, "mis.count", &participants, counts, large)?;
        batch_edges.push(total as usize);
        if total as usize * 2 > budget {
            // Residual prefix unexpectedly dense (low-probability event):
            // skip to a smaller growth step by ending this iteration early.
            continue;
        }
        let batch_edges_at_large = gather_to(cluster, "mis.batch", &batch, large)?;
        cluster.account("mis.large", large, batch_edges_at_large.len() * 2)?;

        // Local greedy by π over ranks [0, t), consistent with prior batches.
        let newly = greedy_extend_prefix(
            &perm,
            &rank,
            t,
            decided_upto,
            &dominated_flag,
            &mut in_mis,
            &batch_edges_at_large,
        );
        decided_upto = t;

        // Prune: machines learn which vertices joined the MIS and drop every
        // edge with an endpoint that is dominated or chosen.
        let mis_pairs: Vec<(VertexId, u32)> = newly.iter().map(|&v| (v, 1)).collect();
        let live_requests = common::endpoint_requests(cluster, &live, |e| (e.u, e.v));
        let delivered = mpc_runtime::primitives::disseminate(
            cluster,
            "mis.newly",
            &mis_pairs,
            large,
            &live_requests,
            &owners,
        )?;
        // Dominated vertices: neighbors of MIS vertices (found locally, then
        // shared through aggregation so every holder of the vertex knows).
        let mut dominated_items: ShardedVec<(VertexId, u32)> = ShardedVec::new(cluster);
        for mid in 0..live.machines() {
            let chosen: std::collections::HashSet<VertexId> =
                delivered.shard(mid).iter().map(|&(v, _)| v).collect();
            let shard = dominated_items.shard_mut(mid);
            for e in live.shard(mid) {
                if chosen.contains(&e.u) {
                    shard.push((e.v, 1));
                    shard.push((e.u, 1));
                }
                if chosen.contains(&e.v) {
                    shard.push((e.u, 1));
                    shard.push((e.v, 1));
                }
            }
        }
        let dominated = aggregate_by_key(
            cluster,
            "mis.dominated",
            &dominated_items,
            &owners,
            |a, b| a | b,
        )?;
        // Mirror domination to the large machine so the final sweep knows
        // which undecided vertices are already covered.
        let dom_pairs = gather_to(cluster, "mis.dominated-up", &dominated, large)?;
        for &(v, _) in &dom_pairs {
            dominated_flag[v as usize] = true;
        }
        let live_requests = common::endpoint_requests(cluster, &live, |e| (e.u, e.v));
        let dom_local = lookup(
            cluster,
            "mis.dominated-look",
            &dominated,
            &live_requests,
            &owners,
        )?;
        for mid in 0..live.machines() {
            let dead: std::collections::HashSet<VertexId> =
                dom_local.shard(mid).iter().map(|&(v, _)| v).collect();
            live.shard_mut(mid)
                .retain(|e| !dead.contains(&e.u) && !dead.contains(&e.v));
        }
        cluster.release("mis.large");

        // The paper's stop rule: once the residual graph fits the large
        // machine, skip the remaining prefixes — the final sweep gathers it
        // whole. This is what makes O(log log Δ) iterations suffice.
        let live_counts: Vec<u64> = (0..cluster.machines())
            .map(|mid| live.shard(mid).len() as u64)
            .collect();
        let live_total = sum_to(cluster, "mis.live-count", &participants, live_counts, large)?;
        if (live_total as usize) * 2 <= budget {
            break;
        }
    }

    // Final sweep: gather whatever live edges remain (small w.h.p.) and run
    // the greedy over all still-undecided, non-dominated vertices. Edges
    // between two such vertices are exactly the surviving live edges, so
    // this is sequentially consistent with the batched greedy.
    let rest = gather_to(cluster, "mis.final", &live, large)?;
    final_sweep(
        &perm,
        &rank,
        decided_upto,
        &dominated_flag,
        &mut in_mis,
        &rest,
    );
    let mis: Vec<VertexId> = (0..n as VertexId).filter(|&v| in_mis[v as usize]).collect();
    Ok(MisResult {
        mis,
        iterations,
        batch_edges,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpc_graph::generators;
    use mpc_graph::mis::is_maximal_independent_set;
    use mpc_runtime::ClusterConfig;

    fn run(g: &mpc_graph::Graph, seed: u64) -> (MisResult, u64) {
        let mut cluster = Cluster::new(
            ClusterConfig::new(g.n(), g.m().max(1))
                .seed(seed)
                .polylog_exponent(1.6),
        );
        let input = common::distribute_edges(&cluster, g);
        let r = heterogeneous_mis(&mut cluster, g.n(), &input).unwrap();
        (r, cluster.rounds())
    }

    #[test]
    fn produces_maximal_independent_sets() {
        for seed in 0..4 {
            let g = generators::gnm(120, 900, seed);
            let (r, _) = run(&g, seed);
            assert!(
                is_maximal_independent_set(&g, &r.mis),
                "seed {seed}: {:?}",
                r.mis.len()
            );
        }
    }

    #[test]
    fn handles_high_degree_graphs() {
        let g = generators::star(300);
        let (r, _) = run(&g, 1);
        assert!(is_maximal_independent_set(&g, &r.mis));
    }

    #[test]
    fn iteration_count_is_doubly_logarithmic() {
        let g = generators::gnm(256, 8000, 3); // Δ ≈ 60+
        let (r, _) = run(&g, 3);
        assert!(
            r.iterations <= 12,
            "expected O(log log Δ) iterations, got {}",
            r.iterations
        );
    }

    #[test]
    fn empty_graph_mis_is_everything() {
        let g = mpc_graph::Graph::empty(8);
        let mut cluster = Cluster::new(ClusterConfig::new(8, 1));
        let input = common::distribute_edges(&cluster, &g);
        let r = heterogeneous_mis(&mut cluster, 8, &input).unwrap();
        assert_eq!(r.mis.len(), 8);
    }
}
