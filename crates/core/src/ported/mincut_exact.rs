//! Exact unweighted minimum cut in `O(1)` rounds (Theorem C.3, after
//! Ghaffari–Nowicki–Thorup \[32\]).
//!
//! One trial:
//! 1. **2-out contraction** — every vertex samples 2 incident edges
//!    (random-rank top-2 selection, Claim-4 style); the large machine
//!    contracts the sampled graph's components;
//! 2. **random-sampling contraction** — each surviving inter-component edge
//!    is sampled with probability `1/(2δ)` (`δ` = min degree) and contracted
//!    too, leaving `O(n/δ)` vertices and `O(n)` edges w.h.p.;
//! 3. the contracted **multigraph** (parallel edges = summed multiplicity)
//!    is shipped to the large machine, which runs Stoer–Wagner and compares
//!    against the best singleton cut (min degree).
//!
//! A non-singleton minimum cut survives a trial with constant probability;
//! trials amplify. Every trial's answer is a real cut, so the minimum over
//! trials is an upper bound that equals the true min cut w.h.p.

use crate::common;
use mpc_graph::{DisjointSets, Edge, VertexId};
use mpc_runtime::primitives::{aggregate_by_key, gather_to, top_t_per_key};
use mpc_runtime::{Cluster, ModelViolation, ShardedVec};
use rand::Rng;
use std::collections::HashMap;

/// Result of the exact min-cut port.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct MinCutResult {
    /// The minimum cut value found.
    pub value: u128,
    /// Whether the winner was a singleton cut (min degree).
    pub singleton: bool,
    /// Per-trial contracted sizes `(vertices, distinct edge pairs)`.
    pub trial_sizes: Vec<(usize, usize)>,
}

/// The random-sampling contraction probability of step 2: `1/(2δ)`.
pub fn step2_probability(delta: u32) -> f64 {
    1.0 / (2.0 * f64::from(delta))
}

/// What one trial's contracted multigraph implies.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum TrialOutcome {
    /// Fewer than 2 contracted vertices: nothing left to cut.
    TooSmall,
    /// The contracted multigraph's minimum cut value (Stoer–Wagner).
    Cut(u128),
    /// The contracted graph is disconnected ⇒ the input is disconnected.
    Disconnected,
}

/// Step 3's local computation, shared by the legacy loop body and the
/// engine program: index the contracted multigraph `(pair → multiplicity)`
/// and run Stoer–Wagner. `components` is the contracted vertex count (the
/// component count after both contraction steps) — a contracted vertex
/// with no incident crossing edge is an isolated component, so
/// `ids < components` certifies the *input* graph disconnected (cut 0),
/// which the pair list alone cannot see. Returns the
/// `(vertices, distinct pairs)` size statistic and the trial's outcome.
pub fn evaluate_contraction(
    components: usize,
    pairs: &[((VertexId, VertexId), u64)],
) -> ((usize, usize), TrialOutcome) {
    let sizes = (components, pairs.len());
    if components < 2 {
        return (sizes, TrialOutcome::TooSmall);
    }
    let mut ids: Vec<VertexId> = pairs.iter().flat_map(|((a, b), _)| [*a, *b]).collect();
    ids.sort_unstable();
    ids.dedup();
    if ids.len() < components {
        return (sizes, TrialOutcome::Disconnected);
    }
    let index: HashMap<VertexId, u32> = ids
        .iter()
        .enumerate()
        .map(|(i, &v)| (v, i as u32))
        .collect();
    let sw_edges: Vec<(u32, u32, u64)> = pairs
        .iter()
        .map(|((a, b), c)| (index[a], index[b], *c))
        .collect();
    match mpc_graph::mincut::stoer_wagner(ids.len(), &sw_edges) {
        Some(mc) => (sizes, TrialOutcome::Cut(mc.weight)),
        None => (sizes, TrialOutcome::Disconnected),
    }
}

/// Runs `trials` independent contraction trials and returns the best cut.
///
/// # Errors
///
/// Propagates capacity violations in strict mode.
pub fn heterogeneous_min_cut(
    cluster: &mut Cluster,
    n: usize,
    edges: &ShardedVec<Edge>,
    trials: usize,
) -> Result<MinCutResult, ModelViolation> {
    let large = cluster.large().expect("min cut requires a large machine");
    let owners = common::owners(cluster);

    // Degrees → min degree δ (singleton cuts are exact and free to check).
    let mut deg_items: ShardedVec<(VertexId, u32)> = ShardedVec::new(cluster);
    for mid in 0..edges.machines() {
        let shard = deg_items.shard_mut(mid);
        for e in edges.shard(mid) {
            shard.push((e.u, 1));
            shard.push((e.v, 1));
        }
    }
    let deg_at_owner = aggregate_by_key(cluster, "cut.degree", &deg_items, &owners, |a, b| a + b)?;
    let deg_pairs = gather_to(cluster, "cut.degree-up", &deg_at_owner, large)?;
    let delta = deg_pairs.iter().map(|&(_, d)| d).min().unwrap_or(0).max(1);
    let mut best = u128::from(delta);
    let mut singleton = true;
    let mut trial_sizes = Vec::new();

    for _trial in 0..trials {
        // Step 1: 2-out — random-rank top-2 incident edges per vertex.
        let mut items: ShardedVec<(VertexId, (u64, Edge))> = ShardedVec::new(cluster);
        for mid in 0..edges.machines() {
            let shard = items.shard_mut(mid);
            for e in edges.shard(mid) {
                let r1 = cluster.rng(mid).random::<u64>();
                let r2 = cluster.rng(mid).random::<u64>();
                shard.push((e.u, (r1, *e)));
                shard.push((e.v, (r2, *e)));
            }
        }
        let two_out = top_t_per_key(cluster, "cut.2out", &items, &owners, large, |_| 2, |x| x.0)?;
        let mut dsu = DisjointSets::new(n);
        for (_v, es) in &two_out {
            for (_r, e) in es {
                dsu.union(e.u, e.v);
            }
        }

        // Step 2: disseminate labels; sample surviving edges w.p. 1/(2δ).
        let p = step2_probability(delta);
        let labels = mpc_graph::traversal::components_from_dsu(&mut dsu);
        let label_pairs: Vec<(VertexId, VertexId)> = (0..n as VertexId)
            .map(|v| (v, labels.label[v as usize]))
            .collect();
        let requests = common::endpoint_requests(cluster, edges, |e| (e.u, e.v));
        let delivered = mpc_runtime::primitives::disseminate(
            cluster,
            "cut.labels",
            &label_pairs,
            large,
            &requests,
            &owners,
        )?;
        let mut extra: ShardedVec<Edge> = ShardedVec::new(cluster);
        for mid in 0..edges.machines() {
            let lab: HashMap<VertexId, VertexId> = delivered.shard(mid).iter().copied().collect();
            let shard = extra.shard_mut(mid);
            for e in edges.shard(mid) {
                if lab[&e.u] != lab[&e.v] && cluster.rng(mid).random_bool(p) {
                    shard.push(*e);
                }
            }
        }
        let extra_edges = gather_to(cluster, "cut.sample", &extra, large)?;
        for e in &extra_edges {
            dsu.union(e.u, e.v);
        }
        let labels = mpc_graph::traversal::components_from_dsu(&mut dsu);

        // Step 3: contracted multigraph with multiplicities via aggregation.
        let label_pairs: Vec<(VertexId, VertexId)> = (0..n as VertexId)
            .map(|v| (v, labels.label[v as usize]))
            .collect();
        let delivered = mpc_runtime::primitives::disseminate(
            cluster,
            "cut.labels2",
            &label_pairs,
            large,
            &requests,
            &owners,
        )?;
        let mut multi: ShardedVec<((u32, u32), u64)> = ShardedVec::new(cluster);
        for mid in 0..edges.machines() {
            let lab: HashMap<VertexId, VertexId> = delivered.shard(mid).iter().copied().collect();
            let shard = multi.shard_mut(mid);
            for e in edges.shard(mid) {
                let (a, b) = (lab[&e.u], lab[&e.v]);
                if a != b {
                    shard.push(((a.min(b), a.max(b)), 1));
                }
            }
        }
        let agg = aggregate_by_key(cluster, "cut.multi", &multi, &owners, |a, b| a + b)?;
        let pairs = gather_to(cluster, "cut.multi-up", &agg, large)?;
        cluster.account("cut.large", large, pairs.len() * 3)?;

        // Local Stoer–Wagner on the contracted multigraph.
        let (sizes, outcome) = evaluate_contraction(labels.count, &pairs);
        trial_sizes.push(sizes);
        match outcome {
            TrialOutcome::TooSmall => {}
            TrialOutcome::Cut(w) => {
                if w < best {
                    best = w;
                    singleton = false;
                }
            }
            TrialOutcome::Disconnected => {
                // Contracted graph disconnected ⇒ the input is disconnected.
                best = 0;
                singleton = false;
            }
        }
        cluster.release("cut.large");
    }
    Ok(MinCutResult {
        value: best,
        singleton,
        trial_sizes,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpc_graph::generators;
    use mpc_runtime::ClusterConfig;

    fn run(g: &mpc_graph::Graph, trials: usize, seed: u64) -> (MinCutResult, u64) {
        let mut cluster = Cluster::new(ClusterConfig::new(g.n(), g.m()).seed(seed));
        let input = common::distribute_edges(&cluster, g);
        let r = heterogeneous_min_cut(&mut cluster, g.n(), &input, trials).unwrap();
        (r, cluster.rounds())
    }

    #[test]
    fn finds_planted_cuts() {
        for (bridge, seed) in [(2usize, 1u64), (3, 2), (4, 3)] {
            let g = generators::planted_cut(24, 0.7, bridge, seed);
            let (r, _) = run(&g, 8, seed);
            let want = mpc_graph::mincut::min_cut(&g).unwrap().weight;
            assert_eq!(r.value, want, "bridge {bridge} seed {seed}");
        }
    }

    #[test]
    fn singleton_cut_is_immediate() {
        // A pendant vertex: min cut 1 via the degree check alone.
        let mut edges: Vec<Edge> = generators::complete(8).edges().to_vec();
        edges.push(Edge::unweighted(0, 8));
        let g = mpc_graph::Graph::new(9, edges);
        let (r, _) = run(&g, 4, 5);
        assert_eq!(r.value, 1);
    }

    #[test]
    fn never_underestimates() {
        // Every reported value is a real cut, so value >= true min cut.
        for seed in 0..4 {
            let g = generators::gnm(40, 160, seed);
            let (r, _) = run(&g, 3, seed);
            let want = mpc_graph::mincut::min_cut(&g).map_or(0, |m| m.weight);
            assert!(r.value >= want, "seed {seed}: {} < {want}", r.value);
        }
    }

    #[test]
    fn contraction_shrinks_the_graph() {
        let g = generators::gnm(120, 2000, 9);
        let (r, _) = run(&g, 2, 9);
        for &(nv, _ne) in &r.trial_sizes {
            assert!(nv < 120 / 4, "contraction left {nv} vertices");
        }
    }
}
