//! (Δ+1)-vertex coloring in `O(1)` rounds (Theorem C.7, after
//! Assadi–Chen–Khanna \[6\]).
//!
//! Palette sampling: every vertex independently samples `Θ(log n)` colors
//! from `{0, …, Δ}`. Lemma C.8 guarantees (w.h.p.) a proper coloring exists
//! in which every vertex uses a sampled color, and only *conflicting* edges
//! (endpoints with intersecting palettes) can ever be monochromatic — and
//! there are only `Õ(n)` of them w.h.p. So: ship the conflict edges to the
//! large machine, list-color them there, done.
//!
//! Implementation notes (substitutions recorded in DESIGN.md §4):
//!
//! * palettes are derived from one broadcast seed via the deterministic
//!   per-vertex PRF — `O(1)` words of communication instead of
//!   `Θ(n log n)`, with the `O(log n)`-wise-independence justification the
//!   paper itself uses elsewhere;
//! * the large machine realizes the existential Lemma C.8 constructively by
//!   randomized-greedy list coloring with restarts (fresh seed per restart,
//!   each restart costing one extra broadcast + gather round).

use crate::common;
use mpc_graph::coloring::Color;
use mpc_graph::{Edge, VertexId};
use mpc_runtime::primitives::{aggregate_by_key, broadcast, gather_to};
use mpc_runtime::{Cluster, ModelViolation, ShardedVec};
use rand::rngs::SmallRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

/// Result of the coloring port.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ColoringResult {
    /// A proper coloring with colors in `{0, …, Δ}`.
    pub colors: Vec<Color>,
    /// Conflict edges shipped to the large machine.
    pub conflict_edges: usize,
    /// Restarts needed by the constructive list-coloring step.
    pub restarts: usize,
}

/// Palette of vertex `v` under `seed`: `size` colors from `{0, …, Δ}` —
/// the deterministic per-vertex PRF every machine evaluates locally.
pub fn palette(seed: u64, v: VertexId, delta: u32, size: usize) -> Vec<Color> {
    let mut rng = SmallRng::seed_from_u64(
        seed.wrapping_mul(0x9e37_79b9_7f4a_7c15) ^ (v as u64).wrapping_mul(0xff51_afd7_ed55_8ccd),
    );
    let mut p: Vec<Color> = (0..size).map(|_| rng.random_range(0..=delta)).collect();
    p.sort_unstable();
    p.dedup();
    p
}

/// The `Θ(log n)` palette size the sampling lemma (Lemma C.8) needs.
pub fn palette_size_for(n: usize) -> usize {
    (2.0 * (n.max(2) as f64).ln()).ceil() as usize + 2
}

/// Whether `e` is a *conflict edge* under `seed`: its endpoints' palettes
/// intersect, so it could be monochromatic. Shared by both paths.
pub fn edge_conflicts(seed: u64, e: &Edge, delta: u32, palette_size: usize) -> bool {
    let pu = palette(seed, e.u, delta, palette_size);
    let pv = palette(seed, e.v, delta, palette_size);
    intersects(&pu, &pv)
}

/// One constructive list-coloring attempt on the conflict graph, in the
/// given vertex order. `None` means the sampled palettes admitted no greedy
/// completion and the caller should restart with a fresh seed.
pub fn attempt_coloring(
    n: usize,
    conflict_edges: &[Edge],
    seed: u64,
    delta: u32,
    palette_size: usize,
    order: &[VertexId],
) -> Option<Vec<Color>> {
    let conflict_graph = mpc_graph::Graph::new(n, conflict_edges.iter().copied());
    let palettes: Vec<Vec<Color>> = (0..n as VertexId)
        .map(|v| palette(seed, v, delta, palette_size))
        .collect();
    mpc_graph::coloring::greedy_list_coloring(&conflict_graph, order, &palettes)
}

/// Restarts before the whole-graph gather fallback kicks in.
pub const MAX_RESTARTS: usize = 16;

/// Runs the ported (Δ+1)-coloring.
///
/// # Errors
///
/// Propagates capacity violations in strict mode (conflict-edge volume is
/// `Θ(n log² n)` words w.h.p., so use `polylog_exponent ≥ 2`).
pub fn heterogeneous_coloring(
    cluster: &mut Cluster,
    n: usize,
    edges: &ShardedVec<Edge>,
) -> Result<ColoringResult, ModelViolation> {
    let large = cluster.large().expect("coloring requires a large machine");
    let owners = common::owners(cluster);
    let targets = cluster.small_ids();

    // Max degree Δ via aggregation.
    let mut deg_items: ShardedVec<(VertexId, u32)> = ShardedVec::new(cluster);
    for mid in 0..edges.machines() {
        let shard = deg_items.shard_mut(mid);
        for e in edges.shard(mid) {
            shard.push((e.u, 1));
            shard.push((e.v, 1));
        }
    }
    let agg = aggregate_by_key(cluster, "color.deg", &deg_items, &owners, |a, b| a + b)?;
    let deg_pairs = gather_to(cluster, "color.deg-up", &agg, large)?;
    let delta = deg_pairs.iter().map(|&(_, d)| d).max().unwrap_or(0);
    if delta == 0 {
        return Ok(ColoringResult {
            colors: vec![0; n],
            conflict_edges: 0,
            restarts: 0,
        });
    }
    let palette_size = palette_size_for(n);

    let mut restarts = 0usize;
    loop {
        // Broadcast the palette seed; machines derive palettes locally.
        let seed: u64 = cluster.rng(large).random();
        broadcast(cluster, "color.seed", large, &seed, &targets)?;

        // Conflict edges: palettes of the endpoints intersect.
        let mut conflicts: ShardedVec<Edge> = ShardedVec::new(cluster);
        for mid in 0..edges.machines() {
            let shard = conflicts.shard_mut(mid);
            for e in edges.shard(mid) {
                if edge_conflicts(seed, e, delta, palette_size) {
                    shard.push(*e);
                }
            }
        }
        let conflict_edges = gather_to(cluster, "color.conflicts", &conflicts, large)?;
        cluster.account("color.large", large, conflict_edges.len() * 2)?;

        // Local: randomized-greedy list coloring of the conflict graph.
        let mut order: Vec<VertexId> = (0..n as VertexId).collect();
        order.shuffle(cluster.rng(large));
        if let Some(colors) =
            attempt_coloring(n, &conflict_edges, seed, delta, palette_size, &order)
        {
            cluster.release("color.large");
            return Ok(ColoringResult {
                colors,
                conflict_edges: conflict_edges.len(),
                restarts,
            });
        }
        cluster.release("color.large");
        restarts += 1;
        if restarts > MAX_RESTARTS {
            // Degenerate instance (e.g. tiny Δ with adversarial palettes):
            // fall back to gathering the whole graph, which must then fit.
            let all = gather_to(cluster, "color.fallback", edges, large)?;
            let g = mpc_graph::Graph::new(n, all);
            let colors = mpc_graph::coloring::greedy_coloring(&g, &[]);
            return Ok(ColoringResult {
                colors,
                conflict_edges: g.m(),
                restarts,
            });
        }
    }
}

fn intersects(a: &[Color], b: &[Color]) -> bool {
    let (mut i, mut j) = (0, 0);
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => return true,
        }
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpc_graph::coloring::{color_count, is_proper_coloring};
    use mpc_graph::generators;
    use mpc_runtime::ClusterConfig;

    fn run(g: &mpc_graph::Graph, seed: u64) -> (ColoringResult, u64) {
        let mut cluster = Cluster::new(
            ClusterConfig::new(g.n(), g.m().max(1))
                .seed(seed)
                .polylog_exponent(2.0),
        );
        let input = common::distribute_edges(&cluster, g);
        let r = heterogeneous_coloring(&mut cluster, g.n(), &input).unwrap();
        (r, cluster.rounds())
    }

    #[test]
    fn colorings_are_proper_and_within_delta_plus_one() {
        for seed in 0..4 {
            let g = generators::gnm(100, 900, seed);
            let (r, _) = run(&g, seed);
            assert!(is_proper_coloring(&g, &r.colors), "seed {seed}");
            assert!(
                color_count(&r.colors) <= g.max_degree() + 1,
                "seed {seed}: {} colors for Δ = {}",
                color_count(&r.colors),
                g.max_degree()
            );
            assert!(
                r.colors.iter().all(|&c| c as usize <= g.max_degree()),
                "colors must come from {{0..Δ}}"
            );
        }
    }

    #[test]
    fn dense_graphs_have_few_conflicts_relative_to_m() {
        let g = generators::gnm(128, 4000, 7);
        let (r, _) = run(&g, 7);
        assert!(is_proper_coloring(&g, &r.colors));
        assert!(
            r.conflict_edges < g.m(),
            "conflict graph ({}) should be sparser than G ({})",
            r.conflict_edges,
            g.m()
        );
    }

    #[test]
    fn empty_graph_gets_one_color() {
        let g = mpc_graph::Graph::empty(5);
        let mut cluster = Cluster::new(ClusterConfig::new(5, 1));
        let input = common::distribute_edges(&cluster, &g);
        let r = heterogeneous_coloring(&mut cluster, 5, &input).unwrap();
        assert_eq!(r.colors, vec![0; 5]);
    }

    #[test]
    fn star_graph_colors_center_differently() {
        let g = generators::star(64);
        let (r, _) = run(&g, 3);
        assert!(is_proper_coloring(&g, &r.colors));
    }
}
