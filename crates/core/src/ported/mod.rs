//! Near-linear MPC algorithms ported to the heterogeneous model
//! (Appendix C of the paper).
//!
//! Each of these was originally designed for the near-linear regime; the
//! paper observes that a *single* near-linear machine suffices, because the
//! global work always reduces to (i) `Õ(n)` words of linear-sketch or
//! sampled data that the small machines can produce collectively, plus
//! (ii) free local computation on the large machine:
//!
//! | Problem | Module | Rounds | Paper |
//! |---|---|---|---|
//! | Connectivity | [`connectivity`] | `O(1)` | Thm C.1 |
//! | (1+ε)-approx. MST weight | [`mst_approx`] | `O(1)` | Thm C.2 |
//! | Exact unweighted min cut | [`mincut_exact`] | `O(1)` | Thm C.3 |
//! | (1±ε)-approx. weighted min cut | [`mincut_approx`] | `O(1)` | Thm C.4 |
//! | Maximal independent set | [`mis`] | `O(log log Δ)` | Thm C.6 |
//! | (Δ+1)-vertex coloring | [`coloring`] | `O(1)` | Thm C.7 |

pub mod coloring;
pub mod connectivity;
pub mod mincut_approx;
pub mod mincut_exact;
pub mod mis;
pub mod mst_approx;

pub use coloring::heterogeneous_coloring;
pub use connectivity::{heterogeneous_connectivity, one_vs_two_cycles};
pub use mincut_approx::approximate_min_cut;
pub use mincut_exact::heterogeneous_min_cut;
pub use mis::heterogeneous_mis;
pub use mst_approx::approximate_mst_weight;
