//! Connectivity in `O(1)` rounds (Theorem C.1, after AGM \[1\]).
//!
//! Flow:
//! 1. the large machine draws the hash seeds for the sketch family
//!    (`O(polylog n)` bits) and broadcasts them — this replaces the shared
//!    randomness of \[36\], as the paper prescribes;
//! 2. every small machine builds a *partial* sparse sketch per
//!    `(phase, vertex)` from its local edges (Property 1: sketches are
//!    linear, so partial sketches sum to the true vertex sketch);
//! 3. one aggregation merges partials at hash-owners, one gather ships the
//!    per-vertex sketches to the large machine (`Õ(n)` words);
//! 4. the large machine runs sketch-Borůvka **locally** — all `O(log n)`
//!    contraction phases happen inside one machine, which is the entire
//!    point of the port: rounds stay `O(1)` while the work that was
//!    `Ω(log n)` rounds in sublinear MPC becomes free local computation.

use crate::common;
use mpc_graph::traversal::Components;
use mpc_graph::Edge;
use mpc_runtime::primitives::{aggregate_by_key, broadcast, gather_to};
use mpc_runtime::{Cluster, ModelViolation, ShardedVec};
use mpc_sketch::{sketch_connectivity, SketchFamily, SparseSketch};
use rand::Rng;

/// Tuning for the connectivity port.
#[derive(Clone, Debug)]
pub struct ConnectivityConfig {
    /// Sketch-Borůvka phases (`≈ 2·log₂ n` for w.h.p. exactness).
    pub phases: usize,
}

impl ConnectivityConfig {
    /// Default: `2⌈log₂ n⌉ + 2` phases.
    pub fn for_n(n: usize) -> Self {
        ConnectivityConfig {
            phases: 2 * ((n.max(2) as f64).log2().ceil() as usize) + 2,
        }
    }
}

/// Computes connected components in `O(1)` rounds.
///
/// Returns min-id-labeled components (exact w.h.p.; decoded edges are
/// fingerprint-verified, so errors can only *under*-merge, never corrupt).
///
/// # Errors
///
/// Propagates capacity violations in strict mode — the sketch volume is
/// `Θ(n·log³ n)` bits, so clusters for this algorithm need a generous
/// polylog budget (`polylog_exponent ≥ 2.5`; see EXPERIMENTS.md).
pub fn heterogeneous_connectivity(
    cluster: &mut Cluster,
    n: usize,
    edges: &ShardedVec<Edge>,
    config: &ConnectivityConfig,
) -> Result<Components, ModelViolation> {
    let large = cluster
        .large()
        .expect("connectivity requires a large machine");
    let owners = common::owners(cluster);

    // Round(s) 1: broadcast the family seed.
    let seed: u64 = cluster.rng(large).random();
    let targets = cluster.small_ids();
    broadcast(cluster, "conn.seed", large, &seed, &targets)?;
    let family = SketchFamily::new(n, config.phases, seed);

    // Local: partial sparse sketches per (phase, vertex).
    // Key packs (phase << 32) | vertex.
    let mut partials: ShardedVec<(u64, SparseSketch)> = ShardedVec::new(cluster);
    for mid in 0..edges.machines() {
        let mut local: std::collections::BTreeMap<u64, SparseSketch> =
            std::collections::BTreeMap::new();
        for e in edges.shard(mid) {
            for phase in 0..config.phases {
                let ku = ((phase as u64) << 32) | e.u as u64;
                let kv = ((phase as u64) << 32) | e.v as u64;
                family.add_edge_sparse(local.entry(ku).or_default(), phase, e.u, e.v);
                family.add_edge_sparse(local.entry(kv).or_default(), phase, e.v, e.u);
            }
        }
        *partials.shard_mut(mid) = local.into_iter().collect();
    }
    partials.account(cluster, "conn.partials")?;

    // Rounds 2–3: merge partials at owners (aggregation = sketch sum).
    let merged = aggregate_by_key(cluster, "conn.merge", &partials, &owners, |a, b| {
        let mut c = a.clone();
        c.merge(b);
        c
    })?;
    cluster.release("conn.partials");

    // Round 4: ship per-vertex sketches to the large machine.
    let gathered = gather_to(cluster, "conn.gather", &merged, large)?;
    let words: usize = gathered
        .iter()
        .map(|(_, s)| mpc_runtime::Payload::words(s))
        .sum();
    cluster.account("conn.large", large, words)?;

    // Local sketch-Borůvka on the large machine.
    let mut rows: Vec<Vec<mpc_sketch::VertexSketch>> = (0..config.phases)
        .map(|p| (0..n).map(|_| family.empty(p)).collect())
        .collect();
    for (key, sparse) in &gathered {
        let phase = (key >> 32) as usize;
        let v = (key & 0xFFFF_FFFF) as usize;
        rows[phase][v] = family.to_dense(sparse);
    }
    let components = sketch_connectivity(&family, &rows, n);
    cluster.release("conn.large");
    Ok(components)
}

/// Decides the paper's motivating "1-vs-2 cycles" problem in `O(1)` rounds:
/// `true` iff the input (a disjoint union of cycles covering all `n`
/// vertices) is a single cycle.
///
/// # Errors
///
/// Propagates capacity violations in strict mode.
pub fn one_vs_two_cycles(
    cluster: &mut Cluster,
    n: usize,
    edges: &ShardedVec<Edge>,
) -> Result<bool, ModelViolation> {
    let comps = heterogeneous_connectivity(cluster, n, edges, &ConnectivityConfig::for_n(n))?;
    Ok(comps.count == 1)
}

/// Counts components of the subgraph of weight `≤ threshold` — the
/// building block of the (1+ε)-MST estimator (Appendix C.1.1).
///
/// # Errors
///
/// Propagates capacity violations in strict mode.
pub fn components_below_threshold(
    cluster: &mut Cluster,
    n: usize,
    edges: &ShardedVec<Edge>,
    threshold: u64,
    config: &ConnectivityConfig,
) -> Result<usize, ModelViolation> {
    let filtered: ShardedVec<Edge> = ShardedVec::from_shards(
        (0..edges.machines())
            .map(|mid| {
                edges
                    .shard(mid)
                    .iter()
                    .filter(|e| e.w <= threshold)
                    .copied()
                    .collect()
            })
            .collect(),
    );
    Ok(heterogeneous_connectivity(cluster, n, &filtered, config)?.count)
}

/// A cluster configuration suitable for sketch-based algorithms: the sketch
/// volume is honestly `Θ(n log³ n)` bits, so the polylog budget must cover
/// it (the paper's `Õ(·)` hides the same factor).
pub fn sketch_friendly_config(n: usize, m: usize, seed: u64) -> mpc_runtime::ClusterConfig {
    mpc_runtime::ClusterConfig::new(n, m)
        .seed(seed)
        .polylog_exponent(2.6)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpc_graph::{generators, traversal::connected_components};
    use mpc_runtime::Cluster;

    fn run(g: &mpc_graph::Graph, seed: u64) -> (Components, u64) {
        let mut cluster = Cluster::new(sketch_friendly_config(g.n(), g.m().max(1), seed));
        let input = common::distribute_edges(&cluster, g);
        let c = heterogeneous_connectivity(
            &mut cluster,
            g.n(),
            &input,
            &ConnectivityConfig::for_n(g.n()),
        )
        .unwrap();
        (c, cluster.rounds())
    }

    #[test]
    fn matches_reference_components() {
        for seed in 0..3 {
            let g = generators::gnm(96, 220, seed);
            let (got, _) = run(&g, seed);
            assert_eq!(got, connected_components(&g), "seed {seed}");
        }
    }

    #[test]
    fn constant_rounds_across_sizes() {
        let (_, r1) = run(&generators::gnm(64, 160, 1), 1);
        let (_, r2) = run(&generators::gnm(256, 640, 1), 1);
        assert!(r2 <= r1 + 4, "rounds should not grow with n: {r1} -> {r2}");
    }

    #[test]
    fn solves_one_vs_two_cycles() {
        let one = generators::cycle(120, 7);
        let two = generators::two_cycles(120, 7);
        let mut c1 = Cluster::new(sketch_friendly_config(120, 120, 3));
        let i1 = common::distribute_edges(&c1, &one);
        assert!(one_vs_two_cycles(&mut c1, 120, &i1).unwrap());
        let mut c2 = Cluster::new(sketch_friendly_config(120, 120, 3));
        let i2 = common::distribute_edges(&c2, &two);
        assert!(!one_vs_two_cycles(&mut c2, 120, &i2).unwrap());
    }

    #[test]
    fn threshold_counting() {
        // Path with increasing weights: threshold cuts the tail.
        let edges: Vec<Edge> = (0..9)
            .map(|i| Edge::new(i, i + 1, (i + 1) as u64))
            .collect();
        let g = mpc_graph::Graph::new(10, edges);
        let mut cluster = Cluster::new(sketch_friendly_config(10, 9, 5));
        let input = common::distribute_edges(&cluster, &g);
        let c =
            components_below_threshold(&mut cluster, 10, &input, 5, &ConnectivityConfig::for_n(10))
                .unwrap();
        // Edges 1..=5 survive: vertices 0-5 connected, 6,7,8,9 isolated.
        assert_eq!(c, 5);
    }
}
